// Integration tests of the FL simulation: client/server round protocol over
// the comm layer, attack wiring, determinism, selection.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "fl/metrics.h"
#include "defense/majority_vote.h"
#include "fl/simulation.h"
#include "test_util.h"

using namespace fedcleanse;
using namespace fedcleanse::fl;

TEST(Simulation, ConstructsClientsAndAttackers) {
  Simulation sim(testutil::tiny_sim_config());
  EXPECT_EQ(sim.n_clients(), 4);
  EXPECT_EQ(sim.resident_clients(), 4u);
  EXPECT_FALSE(sim.virtual_clients());
  EXPECT_EQ(sim.attacker_ids(), (std::vector<int>{0}));
  EXPECT_TRUE(sim.client(0).malicious());
  EXPECT_FALSE(sim.client(1).malicious());
}

TEST(Simulation, AttackerHoldsVictimLabel) {
  Simulation sim(testutil::tiny_sim_config());
  const auto& data = sim.client(0).local_data();
  EXPECT_FALSE(data.indices_of_label(9).empty());
}

TEST(Simulation, RoundRunsAndUpdatesModel) {
  Simulation sim(testutil::tiny_sim_config());
  auto before = sim.server().params();
  auto participants = sim.run_round(0);
  EXPECT_EQ(participants.size(), 4u);
  EXPECT_NE(sim.server().params(), before);
}

TEST(Simulation, TrafficIsCounted) {
  Simulation sim(testutil::tiny_sim_config());
  sim.run_round(0);
  // 4 downlink model broadcasts + 4 uplink updates, each ≈ num_params·4B.
  const std::size_t param_bytes = sim.server().model().net.num_params() * 4;
  EXPECT_GE(sim.network().total_bytes(), 8 * param_bytes);
}

TEST(Simulation, DeterministicBySeed) {
  auto cfg = testutil::tiny_sim_config(123);
  Simulation a(cfg), b(cfg);
  a.run(false);
  b.run(false);
  EXPECT_EQ(a.server().params(), b.server().params());
}

TEST(Simulation, DifferentSeedsDiverge) {
  Simulation a(testutil::tiny_sim_config(1)), b(testutil::tiny_sim_config(2));
  a.run(false);
  b.run(false);
  EXPECT_NE(a.server().params(), b.server().params());
}

TEST(Simulation, HistoryRecorded) {
  auto cfg = testutil::tiny_sim_config();
  cfg.rounds = 3;
  Simulation sim(cfg);
  sim.run(true);
  ASSERT_EQ(sim.history().size(), 3u);
  for (const auto& rec : sim.history()) {
    EXPECT_GE(rec.test_acc, 0.0);
    EXPECT_LE(rec.test_acc, 1.0);
  }
}

TEST(Simulation, RandomSelectionRespectsCount) {
  auto cfg = testutil::tiny_sim_config();
  cfg.n_clients = 8;
  cfg.clients_per_round = 3;
  Simulation sim(cfg);
  std::set<int> seen;
  for (int r = 0; r < 6; ++r) {
    auto participants = sim.run_round(static_cast<std::uint32_t>(r));
    EXPECT_EQ(participants.size(), 3u);
    std::set<int> unique(participants.begin(), participants.end());
    EXPECT_EQ(unique.size(), 3u);
    seen.insert(participants.begin(), participants.end());
  }
  EXPECT_GT(seen.size(), 3u);  // selection actually varies
}

TEST(Simulation, DbaSplitsPatternAcrossAttackers) {
  auto cfg = testutil::tiny_sim_config();
  cfg.n_clients = 6;
  cfg.n_attackers = 3;
  cfg.dba = true;
  cfg.attack.pattern = data::make_dba_global_pattern(20, 20);
  Simulation sim(cfg);
  std::size_t total_pixels = 0;
  for (int a : sim.attacker_ids()) {
    const auto* spec = sim.client(a).attack();
    ASSERT_NE(spec, nullptr);
    total_pixels += spec->pattern.pixels.size();
    EXPECT_LT(spec->pattern.pixels.size(), cfg.attack.pattern.pixels.size());
  }
  EXPECT_EQ(total_pixels, cfg.attack.pattern.pixels.size());
}

TEST(Simulation, BackdoorTestsetUsesFullPattern) {
  auto cfg = testutil::tiny_sim_config();
  Simulation sim(cfg);
  const auto& bd = sim.backdoor_testset();
  ASSERT_FALSE(bd.empty());
  for (std::size_t i = 0; i < bd.size(); ++i) EXPECT_EQ(bd.label(i), 1);
}

TEST(Simulation, AttackerConfigRequiresPattern) {
  auto cfg = testutil::tiny_sim_config();
  cfg.attack.pattern.pixels.clear();
  EXPECT_THROW(Simulation sim(cfg), Error);
}

// --- client behaviours ---------------------------------------------------------

TEST(Client, HonestUpdateIsLocalMinusGlobal) {
  auto cfg = testutil::tiny_sim_config();
  cfg.n_attackers = 0;
  Simulation sim(cfg);
  auto& client = sim.client(1);
  auto global = sim.server().params();
  auto update = client.compute_update(global);
  auto local = client.model().net.get_flat();
  ASSERT_EQ(update.size(), local.size());
  for (std::size_t i = 0; i < update.size(); i += 97) {
    EXPECT_NEAR(update[i], local[i] - global[i], 1e-5f);
  }
}

TEST(Client, MaliciousUpdateIsAmplified) {
  Simulation sim(testutil::tiny_sim_config());
  auto& attacker = sim.client(0);
  const double gamma = attacker.attack()->gamma;
  auto global = sim.server().params();
  auto update = attacker.compute_update(global);
  auto local = attacker.model().net.get_flat();
  for (std::size_t i = 0; i < update.size(); i += 131) {
    EXPECT_NEAR(update[i], gamma * (local[i] - global[i]), 1e-4f);
  }
}

TEST(Client, RankReportIsValidPermutation) {
  Simulation sim(testutil::tiny_sim_config());
  auto global = sim.server().params();
  const int units =
      sim.server().model().net.layer(sim.server().model().last_conv_index).prunable_units();
  for (int c : sim.all_client_ids()) {
    auto report = sim.client(c).rank_report(global);
    ASSERT_EQ(static_cast<int>(report.size()), units);
    std::set<std::uint32_t> unique(report.begin(), report.end());
    EXPECT_EQ(unique.size(), report.size());
    EXPECT_EQ(*unique.begin(), 1u);
    EXPECT_EQ(*unique.rbegin(), static_cast<std::uint32_t>(units));
  }
}

TEST(Client, VoteReportHonorsQuota) {
  Simulation sim(testutil::tiny_sim_config());
  auto global = sim.server().params();
  const int units =
      sim.server().model().net.layer(sim.server().model().last_conv_index).prunable_units();
  for (double rate : {0.25, 0.5, 0.75}) {
    auto votes = sim.client(1).vote_report(global, rate);
    ASSERT_EQ(static_cast<int>(votes.size()), units);
    std::size_t cast = 0;
    for (auto v : votes) cast += v;
    EXPECT_EQ(cast, defense::expected_votes(units, rate));
  }
}

TEST(Client, AccuracyReportInRange) {
  Simulation sim(testutil::tiny_sim_config());
  auto global = sim.server().params();
  for (int c : sim.all_client_ids()) {
    const double acc = sim.client(c).report_accuracy(global);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(Client, MasksPropagateThroughMessages) {
  Simulation sim(testutil::tiny_sim_config());
  auto& server = sim.server();
  auto& model = server.model();
  model.net.layer(model.last_conv_index).set_unit_active(2, false);

  const auto clients = sim.all_client_ids();
  server.broadcast_masks(clients, 0);
  for (int c : clients) sim.client(c).handle_pending(sim.network());
  for (int c : clients) {
    EXPECT_FALSE(sim.client(c).model().net.layer(model.last_conv_index).unit_active(2));
  }
}

TEST(ServerAggregators, RobustRuleCanBeConfigured) {
  auto cfg = testutil::tiny_sim_config();
  cfg.server.aggregator = AggregatorKind::kMedian;
  Simulation sim(cfg);
  EXPECT_NO_THROW(sim.run_round(0));
}

TEST(Simulation, QuantizedUpdateCodecShrinksUplink) {
  auto cfg = testutil::tiny_sim_config(31);
  Simulation f32(cfg);
  f32.run(true);
  cfg.train.update_codec = comm::UpdateCodec::kInt8;
  Simulation q8(cfg);
  q8.run(true);

  ASSERT_EQ(f32.history().size(), q8.history().size());
  std::uint64_t bytes_f32 = 0, bytes_q8 = 0;
  for (const auto& rec : f32.history()) bytes_f32 += rec.wire_bytes;
  for (const auto& rec : q8.history()) bytes_q8 += rec.wire_bytes;
  ASSERT_GT(bytes_q8, 0u);
  // int8 payloads are 1 byte/param vs 4 (plus fixed scale+header overhead).
  EXPECT_GE(static_cast<double>(bytes_f32) / static_cast<double>(bytes_q8), 3.5);

  // Per-round quantization error is half a step per parameter; after a short
  // run the two models must still agree on most test samples.
  EXPECT_NEAR(q8.history().back().test_acc, f32.history().back().test_acc, 0.25);
}

TEST(Simulation, F32CodecIsDefaultAndDeterministic) {
  // The explicit f32 codec is the default; spelling it out must not change a
  // single byte of the run.
  auto cfg = testutil::tiny_sim_config(32);
  Simulation implicit(cfg);
  implicit.run(false);
  cfg.train.update_codec = comm::UpdateCodec::kF32;
  Simulation explicit_f32(cfg);
  explicit_f32.run(false);
  EXPECT_EQ(implicit.server().params(), explicit_f32.server().params());
}

TEST(Simulation, WireBytesRecordedPerRound) {
  Simulation sim(testutil::tiny_sim_config(33));
  sim.run(true);
  const std::size_t param_bytes = sim.server().model().net.num_params() * 4;
  for (const auto& rec : sim.history()) {
    // Each round uplinks one ≈4B/param update per participating client.
    EXPECT_GE(rec.wire_bytes, param_bytes);
  }
}
