// Run-snapshot format and CheckpointManager durability (DESIGN.md §13).
//
// The corruption tests are deliberately exhaustive: every single-byte flip
// and every truncation length of an encoded snapshot must surface as a
// CheckpointError — never a garbage decode — because load_latest's
// generation fallback only works if corruption is always detected.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "fl/run_state.h"

namespace fs = std::filesystem;
using fedcleanse::CheckpointError;
using fedcleanse::fl::CheckpointManager;
using fedcleanse::fl::RunSnapshot;

namespace {

RunSnapshot sample_snapshot() {
  RunSnapshot snap;
  snap.stage = fedcleanse::fl::run_stage::kFinetune;
  snap.next_round = 7;
  snap.epoch = 3;
  for (int i = 0; i < 200; ++i) snap.sim_state.push_back(static_cast<std::uint8_t>(i * 7));
  for (int i = 0; i < 40; ++i) snap.stage_state.push_back(static_cast<std::uint8_t>(255 - i));
  return snap;
}

// A fresh directory under the gtest temp root, unique per test.
std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fedcleanse_rs_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(RunSnapshotCodec, RoundTrip) {
  const RunSnapshot snap = sample_snapshot();
  const auto bytes = fedcleanse::fl::encode_run_snapshot(snap);
  const RunSnapshot back = fedcleanse::fl::decode_run_snapshot(bytes);
  EXPECT_EQ(back.stage, snap.stage);
  EXPECT_EQ(back.next_round, snap.next_round);
  EXPECT_EQ(back.epoch, snap.epoch);  // v5: the failover epoch survives disk
  EXPECT_EQ(back.sim_state, snap.sim_state);
  EXPECT_EQ(back.stage_state, snap.stage_state);
}

TEST(RunSnapshotCodec, EmptyStageStateRoundTrips) {
  RunSnapshot snap;
  snap.stage = fedcleanse::fl::run_stage::kTrain;
  snap.next_round = 0;
  const RunSnapshot back =
      fedcleanse::fl::decode_run_snapshot(fedcleanse::fl::encode_run_snapshot(snap));
  EXPECT_EQ(back.stage, snap.stage);
  EXPECT_TRUE(back.stage_state.empty());
}

TEST(RunSnapshotCodec, EveryByteFlipIsDetected) {
  const auto bytes = fedcleanse::fl::encode_run_snapshot(sample_snapshot());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      auto corrupt = bytes;
      corrupt[i] ^= flip;
      EXPECT_THROW(fedcleanse::fl::decode_run_snapshot(corrupt), CheckpointError)
          << "flip 0x" << std::hex << int(flip) << " at byte " << std::dec << i
          << " decoded without error";
    }
  }
}

TEST(RunSnapshotCodec, EveryTruncationIsDetected) {
  const auto bytes = fedcleanse::fl::encode_run_snapshot(sample_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(fedcleanse::fl::decode_run_snapshot(cut), CheckpointError)
        << "truncation to " << len << " bytes decoded without error";
  }
}

TEST(RunSnapshotCodec, TrailingBytesRejected) {
  auto bytes = fedcleanse::fl::encode_run_snapshot(sample_snapshot());
  bytes.push_back(0);
  EXPECT_THROW(fedcleanse::fl::decode_run_snapshot(bytes), CheckpointError);
}

TEST(RunSnapshotCodec, LoadSnapshotFileMissingThrows) {
  EXPECT_THROW(fedcleanse::fl::load_snapshot_file("/nonexistent/dir/x.fcrs"),
               CheckpointError);
}

TEST(CheckpointManager, DisabledWhenEveryNonPositive) {
  CheckpointManager manager("/nonexistent/never/created", 0);
  EXPECT_FALSE(manager.enabled());
  EXPECT_FALSE(manager.due(4, 8));
  // The directory must not have been created for a disabled manager.
  EXPECT_FALSE(fs::exists("/nonexistent/never/created"));
}

TEST(CheckpointManager, DueEveryNRoundsAndAtStageEnd) {
  CheckpointManager manager(fresh_dir("due"), 3);
  EXPECT_FALSE(manager.due(0, 10));  // nothing completed yet
  EXPECT_FALSE(manager.due(1, 10));
  EXPECT_FALSE(manager.due(2, 10));
  EXPECT_TRUE(manager.due(3, 10));
  EXPECT_TRUE(manager.due(6, 10));
  EXPECT_FALSE(manager.due(7, 10));
  EXPECT_TRUE(manager.due(10, 10));  // stage end, even though 10 % 3 != 0
}

TEST(CheckpointManager, EmptyDirectoryLoadsNothing) {
  CheckpointManager manager(fresh_dir("empty"), 2);
  EXPECT_EQ(manager.load_latest(), std::nullopt);
}

TEST(CheckpointManager, RotationKeepsNewestGenerations) {
  const std::string dir = fresh_dir("rotate");
  CheckpointManager manager(dir, 2, /*keep=*/2);
  RunSnapshot snap = sample_snapshot();
  for (int i = 0; i < 5; ++i) {
    snap.next_round = i;
    manager.save(snap);
  }
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  const auto latest = manager.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_round, 4);
}

TEST(CheckpointManager, FallsBackPastCorruptNewestGeneration) {
  const std::string dir = fresh_dir("fallback");
  CheckpointManager manager(dir, 2, /*keep=*/3);
  RunSnapshot snap = sample_snapshot();
  snap.next_round = 1;
  manager.save(snap);
  snap.next_round = 2;
  const std::string newest = manager.save(snap);

  // Tear the newest file the way a crash mid-write would (publish is atomic,
  // but disks rot): keep only the first half.
  const auto full = [&] {
    std::ifstream in(newest, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
  }();
  write_bytes(newest, {full.begin(), full.begin() + static_cast<long>(full.size() / 2)});

  const auto latest = manager.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_round, 1);
}

TEST(CheckpointManager, AllGenerationsCorruptThrows) {
  const std::string dir = fresh_dir("allcorrupt");
  CheckpointManager manager(dir, 2, /*keep=*/3);
  RunSnapshot snap = sample_snapshot();
  std::vector<std::string> paths;
  paths.push_back(manager.save(snap));
  paths.push_back(manager.save(snap));
  for (const auto& path : paths) write_bytes(path, {0xDE, 0xAD});
  EXPECT_THROW(manager.load_latest(), CheckpointError);
}

TEST(CheckpointManager, NumberingContinuesAcrossManagers) {
  const std::string dir = fresh_dir("renumber");
  RunSnapshot snap = sample_snapshot();
  std::string first;
  {
    CheckpointManager manager(dir, 2, /*keep=*/4);
    snap.next_round = 1;
    first = manager.save(snap);
  }
  // A second manager (the resumed process) must not overwrite the crashed
  // run's generations — they are the resume source until rotation prunes them.
  CheckpointManager manager(dir, 2, /*keep=*/4);
  snap.next_round = 2;
  const std::string second = manager.save(snap);
  EXPECT_NE(first, second);
  EXPECT_TRUE(fs::exists(first));
  const auto latest = manager.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_round, 2);
}

TEST(CheckpointManager, IgnoresTmpAndForeignFiles) {
  const std::string dir = fresh_dir("foreign");
  CheckpointManager manager(dir, 2);
  RunSnapshot snap = sample_snapshot();
  snap.next_round = 3;
  manager.save(snap);
  // A crash between write and rename leaves a .tmp; stray files happen too.
  write_bytes(dir + "/snapshot-999999.fcrs.tmp", {1, 2, 3});
  write_bytes(dir + "/notes.txt", {4, 5, 6});
  write_bytes(dir + "/snapshot-abc.fcrs", {7, 8, 9});
  const auto latest = manager.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_round, 3);
}
