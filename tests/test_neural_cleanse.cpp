#include <gtest/gtest.h>

#include "baselines/neural_cleanse.h"
#include "fl/metrics.h"
#include "test_util.h"

using namespace fedcleanse;
using namespace fedcleanse::baselines;

TEST(MadAnomaly, FlagsOnlySmallOutliers) {
  // Values clustered at 10 with one small outlier (2) and one large (30).
  std::vector<double> values{10, 10.5, 9.5, 10, 2, 30, 10.2, 9.8};
  auto index = mad_anomaly_index(values);
  EXPECT_GT(index[4], 2.0);   // small outlier flagged
  EXPECT_EQ(index[5], 0.0);   // large outlier NOT a backdoor signal
  EXPECT_LT(index[0], 2.0);
}

TEST(MadAnomaly, UniformValuesHaveNoOutliers) {
  std::vector<double> values(10, 5.0);
  for (double v : mad_anomaly_index(values)) EXPECT_EQ(v, 0.0);
}

TEST(MadAnomaly, EmptyThrows) {
  EXPECT_THROW(mad_anomaly_index({}), Error);
}

namespace {

NeuralCleanseConfig cheap_config() {
  NeuralCleanseConfig cfg;
  cfg.optimization_steps = 15;
  cfg.batch_size = 8;
  cfg.learning_rates = {0.3};
  return cfg;
}

}  // namespace

TEST(ReverseTrigger, ProducesBoundedMaskAndPattern) {
  fl::Simulation sim(testutil::tiny_sim_config(51));
  sim.run(false);
  auto& model = sim.server().model();
  auto trigger = reverse_trigger(model, sim.test_set(), 1, cheap_config());
  EXPECT_EQ(trigger.label, 1);
  EXPECT_GT(trigger.mask_l1, 0.0);
  EXPECT_GE(trigger.mask.min(), 0.0f);
  EXPECT_LE(trigger.mask.max(), 1.0f);
  EXPECT_GE(trigger.pattern.min(), 0.0f);
  EXPECT_LE(trigger.pattern.max(), 1.0f);
  EXPECT_GE(trigger.flip_rate, 0.0);
  EXPECT_LE(trigger.flip_rate, 1.0);
  EXPECT_EQ(trigger.mask.shape(), (tensor::Shape{1, 20, 20}));
  EXPECT_EQ(trigger.pattern.shape(), (tensor::Shape{1, 20, 20}));
}

TEST(ReverseTrigger, OptimizationReducesLoss) {
  fl::Simulation sim(testutil::tiny_sim_config(52));
  sim.run(false);
  auto& model = sim.server().model();
  auto short_cfg = cheap_config();
  short_cfg.optimization_steps = 2;
  auto long_cfg = cheap_config();
  long_cfg.optimization_steps = 40;
  auto short_run = reverse_trigger(model, sim.test_set(), 2, short_cfg);
  auto long_run = reverse_trigger(model, sim.test_set(), 2, long_cfg);
  EXPECT_LE(long_run.final_loss, short_run.final_loss + 0.5);
}

TEST(NeuralCleanse, FullPipelineRunsAndReports) {
  fl::Simulation sim(testutil::tiny_sim_config(53));
  sim.run(false);
  auto model = sim.server().model().clone();
  auto report = run_neural_cleanse(model, sim.test_set(), cheap_config());
  EXPECT_EQ(report.triggers.size(), 10u);
  EXPECT_EQ(report.anomaly_index.size(), 10u);
  EXPECT_GE(report.accuracy_before, 0.0);
  EXPECT_GE(report.accuracy_after, 0.0);
  // Mitigation never drops clean accuracy by more than the allowance
  // (plus one reverted step).
  EXPECT_GE(report.accuracy_after, report.accuracy_before - 0.04 - 1e-9);
}
