// Tests of the obs telemetry subsystem: registry counters under concurrency,
// histogram bucket edges, span nesting and thread attribution, Chrome trace
// export, journal output, and the invariant that telemetry never perturbs a
// simulation's results.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "fl/simulation.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "test_util.h"

using namespace fedcleanse;

namespace {

// Honor FEDCLEANSE_METRICS / FEDCLEANSE_TRACE for the whole test binary: the
// TSAN CI job re-runs the concurrency suites with telemetry switched on so
// the sharded counters and span buffers are exercised under real 4-thread
// training rounds.
[[maybe_unused]] const bool g_env_init = [] {
  obs::init_from_env();
  return true;
}();

// Every test here toggles process-global telemetry state; restore it so the
// rest of the suite (determinism tests in particular) runs telemetry-off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_metrics_ = obs::metrics_enabled();
    was_tracing_ = obs::tracing_enabled();
  }
  void TearDown() override {
    obs::set_metrics_enabled(was_metrics_);
    obs::set_tracing_enabled(was_tracing_);
    obs::clear_trace_events();
    obs::set_ambient_journal(nullptr);
  }

 private:
  bool was_metrics_ = false;
  bool was_tracing_ = false;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST_F(ObsTest, CounterDisabledByDefaultCostsNothing) {
  obs::set_metrics_enabled(false);
  auto& c = obs::Registry::global().counter("test.disabled");
  const std::uint64_t before = c.value();
  c.add(100);
  c.inc();
  EXPECT_EQ(c.value(), before);
}

TEST_F(ObsTest, CounterExactUnderConcurrentIncrements) {
  obs::set_metrics_enabled(true);
  auto& c = obs::Registry::global().counter("test.concurrent");
  const std::uint64_t before = c.value();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 10000;
  common::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), before + kTasks * kPerTask);
}

TEST_F(ObsTest, RegistryReturnsSameMetricForSameName) {
  auto& a = obs::Registry::global().counter("test.same_name");
  auto& b = obs::Registry::global().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  auto& h1 = obs::Registry::global().histogram("test.same_hist", {1.0, 2.0});
  auto& h2 = obs::Registry::global().histogram("test.same_hist", {99.0});
  EXPECT_EQ(&h1, &h2);  // bounds fixed at first registration
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(ObsTest, HistogramBucketBoundariesAreUpperInclusive) {
  obs::set_metrics_enabled(true);
  auto& h = obs::Registry::global().histogram("test.edges", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == 1       -> bucket 0 (upper-inclusive)
  h.observe(1.5);    // (1, 10]    -> bucket 1
  h.observe(10.0);   // == 10      -> bucket 1
  h.observe(100.0);  // == 100     -> bucket 2
  h.observe(101.0);  // > last     -> overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 101.0);
}

TEST_F(ObsTest, GaugeHoldsLastValue) {
  obs::set_metrics_enabled(true);
  auto& g = obs::Registry::global().gauge("test.gauge");
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, ScrapeSeesRegisteredMetrics) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("test.scrape_me").add(7);
  const auto snap = obs::Registry::global().scrape();
  ASSERT_TRUE(snap.counters.count("test.scrape_me"));
  EXPECT_GE(snap.counters.at("test.scrape_me"), 7u);
}

TEST_F(ObsTest, SpanMeasuresWithTracingOff) {
  obs::set_tracing_enabled(false);
  double sink = 0.0;
  {
    obs::Span span("measured", "test", &sink);
  }
  EXPECT_GE(sink, 0.0);
  // No event was recorded.
  for (const auto& e : obs::trace_events_snapshot()) {
    EXPECT_STRNE(e.name, "measured");
  }
}

TEST_F(ObsTest, SpanNestingAndThreadAttribution) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);
  {
    obs::Span outer("outer", "test");
    outer.set_arg("round", 7);
    {
      obs::Span inner("inner", "test");
    }
  }
  common::ThreadPool pool(2);
  pool.submit([] { obs::Span span("on_worker", "test"); }).get();
  obs::set_tracing_enabled(false);

  const auto events = obs::trace_events_snapshot();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* worker = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
    if (std::string(e.name) == "on_worker") worker = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker, nullptr);
  // RAII nesting: the inner interval lies within the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  // Same thread for nested spans; the pool worker reports a different tid.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_EQ(outer->tid, common::thread_index());
  EXPECT_NE(worker->tid, outer->tid);
  // The argument survives.
  ASSERT_STREQ(outer->arg_key, "round");
  EXPECT_EQ(outer->arg_value, 7);
}

TEST_F(ObsTest, ChromeTraceFileIsValidJson) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);
  {
    obs::Span span("exported", "test");
    span.set_arg("k", 42);
  }
  obs::set_tracing_enabled(false);
  const std::string path = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  const std::string body = read_file(path);
  // Structural checks: the trace viewer needs a traceEvents array of complete
  // ("X") events with microsecond timestamps.
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"exported\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"args\":{\"k\":42}"), std::string::npos);
  EXPECT_EQ(body.rfind("]}"), body.size() - 3);  // trailing newline
  std::remove(path.c_str());
}

TEST_F(ObsTest, JournalWritesOneJsonObjectPerLine) {
  obs::set_metrics_enabled(false);  // no "metrics" splice: lines are exact
  const std::string path = ::testing::TempDir() + "obs_journal.jsonl";
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    obs::JsonObject a;
    a.add("kind", "train_round").add("round", 0).add("ta", 0.5).add("quorum_met", true);
    journal.write(a);
    obs::JsonObject b;
    b.add("kind", "train_round").add("round", 1).add("ta", 0.625).add("note", "x\"y\n");
    journal.write(b);
    EXPECT_EQ(journal.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"kind\":\"train_round\",\"round\":0,\"ta\":0.5,\"quorum_met\":true}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"note\":\"x\\\"y\\n\""), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST_F(ObsTest, JournalEmbedsCounterDeltasWhenMetricsOn) {
  obs::set_metrics_enabled(true);
  const std::string path = ::testing::TempDir() + "obs_journal_metrics.jsonl";
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    obs::Registry::global().counter("test.delta").add(3);
    obs::JsonObject first;
    first.add("kind", "train_round").add("round", 0).add("ta", 0.1).add("asr", 0.9);
    journal.write(first);
    // No new activity: the second line must not repeat the stale delta.
    obs::JsonObject second;
    second.add("kind", "train_round").add("round", 1).add("ta", 0.2).add("asr", 0.8);
    journal.write(second);
  }
  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"test.delta\":3"), std::string::npos);
  EXPECT_EQ(line2.find("test.delta"), std::string::npos);
  std::remove(path.c_str());
}

// The load-bearing invariant: a telemetry-on run trains the byte-identical
// model as a telemetry-off run of the same seed.
TEST_F(ObsTest, TelemetryDoesNotPerturbSimulation) {
  const auto cfg = testutil::tiny_sim_config(77);

  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
  fl::Simulation plain(cfg);
  plain.run();
  const std::vector<float> want = plain.server().params();

  const std::string jpath = ::testing::TempDir() + "obs_determinism.jsonl";
  obs::Journal journal(jpath);
  ASSERT_TRUE(journal.ok());
  obs::set_ambient_journal(&journal);
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  fl::Simulation traced(cfg);
  traced.run();
  obs::set_ambient_journal(nullptr);
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);

  EXPECT_EQ(traced.server().params(), want);
  EXPECT_EQ(traced.test_accuracy(), plain.test_accuracy());
  EXPECT_EQ(journal.lines_written(), static_cast<std::size_t>(cfg.rounds));
  std::remove(jpath.c_str());
}
