// Tests of the obs telemetry subsystem: registry counters under concurrency,
// histogram bucket edges, span nesting and thread attribution, Chrome trace
// export, journal output, and the invariant that telemetry never perturbs a
// simulation's results.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "fl/simulation.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "test_util.h"

using namespace fedcleanse;

namespace {

// Honor FEDCLEANSE_METRICS / FEDCLEANSE_TRACE for the whole test binary: the
// TSAN CI job re-runs the concurrency suites with telemetry switched on so
// the sharded counters and span buffers are exercised under real 4-thread
// training rounds.
[[maybe_unused]] const bool g_env_init = [] {
  obs::init_from_env();
  return true;
}();

// Every test here toggles process-global telemetry state; restore it so the
// rest of the suite (determinism tests in particular) runs telemetry-off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_metrics_ = obs::metrics_enabled();
    was_tracing_ = obs::tracing_enabled();
  }
  void TearDown() override {
    obs::set_metrics_enabled(was_metrics_);
    obs::set_tracing_enabled(was_tracing_);
    obs::clear_trace_events();
    obs::set_ambient_journal(nullptr);
  }

 private:
  bool was_metrics_ = false;
  bool was_tracing_ = false;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST_F(ObsTest, CounterDisabledByDefaultCostsNothing) {
  obs::set_metrics_enabled(false);
  auto& c = obs::Registry::global().counter("test.disabled");
  const std::uint64_t before = c.value();
  c.add(100);
  c.inc();
  EXPECT_EQ(c.value(), before);
}

TEST_F(ObsTest, CounterExactUnderConcurrentIncrements) {
  obs::set_metrics_enabled(true);
  auto& c = obs::Registry::global().counter("test.concurrent");
  const std::uint64_t before = c.value();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 10000;
  common::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), before + kTasks * kPerTask);
}

TEST_F(ObsTest, RegistryReturnsSameMetricForSameName) {
  auto& a = obs::Registry::global().counter("test.same_name");
  auto& b = obs::Registry::global().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  auto& h1 = obs::Registry::global().histogram("test.same_hist", {1.0, 2.0});
  auto& h2 = obs::Registry::global().histogram("test.same_hist", {99.0});
  EXPECT_EQ(&h1, &h2);  // bounds fixed at first registration
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(ObsTest, HistogramBucketBoundariesAreUpperInclusive) {
  obs::set_metrics_enabled(true);
  auto& h = obs::Registry::global().histogram("test.edges", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == 1       -> bucket 0 (upper-inclusive)
  h.observe(1.5);    // (1, 10]    -> bucket 1
  h.observe(10.0);   // == 10      -> bucket 1
  h.observe(100.0);  // == 100     -> bucket 2
  h.observe(101.0);  // > last     -> overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 101.0);
}

TEST_F(ObsTest, GaugeHoldsLastValue) {
  obs::set_metrics_enabled(true);
  auto& g = obs::Registry::global().gauge("test.gauge");
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, ScrapeSeesRegisteredMetrics) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("test.scrape_me").add(7);
  const auto snap = obs::Registry::global().scrape();
  ASSERT_TRUE(snap.counters.count("test.scrape_me"));
  EXPECT_GE(snap.counters.at("test.scrape_me"), 7u);
}

TEST_F(ObsTest, SpanMeasuresWithTracingOff) {
  obs::set_tracing_enabled(false);
  double sink = 0.0;
  {
    obs::Span span("measured", "test", &sink);
  }
  EXPECT_GE(sink, 0.0);
  // No event was recorded.
  for (const auto& e : obs::trace_events_snapshot()) {
    EXPECT_STRNE(e.name, "measured");
  }
}

TEST_F(ObsTest, SpanNestingAndThreadAttribution) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);
  {
    obs::Span outer("outer", "test");
    outer.set_arg("round", 7);
    {
      obs::Span inner("inner", "test");
    }
  }
  common::ThreadPool pool(2);
  pool.submit([] { obs::Span span("on_worker", "test"); }).get();
  obs::set_tracing_enabled(false);

  const auto events = obs::trace_events_snapshot();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* worker = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
    if (std::string(e.name) == "on_worker") worker = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker, nullptr);
  // RAII nesting: the inner interval lies within the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  // Same thread for nested spans; the pool worker reports a different tid.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_EQ(outer->tid, common::thread_index());
  EXPECT_NE(worker->tid, outer->tid);
  // The argument survives.
  ASSERT_STREQ(outer->arg_key, "round");
  EXPECT_EQ(outer->arg_value, 7);
}

TEST_F(ObsTest, ChromeTraceFileIsValidJson) {
  obs::clear_trace_events();
  obs::set_tracing_enabled(true);
  {
    obs::Span span("exported", "test");
    span.set_arg("k", 42);
  }
  obs::set_tracing_enabled(false);
  const std::string path = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  const std::string body = read_file(path);
  // Structural checks: the trace viewer needs a traceEvents array of complete
  // ("X") events with microsecond timestamps.
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"exported\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"args\":{\"k\":42}"), std::string::npos);
  EXPECT_EQ(body.rfind("]}"), body.size() - 3);  // trailing newline
  std::remove(path.c_str());
}

TEST_F(ObsTest, JournalWritesOneJsonObjectPerLine) {
  obs::set_metrics_enabled(false);  // no "metrics" splice: lines are exact
  const std::string path = ::testing::TempDir() + "obs_journal.jsonl";
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    obs::JsonObject a;
    a.add("kind", "train_round").add("round", 0).add("ta", 0.5).add("quorum_met", true);
    journal.write(a);
    obs::JsonObject b;
    b.add("kind", "train_round").add("round", 1).add("ta", 0.625).add("note", "x\"y\n");
    journal.write(b);
    EXPECT_EQ(journal.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"kind\":\"train_round\",\"round\":0,\"ta\":0.5,\"quorum_met\":true}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"note\":\"x\\\"y\\n\""), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST_F(ObsTest, JournalEmbedsCounterDeltasWhenMetricsOn) {
  obs::set_metrics_enabled(true);
  const std::string path = ::testing::TempDir() + "obs_journal_metrics.jsonl";
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    obs::Registry::global().counter("test.delta").add(3);
    obs::JsonObject first;
    first.add("kind", "train_round").add("round", 0).add("ta", 0.1).add("asr", 0.9);
    journal.write(first);
    // No new activity: the second line must not repeat the stale delta.
    obs::JsonObject second;
    second.add("kind", "train_round").add("round", 1).add("ta", 0.2).add("asr", 0.8);
    journal.write(second);
  }
  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"test.delta\":3"), std::string::npos);
  EXPECT_EQ(line2.find("test.delta"), std::string::npos);
  std::remove(path.c_str());
}

// The load-bearing invariant: a telemetry-on run trains the byte-identical
// model as a telemetry-off run of the same seed.
TEST_F(ObsTest, TelemetryDoesNotPerturbSimulation) {
  const auto cfg = testutil::tiny_sim_config(77);

  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
  fl::Simulation plain(cfg);
  plain.run();
  const std::vector<float> want = plain.server().params();

  const std::string jpath = ::testing::TempDir() + "obs_determinism.jsonl";
  obs::Journal journal(jpath);
  ASSERT_TRUE(journal.ok());
  obs::set_ambient_journal(&journal);
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  fl::Simulation traced(cfg);
  traced.run();
  obs::set_ambient_journal(nullptr);
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);

  EXPECT_EQ(traced.server().params(), want);
  EXPECT_EQ(traced.test_accuracy(), plain.test_accuracy());
  EXPECT_EQ(journal.lines_written(), static_cast<std::size_t>(cfg.rounds));
  std::remove(jpath.c_str());
}

// --- fleet observability plane (DESIGN.md §17) -------------------------------

TEST_F(ObsTest, PrometheusTextExposesEveryMetricKind) {
  obs::Snapshot snap;
  snap.counters["fl.wire.bytes_sent"] = 12345;
  snap.gauges["fl.round"] = 7.0;
  obs::HistogramSample h;
  h.name = "round.seconds";
  h.bounds = {0.1, 1.0};
  h.counts = {2, 3, 1};  // <=0.1, (0.1,1], overflow
  h.total_count = 6;
  h.sum = 4.5;
  snap.histograms.push_back(h);
  const std::string text = obs::prometheus_text(snap);
  // Names are sanitized for the exposition format (dots -> underscores).
  EXPECT_NE(text.find("# TYPE fl_wire_bytes_sent counter"), std::string::npos);
  EXPECT_NE(text.find("fl_wire_bytes_sent 12345"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fl_round gauge"), std::string::npos);
  EXPECT_NE(text.find("fl_round 7"), std::string::npos);
  // Histogram buckets are cumulative and capped by an +Inf bucket equal to
  // the total count, per the Prometheus convention.
  EXPECT_NE(text.find("round_seconds_bucket{le=\"0.1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("round_seconds_bucket{le=\"1\"} 5"), std::string::npos);
  EXPECT_NE(text.find("round_seconds_bucket{le=\"+Inf\"} 6"), std::string::npos);
  EXPECT_NE(text.find("round_seconds_count 6"), std::string::npos);
  EXPECT_NE(text.find("round_seconds_sum 4.5"), std::string::npos);
}

namespace {

// Minimal HTTP GET over a blocking loopback socket: the test plays the role
// curl / a Prometheus scraper plays in production.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

}  // namespace

TEST_F(ObsTest, ExporterServesScrapesDuringConcurrentWrites) {
  obs::set_metrics_enabled(true);
  obs::MetricsExporter exporter(0);  // ephemeral port
  ASSERT_TRUE(exporter.ok());
  ASSERT_NE(exporter.port(), 0);
  exporter.set_status_provider([] { return std::string("{\"role\":\"test\"}"); });

  // Writers hammer a counter while scrapes race them: every response must be
  // a complete, parseable exposition (the scrape-during-write contract).
  auto& c = obs::Registry::global().counter("test.scrape_race");
  const std::uint64_t before = c.value();
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) c.inc();
    });
  }
  for (int i = 0; i < 10; ++i) {
    const std::string resp = http_get(exporter.port(), "/metricsz");
    ASSERT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(resp.find("test_scrape_race"), std::string::npos);
  }
  for (auto& t : writers) t.join();

  const std::string final_scrape = http_get(exporter.port(), "/metricsz");
  std::ostringstream want;
  want << "test_scrape_race " << (before + kWriters * kPerWriter);
  EXPECT_NE(final_scrape.find(want.str()), std::string::npos);

  const std::string status = http_get(exporter.port(), "/statusz");
  EXPECT_NE(status.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(status.find("{\"role\":\"test\"}"), std::string::npos);

  EXPECT_NE(http_get(exporter.port(), "/nope").find("HTTP/1.1 404"), std::string::npos);
}

TEST_F(ObsTest, ExporterToleratesBindFailure) {
  obs::MetricsExporter first(0);
  ASSERT_TRUE(first.ok());
  // Binding the same port again must fail inert, not throw or abort: a
  // telemetry misconfiguration never kills a run.
  obs::MetricsExporter second(first.port());
  EXPECT_FALSE(second.ok());
}

// Keep this LAST in the file: run identity is process-global and sticky, and
// every Journal constructed after it is set opens with an identity line —
// the earlier journal tests count exact lines.
TEST_F(ObsTest, JournalOpensWithIdentityLineOnceIdentitySet) {
  ASSERT_FALSE(obs::run_identity_set());
  obs::set_metrics_enabled(false);  // the open line is identity-, not metrics-gated
  const char* argv0[] = {"prog", "--flag", "v"};
  const char* argv1[] = {"prog", "--flagv"};
  // '\0' separators: joining must not conflate {"--flag","v"} with {"--flagv"}.
  EXPECT_NE(obs::hash_argv(3, argv0), obs::hash_argv(2, argv1));
  obs::set_run_identity("test-role", obs::hash_argv(3, argv0), "scalar");
  ASSERT_TRUE(obs::run_identity_set());

  const std::string path = ::testing::TempDir() + "obs_journal_open.jsonl";
  {
    obs::Journal journal(path);
    ASSERT_TRUE(journal.ok());
    obs::JsonObject row;
    row.add("kind", "train_round").add("round", 0);
    journal.write(row);
    EXPECT_EQ(journal.lines_written(), 2u);  // open + the row
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"kind\":\"open\""), std::string::npos);
  EXPECT_NE(line.find("\"role\":\"test-role\""), std::string::npos);
  EXPECT_NE(line.find("\"cpu\":\"scalar\""), std::string::npos);
  EXPECT_NE(line.find("\"pid\":"), std::string::npos);
  EXPECT_NE(line.find("\"argv_hash\":"), std::string::npos);
  EXPECT_NE(line.find("\"trace_anchor_unix_ns\":"), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"kind\":\"train_round\""), std::string::npos);
  std::remove(path.c_str());
}
