// Bit-exactness of the parallel execution paths: a threaded Simulation must
// produce the same global model float-for-float as a serial one, and the
// batch-parallel tensor kernels must match their serial runs exactly. These
// are the guarantees that let n_threads be a pure performance knob.
#include <gtest/gtest.h>

#include <cstdlib>

#include "comm/faulty_network.h"
#include "common/threadpool.h"
#include "defense/pipeline.h"
#include "fl/simulation.h"
#include "tensor/ops.h"
#include "test_util.h"

using namespace fedcleanse;

namespace {

// Guard that installs a pool as the ambient context and restores the previous
// one on scope exit (tests run inside a process that may hold other pools).
class AmbientPoolGuard {
 public:
  explicit AmbientPoolGuard(common::ThreadPool* pool)
      : previous_(common::ambient_pool()) {
    common::set_ambient_pool(pool);
  }
  ~AmbientPoolGuard() { common::set_ambient_pool(previous_); }

 private:
  common::ThreadPool* previous_;
};

fl::SimulationConfig threaded_config(int n_threads) {
  auto cfg = testutil::tiny_sim_config(77);
  cfg.rounds = 3;
  cfg.n_threads = n_threads;
  return cfg;
}

}  // namespace

TEST(Determinism, ThreadedSimulationMatchesSerialBitwise) {
  std::vector<float> serial_params;
  std::vector<fl::RoundRecord> serial_history;
  {
    fl::Simulation sim(threaded_config(1));
    sim.run(true);
    serial_params = sim.server().params();
    serial_history = sim.history();
  }
  fl::Simulation sim(threaded_config(4));
  EXPECT_EQ(sim.pool().size(), 4u);
  sim.run(true);
  const auto threaded_params = sim.server().params();

  ASSERT_EQ(threaded_params.size(), serial_params.size());
  for (std::size_t i = 0; i < serial_params.size(); ++i) {
    ASSERT_EQ(threaded_params[i], serial_params[i]) << "param " << i << " diverged";
  }
  ASSERT_EQ(sim.history().size(), serial_history.size());
  for (std::size_t r = 0; r < serial_history.size(); ++r) {
    EXPECT_EQ(sim.history()[r].test_acc, serial_history[r].test_acc);
    EXPECT_EQ(sim.history()[r].attack_acc, serial_history[r].attack_acc);
  }
}

TEST(Determinism, ThreadedDefensePipelineMatchesSerial) {
  defense::DefenseConfig dcfg;
  dcfg.finetune.max_rounds = 2;
  auto run_one = [&](int n_threads) {
    fl::Simulation sim(threaded_config(n_threads));
    sim.run(false);
    auto report = defense::run_defense(sim, dcfg);
    return std::make_pair(sim.server().params(), report.after_aw);
  };
  auto [serial_params, serial_metrics] = run_one(1);
  auto [threaded_params, threaded_metrics] = run_one(4);
  EXPECT_EQ(threaded_params, serial_params);
  EXPECT_EQ(threaded_metrics.test_acc, serial_metrics.test_acc);
  EXPECT_EQ(threaded_metrics.attack_acc, serial_metrics.attack_acc);
}

TEST(Determinism, Conv2dForwardParallelMatchesSerialExactly) {
  common::Rng rng(3);
  auto x = tensor::Tensor::randn({16, 3, 12, 12}, rng);
  auto w = tensor::Tensor::randn({8, 3, 3, 3}, rng, 0.0f, 0.2f);
  auto b = tensor::Tensor::randn({8}, rng);
  tensor::Conv2dSpec spec{1, 1};

  auto serial = [&] {
    AmbientPoolGuard serial_guard(nullptr);
    return tensor::conv2d_forward(x, w, b, spec);
  }();

  common::ThreadPool pool(4);
  AmbientPoolGuard guard(&pool);
  auto threaded = tensor::conv2d_forward(x, w, b, spec);

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(threaded.data()[i], serial.data()[i]) << "output " << i;
  }
}

TEST(Determinism, Conv2dBackwardParallelMatchesSerialExactly) {
  common::Rng rng(5);
  auto x = tensor::Tensor::randn({16, 3, 12, 12}, rng);
  auto w = tensor::Tensor::randn({8, 3, 3, 3}, rng, 0.0f, 0.2f);
  tensor::Conv2dSpec spec{2, 1};
  auto y_shape = tensor::conv2d_forward(x, w, tensor::Tensor::zeros({8}), spec).shape();
  auto grad_out = tensor::Tensor::randn(y_shape, rng);

  auto serial = [&] {
    AmbientPoolGuard serial_guard(nullptr);
    return tensor::conv2d_backward(x, w, grad_out, spec);
  }();

  common::ThreadPool pool(4);
  AmbientPoolGuard guard(&pool);
  auto threaded = tensor::conv2d_backward(x, w, grad_out, spec);

  for (std::size_t i = 0; i < serial.grad_input.size(); ++i) {
    ASSERT_EQ(threaded.grad_input.data()[i], serial.grad_input.data()[i]);
  }
  for (std::size_t i = 0; i < serial.grad_weight.size(); ++i) {
    ASSERT_EQ(threaded.grad_weight.data()[i], serial.grad_weight.data()[i]);
  }
  for (std::size_t i = 0; i < serial.grad_bias.size(); ++i) {
    ASSERT_EQ(threaded.grad_bias.data()[i], serial.grad_bias.data()[i]);
  }
}

TEST(Determinism, MatmulParallelMatchesSerialExactly) {
  common::Rng rng(9);
  // Big enough to cross the row-parallel threshold (m·k·n ≥ 2^20).
  auto a = tensor::Tensor::randn({128, 96}, rng);
  auto b = tensor::Tensor::randn({96, 128}, rng);

  auto serial = [&] {
    AmbientPoolGuard serial_guard(nullptr);
    return tensor::matmul(a, b);
  }();

  common::ThreadPool pool(4);
  AmbientPoolGuard guard(&pool);
  auto threaded = tensor::matmul(a, b);

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(threaded.data()[i], serial.data()[i]) << "element " << i;
  }
}

TEST(Determinism, PackedGemmTransposeVariantsAreThreadCountInvariant) {
  // The packed kernel parallelizes over MC row blocks; every transpose
  // variant must produce the same bits at any pool size because each C
  // element's accumulation order is fixed by the blocking constants alone.
  common::Rng rng(21);
  auto x = tensor::Tensor::randn({160, 128}, rng);   // m·k·n crosses 2^20
  auto y = tensor::Tensor::randn({128, 160}, rng);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const auto& a = ta ? y : x;
      const auto& b = tb ? x : y;
      auto serial = [&] {
        AmbientPoolGuard serial_guard(nullptr);
        return tensor::matmul_t(a, ta, b, tb);
      }();
      common::ThreadPool pool(4);
      AmbientPoolGuard guard(&pool);
      auto threaded = tensor::matmul_t(a, ta, b, tb);
      ASSERT_EQ(threaded.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(threaded.data()[i], serial.data()[i])
            << "ta=" << ta << " tb=" << tb << " element " << i;
      }
    }
  }
}

TEST(Determinism, EnvVarOverridesConfiguredThreads) {
  ASSERT_EQ(setenv("FEDCLEANSE_THREADS", "3", 1), 0);
  EXPECT_EQ(common::resolve_n_threads(8), 3u);
  ASSERT_EQ(setenv("FEDCLEANSE_THREADS", "0", 1), 0);
  EXPECT_GE(common::resolve_n_threads(8), 1u);  // 0 → hardware concurrency
  ASSERT_EQ(unsetenv("FEDCLEANSE_THREADS"), 0);
  EXPECT_EQ(common::resolve_n_threads(8), 8u);
  EXPECT_GE(common::resolve_n_threads(0), 1u);
}

TEST(Determinism, ZeroFaultWrapperMatchesPlainNetworkBitwise) {
  // Installing the FaultyNetwork wrapper with every rate at zero must not
  // change a single bit: fault randomness lives in its own seed stream, so
  // the data/init/selection draws are untouched.
  fl::Simulation plain(threaded_config(1));
  plain.run(true);

  auto cfg = threaded_config(1);
  cfg.fault.force_faulty_network = true;
  fl::Simulation wrapped(cfg);
  ASSERT_NE(wrapped.faulty_network(), nullptr);
  wrapped.run(true);

  EXPECT_EQ(wrapped.server().params(), plain.server().params());
  ASSERT_EQ(wrapped.history().size(), plain.history().size());
  for (std::size_t r = 0; r < plain.history().size(); ++r) {
    EXPECT_EQ(wrapped.history()[r].test_acc, plain.history()[r].test_acc);
    EXPECT_EQ(wrapped.history()[r].attack_acc, plain.history()[r].attack_acc);
    EXPECT_EQ(wrapped.history()[r].n_valid, plain.history()[r].n_valid);
    EXPECT_TRUE(wrapped.history()[r].quorum_met);
  }
}

TEST(Determinism, FaultInjectedRunIsThreadCountInvariant) {
  // Fault fates are drawn from per-link streams keyed by send order, never by
  // thread scheduling — so even a lossy run is bit-identical at any pool size.
  auto make_cfg = [](int n_threads) {
    auto cfg = threaded_config(n_threads);
    cfg.rounds = 4;
    cfg.fault.dropout_rate = 0.25;
    cfg.fault.corrupt_rate = 0.10;
    cfg.fault.duplicate_rate = 0.05;
    cfg.fault.recv_timeout_ms = 5;
    return cfg;
  };
  fl::Simulation serial(make_cfg(1));
  serial.run(true);
  fl::Simulation threaded(make_cfg(4));
  threaded.run(true);

  EXPECT_EQ(threaded.server().params(), serial.server().params());
  ASSERT_EQ(threaded.history().size(), serial.history().size());
  for (std::size_t r = 0; r < serial.history().size(); ++r) {
    EXPECT_EQ(threaded.history()[r].n_valid, serial.history()[r].n_valid);
    EXPECT_EQ(threaded.history()[r].n_dropped, serial.history()[r].n_dropped);
    EXPECT_EQ(threaded.history()[r].n_corrupted, serial.history()[r].n_corrupted);
    EXPECT_EQ(threaded.history()[r].n_retried, serial.history()[r].n_retried);
    EXPECT_EQ(threaded.history()[r].test_acc, serial.history()[r].test_acc);
    EXPECT_EQ(threaded.history()[r].attack_acc, serial.history()[r].attack_acc);
  }
  const auto a = serial.faulty_network()->stats();
  const auto b = threaded.faulty_network()->stats();
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.duplicated, b.duplicated);
}
