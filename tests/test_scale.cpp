// Million-client scale machinery: streaming aggregation equivalence against
// the materialized reference path, virtual-client determinism and residency
// bounds, and the peak-RSS probe (DESIGN.md §14).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/serialize.h"
#include "common/sysinfo.h"
#include "defense/majority_vote.h"
#include "defense/pipeline.h"
#include "defense/rank_aggregation.h"
#include "fl/aggregation.h"
#include "fl/simulation.h"
#include "fl/streaming.h"
#include "test_util.h"

using namespace fedcleanse;
using namespace fedcleanse::fl;

namespace {

std::vector<std::vector<float>> random_updates(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::vector<float>> updates(n, std::vector<float>(dim));
  for (auto& u : updates) {
    for (auto& v : u) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return updates;
}

SimulationConfig virtual_config(std::uint64_t seed = 51) {
  auto cfg = testutil::tiny_sim_config(seed);
  cfg.n_clients = 64;
  cfg.clients_per_round = 8;
  cfg.samples_per_client = 4;
  cfg.residency = ClientResidency::kVirtual;
  cfg.defense_clients = 8;
  cfg.rounds = 3;
  return cfg;
}

void expect_same_run(const SimulationConfig& base, int n_threads) {
  auto streaming_cfg = base;
  streaming_cfg.buffered_aggregation = false;
  streaming_cfg.n_threads = n_threads;
  auto buffered_cfg = base;
  buffered_cfg.buffered_aggregation = true;
  buffered_cfg.n_threads = n_threads;

  Simulation streaming(streaming_cfg);
  Simulation buffered(buffered_cfg);
  streaming.run(true);
  buffered.run(true);
  EXPECT_EQ(streaming.server().params(), buffered.server().params())
      << "threads=" << n_threads;
  EXPECT_EQ(streaming.history(), buffered.history()) << "threads=" << n_threads;
  EXPECT_EQ(streaming.network().total_bytes(), buffered.network().total_bytes())
      << "threads=" << n_threads;
}

}  // namespace

// --- streaming mean vs materialized mean ------------------------------------

TEST(StreamingMean, MatchesMaterializedMeanInOrder) {
  const auto updates = random_updates(7, 129, 3);
  StreamingMeanAccumulator acc(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) acc.accept(i, updates[i]);
  EXPECT_EQ(acc.buffered(), 0u);  // in-order arrivals never buffer
  EXPECT_EQ(acc.finalize(), mean_update(updates));
}

TEST(StreamingMean, MatchesMaterializedMeanOutOfOrderWithGaps) {
  const auto updates = random_updates(5, 64, 4);
  // Positions 1 and 4 never report; survivors arrive out of order.
  StreamingMeanAccumulator acc(updates.size());
  acc.accept(3, updates[3]);
  acc.accept(0, updates[0]);
  acc.accept(2, updates[2]);
  // The materialized exchange compacts survivors in position order.
  const std::vector<std::vector<float>> compacted{updates[0], updates[2], updates[3]};
  EXPECT_EQ(acc.finalize(), mean_update(compacted));
}

TEST(StreamingMean, RejectsDuplicateAndOutOfRangePositions) {
  StreamingMeanAccumulator acc(3);
  acc.accept(1, {1.0f});
  EXPECT_THROW(acc.accept(1, {2.0f}), Error);
  EXPECT_THROW(acc.accept(3, {2.0f}), Error);
}

TEST(StreamingAggregator, RetainCompactsInPositionOrder) {
  const auto updates = random_updates(4, 16, 5);
  StreamingAggregator agg(StreamingAggregator::Mode::kRetain, updates.size());
  agg.accept(2, updates[2]);
  agg.accept(0, updates[0]);
  agg.accept(3, updates[3]);
  const std::vector<std::vector<float>> expected{updates[0], updates[2], updates[3]};
  EXPECT_EQ(agg.finalize_retained(), expected);
}

TEST(StreamingAggregator, ModeSelection) {
  EXPECT_EQ(StreamingAggregator::mode_for(AggregatorKind::kFedAvg, false),
            StreamingAggregator::Mode::kFold);
  EXPECT_EQ(StreamingAggregator::mode_for(AggregatorKind::kFedAvg, true),
            StreamingAggregator::Mode::kRetain);
  EXPECT_EQ(StreamingAggregator::mode_for(AggregatorKind::kMedian, false),
            StreamingAggregator::Mode::kRetain);
}

// --- streaming rank/vote histograms vs materialized aggregation --------------

TEST(StreamingRanks, MatchesMaterializedAggregation) {
  const int units = 6;
  std::vector<std::vector<std::uint32_t>> reports{
      {1, 2, 3, 4, 5, 6},
      {6, 5, 4, 3, 2, 1},
      {2, 1, 4, 3, 6, 5},
      {1, 1, 1, 1, 1, 1},  // invalid: not a permutation
      {1, 2, 3},           // invalid: wrong width
  };
  defense::StreamingRankAggregator agg(units);
  for (const auto& r : reports) agg.accept(r);
  EXPECT_EQ(agg.valid(), 3u);
  EXPECT_EQ(agg.mean_ranks(), defense::rap_aggregate(reports, units));
  EXPECT_EQ(agg.pruning_order(), defense::rap_pruning_order(reports, units));
}

TEST(StreamingVotes, MatchesMaterializedAggregation) {
  const int units = 6;
  const double rate = 0.5;
  std::vector<std::vector<std::uint8_t>> ballots{
      {1, 1, 1, 0, 0, 0},
      {0, 1, 1, 1, 0, 0},
      {1, 1, 1, 1, 0, 0},  // invalid: over quota
      {1, 0, 2, 0, 1, 0},  // invalid: not 0/1
      {0, 0, 0, 1, 1, 1},
  };
  defense::StreamingVoteAggregator agg(units, rate);
  for (const auto& b : ballots) agg.accept(b);
  EXPECT_EQ(agg.valid(), 3u);
  EXPECT_EQ(agg.shares(), defense::mvp_aggregate(ballots, units, rate));
  EXPECT_EQ(agg.pruning_order(), defense::mvp_pruning_order(ballots, units, rate));
}

TEST(StreamingRanks, ThrowsWithoutValidReports) {
  defense::StreamingRankAggregator ranks(4);
  EXPECT_THROW(ranks.mean_ranks(), ConfigError);
  defense::StreamingVoteAggregator votes(4, 0.5);
  EXPECT_THROW(votes.shares(), ConfigError);
}

// --- whole-run equivalence: streaming vs buffered ----------------------------

TEST(StreamingEquivalence, FedAvgMatchesBufferedAcrossThreadCounts) {
  auto cfg = testutil::tiny_sim_config(61);
  cfg.rounds = 3;
  for (int threads : {1, 2, 4}) expect_same_run(cfg, threads);
}

TEST(StreamingEquivalence, HoldsOnLossyWire) {
  auto cfg = testutil::tiny_sim_config(62);
  cfg.rounds = 3;
  cfg.fault.dropout_rate = 0.15;
  cfg.fault.delay_rate = 0.10;
  cfg.fault.corrupt_rate = 0.05;
  for (int threads : {1, 4}) expect_same_run(cfg, threads);
}

TEST(StreamingEquivalence, ReputationWeightingMatches) {
  auto cfg = testutil::tiny_sim_config(63);
  cfg.rounds = 3;
  cfg.server.use_reputation = true;
  auto buffered_cfg = cfg;
  buffered_cfg.buffered_aggregation = true;
  Simulation streaming(cfg);
  Simulation buffered(buffered_cfg);
  streaming.run(false);
  buffered.run(false);
  EXPECT_EQ(streaming.server().params(), buffered.server().params());
  ASSERT_NE(streaming.server().reputation(), nullptr);
  EXPECT_EQ(streaming.server().reputation()->reputations(),
            buffered.server().reputation()->reputations());
}

TEST(StreamingEquivalence, RobustAggregatorMatches) {
  auto cfg = testutil::tiny_sim_config(64);
  cfg.rounds = 2;
  cfg.server.aggregator = AggregatorKind::kMedian;
  expect_same_run(cfg, 2);
}

TEST(StreamingEquivalence, FederatedPruneSetMatchesMaterializedReference) {
  // Same seed, both pruning methods: the streamed FP scan must select the
  // same prune set the buffered rap/mvp path would have.
  for (auto method : {defense::PruneMethod::kRAP, defense::PruneMethod::kMVP}) {
    auto cfg = testutil::tiny_sim_config(65);
    cfg.rounds = 2;
    Simulation streaming(cfg);
    Simulation reference(cfg);
    streaming.run(false);
    reference.run(false);
    ASSERT_EQ(streaming.server().params(), reference.server().params());

    defense::DefenseConfig dcfg;
    dcfg.method = method;
    auto order = defense::federated_pruning_order(streaming, dcfg);

    // Materialized reference: collect every report by hand, aggregate with
    // the classic buffered functions.
    auto& server = reference.server();
    const auto clients = reference.all_client_ids();
    const int units =
        server.model().net.layer(server.model().last_conv_index).prunable_units();
    std::vector<int> expected;
    if (method == defense::PruneMethod::kRAP) {
      std::vector<std::vector<std::uint32_t>> reports;
      server.request_ranks(clients, 2000);
      reference.dispatch_clients(clients);
      for (auto& reply : server.collect_ranks(clients, 2000)) {
        ASSERT_TRUE(reply.has_value());
        reports.push_back(std::move(*reply));
      }
      expected = defense::rap_pruning_order(reports, units);
    } else {
      std::vector<std::vector<std::uint8_t>> ballots;
      server.request_votes(clients, dcfg.vote_prune_rate, 2001);
      reference.dispatch_clients(clients);
      for (auto& reply : server.collect_votes(clients, 2001)) {
        ASSERT_TRUE(reply.has_value());
        ballots.push_back(std::move(*reply));
      }
      expected = defense::mvp_pruning_order(ballots, units, dcfg.vote_prune_rate);
    }
    EXPECT_EQ(order, expected);
  }
}

TEST(StreamingEquivalence, SurvivesMidRunCheckpointResume) {
  auto cfg = testutil::tiny_sim_config(66);
  cfg.rounds = 4;

  Simulation straight(cfg);
  straight.run(false);

  Simulation first_half(cfg);
  first_half.run_round(0);
  first_half.run_round(1);
  common::ByteWriter w;
  first_half.save_state(w);
  const auto bytes = w.take();

  Simulation resumed(cfg);
  common::ByteReader r(bytes);
  resumed.restore_state(r);
  resumed.run_round(2);
  resumed.run_round(3);
  EXPECT_EQ(resumed.server().params(), straight.server().params());
}

// --- virtual clients ---------------------------------------------------------

TEST(VirtualClients, AutoStaysMaterializedForSmallPopulations) {
  Simulation sim(testutil::tiny_sim_config(71));
  EXPECT_FALSE(sim.virtual_clients());
  EXPECT_EQ(sim.resident_clients(), 4u);
}

TEST(VirtualClients, RunIsDeterministicAndResidencyBounded) {
  auto cfg = virtual_config(72);
  Simulation a(cfg);
  Simulation b(cfg);
  EXPECT_TRUE(a.virtual_clients());
  EXPECT_EQ(a.n_clients(), 64);
  a.run(true);
  b.run(true);
  EXPECT_EQ(a.server().params(), b.server().params());
  EXPECT_EQ(a.history(), b.history());
  // Default capacity: max(2·clients_per_round, defense_clients) = 16 ≪ 64.
  EXPECT_LE(a.resident_clients(), 16u);
  EXPECT_GT(a.resident_clients(), 0u);
}

TEST(VirtualClients, AttackerRoleAndVictimDataAreDerived) {
  auto cfg = virtual_config(73);
  Simulation sim(cfg);
  EXPECT_TRUE(sim.client(0).malicious());
  EXPECT_FALSE(sim.client(1).malicious());
  EXPECT_FALSE(sim.client(0).local_data().indices_of_label(9).empty());
}

TEST(VirtualClients, StateSurvivesEviction) {
  auto cfg = virtual_config(74);
  Simulation sim(cfg);
  auto& probe = sim.client(50);
  const std::size_t data_size = probe.local_data().size();
  const int first_label = probe.local_data().label(0);
  probe.set_lr(0.0123);

  // Fill the slab past capacity with other clients; 50 gets evicted.
  std::vector<int> others;
  for (int c = 0; c < 20; ++c) others.push_back(c);
  sim.ensure_resident(others);
  EXPECT_LE(sim.resident_clients(), 21u);

  // Re-materialized client 50: same derived dataset, ledger-restored lr.
  auto& again = sim.client(50);
  EXPECT_EQ(again.local_data().size(), data_size);
  EXPECT_EQ(again.local_data().label(0), first_label);
  EXPECT_NEAR(again.lr(), 0.0123, 1e-15);
}

TEST(VirtualClients, CommitteeIsStridedSortedAndSized) {
  auto cfg = virtual_config(75);
  Simulation sim(cfg);
  const auto committee = sim.protocol_client_ids();
  ASSERT_EQ(committee.size(), 8u);
  EXPECT_TRUE(std::is_sorted(committee.begin(), committee.end()));
  EXPECT_EQ(std::set<int>(committee.begin(), committee.end()).size(), committee.size());
  EXPECT_EQ(committee.front(), 0);
  EXPECT_LT(committee.back(), 64);
}

TEST(VirtualClients, ResumeIsBitIdentical) {
  auto cfg = virtual_config(76);
  Simulation straight(cfg);
  straight.run(false);

  Simulation first_half(cfg);
  first_half.run_round(0);
  first_half.run_round(1);
  common::ByteWriter w;
  first_half.save_state(w);
  const auto bytes = w.take();

  Simulation resumed(cfg);
  common::ByteReader r(bytes);
  resumed.restore_state(r);
  resumed.run_round(2);
  EXPECT_EQ(resumed.server().params(), straight.server().params());
}

TEST(VirtualClients, ResidencyMismatchOnRestoreThrows) {
  auto cfg = virtual_config(77);
  Simulation sim(cfg);
  sim.run_round(0);
  common::ByteWriter w;
  sim.save_state(w);
  const auto bytes = w.take();

  auto materialized_cfg = cfg;
  materialized_cfg.residency = ClientResidency::kMaterialized;
  Simulation other(materialized_cfg);
  common::ByteReader r(bytes);
  EXPECT_THROW(other.restore_state(r), CheckpointError);
}

TEST(VirtualClients, RequiresSampledRounds) {
  auto cfg = virtual_config(78);
  cfg.clients_per_round = 0;
  EXPECT_THROW(Simulation sim(cfg), Error);
}

TEST(VirtualClients, DefensePipelineRunsOnCommittee) {
  auto cfg = virtual_config(79);
  Simulation sim(cfg);
  sim.run(false);
  defense::DefenseConfig dcfg;
  dcfg.finetune.max_rounds = 1;
  auto report = defense::run_defense(sim, dcfg);
  EXPECT_GE(report.neurons_pruned, 0);
  EXPECT_GE(report.after_aw.test_acc, 0.0);
  // The defense only ever touched the committee-bounded slab.
  EXPECT_LE(sim.resident_clients(), 16u);
}

// --- peak RSS ----------------------------------------------------------------

TEST(PeakRss, ProbeReportsAndIsMonotone) {
  const std::size_t before = common::peak_rss_bytes();
  EXPECT_GT(before, 0u);
  {
    std::vector<char> ballast(32u << 20, 1);
    volatile char sink = ballast[ballast.size() / 2];
    (void)sink;
  }
  const std::size_t after = common::peak_rss_bytes();
  EXPECT_GE(after, before);
  EXPECT_GT(common::current_rss_bytes(), 0u);
}
