#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/threadpool.h"

using fedcleanse::common::ThreadPool;

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  auto a = pool.submit([] { return 1; });
  auto b = pool.submit([] { return 2; });
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 200; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 20100);
}

TEST(ThreadPool, ParallelForDrainsAllWorkBeforeThrowing) {
  // The body is borrowed from the caller's frame; parallel_for must not
  // rethrow while straggler tasks could still call it. An early index throws
  // while later (slow) chunks are still queued — no body may observe the
  // post-return state.
  ThreadPool pool(3);
  std::atomic<bool> returned{false};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   EXPECT_FALSE(returned.load());
                                   if (i == 0) throw std::runtime_error("boom");
                                   std::this_thread::sleep_for(std::chrono::milliseconds(1));
                                 }),
               std::runtime_error);
  returned.store(true);
}

TEST(ThreadPool, ReusableAcrossManySubmitWaves) {
  ThreadPool pool(4);
  for (int wave = 0; wave < 100; ++wave) {
    std::atomic<int> count{0};
    pool.parallel_for(32, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 32);
  }
  // A wave that throws must not poison subsequent waves.
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // parallel_for from a worker of the same pool must run inline: re-submitting
  // and blocking would deadlock once all workers wait on each other.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, OnWorkerThreadIsPoolSpecific) {
  ThreadPool a(2), b(2);
  EXPECT_FALSE(a.on_worker_thread());
  a.submit([&] {
     EXPECT_TRUE(a.on_worker_thread());
     EXPECT_FALSE(b.on_worker_thread());
   }).get();
}

TEST(AmbientPool, InstallAndClear) {
  using fedcleanse::common::ambient_parallel_for;
  using fedcleanse::common::ambient_pool;
  using fedcleanse::common::set_ambient_pool;
  ASSERT_EQ(ambient_pool(), nullptr);

  // Serial fallback with no pool installed.
  std::vector<int> hits(16, 0);
  ambient_parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);

  {
    ThreadPool pool(3);
    set_ambient_pool(&pool);
    EXPECT_EQ(ambient_pool(), &pool);
    std::vector<std::atomic<int>> atomic_hits(64);
    ambient_parallel_for(atomic_hits.size(), [&](std::size_t i) { atomic_hits[i]++; });
    for (auto& h : atomic_hits) EXPECT_EQ(h.load(), 1);
    set_ambient_pool(nullptr);
  }
  EXPECT_EQ(ambient_pool(), nullptr);
}
