#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "common/threadpool.h"

using fedcleanse::common::ThreadPool;

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  auto a = pool.submit([] { return 1; });
  auto b = pool.submit([] { return 2; });
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 200; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 20100);
}
