#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "tensor/ops.h"
#include "test_util.h"

using namespace fedcleanse;
using namespace fedcleanse::nn;
using fedcleanse::common::Rng;

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  tensor::Tensor x(tensor::Shape{4}, {-1, 0, 2, -3});
  auto y = relu.forward(x);
  EXPECT_EQ(y.storage(), (std::vector<float>{0, 0, 2, 0}));
}

TEST(ReLULayer, BackwardMasksByInputSign) {
  ReLU relu;
  tensor::Tensor x(tensor::Shape{4}, {-1, 0, 2, 3});
  relu.forward(x);
  tensor::Tensor gy(tensor::Shape{4}, {1, 1, 1, 1});
  auto gx = relu.backward(gy);
  EXPECT_EQ(gx.storage(), (std::vector<float>{0, 0, 1, 1}));
}

TEST(FlattenLayer, RoundTrip) {
  Flatten flatten;
  tensor::Tensor x(tensor::Shape{2, 3, 2, 2});
  auto y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 12}));
  auto gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(LinearLayer, ForwardHandComputed) {
  Rng rng(1);
  Linear linear(2, 2, rng);
  linear.weight().storage() = {1, 2, 3, 4};  // [out, in]
  linear.bias().storage() = {10, 20};
  tensor::Tensor x(tensor::Shape{1, 2}, {1, 1});
  auto y = linear.forward(x);
  EXPECT_EQ(y.storage(), (std::vector<float>{13, 27}));
}

TEST(LinearLayer, RejectsWrongInputWidth) {
  Rng rng(1);
  Linear linear(3, 2, rng);
  tensor::Tensor x(tensor::Shape{1, 4});
  EXPECT_THROW(linear.forward(x), Error);
}

TEST(LinearLayer, PrunedUnitOutputsZero) {
  Rng rng(2);
  Linear linear(3, 4, rng);
  linear.set_unit_active(2, false);
  tensor::Tensor x(tensor::Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  auto y = linear.forward(x);
  EXPECT_EQ(y.at(0, 2), 0.0f);
  EXPECT_EQ(y.at(1, 2), 0.0f);
  EXPECT_NE(y.at(0, 0), 0.0f);
}

TEST(LinearLayer, PrunedUnitZeroesWeightsAndGradients) {
  Rng rng(2);
  Linear linear(3, 4, rng);
  linear.set_unit_active(1, false);
  // Weights of the pruned row are zero.
  for (int j = 0; j < 3; ++j) EXPECT_EQ(linear.weight().at(1, j), 0.0f);
  EXPECT_EQ(linear.bias().at(1), 0.0f);
  // Backward gives the row no gradient.
  tensor::Tensor x(tensor::Shape{1, 3}, {1, 1, 1});
  linear.forward(x);
  tensor::Tensor gy(tensor::Shape{1, 4}, {1, 1, 1, 1});
  linear.backward(gy);
  auto params = linear.params();
  for (int j = 0; j < 3; ++j) EXPECT_EQ(params[0].grad->at(1, j), 0.0f);
  EXPECT_EQ(params[1].grad->at(1), 0.0f);
}

TEST(Conv2dLayer, PrunedChannelOutputsZero) {
  Rng rng(3);
  Conv2d conv(2, 3, 3, rng, 1, 1);
  conv.set_unit_active(1, false);
  auto x = tensor::Tensor::randn(tensor::Shape{1, 2, 5, 5}, rng);
  auto y = conv.forward(x);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_EQ(y.at(0, 1, i, j), 0.0f);
  }
}

TEST(Conv2dLayer, PrunedChannelGradientsStayExactlyZero) {
  // The packed GEMM skips pruned channels via its row/k masks rather than
  // zeroing afterwards; outputs and every gradient slot of a pruned channel
  // must still be exact (bitwise) zeros, even when the incoming grad_out
  // carries garbage in the pruned channel.
  Rng rng(6);
  // 10 channels: prunes land mid register-strip and at the strip edge.
  Conv2d conv(3, 10, 3, rng, 1, 1);
  conv.set_unit_active(2, false);
  conv.set_unit_active(9, false);
  auto x = tensor::Tensor::randn(tensor::Shape{2, 3, 6, 6}, rng);
  auto y = conv.forward(x);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        EXPECT_EQ(y.at(s, 2, i, j), 0.0f);
        EXPECT_EQ(y.at(s, 9, i, j), 0.0f);
      }
    }
  }

  auto gy = tensor::Tensor::randn(y.shape(), rng);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) gy.at(s, 2, i, j) = 123.0f;  // must be ignored
    }
  }
  auto gx = conv.backward(gy);
  auto params = conv.params();
  for (int oc : {2, 9}) {
    for (int ic = 0; ic < 3; ++ic) {
      for (int u = 0; u < 3; ++u) {
        for (int v = 0; v < 3; ++v) {
          EXPECT_EQ(params[0].grad->at(oc, ic, u, v), 0.0f)
              << "grad_weight channel " << oc;
        }
      }
    }
    EXPECT_EQ(params[1].grad->at(oc), 0.0f) << "grad_bias channel " << oc;
  }

  // grad_input must match a conv where the pruned channels' grad_out is
  // explicitly zeroed — the mask drops exactly those contributions.
  Conv2d twin(3, 10, 3, rng, 1, 1);
  twin.weight() = conv.weight();
  twin.bias() = conv.bias();
  twin.forward(x);
  auto gy_zeroed = gy;
  for (int s = 0; s < 2; ++s) {
    for (int oc : {2, 9}) {
      for (int i = 0; i < 6; ++i) {
        for (int j = 0; j < 6; ++j) gy_zeroed.at(s, oc, i, j) = 0.0f;
      }
    }
  }
  auto gx_twin = twin.backward(gy_zeroed);
  ASSERT_EQ(gx.size(), gx_twin.size());
  for (std::size_t i = 0; i < gx.size(); ++i) {
    EXPECT_EQ(gx.data()[i], gx_twin.data()[i]) << "grad_input element " << i;
  }
}

TEST(LinearLayer, PrunedUnitIgnoresGarbageUpstreamGradient) {
  Rng rng(7);
  Linear linear(5, 4, rng);
  linear.set_unit_active(1, false);
  tensor::Tensor x(tensor::Shape{3, 5});
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = 0.1f * float(i);
  linear.forward(x);
  auto gy = tensor::Tensor::randn(tensor::Shape{3, 4}, rng);
  for (int s = 0; s < 3; ++s) gy.at(s, 1) = 999.0f;  // pruned row: must be ignored
  auto gx = linear.backward(gy);
  auto params = linear.params();
  for (int j = 0; j < 5; ++j) EXPECT_EQ(params[0].grad->at(1, j), 0.0f);
  EXPECT_EQ(params[1].grad->at(1), 0.0f);
  // grad_input drops the pruned unit from its contraction: same as zeroing.
  Linear twin(5, 4, rng);
  twin.weight() = linear.weight();
  twin.bias() = linear.bias();
  twin.forward(x);
  auto gy_zeroed = gy;
  for (int s = 0; s < 3; ++s) gy_zeroed.at(s, 1) = 0.0f;
  auto gx_twin = twin.backward(gy_zeroed);
  for (std::size_t i = 0; i < gx.size(); ++i) {
    EXPECT_EQ(gx.data()[i], gx_twin.data()[i]) << "grad_input element " << i;
  }
}

TEST(Conv2dLayer, ActiveWeightsExcludePrunedChannels) {
  Rng rng(3);
  Conv2d conv(2, 3, 3, rng);
  const auto all = conv.active_weights();
  EXPECT_EQ(all.size(), 3u * 2 * 9);
  conv.set_unit_active(0, false);
  EXPECT_EQ(conv.active_weights().size(), 2u * 2 * 9);
}

TEST(Conv2dLayer, PruneMaskRoundTrip) {
  Rng rng(3);
  Conv2d conv(1, 4, 3, rng);
  conv.set_prune_mask({1, 0, 1, 0});
  EXPECT_TRUE(conv.unit_active(0));
  EXPECT_FALSE(conv.unit_active(1));
  EXPECT_EQ(conv.prune_mask(), (std::vector<std::uint8_t>{1, 0, 1, 0}));
  EXPECT_THROW(conv.set_prune_mask({1, 1}), Error);
}

TEST(Conv2dLayer, CloneIsDeepCopy) {
  Rng rng(4);
  Conv2d conv(1, 2, 3, rng);
  auto clone = conv.clone();
  auto* cloned = dynamic_cast<Conv2d*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  cloned->weight().storage()[0] = 999.0f;
  EXPECT_NE(conv.weight().storage()[0], 999.0f);
}

// Gradient checks for whole architectures — the key numeric property test.
class ModelGradientTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(ModelGradientTest, BackwardMatchesFiniteDifference) {
  Rng rng(5);
  auto spec = make_model(GetParam(), rng);
  const auto& in = spec.input_shape;
  auto x = tensor::Tensor::rand_uniform(
      tensor::Shape{2, in[0], in[1], in[2]}, rng, 0.0f, 1.0f);
  std::vector<int> labels{1, 7};
  testutil::check_gradients(spec.net, x, labels);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ModelGradientTest,
                         ::testing::Values(Architecture::kMnistCnn,
                                           Architecture::kFashionCnn,
                                           Architecture::kVggSmall,
                                           Architecture::kSmallNn,
                                           Architecture::kLargeNn),
                         [](const auto& info) { return arch_name(info.param); });

// Gradient check with pruned units: masked channels must not perturb the
// gradients of live ones.
TEST(ModelGradient, HoldsUnderPruning) {
  Rng rng(6);
  auto spec = make_small_nn(rng);
  spec.net.layer(spec.last_conv_index).set_unit_active(3, false);
  spec.net.layer(spec.last_conv_index).set_unit_active(7, false);
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{2, 1, 20, 20}, rng, 0.0f, 1.0f);
  testutil::check_gradients(spec.net, x, {0, 9});
}

// --- fused-epilogue model equivalence ---------------------------------------
// Sequential::forward collapses Conv2d+ReLU pairs into GEMM epilogues and
// forward_probs additionally fuses the classifier head's softmax; both are
// contractually BIT-IDENTICAL to the layer-by-layer pipeline.

namespace {

// The fusion-free reference: every layer through its virtual forward.
tensor::Tensor forward_unfused(Sequential& net, const tensor::Tensor& x) {
  tensor::Tensor cur = x;
  for (int i = 0; i < net.size(); ++i) cur = net.layer(i).forward(cur);
  return cur;
}

}  // namespace

TEST(FusedModel, ForwardMatchesUnfusedBitwise) {
  Rng rng(11);
  auto fused = make_small_nn(rng);
  auto ref = fused.clone();
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{3, 1, 20, 20}, rng, 0.0f, 1.0f);
  const auto y_fused = fused.net.forward(x);
  const auto y_ref = forward_unfused(ref.net, x);
  EXPECT_EQ(y_fused.storage(), y_ref.storage());
}

TEST(FusedModel, ForwardProbsMatchesSoftmaxRowsBitwise) {
  Rng rng(12);
  auto fused = make_small_nn(rng);
  auto ref = fused.clone();
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{5, 1, 20, 20}, rng, 0.0f, 1.0f);
  const auto probs = fused.net.forward_probs(x);
  const auto expected = tensor::softmax_rows(forward_unfused(ref.net, x));
  EXPECT_EQ(probs.storage(), expected.storage());
}

TEST(FusedModel, TrainingStepMatchesUnfusedBitwise) {
  Rng rng(13);
  auto fused = make_small_nn(rng);
  auto ref = fused.clone();
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{4, 1, 20, 20}, rng, 0.0f, 1.0f);
  const std::vector<int> labels{0, 3, 7, 9};

  Sgd sgd_fused(fused.net, {0.1, 0.9});
  Sgd sgd_ref(ref.net, {0.1, 0.9});
  for (int step = 0; step < 3; ++step) {
    SoftmaxCrossEntropy loss_fused, loss_ref;
    fused.net.zero_grad();
    const float lf = loss_fused.forward_probs(fused.net.forward_probs(x), labels);
    fused.net.backward(loss_fused.backward());
    sgd_fused.step();

    ref.net.zero_grad();
    const float lr = loss_ref.forward(forward_unfused(ref.net, x), labels);
    ref.net.backward(loss_ref.backward());
    sgd_ref.step();

    ASSERT_EQ(lf, lr) << "step " << step;
  }
  EXPECT_EQ(fused.net.get_flat(), ref.net.get_flat());
}

TEST(FusedModel, ForwardMatchesUnfusedUnderPruning) {
  Rng rng(14);
  auto fused = make_small_nn(rng);
  fused.net.layer(fused.last_conv_index).set_unit_active(2, false);
  fused.net.layer(fused.last_conv_index).set_unit_active(5, false);
  auto ref = fused.clone();
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{3, 1, 20, 20}, rng, 0.0f, 1.0f);
  EXPECT_EQ(fused.net.forward(x).storage(), forward_unfused(ref.net, x).storage());
}

TEST(FusedModel, TapOnFusedReluMatchesUnfused) {
  Rng rng(15);
  auto fused = make_small_nn(rng);
  auto ref = fused.clone();
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{2, 1, 20, 20}, rng, 0.0f, 1.0f);
  tensor::Tensor tap_fused;
  fused.net.forward_with_tap(x, fused.tap_index, tap_fused);
  tensor::Tensor cur = x;
  tensor::Tensor tap_ref;
  for (int i = 0; i < ref.net.size(); ++i) {
    cur = ref.net.layer(i).forward(cur);
    if (i == ref.tap_index) tap_ref = cur;
  }
  EXPECT_EQ(tap_fused.storage(), tap_ref.storage());
}

TEST(FusedModel, QuantizedScanStaysCloseToF32) {
  Rng rng(16);
  auto model = make_small_nn(rng);
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{4, 1, 20, 20}, rng, 0.0f, 1.0f);
  tensor::Tensor tap_f32, tap_i8, tap_f16;
  model.net.forward_with_tap(x, model.tap_index, tap_f32);
  model.net.forward_with_tap(x, model.tap_index, tap_i8, tensor::ComputeKernel::kInt8);
  model.net.forward_with_tap(x, model.tap_index, tap_f16, tensor::ComputeKernel::kF16);
  ASSERT_EQ(tap_i8.shape(), tap_f32.shape());
  ASSERT_EQ(tap_f16.shape(), tap_f32.shape());
  float ref_max = 0.0f;
  for (float v : tap_f32.storage()) ref_max = std::max(ref_max, std::fabs(v));
  ASSERT_GT(ref_max, 0.0f);
  const auto& rv = tap_f32.storage();
  const auto& iv = tap_i8.storage();
  const auto& hv = tap_f16.storage();
  for (std::size_t i = 0; i < rv.size(); ++i) {
    EXPECT_NEAR(iv[i], rv[i], 0.05f * ref_max) << i;
    EXPECT_NEAR(hv[i], rv[i], 0.01f * ref_max) << i;
  }
}
