// The reduced-precision paths (DESIGN.md §16): quantize/dequantize round-trip
// error bounds, the int8 and fp16 GEMMs against the scalar oracle, the fused
// GEMM epilogues against the unfused pipeline (bitwise for bias/ReLU/softmax,
// since their placement was chosen to replicate the unfused operation order),
// and an exact-grid case where even the int8 path must match bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

using namespace fedcleanse;
using tensor::ComputeKernel;
using tensor::GemmEpilogue;
using tensor::GemmMask;

namespace {

std::vector<float> random_matrix(int rows, int cols, std::uint64_t seed, float span = 1.0f) {
  common::Rng rng(seed);
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = span * static_cast<float>(rng.normal());
  return m;
}

// Max |c_ref - c| over the matrix, scaled by the max |c_ref|.
float rel_error(const std::vector<float>& ref, const std::vector<float>& got) {
  float err = 0.0f, mag = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err = std::max(err, std::fabs(ref[i] - got[i]));
    mag = std::max(mag, std::fabs(ref[i]));
  }
  return mag > 0.0f ? err / mag : err;
}

TEST(QuantPrimitives, KernelNamesRoundTrip) {
  for (auto k : {ComputeKernel::kF32, ComputeKernel::kF16, ComputeKernel::kInt8}) {
    const auto parsed = tensor::parse_compute_kernel(tensor::compute_kernel_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(tensor::parse_compute_kernel("bf16").has_value());
}

TEST(QuantPrimitives, MaxAbsMatchesScalarSweep) {
  common::Rng rng(7);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 1000u}) {
    std::vector<float> x(n);
    float want = 0.0f;
    for (auto& v : x) {
      v = static_cast<float>(rng.normal()) * 3.0f;
      want = std::max(want, std::fabs(v));
    }
    EXPECT_EQ(tensor::max_abs(x.data(), n), want) << "n=" << n;
  }
}

TEST(QuantPrimitives, Int8RoundTripBoundedByHalfStep) {
  common::Rng rng(11);
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.normal()) * 2.5f;
  const float scale = tensor::int8_scale(tensor::max_abs(x.data(), x.size()));
  std::vector<std::int8_t> q(x.size());
  std::vector<float> back(x.size());
  tensor::quantize_s8(x.data(), x.size(), scale, q.data());
  tensor::dequantize_s8(q.data(), q.size(), scale, back.data());
  // Round-to-nearest leaves at most half a quantization step of error.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::fabs(x[i] - back[i]), 0.5f * scale * 1.0001f) << "i=" << i;
  }
}

TEST(QuantPrimitives, Int8ZeroTensorStaysExactZero) {
  const std::vector<float> x(16, 0.0f);
  const float scale = tensor::int8_scale(tensor::max_abs(x.data(), x.size()));
  EXPECT_EQ(scale, 1.0f);
  std::vector<std::int8_t> q(x.size());
  std::vector<float> back(x.size());
  tensor::quantize_s8(x.data(), x.size(), scale, q.data());
  tensor::dequantize_s8(q.data(), q.size(), scale, back.data());
  for (float v : back) EXPECT_EQ(v, 0.0f);
}

TEST(QuantPrimitives, QuantizeClampsOutOfRangeValues) {
  const float x[3] = {1000.0f, -1000.0f, 0.25f};
  std::int8_t q[3];
  tensor::quantize_s8(x, 3, 1.0f, q);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 0);
}

TEST(QuantPrimitives, F16RoundTripIsExactForHalfRepresentables) {
  // Values exactly representable in binary16 survive the trip untouched.
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 1024.0f, 65504.0f, -65504.0f}) {
    EXPECT_EQ(tensor::f16_to_f32(tensor::f32_to_f16(v)), v) << v;
  }
}

TEST(QuantPrimitives, F16RoundTripBoundedByRelativeEpsilon) {
  common::Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.normal()) * 10.0f;
    const float back = tensor::f16_to_f32(tensor::f32_to_f16(v));
    // binary16 has a 10-bit significand: eps = 2^-10 relative, once rounded.
    EXPECT_LE(std::fabs(v - back), std::fabs(v) * (1.0f / 1024.0f) + 6e-8f) << v;
  }
  std::vector<float> xs(257);
  for (auto& v : xs) v = static_cast<float>(rng.normal());
  std::vector<std::uint16_t> hs(xs.size());
  std::vector<float> back(xs.size());
  tensor::f32_to_f16_n(xs.data(), xs.size(), hs.data());
  tensor::f16_to_f32_n(hs.data(), hs.size(), back.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(back[i], tensor::f16_to_f32(tensor::f32_to_f16(xs[i])));
  }
}

// ---------------------------------------------------------------------------
// int8 GEMM vs the scalar oracle

TEST(GemmS8, MatchesReferenceAcrossShapes) {
  // Conv-shaped (m=cout, k=cin·kh·kw, n=pdim) and ragged/blocked shapes that
  // straddle the MR/NR/KC boundaries.
  const int shapes[][3] = {{4, 16, 16},   {32, 144, 100}, {16, 27, 64},  {5, 7, 3},
                           {50, 500, 16}, {4, 513, 33},   {100, 800, 10}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const auto a = random_matrix(m, k, 1000 + m);
    const auto b = random_matrix(k, n, 2000 + n);
    std::vector<float> ref(static_cast<std::size_t>(m) * n);
    tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                           false);
    const auto pa = tensor::pack_a_int8(a.data(), k, m, k, /*per_channel=*/true);
    std::vector<float> got(ref.size(), -7.0f);
    tensor::gemm_s8(pa, n, b.data(), n, got.data(), n, /*accumulate=*/false);
    // Two rounds of int8 quantization: error scales with sqrt(k)/127² of the
    // operand magnitudes; 2% relative is comfortably above what the kernel
    // produces and far below what a wrong kernel would produce.
    EXPECT_LT(rel_error(ref, got), 0.02f) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmS8, PerTensorScalesStayWithinLooserBound) {
  const int m = 32, k = 144, n = 100;
  const auto a = random_matrix(m, k, 31);
  const auto b = random_matrix(k, n, 32);
  std::vector<float> ref(static_cast<std::size_t>(m) * n);
  tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                         false);
  const auto pa = tensor::pack_a_int8(a.data(), k, m, k, /*per_channel=*/false);
  for (float s : pa.scales) EXPECT_EQ(s, pa.scales[0]);  // one scale, replicated
  std::vector<float> got(ref.size());
  tensor::gemm_s8(pa, n, b.data(), n, got.data(), n, false);
  EXPECT_LT(rel_error(ref, got), 0.04f);
}

TEST(GemmS8, AccumulateAddsOntoExistingC) {
  const int m = 8, k = 64, n = 24;
  const auto a = random_matrix(m, k, 41);
  const auto b = random_matrix(k, n, 42);
  const auto c0 = random_matrix(m, n, 43);
  const auto pa = tensor::pack_a_int8(a.data(), k, m, k, true);
  std::vector<float> once(c0), twice(c0);
  tensor::gemm_s8(pa, n, b.data(), n, once.data(), n, /*accumulate=*/true);
  std::vector<float> product(static_cast<std::size_t>(m) * n);
  tensor::gemm_s8(pa, n, b.data(), n, product.data(), n, /*accumulate=*/false);
  for (std::size_t i = 0; i < twice.size(); ++i) twice[i] += product[i];
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-5f) << i;
  }
}

TEST(GemmS8, ExactOnInt8GridIsBitIdenticalToReference) {
  // Inputs already on an int8 grid with power-of-two scales: quantization is
  // lossless, int32 accumulation is exact, and the dequant multiply by a
  // power of two is exact — so even the int8 path must match the fp32
  // oracle bit for bit.
  common::Rng rng(99);
  const int m = 20, k = 300, n = 17;
  std::vector<float> a(static_cast<std::size_t>(m) * k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) {
    v = static_cast<float>(static_cast<int>(rng.next_u64() % 255) - 127) * 0.0078125f;
  }
  for (auto& v : b) {
    v = static_cast<float>(static_cast<int>(rng.next_u64() % 255) - 127) * 0.0078125f;
  }
  // Pin every A row's max (per-channel scales) and B's max (per-tensor) so
  // every derived scale is exactly 2^-7 · 127 / 127 = 2^-7.
  for (int i = 0; i < m; ++i) a[static_cast<std::size_t>(i) * k] = 127.0f * 0.0078125f;
  b[0] = 127.0f * 0.0078125f;
  std::vector<float> ref(static_cast<std::size_t>(m) * n), got(ref.size());
  tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                         false);
  const auto pa = tensor::pack_a_int8(a.data(), k, m, k, true);
  tensor::gemm_s8(pa, n, b.data(), n, got.data(), n, false);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// fp16 GEMM vs the scalar oracle

TEST(GemmF16, MatchesReferenceWithinStorageRounding) {
  const int shapes[][3] = {{4, 16, 16}, {32, 144, 100}, {5, 7, 3}, {50, 500, 16}, {4, 513, 33}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const auto a = random_matrix(m, k, 500 + m);
    const auto b = random_matrix(k, n, 600 + n);
    std::vector<float> ref(static_cast<std::size_t>(m) * n);
    tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                           false);
    std::vector<std::uint16_t> ah(a.size()), bh(b.size());
    tensor::f32_to_f16_n(a.data(), a.size(), ah.data());
    tensor::f32_to_f16_n(b.data(), b.size(), bh.data());
    std::vector<float> got(ref.size());
    tensor::gemm_f16(m, n, k, ah.data(), k, bh.data(), n, got.data(), n, false);
    // Storage rounding only: ~2^-10 relative per operand.
    EXPECT_LT(rel_error(ref, got), 0.005f) << "m=" << m << " k=" << k << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Fused epilogues: bitwise against the unfused pipeline

TEST(GemmEpilogueTest, RowBiasMatchesPrefilledAccumulateBitwise) {
  // Unfused conv pipeline: prefill C with the per-row bias, accumulate.
  const int m = 19, k = 300, n = 37;
  const auto a = random_matrix(m, k, 71);
  const auto b = random_matrix(k, n, 72);
  const auto bias = random_matrix(m, 1, 73);
  std::vector<float> unfused(static_cast<std::size_t>(m) * n), fused(unfused.size());
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) unfused[static_cast<std::size_t>(i) * n + j] = bias[i];
  }
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, unfused.data(), n,
               /*accumulate=*/true);
  GemmEpilogue epi;
  epi.row_bias = bias.data();
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, fused.data(), n,
               /*accumulate=*/false, {}, epi);
  for (std::size_t i = 0; i < fused.size(); ++i) EXPECT_EQ(unfused[i], fused[i]) << i;
}

TEST(GemmEpilogueTest, ColBiasAndReluMatchPostPassBitwise) {
  // Unfused linear pipeline: GEMM, then y[i][j] += bias[j], then ReLU —
  // with k spanning multiple KC blocks so first-block placement would fail.
  const int m = 33, k = 700, n = 29;
  const auto a = random_matrix(m, k, 81);
  const auto b = random_matrix(k, n, 82);
  const auto bias = random_matrix(1, n, 83);
  std::vector<float> unfused(static_cast<std::size_t>(m) * n), fused(unfused.size());
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, unfused.data(), n, false);
  for (int i = 0; i < m; ++i) {
    float* row = unfused.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      row[j] += bias[j];
      if (row[j] < 0.0f) row[j] = 0.0f;
    }
  }
  GemmEpilogue epi;
  epi.col_bias = bias.data();
  epi.relu = true;
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, fused.data(), n, false, {},
               epi);
  for (std::size_t i = 0; i < fused.size(); ++i) EXPECT_EQ(unfused[i], fused[i]) << i;
}

TEST(GemmEpilogueTest, SoftmaxMatchesSoftmaxRowsBitwise) {
  const int m = 26, k = 800, n = 10;
  const auto a = random_matrix(m, k, 91);
  const auto b = random_matrix(k, n, 92);
  const auto bias = random_matrix(1, n, 93);
  tensor::Tensor logits(tensor::Shape{m, n});
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, logits.data().data(), n,
               false);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) logits.data()[static_cast<std::size_t>(i) * n + j] += bias[j];
  }
  const tensor::Tensor probs = tensor::softmax_rows(logits);
  std::vector<float> fused(static_cast<std::size_t>(m) * n);
  GemmEpilogue epi;
  epi.col_bias = bias.data();
  epi.softmax = true;
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, fused.data(), n, false, {},
               epi);
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(probs.data()[i], fused[i]) << i;
  }
}

TEST(GemmEpilogueTest, RowMaskKeepsInactiveRowsUntouched) {
  const int m = 9, k = 120, n = 21;
  const auto a = random_matrix(m, k, 101);
  const auto b = random_matrix(k, n, 102);
  const auto bias = random_matrix(m, 1, 103);
  std::vector<std::uint8_t> active(m, 1);
  active[2] = active[7] = 0;
  // The caller owns inactive rows; both pipelines pre-zero them.
  std::vector<float> unfused(static_cast<std::size_t>(m) * n, 0.0f), fused = unfused;
  for (int i = 0; i < m; ++i) {
    if (!active[i]) continue;
    for (int j = 0; j < n; ++j) unfused[static_cast<std::size_t>(i) * n + j] = bias[i];
  }
  GemmMask mask;
  mask.row_active = active.data();
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, unfused.data(), n, true,
               mask);
  for (int i = 0; i < m; ++i) {
    if (!active[i]) continue;
    float* row = unfused.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) row[j] = row[j] < 0.0f ? 0.0f : row[j];
  }
  GemmEpilogue epi;
  epi.row_bias = bias.data();
  epi.relu = true;
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, fused.data(), n, false,
               mask, epi);
  for (std::size_t i = 0; i < fused.size(); ++i) EXPECT_EQ(unfused[i], fused[i]) << i;
}

TEST(GemmEpilogueTest, QuantizedDriversApplyEpilogue) {
  const int m = 12, k = 90, n = 18;
  const auto a = random_matrix(m, k, 111);
  const auto b = random_matrix(k, n, 112);
  const auto rbias = random_matrix(m, 1, 113);
  std::vector<float> ref(static_cast<std::size_t>(m) * n);
  tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                         false);
  for (int i = 0; i < m; ++i) {
    float* row = ref.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      row[j] += rbias[i];
      if (row[j] < 0.0f) row[j] = 0.0f;
    }
  }
  GemmEpilogue epi;
  epi.row_bias = rbias.data();
  epi.relu = true;
  const auto pa = tensor::pack_a_int8(a.data(), k, m, k, true);
  std::vector<float> q8(ref.size());
  tensor::gemm_s8(pa, n, b.data(), n, q8.data(), n, false, epi);
  std::vector<std::uint16_t> ah(a.size()), bh(b.size());
  tensor::f32_to_f16_n(a.data(), a.size(), ah.data());
  tensor::f32_to_f16_n(b.data(), b.size(), bh.data());
  std::vector<float> h16(ref.size());
  tensor::gemm_f16(m, n, k, ah.data(), k, bh.data(), n, h16.data(), n, false, epi);
  // Quantization error scales with the accumulated magnitude, not the
  // (ReLU-clamped) per-element result, so bound it by the matrix max.
  float refmax = 0.0f;
  for (float v : ref) refmax = std::max(refmax, std::fabs(v));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(ref[i], q8[i], 0.03f * refmax) << i;
    EXPECT_NEAR(ref[i], h16[i], 0.005f * refmax) << i;
    // ReLU must clamp in every path.
    EXPECT_GE(q8[i], 0.0f);
    EXPECT_GE(h16[i], 0.0f);
  }
}

}  // namespace
