// The packed GEMM against the legacy scalar oracle, across every transpose
// variant and ragged shapes straddling the register-tile and cache-block
// boundaries — plus the workspace arena invariants the kernel leans on
// (alignment, stack discipline, allocation-freedom after warmup).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

using namespace fedcleanse;
using tensor::GemmMask;
using tensor::Workspace;

namespace {

class AmbientPoolGuard {
 public:
  explicit AmbientPoolGuard(common::ThreadPool* pool)
      : previous_(common::ambient_pool()) {
    common::set_ambient_pool(pool);
  }
  ~AmbientPoolGuard() { common::set_ambient_pool(previous_); }

 private:
  common::ThreadPool* previous_;
};

std::vector<float> random_matrix(int rows, int cols, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

// Run packed and reference kernels on the same random operands and compare.
// The packed kernel sums each C element in KC-blocked order, the reference
// in flat order, so equality is to rounding, not bitwise.
void expect_matches_reference(bool ta, bool tb, int m, int n, int k,
                              bool accumulate) {
  const int lda = ta ? m : k;
  const int ldb = tb ? k : n;
  auto a = random_matrix(ta ? k : m, lda, 11 * m + 13 * n + 17 * k + ta);
  auto b = random_matrix(tb ? n : k, ldb, 23 * m + 29 * n + 31 * k + tb);
  auto c = random_matrix(m, n, 41);  // nonzero so accumulate=true is exercised
  auto c_ref = c;
  if (!accumulate) {
    // Overwrite mode must not depend on prior C contents; make them differ.
    for (auto& v : c) v += 3.0f;
  }

  tensor::gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c.data(), n, accumulate);
  tensor::gemm_reference(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c_ref.data(), n,
                         accumulate);

  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float ref = c_ref[static_cast<std::size_t>(i) * n + j];
      const float got = c[static_cast<std::size_t>(i) * n + j];
      const float tol = 1e-3f * std::max(1.0f, std::abs(ref));
      ASSERT_NEAR(got, ref, tol) << "ta=" << ta << " tb=" << tb << " m=" << m
                                 << " n=" << n << " k=" << k << " acc=" << accumulate
                                 << " at (" << i << "," << j << ")";
    }
  }
}

}  // namespace

TEST(Gemm, AllTransposeVariantsAcrossTileBoundaries) {
  // Shapes straddling the register tile (MR=4, NR=16) and ragged singletons.
  const int ms[] = {1, tensor::kGemmMR - 1, tensor::kGemmMR, tensor::kGemmMR + 1, 17};
  const int ns[] = {1, tensor::kGemmNR - 1, tensor::kGemmNR, tensor::kGemmNR + 1, 33};
  const int ks[] = {1, 7, 64};
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int m : ms) {
        for (int n : ns) {
          for (int k : ks) {
            expect_matches_reference(ta, tb, m, n, k, (m + n + k) % 2 == 0);
          }
        }
      }
    }
  }
}

TEST(Gemm, KDepthStraddlesCacheBlock) {
  // k around KC exercises the multi-block k sweep (and its accumulate=true
  // continuation blocks) in both transpose orientations.
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int k : {tensor::kGemmKC - 1, tensor::kGemmKC, tensor::kGemmKC + 1}) {
        expect_matches_reference(ta, tb, 9, 21, k, false);
      }
    }
  }
}

TEST(Gemm, RowsStraddleCacheBlock) {
  // m around MC exercises the multi-row-block path (the one the pool
  // parallelizes) while staying below the parallel threshold here.
  for (int m : {tensor::kGemmMC - 1, tensor::kGemmMC, tensor::kGemmMC + 1}) {
    expect_matches_reference(false, false, m, 19, 33, true);
  }
}

TEST(Gemm, RowMaskSkipsInactiveRowsEntirely) {
  const int m = 11, n = 21, k = 18;
  auto a = random_matrix(m, k, 3);
  auto b = random_matrix(k, n, 4);
  std::vector<std::uint8_t> active(m, 1);
  active[0] = active[4] = active[10] = 0;

  const float sentinel = 7.5f;
  std::vector<float> c(static_cast<std::size_t>(m) * n, sentinel);
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(), n,
               /*accumulate=*/false, GemmMask{active.data(), nullptr});

  std::vector<float> ref(static_cast<std::size_t>(m) * n, 0.0f);
  tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                         false);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const std::size_t at = static_cast<std::size_t>(i) * n + j;
      if (active[i]) {
        EXPECT_NEAR(c[at], ref[at], 1e-3f * std::max(1.0f, std::abs(ref[at])));
      } else {
        // Inactive rows are never written — the caller's contents survive.
        EXPECT_EQ(c[at], sentinel) << "row " << i << " col " << j;
      }
    }
  }
}

TEST(Gemm, KMaskDropsZeroContractionIndices) {
  // A k mask is value-preserving when the masked B rows are exact zeros
  // (pruned weights are): dropping x + 0·y terms changes nothing.
  const int m = 9, n = 33, k = 24;
  auto a = random_matrix(m, k, 5);
  auto b = random_matrix(k, n, 6);
  std::vector<std::uint8_t> k_active(k, 1);
  for (int p : {0, 3, 7, 23}) {
    k_active[p] = 0;
    for (int j = 0; j < n; ++j) b[static_cast<std::size_t>(p) * n + j] = 0.0f;
  }

  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> ref = c;
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(), n, false,
               GemmMask{nullptr, k_active.data()});
  tensor::gemm_reference(false, false, m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                         false);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-3f * std::max(1.0f, std::abs(ref[i])));
  }
}

TEST(Gemm, AllInactiveKMaskZeroesOutputInOverwriteMode) {
  const int m = 5, n = 6, k = 4;
  auto a = random_matrix(m, k, 8);
  auto b = random_matrix(k, n, 9);
  std::vector<std::uint8_t> k_active(k, 0);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 123.0f);
  tensor::gemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(), n, false,
               GemmMask{nullptr, k_active.data()});
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(Gemm, ThreadCountDoesNotChangeAnyBit) {
  // Big enough that the pool path engages (m·k·n ≥ 2^20 and multiple MC row
  // blocks); every transpose variant must be bit-identical serial vs pooled.
  const int m = 205, n = 133, k = 311;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const int lda = ta ? m : k;
      const int ldb = tb ? k : n;
      auto a = random_matrix(ta ? k : m, lda, 100 + ta);
      auto b = random_matrix(tb ? n : k, ldb, 200 + tb);
      std::vector<float> c_serial(static_cast<std::size_t>(m) * n, 0.0f);
      std::vector<float> c_pooled = c_serial;
      {
        AmbientPoolGuard guard(nullptr);
        tensor::gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c_serial.data(), n,
                     false);
      }
      common::ThreadPool pool(4);
      AmbientPoolGuard guard(&pool);
      tensor::gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c_pooled.data(), n,
                   false);
      for (std::size_t i = 0; i < c_serial.size(); ++i) {
        ASSERT_EQ(c_pooled[i], c_serial[i])
            << "ta=" << ta << " tb=" << tb << " element " << i;
      }
    }
  }
}

TEST(Workspace, AllocationsAreAligned) {
  Workspace ws;
  const auto m = ws.mark();
  for (std::size_t n : {1u, 3u, 17u, 1000u, 100000u}) {
    float* p = ws.alloc_floats(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Workspace::kAlign, 0u);
    void* q = ws.alloc_bytes(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % Workspace::kAlign, 0u);
  }
  ws.release(m);
}

TEST(Workspace, ReleaseReusesMemoryVerbatim) {
  Workspace ws;
  const auto m = ws.mark();
  float* first = ws.alloc_floats(512);
  ws.release(m);
  float* again = ws.alloc_floats(512);
  EXPECT_EQ(again, first);
  ws.release(m);
}

TEST(Workspace, NestedMarksComposeAndCoalesce) {
  Workspace ws;
  const auto outer = ws.mark();
  ws.alloc_floats(1 << 16);  // 256 KiB — fills the first chunk
  const auto inner = ws.mark();
  ws.alloc_floats(1 << 17);  // forces a second chunk
  EXPECT_GE(ws.chunk_count(), 2u);
  ws.release(inner);
  ws.release(outer);
  // Fully released: the arena folds into one chunk sized to the high-water
  // mark, so the steady state is a single allocation.
  ws.alloc_floats(1);
  EXPECT_EQ(ws.chunk_count(), 1u);
  EXPECT_GE(ws.capacity_bytes(), ws.high_water_bytes());
}

TEST(Workspace, SteadyStateIsAllocationFree) {
  // The tentpole property: after a warmup pass sizes the arena, repeated
  // forward/backward through the conv kernels never mallocs again (observed
  // via the monotonic chunk-allocation counter of this thread's arena).
  AmbientPoolGuard guard(nullptr);  // keep all work on this thread's arena
  common::Rng rng(12);
  auto x = tensor::Tensor::randn({4, 3, 10, 10}, rng);
  auto w = tensor::Tensor::randn({8, 3, 3, 3}, rng, 0.0f, 0.2f);
  auto b = tensor::Tensor::randn({8}, rng);
  tensor::Conv2dSpec spec{1, 1};
  std::vector<float> cache;

  auto step = [&] {
    auto y = tensor::conv2d_forward_cached(x, w, b, spec, cache);
    auto g = tensor::conv2d_backward_cached(x, w, y, spec, cache);
    (void)g;
  };
  step();  // warmup: grows the arena to its high-water mark
  const std::size_t after_warmup = Workspace::tls().chunk_allocs();
  for (int i = 0; i < 10; ++i) step();
  EXPECT_EQ(Workspace::tls().chunk_allocs(), after_warmup)
      << "steady-state conv forward/backward allocated new arena chunks";
}

TEST(Workspace, MatmulSteadyStateIsAllocationFree) {
  AmbientPoolGuard guard(nullptr);
  common::Rng rng(13);
  auto a = tensor::Tensor::randn({64, 48}, rng);
  auto b = tensor::Tensor::randn({48, 32}, rng);
  auto c = tensor::matmul(a, b);  // warmup
  const std::size_t after_warmup = Workspace::tls().chunk_allocs();
  for (int i = 0; i < 10; ++i) c = tensor::matmul(a, b);
  EXPECT_EQ(Workspace::tls().chunk_allocs(), after_warmup);
}
