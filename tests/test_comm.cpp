#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "comm/network.h"

using namespace fedcleanse;
using namespace fedcleanse::comm;

namespace {

Message make_msg(MessageType type, std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.type = type;
  m.round = 3;
  m.sender = -1;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

}  // namespace

TEST(Channel, FifoOrder) {
  Channel ch;
  ch.send(make_msg(MessageType::kModelBroadcast));
  ch.send(make_msg(MessageType::kRankRequest));
  EXPECT_EQ(ch.try_recv()->type, MessageType::kModelBroadcast);
  EXPECT_EQ(ch.try_recv()->type, MessageType::kRankRequest);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(Channel, CountsBytes) {
  Channel ch;
  const auto size = ch.send(make_msg(MessageType::kModelUpdate, {1, 2, 3, 4}));
  EXPECT_EQ(size, 4u + kMessageHeaderBytes);
  EXPECT_EQ(ch.bytes_sent(), 4u + kMessageHeaderBytes);
}

TEST(Channel, BlockingRecvAcrossThreads) {
  Channel ch;
  std::thread producer([&] { ch.send(make_msg(MessageType::kVoteReport)); });
  auto msg = ch.recv();
  EXPECT_EQ(msg.type, MessageType::kVoteReport);
  producer.join();
}

TEST(Network, RoutesPerClient) {
  Network net(3);
  net.send_to_client(1, make_msg(MessageType::kModelBroadcast));
  EXPECT_FALSE(net.client_try_recv(0).has_value());
  EXPECT_TRUE(net.client_try_recv(1).has_value());
  net.send_to_server(2, make_msg(MessageType::kModelUpdate));
  EXPECT_FALSE(net.try_recv_from_client(1).has_value());
  EXPECT_TRUE(net.try_recv_from_client(2).has_value());
}

TEST(Network, TrafficAccounting) {
  Network net(2);
  net.send_to_client(0, make_msg(MessageType::kModelBroadcast, {1, 2}));
  net.send_to_server(1, make_msg(MessageType::kModelUpdate, {1, 2, 3}));
  EXPECT_EQ(net.downlink_bytes(), 2u + kMessageHeaderBytes);
  EXPECT_EQ(net.uplink_bytes(), 3u + kMessageHeaderBytes);
  EXPECT_EQ(net.total_bytes(), 5u + 2 * kMessageHeaderBytes);
}

TEST(Network, RejectsBadClientId) {
  Network net(2);
  EXPECT_THROW(net.send_to_client(2, make_msg(MessageType::kModelBroadcast)), Error);
  EXPECT_THROW(net.send_to_client(-1, make_msg(MessageType::kModelBroadcast)), Error);
}

TEST(Codecs, FlatParamsRoundTrip) {
  std::vector<float> params{1.5f, -2.0f, 0.0f};
  EXPECT_EQ(decode_flat_params(encode_flat_params(params)), params);
}

TEST(Codecs, RanksRoundTrip) {
  std::vector<std::uint32_t> ranks{3, 1, 2};
  EXPECT_EQ(decode_ranks(encode_ranks(ranks)), ranks);
}

TEST(Codecs, VotesRoundTrip) {
  std::vector<std::uint8_t> votes{1, 0, 0, 1};
  EXPECT_EQ(decode_votes(encode_votes(votes)), votes);
}

TEST(Codecs, MasksRoundTrip) {
  std::vector<std::vector<std::uint8_t>> masks{{1, 0}, {}, {1, 1, 1}};
  EXPECT_EQ(decode_masks(encode_masks(masks)), masks);
}

TEST(Codecs, AccuracyRoundTrip) {
  EXPECT_DOUBLE_EQ(decode_accuracy(encode_accuracy(0.925)), 0.925);
}

TEST(Codecs, MalformedPayloadThrows) {
  std::vector<std::uint8_t> garbage{1, 2};
  EXPECT_THROW(decode_flat_params(garbage), SerializationError);
  EXPECT_THROW(decode_masks(garbage), SerializationError);
}

TEST(Codecs, QuantizedParamsRoundTripWithinHalfStep) {
  std::vector<float> params(1000);
  std::uint32_t state = 0x9E3779B9u;
  float maxabs = 0.0f;
  for (auto& p : params) {
    state = state * 1664525u + 1013904223u;
    p = (static_cast<float>(state >> 8) / 8388608.0f - 1.0f) * 0.05f;
    maxabs = std::max(maxabs, std::fabs(p));
  }
  const auto decoded = decode_flat_params_q8(encode_flat_params_q8(params));
  ASSERT_EQ(decoded.size(), params.size());
  // Symmetric int8: worst-case error is half a quantization step.
  const float step = maxabs / 127.0f;
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_NEAR(decoded[i], params[i], 0.5f * step * 1.0001f) << i;
  }
}

TEST(Codecs, QuantizedParamsShrinkWire) {
  const std::vector<float> params(10000, 0.25f);
  const auto f32 = encode_flat_params(params);
  const auto q8 = encode_flat_params_q8(params);
  // 4 bytes/param down to 1 (plus the fixed scale+length overhead).
  EXPECT_GE(static_cast<double>(f32.size()) / static_cast<double>(q8.size()), 3.5);
}

TEST(Codecs, QuantizedParamsEmptyAndZeroSafe) {
  EXPECT_TRUE(decode_flat_params_q8(encode_flat_params_q8({})).empty());
  const std::vector<float> zeros(17, 0.0f);
  EXPECT_EQ(decode_flat_params_q8(encode_flat_params_q8(zeros)), zeros);
}

TEST(Codecs, QuantizedParamsRejectsBadScale) {
  auto payload = encode_flat_params_q8({1.0f, -1.0f});
  // Overwrite the leading f32 scale with NaN, then with zero.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(payload.data(), &nan, sizeof(nan));
  EXPECT_THROW(decode_flat_params_q8(payload), DecodeError);
  const float zero = 0.0f;
  std::memcpy(payload.data(), &zero, sizeof(zero));
  EXPECT_THROW(decode_flat_params_q8(payload), DecodeError);
}

TEST(Codecs, QuantizedParamsTruncationFuzz) {
  const std::vector<float> params(64, 0.5f);
  const auto payload = encode_flat_params_q8(params);
  // Every proper prefix must throw, never crash or decode silently.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    std::vector<std::uint8_t> cut(payload.begin(),
                                  payload.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_flat_params_q8(cut), SerializationError) << "prefix " << len;
  }
  // Trailing garbage is as malformed as truncation.
  auto extended = payload;
  extended.push_back(0xAB);
  EXPECT_THROW(decode_flat_params_q8(extended), DecodeError);
}

TEST(Wire, EncodeIsExactlyWireSize) {
  // wire_size() and encode_message must agree byte for byte — the traffic
  // accounting is only honest if they share the same header definition.
  const auto m = make_msg(MessageType::kVoteReport, {9, 8, 7});
  const auto bytes = encode_message(m);
  EXPECT_EQ(bytes.size(), m.wire_size());
  EXPECT_EQ(bytes.size(), 3u + kMessageHeaderBytes);
}

TEST(Wire, MessageRoundTrip) {
  Message m = make_msg(MessageType::kRankReport, {1, 2, 3, 4, 5});
  m.round = 17;
  m.sender = 4;
  const auto back = decode_message(encode_message(m));
  EXPECT_EQ(back.type, m.type);
  EXPECT_EQ(back.round, m.round);
  EXPECT_EQ(back.sender, m.sender);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_TRUE(back.checksum_ok());
}

TEST(Wire, UnknownTypeByteThrows) {
  auto bytes = encode_message(make_msg(MessageType::kModelBroadcast, {1}));
  bytes[0] = 0;  // below the valid range
  EXPECT_THROW(decode_message(bytes), DecodeError);
  bytes[0] = 200;  // above it
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Wire, TruncatedMessageThrows) {
  const auto bytes = encode_message(make_msg(MessageType::kModelUpdate, {1, 2, 3, 4}));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_message(cut), DecodeError) << "prefix length " << len;
  }
}

TEST(Wire, ChecksumDetectsPayloadTampering) {
  Message m = make_msg(MessageType::kModelUpdate, {1, 2, 3, 4});
  EXPECT_TRUE(m.checksum_ok());
  m.payload[2] ^= 0x40;  // in-memory flip after stamping
  EXPECT_FALSE(m.checksum_ok());

  auto bytes = encode_message(make_msg(MessageType::kModelUpdate, {1, 2, 3, 4}));
  bytes.back() ^= 0x40;  // flip an encoded payload byte
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(Wire, ParseMessageTypeValidatesRange) {
  for (std::uint8_t raw = 1; raw <= 18; ++raw) {
    ASSERT_TRUE(parse_message_type(raw).has_value()) << int(raw);
  }
  EXPECT_EQ(parse_message_type(17), MessageType::kRoundSync);
  EXPECT_EQ(parse_message_type(18), MessageType::kRoundSyncAck);
  EXPECT_FALSE(parse_message_type(0).has_value());
  EXPECT_FALSE(parse_message_type(19).has_value());
  EXPECT_FALSE(parse_message_type(255).has_value());
}

TEST(MessageNames, AllNamed) {
  for (auto t : {MessageType::kModelBroadcast, MessageType::kModelUpdate,
                 MessageType::kRankRequest, MessageType::kRankReport,
                 MessageType::kVoteRequest, MessageType::kVoteReport,
                 MessageType::kMaskBroadcast, MessageType::kAccuracyRequest,
                 MessageType::kAccuracyReport, MessageType::kLrScale,
                 MessageType::kShutdown, MessageType::kRegister,
                 MessageType::kRegisterAck, MessageType::kHeartbeat,
                 MessageType::kHeartbeatAck, MessageType::kModelUpdateQuantized,
                 MessageType::kRoundSync, MessageType::kRoundSyncAck}) {
    EXPECT_STRNE(message_type_name(t), "?");
  }
}

// --- failover codecs (DESIGN.md §18) ----------------------------------------

TEST(Codecs, RoundSyncRoundTrip) {
  RoundSync sync;
  sync.epoch = 3;
  sync.next_round = 7;
  const RoundSync back = decode_round_sync(encode_round_sync(sync));
  EXPECT_EQ(back.epoch, 3u);
  EXPECT_EQ(back.next_round, 7);
}

TEST(Codecs, RoundSyncRejectsNegativeRound) {
  RoundSync sync;
  sync.next_round = -1;
  EXPECT_THROW(decode_round_sync(encode_round_sync(sync)), DecodeError);
}

TEST(Codecs, RegisterCarriesSnapshotEpoch) {
  RegisterInfo info;
  info.role = NodeRole::kClient;
  info.node_id = 4;
  info.generation = 2;
  info.epoch = 9;
  const RegisterInfo back = decode_register(encode_register(info));
  EXPECT_EQ(back.node_id, 4);
  EXPECT_EQ(back.generation, 2u);
  EXPECT_EQ(back.epoch, 9u);

  RegisterAck ack;
  ack.accepted = true;
  ack.epoch = 9;
  EXPECT_EQ(decode_register_ack(encode_register_ack(ack)).epoch, 9u);
}

TEST(Codecs, EpochErrorIsASerializationError) {
  // collect_typed treats an epoch mismatch exactly like a malformed reply:
  // logged, counted, never fatal. That hinges on the inheritance chain.
  try {
    throw EpochError("stale epoch");
  } catch (const SerializationError&) {
    SUCCEED();
  } catch (...) {
    FAIL() << "EpochError must derive from SerializationError";
  }
}
