#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/activation_stats.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model_zoo.h"

using namespace fedcleanse;
using namespace fedcleanse::nn;
using fedcleanse::common::Rng;

namespace {

ModelSpec make_spec(Rng& rng) { return make_small_nn(rng); }

}  // namespace

TEST(Sequential, FlatParamsRoundTrip) {
  Rng rng(1);
  auto spec = make_spec(rng);
  auto flat = spec.net.get_flat();
  EXPECT_EQ(flat.size(), spec.net.num_params());

  // Perturb then restore.
  auto perturbed = flat;
  for (auto& v : perturbed) v += 1.0f;
  spec.net.set_flat(perturbed);
  EXPECT_EQ(spec.net.get_flat(), perturbed);
  spec.net.set_flat(flat);
  EXPECT_EQ(spec.net.get_flat(), flat);
}

TEST(Sequential, SetFlatRejectsWrongSize) {
  Rng rng(1);
  auto spec = make_spec(rng);
  std::vector<float> tooShort(3);
  EXPECT_THROW(spec.net.set_flat(tooShort), Error);
}

TEST(Sequential, SetFlatReassertsPruning) {
  Rng rng(1);
  auto spec = make_spec(rng);
  const auto flat = spec.net.get_flat();
  spec.net.layer(spec.last_conv_index).set_unit_active(0, false);
  // Loading parameters that carry non-zero weights for the pruned channel
  // must not resurrect it.
  spec.net.set_flat(flat);
  auto* conv = dynamic_cast<Conv2d*>(&spec.net.layer(spec.last_conv_index));
  ASSERT_NE(conv, nullptr);
  EXPECT_FALSE(conv->unit_active(0));
  const std::size_t per_channel =
      static_cast<std::size_t>(conv->in_channels()) * conv->kernel() * conv->kernel();
  for (std::size_t i = 0; i < per_channel; ++i) EXPECT_EQ(conv->weight()[i], 0.0f);
}

TEST(Sequential, CloneIsIndependent) {
  Rng rng(2);
  auto spec = make_spec(rng);
  auto clone = spec.net.clone();
  auto flat = spec.net.get_flat();
  auto cloneFlat = clone.get_flat();
  EXPECT_EQ(flat, cloneFlat);
  // Mutating the clone leaves the original untouched.
  for (auto& v : cloneFlat) v = 0.0f;
  clone.set_flat(cloneFlat);
  EXPECT_EQ(spec.net.get_flat(), flat);
}

TEST(Sequential, PruneMasksRoundTrip) {
  Rng rng(3);
  auto spec = make_spec(rng);
  auto masks = spec.net.prune_masks();
  EXPECT_EQ(static_cast<int>(masks.size()), spec.net.size());
  masks[static_cast<std::size_t>(spec.last_conv_index)][1] = 0;
  spec.net.set_prune_masks(masks);
  EXPECT_FALSE(spec.net.layer(spec.last_conv_index).unit_active(1));
  EXPECT_EQ(spec.net.prune_masks(), masks);
}

TEST(Sequential, ForwardWithTapCapturesIntermediate) {
  Rng rng(4);
  auto spec = make_spec(rng);
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{2, 1, 20, 20}, rng, 0.0f, 1.0f);
  tensor::Tensor tapped;
  auto out = spec.net.forward_with_tap(x, spec.tap_index, tapped);
  EXPECT_EQ(out.shape()[0], 2);
  ASSERT_EQ(tapped.shape().rank(), 4);
  EXPECT_EQ(tapped.shape()[1], spec.net.layer(spec.last_conv_index).prunable_units());
  // Post-ReLU tap is non-negative.
  EXPECT_GE(tapped.min(), 0.0f);
}

TEST(Sequential, TapIndexValidated) {
  Rng rng(4);
  auto spec = make_spec(rng);
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{1, 1, 20, 20}, rng, 0.0f, 1.0f);
  tensor::Tensor tapped;
  EXPECT_THROW(spec.net.forward_with_tap(x, 99, tapped), Error);
}

TEST(Sequential, ZeroGradClearsAll) {
  Rng rng(5);
  auto spec = make_spec(rng);
  for (auto& p : spec.net.params()) p.grad->fill(1.0f);
  spec.net.zero_grad();
  for (auto& p : spec.net.params()) {
    for (float g : p.grad->data()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(ModelZoo, ArchitectureMetadataConsistent) {
  Rng rng(6);
  for (auto arch : {Architecture::kMnistCnn, Architecture::kFashionCnn,
                    Architecture::kVggSmall, Architecture::kSmallNn,
                    Architecture::kLargeNn}) {
    auto spec = make_model(arch, rng);
    EXPECT_GE(spec.last_conv_index, 0) << arch_name(arch);
    EXPECT_EQ(spec.tap_index, spec.last_conv_index + 1) << arch_name(arch);
    EXPECT_GT(spec.net.layer(spec.last_conv_index).prunable_units(), 0);
    // Forward pass produces [N, num_classes].
    auto x = tensor::Tensor::rand_uniform(
        tensor::Shape{1, spec.input_shape[0], spec.input_shape[1], spec.input_shape[2]}, rng,
        0.0f, 1.0f);
    auto logits = spec.net.forward(x);
    EXPECT_EQ(logits.shape(), (tensor::Shape{1, spec.num_classes})) << arch_name(arch);
  }
}

TEST(ModelZoo, TableSixChannelCounts) {
  Rng rng(7);
  auto small = make_small_nn(rng);
  auto large = make_large_nn(rng);
  EXPECT_EQ(small.net.layer(small.last_conv_index).prunable_units(), 16);
  EXPECT_EQ(large.net.layer(large.last_conv_index).prunable_units(), 50);
}

TEST(ChannelMeanAccumulator, SpatialMeans) {
  ChannelMeanAccumulator acc;
  // Two samples, two channels, 2×2 planes.
  tensor::Tensor batch(tensor::Shape{2, 2, 2, 2},
                       {1, 1, 1, 1, 2, 2, 2, 2,    // sample 0: ch0=1, ch1=2
                        3, 3, 3, 3, 4, 4, 4, 4});  // sample 1: ch0=3, ch1=4
  acc.add_batch(batch);
  auto means = acc.means();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 3.0);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(ChannelMeanAccumulator, TwoDimensionalInput) {
  ChannelMeanAccumulator acc;
  tensor::Tensor batch(tensor::Shape{2, 3}, {1, 2, 3, 3, 4, 5});
  acc.add_batch(batch);
  auto means = acc.means();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 3.0);
  EXPECT_DOUBLE_EQ(means[2], 4.0);
}

TEST(ChannelMeanAccumulator, ChannelCountChangeThrows) {
  ChannelMeanAccumulator acc;
  acc.add_batch(tensor::Tensor(tensor::Shape{1, 3}));
  EXPECT_THROW(acc.add_batch(tensor::Tensor(tensor::Shape{1, 4})), Error);
}

TEST(ChannelMeanAccumulator, EmptyThrows) {
  ChannelMeanAccumulator acc;
  EXPECT_THROW(acc.means(), Error);
}
