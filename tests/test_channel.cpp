// Channel concurrency contract: blocking receives wake across threads, FIFO
// order holds per sender under contention, and recv_for() respects its
// deadline without ever losing a delivered message.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "comm/channel.h"

using namespace fedcleanse::comm;
using namespace std::chrono_literals;

namespace {

Message tagged(std::uint32_t round, std::int32_t sender = -1) {
  Message m;
  m.type = MessageType::kModelUpdate;
  m.round = round;
  m.sender = sender;
  m.stamp();
  return m;
}

}  // namespace

TEST(ChannelThreads, BlockingRecvIsWokenBySend) {
  Channel ch;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const Message m = ch.recv();  // blocks until the producer sends
    EXPECT_EQ(m.round, 7u);
    got.store(true);
  });
  std::this_thread::sleep_for(10ms);  // give the consumer time to block
  EXPECT_FALSE(got.load());
  ch.send(tagged(7));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(ChannelThreads, FifoPerSenderUnderConcurrentSenders) {
  Channel ch;
  constexpr int kSenders = 4;
  constexpr int kPerSender = 50;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&ch, s] {
      for (int i = 0; i < kPerSender; ++i) {
        ch.send(tagged(static_cast<std::uint32_t>(i), s));
      }
    });
  }
  for (auto& t : senders) t.join();

  ASSERT_EQ(ch.pending(), static_cast<std::size_t>(kSenders * kPerSender));
  // Interleaving across senders is arbitrary, but each sender's own messages
  // must drain in send order.
  std::vector<std::uint32_t> next_round(kSenders, 0);
  while (auto m = ch.try_recv()) {
    const auto s = static_cast<std::size_t>(m->sender);
    ASSERT_LT(s, static_cast<std::size_t>(kSenders));
    EXPECT_EQ(m->round, next_round[s]) << "sender " << s << " reordered";
    ++next_round[s];
  }
  for (int s = 0; s < kSenders; ++s) {
    EXPECT_EQ(next_round[static_cast<std::size_t>(s)],
              static_cast<std::uint32_t>(kPerSender));
  }
}

TEST(ChannelTimeout, RecvForExpiresOnSilence) {
  Channel ch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.recv_for(30ms).has_value());
  // The deadline must actually be honoured (no early return, no hang).
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(ChannelTimeout, RecvForReturnsQueuedMessageImmediately) {
  Channel ch;
  ch.send(tagged(3));
  const auto start = std::chrono::steady_clock::now();
  auto m = ch.recv_for(10s);  // must not wait anywhere near this long
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->round, 3u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 1s);
}

TEST(ChannelTimeout, RecvForIsWokenByLateSend) {
  Channel ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(15ms);
    ch.send(tagged(11));
  });
  auto m = ch.recv_for(10s);
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->round, 11u);
}

TEST(ChannelTimeout, ZeroTimeoutActsAsTryRecv) {
  Channel ch;
  EXPECT_FALSE(ch.recv_for(0ms).has_value());
  ch.send(tagged(5));
  auto m = ch.recv_for(0ms);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->round, 5u);
}

TEST(ChannelTimeout, RecvForDeadlineIsAbsoluteNotPerWakeup) {
  // The deadline is computed once up front: a stream of wakeups (sends that
  // other consumers… here, sends drained between waits) must not stretch the
  // total wait. Producer sends nothing; the wait must end within ~timeout
  // even under heavy notify traffic on the same condition variable from
  // parallel send+drain pairs.
  Channel ch;
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Each send notifies the waiting receiver; the immediate try_recv keeps
    // the queue empty so the receiver's predicate stays false — every wakeup
    // is effectively spurious from its point of view.
    while (!stop.load()) {
      ch.send(tagged(1));
      (void)ch.try_recv();
      std::this_thread::sleep_for(1ms);
    }
  });
  const auto start = std::chrono::steady_clock::now();
  (void)ch.recv_for(80ms);  // may or may not catch a message; timing matters
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stop.store(true);
  churn.join();
  // With a drifting (relative re-wait) implementation every wakeup restarts
  // the clock and this wait approaches forever; absolute deadline keeps it
  // near the requested 80 ms.
  EXPECT_LT(elapsed, 2s);
}

TEST(ChannelWait, WaitNonemptyDoesNotConsume) {
  Channel ch;
  ch.send(tagged(9));
  EXPECT_TRUE(ch.wait_nonempty(0ms));
  EXPECT_EQ(ch.pending(), 1u);  // still queued — wait_nonempty only peeks
  auto m = ch.try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->round, 9u);
}

TEST(ChannelWait, WaitNonemptyExpiresOnSilence) {
  Channel ch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.wait_nonempty(30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(ChannelWait, WaitNonemptyWokenByLateSend) {
  Channel ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(15ms);
    ch.send(tagged(13));
  });
  EXPECT_TRUE(ch.wait_nonempty(10s));
  producer.join();
  EXPECT_EQ(ch.pending(), 1u);
}
