// Socket transport contract (DESIGN.md §15), all over real loopback TCP:
// deadline-bounded connect/accept/recv, the capped backoff curve, framed
// send/recv, scheduler discovery, and the SocketServerNetwork /
// SocketClientNetwork pair's registration, liveness, reconnect, and shutdown
// behaviour. Everything runs in-process (multiple threads, one address
// space); the cross-process path is exercised by scripts/multiproc_identity.sh
// and scripts/proc_chaos.sh against the deployment binaries.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "comm/frame.h"
#include "comm/scheduler.h"
#include "comm/socket_network.h"
#include "comm/transport.h"

using namespace fedcleanse;
using namespace fedcleanse::comm;
using namespace std::chrono_literals;

namespace {

// Small timeouts so failure paths resolve in milliseconds, not test-minutes.
TransportConfig fast_config() {
  TransportConfig c;
  c.connect_timeout_ms = 2000;
  c.accept_timeout_ms = 50;
  c.max_connect_retries = 3;
  c.backoff_base_ms = 10;
  c.backoff_cap_ms = 40;
  c.heartbeat_interval_ms = 50;
  c.heartbeat_timeout_ms = 1000;
  return c;
}

Message tagged(MessageType type, std::uint32_t round,
               std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.type = type;
  m.round = round;
  m.sender = -1;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

// Spin until pred() holds or the deadline passes; returns the final read.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(5ms);
  }
  return true;
}

}  // namespace

// --- config + backoff -------------------------------------------------------

TEST(TransportConfigTest, ValidateRejectsNonsense) {
  TransportConfig c;
  c.validate();  // defaults are sane
  c.connect_timeout_ms = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = TransportConfig{};
  c.backoff_cap_ms = c.backoff_base_ms - 1;
  EXPECT_THROW(c.validate(), ConfigError);
  c = TransportConfig{};
  c.heartbeat_timeout_ms = c.heartbeat_interval_ms - 1;
  EXPECT_THROW(c.validate(), ConfigError);
  c = TransportConfig{};
  c.max_frame_bytes = 8;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(TransportConfigTest, BackoffCurveIsCappedExponential) {
  TransportConfig c;
  c.backoff_base_ms = 50;
  c.backoff_cap_ms = 2000;
  EXPECT_EQ(backoff_delay_ms(c, 0), 50);
  EXPECT_EQ(backoff_delay_ms(c, 1), 100);
  EXPECT_EQ(backoff_delay_ms(c, 2), 200);
  EXPECT_EQ(backoff_delay_ms(c, 5), 1600);
  EXPECT_EQ(backoff_delay_ms(c, 6), 2000);   // capped
  EXPECT_EQ(backoff_delay_ms(c, 63), 2000);  // shift never overflows
  EXPECT_EQ(backoff_delay_ms(c, -4), 50);    // negative attempt clamps to 0
}

TEST(TransportConfigTest, JitteredBackoffIsDeterministicAndBounded) {
  TransportConfig c;
  c.backoff_base_ms = 50;
  c.backoff_cap_ms = 2000;
  c.jitter_seed = 42;
  // Pinned draws: the jitter is a pure function of (seed, node, attempt), so
  // a reconnect schedule is reproducible across runs and in postmortems.
  EXPECT_EQ(backoff_delay_jittered_ms(c, 0, 0), 34);
  EXPECT_EQ(backoff_delay_jittered_ms(c, 0, 1), 81);
  EXPECT_EQ(backoff_delay_jittered_ms(c, 0, 2), 142);
  EXPECT_EQ(backoff_delay_jittered_ms(c, 1, 0), 26);
  EXPECT_EQ(backoff_delay_jittered_ms(c, 1, 1), 90);
  EXPECT_EQ(backoff_delay_jittered_ms(c, 7, 3), 328);
  EXPECT_EQ(backoff_delay_jittered_ms(c, 0, 6), 1838);
  // Every draw stays within [ceil(d/2), d] of the deterministic curve — the
  // cap still bounds worst-case reconnect latency.
  for (int node = 0; node < 16; ++node) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      const int d = backoff_delay_ms(c, attempt);
      const int j = backoff_delay_jittered_ms(c, node, attempt);
      EXPECT_GE(j, (d + 1) / 2) << "node " << node << " attempt " << attempt;
      EXPECT_LE(j, d) << "node " << node << " attempt " << attempt;
    }
  }
  // Distinct node ids desynchronize — the point of the jitter is that a
  // server restart does not make the whole fleet reconnect in lockstep.
  bool diverged = false;
  for (int attempt = 0; attempt < 10 && !diverged; ++attempt) {
    diverged = backoff_delay_jittered_ms(c, 2, attempt) !=
               backoff_delay_jittered_ms(c, 3, attempt);
  }
  EXPECT_TRUE(diverged);
}

// --- raw sockets ------------------------------------------------------------

TEST(SocketLoopback, SendAllRecvSomeRoundTrip) {
  Listener listener("127.0.0.1", 0);
  ASSERT_NE(listener.port(), 0);  // ephemeral bind reports the real port
  Socket client = connect_to("127.0.0.1", listener.port(), 2000);
  auto server = listener.accept_for(2000);
  ASSERT_TRUE(server.has_value());

  const std::uint8_t out[] = {1, 2, 3, 4, 5};
  client.send_all(out, sizeof(out));
  std::uint8_t in[16] = {};
  std::size_t total = 0;
  while (total < sizeof(out)) {
    std::size_t n = 0;
    ASSERT_EQ(server->recv_some(in + total, sizeof(in) - total, 2000, &n),
              Socket::RecvStatus::kData);
    total += n;
  }
  EXPECT_EQ(std::memcmp(in, out, sizeof(out)), 0);
}

TEST(SocketLoopback, RecvTimesOutThenSeesEof) {
  Listener listener("127.0.0.1", 0);
  Socket client = connect_to("127.0.0.1", listener.port(), 2000);
  auto server = listener.accept_for(2000);
  ASSERT_TRUE(server.has_value());

  std::uint8_t buf[8];
  std::size_t n = 0;
  EXPECT_EQ(server->recv_some(buf, sizeof(buf), 30, &n), Socket::RecvStatus::kTimeout);
  client.close();
  EXPECT_EQ(server->recv_some(buf, sizeof(buf), 2000, &n), Socket::RecvStatus::kEof);
}

TEST(SocketLoopback, ConnectToDeadPortThrowsWithErrno) {
  // Bind-then-close yields a port that is almost certainly unbound now.
  std::uint16_t dead_port;
  {
    Listener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }
  try {
    (void)connect_to("127.0.0.1", dead_port, 500);
    FAIL() << "connect to a closed port should throw";
  } catch (const TransportError& e) {
    EXPECT_NE(e.sys_errno(), 0) << e.what();  // errno captured at the syscall
  }
}

TEST(SocketLoopback, ConnectWithBackoffHonoursCancellation) {
  std::uint16_t dead_port;
  {
    Listener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }
  TransportConfig c = fast_config();
  c.max_connect_retries = 1000;  // cancellation, not exhaustion, must end it
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      (void)connect_with_backoff("127.0.0.1", dead_port, c, [] { return true; }),
      TransportError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2s);
}

// --- framing over a live socket ---------------------------------------------

TEST(FrameLoopback, SendFrameRecvFrameRoundTrip) {
  Listener listener("127.0.0.1", 0);
  Socket client = connect_to("127.0.0.1", listener.port(), 2000);
  auto server = listener.accept_for(2000);
  ASSERT_TRUE(server.has_value());

  send_frame(client, tagged(MessageType::kModelBroadcast, 4, {7, 8, 9}));
  FrameDecoder dec;
  auto m = recv_frame(*server, dec, 2000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, MessageType::kModelBroadcast);
  EXPECT_EQ(m->round, 4u);
  EXPECT_EQ(m->payload, (std::vector<std::uint8_t>{7, 8, 9}));
  EXPECT_TRUE(m->checksum_ok());

  // Silence → nullopt (timeout); close → TransportError (EOF mid-stream).
  EXPECT_FALSE(recv_frame(*server, dec, 30).has_value());
  client.close();
  EXPECT_THROW((void)recv_frame(*server, dec, 2000), TransportError);
}

// --- scheduler discovery ----------------------------------------------------

TEST(SchedulerTest, ClientsDiscoverTheServerThroughRegistration) {
  const TransportConfig c = fast_config();
  Scheduler scheduler(c);
  ASSERT_NE(scheduler.port(), 0);

  // A client asking before any server registered gets an accepted ack that
  // carries no address — it must poll again later.
  RegisterInfo client_info;
  client_info.role = NodeRole::kClient;
  client_info.node_id = 0;
  auto ack = scheduler_register_once("127.0.0.1", scheduler.port(), client_info, c);
  EXPECT_TRUE(ack.accepted);
  EXPECT_FALSE(ack.server_known);

  RegisterInfo server_info;
  server_info.role = NodeRole::kServer;
  server_info.port = 45678;
  ack = scheduler_register_once("127.0.0.1", scheduler.port(), server_info, c);
  EXPECT_TRUE(ack.accepted);

  ack = scheduler_register_once("127.0.0.1", scheduler.port(), client_info, c);
  EXPECT_TRUE(ack.server_known);
  EXPECT_EQ(ack.server_port, 45678);
  EXPECT_FALSE(ack.server_host.empty());
  EXPECT_TRUE(scheduler.server_known());
  EXPECT_EQ(scheduler.n_clients_seen(), 1);  // the same client id polled twice

  scheduler.stop();
}

TEST(SchedulerTest, DuplicateAndStaleGenerationRegistrationsKeepRosterClean) {
  const TransportConfig c = fast_config();
  Scheduler scheduler(c);

  RegisterInfo info;
  info.role = NodeRole::kClient;
  info.node_id = 3;
  info.generation = 5;
  EXPECT_TRUE(scheduler_register_once("127.0.0.1", scheduler.port(), info, c).accepted);
  // Same node again at the same generation (a duplicate retry) and then at a
  // *stale* generation (a delayed frame from before its reconnect): discovery
  // is idempotent, so both are accepted and neither inflates the roster.
  EXPECT_TRUE(scheduler_register_once("127.0.0.1", scheduler.port(), info, c).accepted);
  info.generation = 2;
  EXPECT_TRUE(scheduler_register_once("127.0.0.1", scheduler.port(), info, c).accepted);
  EXPECT_EQ(scheduler.n_clients_seen(), 1);

  scheduler.stop();
}

TEST(SchedulerTest, ServerReregistrationSupersedesTheOldAddress) {
  const TransportConfig c = fast_config();
  Scheduler scheduler(c);

  RegisterInfo server_info;
  server_info.role = NodeRole::kServer;
  server_info.port = 1111;
  EXPECT_TRUE(
      scheduler_register_once("127.0.0.1", scheduler.port(), server_info, c).accepted);
  // A restarted server comes back on a fresh ephemeral data port and
  // re-registers at a bumped generation; clients discovering afterwards must
  // get the new address, never the stale one.
  server_info.port = 2222;
  server_info.generation = 1;
  EXPECT_TRUE(
      scheduler_register_once("127.0.0.1", scheduler.port(), server_info, c).accepted);

  RegisterInfo client_info;
  client_info.role = NodeRole::kClient;
  client_info.node_id = 0;
  const auto ack = scheduler_register_once("127.0.0.1", scheduler.port(), client_info, c);
  EXPECT_TRUE(ack.server_known);
  EXPECT_EQ(ack.server_port, 2222);

  scheduler.stop();
}

TEST(SchedulerTest, RegistrationAfterShutdownIsRejected) {
  const TransportConfig c = fast_config();
  Scheduler scheduler(c);

  // The server announces end-of-run...
  Socket raw = connect_to("127.0.0.1", scheduler.port(), 2000);
  send_frame(raw, tagged(MessageType::kShutdown, 0));
  // ...after which a late registration must be nacked, not recorded:
  // accepting it would strand a node waiting on a run that is already over.
  RegisterInfo info;
  info.role = NodeRole::kClient;
  info.node_id = 0;
  ASSERT_TRUE(eventually([&] {
    return !scheduler_register_once("127.0.0.1", scheduler.port(), info, c).accepted;
  }));
  EXPECT_EQ(scheduler.n_clients_seen(), 0);

  scheduler.stop();
}

TEST(SchedulerTest, RegistryRoundTripRestoresTheRoster) {
  const std::string path = ::testing::TempDir() + "fc_registry_test.txt";
  std::remove(path.c_str());
  const TransportConfig c = fast_config();
  {
    Scheduler scheduler(c);
    scheduler.enable_registry(path);
    RegisterInfo info;
    info.role = NodeRole::kClient;
    for (int id : {0, 1, 2, 1}) {  // one duplicate
      info.node_id = id;
      EXPECT_TRUE(
          scheduler_register_once("127.0.0.1", scheduler.port(), info, c).accepted);
    }
    RegisterInfo server_info;
    server_info.role = NodeRole::kServer;
    server_info.port = 1234;
    EXPECT_TRUE(
        scheduler_register_once("127.0.0.1", scheduler.port(), server_info, c).accepted);
    scheduler.stop();
  }

  // A restarted scheduler rebuilds the distinct-client roster from the file;
  // the pre-crash server address is deliberately dropped as stale (the live
  // server's session re-registers it within one heartbeat interval).
  Scheduler restarted(c);
  EXPECT_EQ(restarted.load_registry(path), 3);
  EXPECT_EQ(restarted.n_clients_seen(), 3);
  EXPECT_FALSE(restarted.server_known());
  restarted.stop();
  std::remove(path.c_str());
}

TEST(SchedulerSessionTest, SurvivesASchedulerRestart) {
  TransportConfig c = fast_config();
  c.jitter_seed = 7;
  auto scheduler = std::make_unique<Scheduler>(c);
  const std::uint16_t port = scheduler->port();

  RegisterInfo info;
  info.role = NodeRole::kServer;
  info.port = 4242;
  SchedulerSession session("127.0.0.1", port, info, c);
  EXPECT_TRUE(scheduler->server_known());

  // Kill the scheduler and bring a fresh one up on the same port: the
  // session's heartbeat loop must reconnect and re-register on its own, so
  // the new incarnation re-learns the server without the run stopping.
  scheduler.reset();
  Scheduler restarted(c, "127.0.0.1", port);
  EXPECT_TRUE(eventually([&] { return restarted.server_known(); }, 10s));

  session.notify_shutdown();
  restarted.stop();
}

// --- the full network pair --------------------------------------------------

namespace {

// Scheduler + server network + helper to spawn client networks against them.
struct Deployment {
  TransportConfig config = fast_config();
  Scheduler scheduler{config};
  SocketServerNetwork server{2, config};
  std::unique_ptr<SchedulerSession> session;

  Deployment() {
    RegisterInfo info;
    info.role = NodeRole::kServer;
    info.port = server.port();
    session = std::make_unique<SchedulerSession>("127.0.0.1", scheduler.port(), info,
                                                 config);
  }

  std::unique_ptr<SocketClientNetwork> client(int id) {
    return std::make_unique<SocketClientNetwork>(2, id, config, "127.0.0.1",
                                                 scheduler.port());
  }
};

}  // namespace

TEST(SocketNetworkPair, RegisterExchangeShutdown) {
  Deployment dep;
  auto c0 = dep.client(0);
  auto c1 = dep.client(1);
  ASSERT_TRUE(c0->wait_connected(5000));
  ASSERT_TRUE(c1->wait_connected(5000));
  ASSERT_TRUE(dep.server.wait_for_clients(2, 5000));
  EXPECT_EQ(dep.server.n_alive(), 2);

  // Server → client: a broadcast lands in the client's downlink channel.
  dep.server.send_to_client(0, tagged(MessageType::kModelBroadcast, 1, {42}));
  auto got = c0->client_recv(0);
  EXPECT_EQ(got.type, MessageType::kModelBroadcast);
  EXPECT_EQ(got.payload, (std::vector<std::uint8_t>{42}));

  // Client → server: the reply surfaces through recv_from_client_for.
  c0->send_to_server(0, tagged(MessageType::kModelUpdate, 1, {24}));
  auto reply = dep.server.recv_from_client_for(0, 5s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kModelUpdate);
  EXPECT_EQ(reply->payload, (std::vector<std::uint8_t>{24}));

  // End of run: both clients observe the shutdown broadcast.
  dep.server.broadcast_shutdown();
  EXPECT_TRUE(eventually([&] { return c0->shutdown_received(); }));
  EXPECT_TRUE(eventually([&] { return c1->shutdown_received(); }));
}

TEST(SocketNetworkPair, KilledClientIsDeclaredDeadAndShortCircuitsRecv) {
  Deployment dep;
  auto c0 = dep.client(0);
  auto c1 = dep.client(1);
  ASSERT_TRUE(c0->wait_connected(5000));
  ASSERT_TRUE(c1->wait_connected(5000));
  ASSERT_TRUE(dep.server.wait_for_clients(2, 5000));

  // Destroying the client network closes its socket — the same EOF a
  // SIGKILLed process produces. The server must notice without waiting for
  // a heartbeat timeout.
  c1.reset();
  EXPECT_TRUE(eventually([&] { return !dep.server.is_alive(1); }));

  // A dead client's collect slot resolves immediately, not after the full
  // deadline — that is what keeps degraded rounds fast.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(dep.server.recv_from_client_for(1, 10s).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2s);

  // The surviving client is unaffected.
  EXPECT_TRUE(dep.server.is_alive(0));
  dep.server.send_to_client(0, tagged(MessageType::kModelBroadcast, 2));
  EXPECT_EQ(c0->client_recv(0).round, 2u);
}

TEST(SocketNetworkPair, RestartedClientReregistersWithBumpedGeneration) {
  Deployment dep;
  auto c0 = dep.client(0);
  auto c1 = dep.client(1);
  ASSERT_TRUE(c0->wait_connected(5000));
  ASSERT_TRUE(c1->wait_connected(5000));
  ASSERT_TRUE(dep.server.wait_for_clients(2, 5000));

  c1.reset();  // "crash"
  ASSERT_TRUE(eventually([&] { return !dep.server.is_alive(1); }));

  c1 = dep.client(1);  // "restart": same id, fresh process state
  ASSERT_TRUE(c1->wait_connected(5000));
  ASSERT_TRUE(eventually([&] { return dep.server.is_alive(1); }));
  EXPECT_EQ(dep.server.n_alive(), 2);

  // The reestablished link carries traffic both ways.
  dep.server.send_to_client(1, tagged(MessageType::kModelBroadcast, 9));
  EXPECT_EQ(c1->client_recv(1).round, 9u);
  c1->send_to_server(1, tagged(MessageType::kModelUpdate, 9));
  auto reply = dep.server.recv_from_client_for(1, 5s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->round, 9u);
}

TEST(SocketNetworkPair, SilentClientDiesByHeartbeatTimeout) {
  TransportConfig c = fast_config();
  c.heartbeat_timeout_ms = 300;
  SocketServerNetwork server(1, c);

  // Hand-rolled registration with no heartbeat thread behind it: the monitor
  // must declare the client dead on staleness alone (a hung-but-connected
  // process, which EOF detection cannot see).
  Socket raw = connect_to("127.0.0.1", server.port(), 2000);
  RegisterInfo info;
  info.role = NodeRole::kClient;
  info.node_id = 0;
  send_frame(raw, tagged(MessageType::kRegister, 0, encode_register(info)));
  FrameDecoder dec;
  auto ack_msg = recv_frame(raw, dec, 2000);
  ASSERT_TRUE(ack_msg.has_value());
  ASSERT_EQ(ack_msg->type, MessageType::kRegisterAck);
  ASSERT_TRUE(decode_register_ack(ack_msg->payload).accepted);
  ASSERT_TRUE(server.wait_for_clients(1, 2000));

  EXPECT_TRUE(eventually([&] { return !server.is_alive(0); }, 3s));

  // Sends to the heartbeat-dead client are dropped, not fatal.
  server.send_to_client(0, tagged(MessageType::kModelBroadcast, 1));
}

TEST(SocketNetworkPair, RegistrationFromAFutureEpochIsRejected) {
  const TransportConfig c = fast_config();
  SocketServerNetwork server(1, c);

  // A client claiming a snapshot epoch the server never reached belongs to a
  // different failover generation — admitting it would mix timelines. The
  // nack carries the server's own epoch so the client can see how far off it
  // is (DESIGN.md §18).
  RegisterInfo info;
  info.role = NodeRole::kClient;
  info.node_id = 0;
  info.epoch = 5;
  {
    Socket raw = connect_to("127.0.0.1", server.port(), 2000);
    send_frame(raw, tagged(MessageType::kRegister, 0, encode_register(info)));
    FrameDecoder dec;
    auto ack_msg = recv_frame(raw, dec, 2000);
    ASSERT_TRUE(ack_msg.has_value());
    const auto ack = decode_register_ack(ack_msg->payload);
    EXPECT_FALSE(ack.accepted);
    EXPECT_EQ(ack.epoch, 0u);
  }
  EXPECT_EQ(server.n_alive(), 0);

  // Once the server has advanced past that epoch, the same registration
  // lands, and the ack advertises the server's current epoch.
  server.set_epoch(6);
  Socket raw = connect_to("127.0.0.1", server.port(), 2000);
  send_frame(raw, tagged(MessageType::kRegister, 0, encode_register(info)));
  FrameDecoder dec;
  auto ack_msg = recv_frame(raw, dec, 2000);
  ASSERT_TRUE(ack_msg.has_value());
  const auto ack = decode_register_ack(ack_msg->payload);
  EXPECT_TRUE(ack.accepted);
  EXPECT_EQ(ack.epoch, 6u);
  EXPECT_TRUE(server.wait_for_clients(1, 2000));
}

TEST(SocketNetworkPair, SendToServerThrowsWhileLinkIsDown) {
  // A client whose scheduler knows no server keeps retrying discovery in the
  // background; sending during that window is a typed, catchable failure.
  const TransportConfig c = fast_config();
  Scheduler scheduler(c);
  SocketClientNetwork client(1, 0, c, "127.0.0.1", scheduler.port());
  EXPECT_FALSE(client.wait_connected(100));
  EXPECT_THROW(client.send_to_server(0, tagged(MessageType::kModelUpdate, 0)),
               TransportError);
  scheduler.stop();
}
