// Fault-injection layer and degraded-mode round protocol: seeded FaultModel
// behaviour, FaultyNetwork wire semantics, and end-to-end federated runs on
// a lossy wire (ISSUE: 12 rounds at 20% dropout + 5% corruption must finish
// with quorum-gated aggregation, and the defense must still bite).
#include <gtest/gtest.h>

#include "comm/faulty_network.h"
#include "defense/pipeline.h"
#include "fl/protocol.h"
#include "fl/simulation.h"
#include "test_util.h"

using namespace fedcleanse;
using namespace fedcleanse::comm;

namespace {

Message stamped(MessageType type, std::uint32_t round,
                std::vector<std::uint8_t> payload = {1, 2, 3, 4}) {
  Message m;
  m.type = type;
  m.round = round;
  m.sender = -1;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

// A lossy-wire simulation config: the ISSUE's acceptance scenario.
fl::SimulationConfig faulty_sim_config(std::uint64_t seed = 51) {
  auto cfg = testutil::tiny_sim_config(seed);
  cfg.rounds = 12;
  cfg.fault.dropout_rate = 0.20;
  cfg.fault.corrupt_rate = 0.05;
  cfg.fault.recv_timeout_ms = 5;  // no real latency in-process; keep tests fast
  return cfg;
}

}  // namespace

// --- FaultModel -------------------------------------------------------------

TEST(FaultModel, FateSequenceIsDeterministicInSeed) {
  FaultConfig fc;
  fc.dropout_rate = 0.3;
  fc.corrupt_rate = 0.2;
  fc.duplicate_rate = 0.1;
  fc.delay_rate = 0.1;
  FaultModel a(fc, 3, 99);
  FaultModel b(fc, 3, 99);
  FaultModel c(fc, 3, 100);
  bool any_difference_vs_c = false;
  for (int i = 0; i < 200; ++i) {
    for (int client = 0; client < 3; ++client) {
      for (auto dir : {FaultModel::Direction::kDownlink, FaultModel::Direction::kUplink}) {
        const auto fa = a.next_fate(client, dir, 0);
        const auto fb = b.next_fate(client, dir, 0);
        const auto fcte = c.next_fate(client, dir, 0);
        ASSERT_EQ(fa.drop, fb.drop);
        ASSERT_EQ(fa.corrupt, fb.corrupt);
        ASSERT_EQ(fa.duplicate, fb.duplicate);
        ASSERT_EQ(fa.delay, fb.delay);
        any_difference_vs_c |= fa.drop != fcte.drop || fa.corrupt != fcte.corrupt;
      }
    }
  }
  EXPECT_TRUE(any_difference_vs_c) << "different fault seeds produced identical fates";
}

TEST(FaultModel, FateRatesTrackConfiguredProbabilities) {
  FaultConfig fc;
  fc.dropout_rate = 0.30;
  FaultModel model(fc, 1, 7);
  int drops = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    drops += model.next_fate(0, FaultModel::Direction::kUplink, 0).drop ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.30, 0.03);
}

TEST(FaultModel, CrashScheduleIsPermanentAndMinMerged) {
  FaultConfig fc;
  fc.crash_schedule = {{1, 5}, {1, 3}, {0, 0}};
  FaultModel model(fc, 2, 1);
  EXPECT_TRUE(model.crashed(0, 0));
  EXPECT_FALSE(model.crashed(1, 2));
  EXPECT_TRUE(model.crashed(1, 3));  // min of the two entries wins
  EXPECT_TRUE(model.crashed(1, 1000));
}

TEST(FaultModel, StragglerFractionPicksThatManyClients) {
  FaultConfig fc;
  fc.straggler_fraction = 0.5;
  FaultModel model(fc, 4, 13);
  int stragglers = 0;
  for (int c = 0; c < 4; ++c) stragglers += model.straggler(c) ? 1 : 0;
  EXPECT_EQ(stragglers, 2);
  // Same seed → same pick.
  FaultModel again(fc, 4, 13);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(model.straggler(c), again.straggler(c));
}

TEST(FaultModel, CorruptionAlwaysProducesADetectablyDifferentMessage) {
  FaultConfig fc;
  fc.corrupt_rate = 1.0;
  FaultModel model(fc, 1, 29);
  for (int i = 0; i < 100; ++i) {
    auto m = stamped(MessageType::kModelUpdate, 4, {10, 20, 30, 40, 50, 60, 70, 80});
    const auto original_payload = m.payload;
    const auto original_type = m.type;
    model.corrupt(m, 0, FaultModel::Direction::kUplink);
    const bool payload_changed = m.payload != original_payload;
    const bool type_changed = m.type != original_type;
    EXPECT_TRUE(payload_changed || type_changed) << "corruption was a no-op at draw " << i;
    if (payload_changed) {
      // Any payload mutation must fail the integrity check.
      EXPECT_FALSE(m.checksum_ok());
    }
  }
}

TEST(FaultModel, ValidateRejectsBadKnobs) {
  const int n_clients = 4;
  FaultConfig fc;
  fc.dropout_rate = 1.5;
  EXPECT_THROW(fc.validate(n_clients), ConfigError);
  fc = {};
  fc.min_collect_fraction = -0.1;
  EXPECT_THROW(fc.validate(n_clients), ConfigError);
  fc = {};
  fc.max_request_retries = -1;
  EXPECT_THROW(fc.validate(n_clients), ConfigError);
  fc = {};
  fc.crash_schedule = {{4, 0}};
  EXPECT_THROW(fc.validate(n_clients), ConfigError);
  fc = {};
  EXPECT_NO_THROW(fc.validate(n_clients));
}

// --- FaultyNetwork ----------------------------------------------------------

TEST(FaultyNetwork, FullDropoutEatsEveryMessage) {
  FaultConfig fc;
  fc.dropout_rate = 1.0;
  FaultyNetwork net(2, fc, 3);
  for (int i = 0; i < 5; ++i) {
    net.send_to_client(0, stamped(MessageType::kModelBroadcast, 0));
    net.send_to_server(1, stamped(MessageType::kModelUpdate, 0));
  }
  EXPECT_FALSE(net.client_try_recv(0).has_value());
  EXPECT_FALSE(net.try_recv_from_client(1).has_value());
  EXPECT_EQ(net.stats().dropped, 10u);
}

TEST(FaultyNetwork, DuplicationDeliversTwice) {
  FaultConfig fc;
  fc.duplicate_rate = 1.0;
  FaultyNetwork net(1, fc, 3);
  net.send_to_client(0, stamped(MessageType::kMaskBroadcast, 2));
  EXPECT_TRUE(net.client_try_recv(0).has_value());
  auto dup = net.client_try_recv(0);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->type, MessageType::kMaskBroadcast);
  EXPECT_TRUE(dup->checksum_ok());
  EXPECT_FALSE(net.client_try_recv(0).has_value());
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(FaultyNetwork, DelayedMessageSurfacesAfterAMissedPhase) {
  FaultConfig fc;
  fc.delay_rate = 1.0;
  FaultyNetwork net(1, fc, 3);
  net.flush_delayed();  // open the first delivery phase
  net.send_to_server(0, stamped(MessageType::kModelUpdate, 1));
  EXPECT_FALSE(net.try_recv_from_client(0).has_value());
  net.flush_delayed();  // message was delayed in the current phase: still held
  EXPECT_FALSE(net.try_recv_from_client(0).has_value());
  net.flush_delayed();  // now it is from an earlier phase: delivered, stale
  auto m = net.try_recv_from_client(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->round, 1u);
  EXPECT_EQ(net.stats().delayed, 1u);
}

TEST(FaultyNetwork, CrashedClientGoesSilentBothWays) {
  FaultConfig fc;
  fc.crash_schedule = {{0, 2}};
  FaultyNetwork net(1, fc, 3);
  net.send_to_client(0, stamped(MessageType::kModelBroadcast, 1));
  EXPECT_TRUE(net.client_try_recv(0).has_value());
  net.send_to_client(0, stamped(MessageType::kModelBroadcast, 2));
  net.send_to_server(0, stamped(MessageType::kModelUpdate, 2));
  EXPECT_FALSE(net.client_try_recv(0).has_value());
  EXPECT_FALSE(net.try_recv_from_client(0).has_value());
  EXPECT_EQ(net.stats().crashed, 2u);
}

TEST(FaultyNetwork, ZeroRatesDeliverEverythingUntouched) {
  FaultyNetwork net(1, FaultConfig{}, 3);
  const auto sent = stamped(MessageType::kRankReport, 9, {4, 5, 6});
  net.send_to_server(0, sent);
  auto got = net.try_recv_from_client(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, sent.payload);
  EXPECT_TRUE(got->checksum_ok());
  const auto st = net.stats();
  EXPECT_EQ(st.dropped + st.corrupted + st.duplicated + st.delayed + st.crashed, 0u);
}

// --- protocol helpers -------------------------------------------------------

TEST(Quorum, CountIsCeilOfFractionClampedToAtLeastOne) {
  EXPECT_EQ(fl::quorum_count(4, 0.5), 2u);
  EXPECT_EQ(fl::quorum_count(5, 0.5), 3u);  // ceil
  EXPECT_EQ(fl::quorum_count(10, 0.0), 1u);  // never zero
  EXPECT_EQ(fl::quorum_count(3, 1.0), 3u);
  EXPECT_EQ(fl::quorum_count(7, 0.01), 1u);
}

// --- end-to-end: training on a lossy wire -----------------------------------

TEST(FaultyRounds, TwelveRoundsAtTwentyPercentDropoutComplete) {
  fl::Simulation sim(faulty_sim_config());
  ASSERT_NE(sim.faulty_network(), nullptr);
  sim.run(true);  // must neither deadlock nor throw

  ASSERT_EQ(sim.history().size(), 12u);
  int valid_total = 0, faults_observed = 0, aggregated_rounds = 0;
  for (const auto& rec : sim.history()) {
    EXPECT_EQ(rec.n_participants, 4);
    EXPECT_EQ(rec.n_valid + rec.n_dropped, rec.n_participants);
    valid_total += rec.n_valid;
    faults_observed += rec.n_dropped + rec.n_corrupted + rec.n_retried;
    aggregated_rounds += rec.quorum_met ? 1 : 0;
    if (rec.quorum_met) EXPECT_GE(rec.n_valid, 2);  // ceil(0.5 · 4)
  }
  // The wire really was lossy, and the protocol really did make progress.
  EXPECT_GT(faults_observed, 0);
  EXPECT_GT(aggregated_rounds, 0);
  EXPECT_GT(valid_total, 0);
  const auto wire = sim.faulty_network()->stats();
  EXPECT_GT(wire.dropped, 0u);
  // Training still converged to something useful despite the losses: well
  // above the 10% chance floor for the 10-class synthetic set.
  EXPECT_GT(sim.history().back().test_acc, 0.3);
}

TEST(FaultyRounds, DefenseOnLossyWireStillLowersAttackSuccess) {
  auto cfg = faulty_sim_config(52);
  fl::Simulation sim(cfg);
  sim.run(false);

  defense::DefenseConfig dcfg;
  dcfg.finetune.max_rounds = 2;
  defense::DefenseReport report;
  ASSERT_NO_THROW(report = defense::run_defense(sim, dcfg));
  // Quorum was reachable (80% expected turnout), so FP ran on real reports…
  EXPECT_TRUE(report.fp_exchange.quorum_met);
  EXPECT_GE(report.fp_exchange.n_valid, 2);
  // …and the cleansing still bites: attack success does not survive the
  // pipeline any better than it does on a perfect wire.
  EXPECT_LE(report.after_aw.attack_acc, report.training.attack_acc + 1e-9);
}

TEST(FaultyRounds, FullDropoutSkipsAggregationWithoutCrashing) {
  auto cfg = testutil::tiny_sim_config(53);
  cfg.rounds = 2;
  cfg.fault.dropout_rate = 1.0;
  cfg.fault.max_request_retries = 0;
  cfg.fault.recv_timeout_ms = 2;
  fl::Simulation sim(cfg);
  const auto params_before = sim.server().params();
  sim.run(true);
  // No update ever arrived: every round is below quorum, aggregation is
  // skipped, and the global model is bit-identical to its initialization.
  EXPECT_EQ(sim.server().params(), params_before);
  for (const auto& rec : sim.history()) {
    EXPECT_FALSE(rec.quorum_met);
    EXPECT_EQ(rec.n_valid, 0);
    EXPECT_EQ(rec.n_dropped, rec.n_participants);
  }
}

TEST(FaultyRounds, DefenseBelowQuorumThrowsQuorumError) {
  auto cfg = testutil::tiny_sim_config(54);
  cfg.rounds = 1;
  fl::Simulation sim(cfg);
  sim.run(false);

  // Cut the wire after training: rebuild the simulation at full dropout so
  // the defense protocol can never reach its quorum.
  auto cut = cfg;
  cut.fault.dropout_rate = 1.0;
  cut.fault.max_request_retries = 1;
  cut.fault.recv_timeout_ms = 2;
  fl::Simulation dead(cut);
  defense::DefenseConfig dcfg;
  EXPECT_THROW(defense::federated_pruning_order(dead, dcfg), QuorumError);
  dcfg.use_client_accuracy = true;
  EXPECT_THROW(defense::run_defense(dead, dcfg), QuorumError);
}

TEST(FaultyRounds, CrashScheduleRemovesAClientMidTraining) {
  auto cfg = testutil::tiny_sim_config(55);
  cfg.rounds = 4;
  cfg.fault.crash_schedule = {{3, 2}};  // client 3 dies at round 2
  cfg.fault.recv_timeout_ms = 2;
  fl::Simulation sim(cfg);
  sim.run(true);
  ASSERT_EQ(sim.history().size(), 4u);
  EXPECT_EQ(sim.history()[0].n_valid, 4);
  EXPECT_EQ(sim.history()[1].n_valid, 4);
  EXPECT_EQ(sim.history()[2].n_valid, 3);  // crashed client never reports again
  EXPECT_EQ(sim.history()[3].n_valid, 3);
  EXPECT_TRUE(sim.history()[3].quorum_met);
}

TEST(FaultyRounds, StragglerRepliesArriveLateAndStale) {
  auto cfg = testutil::tiny_sim_config(56);
  cfg.rounds = 4;
  cfg.fault.straggler_fraction = 0.25;  // exactly one straggler out of 4
  cfg.fault.straggler_miss_rate = 1.0;  // it always misses the deadline
  cfg.fault.max_request_retries = 0;
  cfg.fault.recv_timeout_ms = 2;
  fl::Simulation sim(cfg);
  sim.run(true);
  for (const auto& rec : sim.history()) {
    EXPECT_EQ(rec.n_valid, 3) << "round " << rec.round;
    EXPECT_TRUE(rec.quorum_met);
  }
  EXPECT_GT(sim.faulty_network()->stats().delayed, 0u);
}
