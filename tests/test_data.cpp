#include <gtest/gtest.h>

#include <set>

#include "data/partition.h"
#include "data/synth.h"

using namespace fedcleanse;
using namespace fedcleanse::data;

class SynthDatasetTest : public ::testing::TestWithParam<SynthKind> {};

TEST_P(SynthDatasetTest, SizeClassesAndRange) {
  SynthConfig cfg{12, 5, 0.1};
  auto ds = make_synth(GetParam(), cfg);
  EXPECT_EQ(ds.size(), 120u);
  EXPECT_EQ(ds.num_classes(), 10);
  auto hist = ds.label_histogram();
  for (auto count : hist) EXPECT_EQ(count, 12u);
  for (std::size_t i = 0; i < ds.size(); i += 17) {
    EXPECT_GE(ds.image(i).min(), 0.0f);
    EXPECT_LE(ds.image(i).max(), 1.0f);
  }
}

TEST_P(SynthDatasetTest, DeterministicBySeed) {
  SynthConfig cfg{4, 99, 0.1};
  auto a = make_synth(GetParam(), cfg);
  auto b = make_synth(GetParam(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.image(i).storage(), b.image(i).storage());
  }
}

TEST_P(SynthDatasetTest, DifferentSeedsDiffer) {
  auto a = make_synth(GetParam(), {4, 1, 0.1});
  auto b = make_synth(GetParam(), {4, 2, 0.1});
  EXPECT_NE(a.image(0).storage(), b.image(0).storage());
}

TEST_P(SynthDatasetTest, ClassesAreSeparated) {
  // Same-class images must be closer to their class mean than to a random
  // other class mean on average — a weak but meaningful separability check.
  auto ds = make_synth(GetParam(), {20, 3, 0.05});
  std::vector<tensor::Tensor> means;
  for (int c = 0; c < 10; ++c) {
    auto idx = ds.indices_of_label(c);
    tensor::Tensor mean(ds.image(idx[0]).shape());
    for (auto i : idx) mean += ds.image(i);
    mean *= 1.0f / static_cast<float>(idx.size());
    means.push_back(std::move(mean));
  }
  int wins = 0, total = 0;
  for (int c = 0; c < 10; ++c) {
    auto idx = ds.indices_of_label(c);
    for (std::size_t k = 0; k < idx.size(); k += 5) {
      const auto& img = ds.image(idx[k]);
      auto dist = [&](const tensor::Tensor& m) {
        auto d = img;
        d -= m;
        return d.norm();
      };
      const float own = dist(means[static_cast<std::size_t>(c)]);
      const float other = dist(means[static_cast<std::size_t>((c + 5) % 10)]);
      wins += (own < other) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(wins) / total, 0.8);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SynthDatasetTest,
                         ::testing::Values(SynthKind::kDigits, SynthKind::kFashion,
                                           SynthKind::kObjects),
                         [](const auto& info) {
                           switch (info.param) {
                             case SynthKind::kDigits: return "digits";
                             case SynthKind::kFashion: return "fashion";
                             case SynthKind::kObjects: return "objects";
                           }
                           return "?";
                         });

TEST(Dataset, BatchStacking) {
  auto ds = make_synth_digits({2, 1, 0.1});
  std::vector<std::size_t> idx{0, 3, 5};
  auto batch = ds.make_batch(idx);
  EXPECT_EQ(batch.images.shape(), (tensor::Shape{3, 1, 20, 20}));
  EXPECT_EQ(batch.labels.size(), 3u);
  // First row of the batch equals the first image.
  for (int i = 0; i < 20 * 20; ++i) {
    EXPECT_EQ(batch.images[static_cast<std::size_t>(i)], ds.image(0)[static_cast<std::size_t>(i)]);
  }
}

TEST(Dataset, ShuffledBatchesCoverEverything) {
  auto ds = make_synth_digits({3, 1, 0.1});
  common::Rng rng(1);
  auto batches = ds.shuffled_batches(7, rng);
  std::set<std::size_t> seen;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 7u);
    seen.insert(b.begin(), b.end());
  }
  EXPECT_EQ(seen.size(), ds.size());
}

TEST(Dataset, SubsetAndHistogram) {
  auto ds = make_synth_digits({4, 1, 0.1});
  auto nines = ds.indices_of_label(9);
  EXPECT_EQ(nines.size(), 4u);
  auto sub = ds.subset(nines);
  for (std::size_t i = 0; i < sub.size(); ++i) EXPECT_EQ(sub.label(i), 9);
}

TEST(Dataset, AppendConcatenates) {
  auto a = make_synth_digits({2, 1, 0.1});
  auto b = make_synth_digits({3, 2, 0.1});
  const auto na = a.size();
  a.append(b);
  EXPECT_EQ(a.size(), na + b.size());
}

TEST(Dataset, RejectsOutOfRangeLabel) {
  Dataset ds(10);
  EXPECT_THROW(ds.add(tensor::Tensor(tensor::Shape{1, 2, 2}), 10), Error);
}

TEST(Dataset, RejectsMixedShapes) {
  Dataset ds(10);
  ds.add(tensor::Tensor(tensor::Shape{1, 2, 2}), 0);
  EXPECT_THROW(ds.add(tensor::Tensor(tensor::Shape{1, 3, 3}), 0), Error);
}

// --- partitioning ------------------------------------------------------------

TEST(Partition, LabelCountRespectsK) {
  auto ds = make_synth_digits({20, 3, 0.1});
  PartitionConfig cfg;
  cfg.n_clients = 10;
  cfg.labels_per_client = 3;
  cfg.seed = 5;
  auto locals = partition_k_label(ds, cfg);
  ASSERT_EQ(locals.size(), 10u);
  for (const auto& local : locals) {
    std::set<int> labels(local.labels().begin(), local.labels().end());
    EXPECT_LE(labels.size(), 3u);
    EXPECT_GE(labels.size(), 1u);
  }
}

TEST(Partition, EveryLabelCovered) {
  auto ds = make_synth_digits({20, 3, 0.1});
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    PartitionConfig cfg;
    cfg.n_clients = 10;
    cfg.labels_per_client = 3;
    cfg.seed = seed;
    auto locals = partition_k_label(ds, cfg);
    std::set<int> covered;
    for (const auto& local : locals) {
      covered.insert(local.labels().begin(), local.labels().end());
    }
    EXPECT_EQ(covered.size(), 10u) << "seed " << seed;
  }
}

TEST(Partition, EqualSamplesPerClient) {
  auto ds = make_synth_digits({30, 3, 0.1});
  PartitionConfig cfg;
  cfg.n_clients = 6;
  cfg.labels_per_client = 3;
  cfg.seed = 1;
  auto locals = partition_k_label(ds, cfg);
  for (const auto& local : locals) EXPECT_EQ(local.size(), ds.size() / 6);
}

TEST(Partition, ForcedLabelsHonored) {
  auto ds = make_synth_digits({20, 3, 0.1});
  PartitionConfig cfg;
  cfg.n_clients = 10;
  cfg.labels_per_client = 3;
  cfg.seed = 9;
  cfg.forced_labels = {{0, 9}, {1, 9}};
  auto locals = partition_k_label(ds, cfg);
  for (int c : {0, 1}) {
    bool has9 = false;
    for (int l : locals[static_cast<std::size_t>(c)].labels()) has9 |= (l == 9);
    EXPECT_TRUE(has9) << "client " << c;
  }
}

TEST(Partition, DeterministicBySeed) {
  auto ds = make_synth_digits({10, 3, 0.1});
  PartitionConfig cfg;
  cfg.n_clients = 5;
  cfg.labels_per_client = 2;
  cfg.seed = 42;
  auto a = partition_k_label(ds, cfg);
  auto b = partition_k_label(ds, cfg);
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].labels(), b[c].labels());
  }
}

TEST(Partition, PlanRejectsBadConfig) {
  common::Rng rng(1);
  EXPECT_THROW(plan_label_assignment(0, 3, 10, {}, rng), Error);
  EXPECT_THROW(plan_label_assignment(5, 11, 10, {}, rng), Error);
  EXPECT_THROW(plan_label_assignment(5, 0, 10, {}, rng), Error);
}
