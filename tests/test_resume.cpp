// Crash-resume integration: a run snapshotted at round N and restored into a
// fresh Simulation must finish bit-identical to the uninterrupted run —
// model bytes, round history, reputation scores — at any thread count, on a
// perfect or lossy wire, and through the defense pipeline (DESIGN.md §13).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/serialize.h"
#include "defense/pipeline.h"
#include "fl/run_state.h"
#include "fl/simulation.h"
#include "nn/checkpoint.h"
#include "test_util.h"

namespace fs = std::filesystem;
using fedcleanse::fl::CheckpointManager;
using fedcleanse::fl::RunSnapshot;
using fedcleanse::fl::Simulation;
using fedcleanse::testutil::tiny_sim_config;

namespace {

std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fedcleanse_resume_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::uint8_t> model_bytes(Simulation& sim) {
  return fedcleanse::nn::save_model(sim.server().model());
}

// Run `cfg` uninterrupted; also run it with a mid-run snapshot restored into
// a brand-new Simulation, and require the two endings to match exactly.
void check_train_resume_identical(fedcleanse::fl::SimulationConfig cfg,
                                  int snapshot_every, int resume_threads) {
  cfg.rounds = 6;

  Simulation straight(cfg);
  straight.run();

  // The "crashed" run: same config, snapshots every `snapshot_every` rounds.
  // The seed keeps the directory unique per caller: tests run as parallel
  // ctest processes, and two sharing a directory race remove_all against
  // load_snapshot_file.
  const std::string dir = fresh_dir("train_s" + std::to_string(cfg.seed) + "_e" +
                                    std::to_string(snapshot_every) + "_t" +
                                    std::to_string(resume_threads));
  Simulation crashed(cfg);
  CheckpointManager manager(dir, snapshot_every, /*keep=*/16);
  crashed.set_checkpoint_manager(&manager);
  crashed.run();
  ASSERT_EQ(model_bytes(crashed), model_bytes(straight));

  // Resume from the EARLIEST generation — the most replay, the strongest
  // check — into a fresh Simulation with a possibly different thread count.
  const RunSnapshot snap =
      fedcleanse::fl::load_snapshot_file(dir + "/snapshot-000000.fcrs");
  ASSERT_EQ(snap.stage, fedcleanse::fl::run_stage::kTrain);
  ASSERT_LT(snap.next_round, cfg.rounds);

  cfg.n_threads = resume_threads;
  Simulation resumed(cfg);
  fedcleanse::fl::resume_simulation(resumed, snap);
  EXPECT_EQ(resumed.completed_rounds(), snap.next_round);
  resumed.run();

  EXPECT_EQ(model_bytes(resumed), model_bytes(straight));
  EXPECT_EQ(resumed.history(), straight.history());
  EXPECT_EQ(resumed.network().total_bytes(), straight.network().total_bytes());
}

}  // namespace

TEST(Resume, TrainingBitIdenticalPerfectWire) {
  auto cfg = tiny_sim_config(21);
  cfg.n_threads = 1;
  check_train_resume_identical(cfg, /*snapshot_every=*/2, /*resume_threads=*/1);
}

TEST(Resume, TrainingBitIdenticalAcrossThreadCounts) {
  auto cfg = tiny_sim_config(22);
  cfg.n_threads = 4;
  check_train_resume_identical(cfg, /*snapshot_every=*/3, /*resume_threads=*/1);
}

TEST(Resume, TrainingBitIdenticalWithReputation) {
  auto cfg = tiny_sim_config(23);
  cfg.server.use_reputation = true;
  check_train_resume_identical(cfg, /*snapshot_every=*/2, /*resume_threads=*/2);
}

TEST(Resume, TrainingBitIdenticalOnLossyWire) {
  auto cfg = tiny_sim_config(24);
  cfg.fault.dropout_rate = 0.08;
  cfg.fault.corrupt_rate = 0.05;
  cfg.fault.duplicate_rate = 0.05;
  cfg.fault.delay_rate = 0.05;
  cfg.fault.recv_timeout_ms = 5;
  check_train_resume_identical(cfg, /*snapshot_every=*/2, /*resume_threads=*/2);
}

TEST(Resume, ClientSelectionStreamSurvivesResume) {
  // Per-round client sampling draws from the selection RNG; a resume must
  // pick exactly the clients the uninterrupted run would have picked.
  auto cfg = tiny_sim_config(25);
  cfg.clients_per_round = 2;
  check_train_resume_identical(cfg, /*snapshot_every=*/2, /*resume_threads=*/1);
}

TEST(Resume, ReputationScoresRestoredExactly) {
  auto cfg = tiny_sim_config(26);
  cfg.server.use_reputation = true;
  cfg.rounds = 5;

  Simulation straight(cfg);
  straight.run();

  const std::string dir = fresh_dir("rep");
  Simulation crashed(cfg);
  CheckpointManager manager(dir, 2, /*keep=*/8);
  crashed.set_checkpoint_manager(&manager);
  crashed.run();

  const RunSnapshot snap =
      fedcleanse::fl::load_snapshot_file(dir + "/snapshot-000000.fcrs");
  Simulation resumed(cfg);
  fedcleanse::fl::resume_simulation(resumed, snap);
  resumed.run();

  const auto* a = straight.server().reputation();
  const auto* b = resumed.server().reputation();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->reputations(), b->reputations());
}

TEST(Resume, DefensePipelineBitIdenticalFromFinetuneSnapshot) {
  // Kill during fine-tuning: resume from the first fine-tune-stage snapshot
  // and require the defense's final model to match the uninterrupted one.
  auto cfg = tiny_sim_config(27);
  cfg.rounds = 3;
  cfg.n_threads = 2;

  fedcleanse::defense::DefenseConfig dcfg;
  dcfg.method = fedcleanse::defense::PruneMethod::kMVP;
  dcfg.finetune.max_rounds = 4;
  dcfg.record_asr_traces = false;

  Simulation straight(cfg);
  straight.run();
  const auto report_straight = fedcleanse::defense::run_defense(straight, dcfg);

  const std::string dir = fresh_dir("defense");
  Simulation crashed(cfg);
  CheckpointManager manager(dir, /*every=*/1, /*keep=*/32);
  crashed.set_checkpoint_manager(&manager);
  crashed.run();
  const auto report_crashed =
      fedcleanse::defense::run_defense(crashed, dcfg, &manager, nullptr);
  ASSERT_EQ(model_bytes(crashed), model_bytes(straight));
  ASSERT_GT(report_crashed.finetune.rounds_run, 1)
      << "config produced too few fine-tune rounds to test a mid-stage resume";

  // Pick the first finetune-stage generation (training wrote the earlier
  // ones) and replay the rest of the defense from it.
  RunSnapshot snap;
  bool found = false;
  for (std::uint64_t gen = 0; !found; ++gen) {
    char name[64];
    std::snprintf(name, sizeof(name), "/snapshot-%06llu.fcrs",
                  static_cast<unsigned long long>(gen));
    const std::string path = dir + name;
    ASSERT_TRUE(fs::exists(path)) << "ran out of generations before a finetune one";
    snap = fedcleanse::fl::load_snapshot_file(path);
    found = snap.stage == fedcleanse::fl::run_stage::kFinetune;
  }
  ASSERT_LT(snap.next_round, report_crashed.finetune.rounds_run)
      << "first finetune snapshot is already the last round; resume would be trivial";

  Simulation resumed(cfg);
  fedcleanse::fl::resume_simulation(resumed, snap);
  resumed.run();  // training already complete in the snapshot: no-op
  const auto report_resumed =
      fedcleanse::defense::run_defense(resumed, dcfg, nullptr, &snap);

  EXPECT_EQ(model_bytes(resumed), model_bytes(straight));
  EXPECT_EQ(report_resumed.after_aw.test_acc, report_straight.after_aw.test_acc);
  EXPECT_EQ(report_resumed.after_aw.attack_acc, report_straight.after_aw.attack_acc);
  EXPECT_EQ(report_resumed.weights_zeroed, report_straight.weights_zeroed);
  EXPECT_EQ(report_resumed.neurons_pruned, report_straight.neurons_pruned);
  EXPECT_EQ(report_resumed.finetune.history, report_straight.finetune.history);
}

TEST(Resume, RestoreIntoMismatchedConfigThrows) {
  auto cfg = tiny_sim_config(28);
  cfg.rounds = 2;
  Simulation sim(cfg);
  sim.run();
  const RunSnapshot snap =
      fedcleanse::fl::make_run_snapshot(sim, fedcleanse::fl::run_stage::kTrain, 2);

  auto other_cfg = cfg;
  other_cfg.n_clients = cfg.n_clients + 2;
  Simulation other(other_cfg);
  EXPECT_THROW(fedcleanse::fl::resume_simulation(other, snap),
               fedcleanse::CheckpointError);
}

TEST(Resume, RepeatedResumesFromSameSnapshotAgree) {
  // On a lossy wire the fault RNG position is part of the run: every resume
  // from the same mid-run snapshot must replay identically, draw for draw.
  auto cfg = tiny_sim_config(29);
  cfg.fault.dropout_rate = 0.15;
  cfg.fault.recv_timeout_ms = 5;
  cfg.rounds = 4;

  const std::string dir = fresh_dir("repeat");
  Simulation source(cfg);
  CheckpointManager manager(dir, 2, /*keep=*/8);
  source.set_checkpoint_manager(&manager);
  source.run();
  const RunSnapshot snap =
      fedcleanse::fl::load_snapshot_file(dir + "/snapshot-000000.fcrs");
  ASSERT_LT(snap.next_round, cfg.rounds);

  auto finish = [&]() {
    Simulation sim(cfg);
    fedcleanse::fl::resume_simulation(sim, snap);
    sim.run();
    return model_bytes(sim);
  };
  EXPECT_EQ(finish(), finish());
}

// --- distributed-failover snapshots (DESIGN.md §18) -------------------------

TEST(Resume, ServerScopeSnapshotRestoresServerSideState) {
  auto cfg = tiny_sim_config(33);
  cfg.rounds = 3;
  Simulation ran(cfg);
  ran.run();

  RunSnapshot snap =
      fedcleanse::fl::make_server_snapshot(ran, ran.completed_rounds(), /*epoch=*/0);
  EXPECT_EQ(snap.stage, fedcleanse::fl::run_stage::kServerTrain);
  EXPECT_EQ(snap.epoch, 0u);

  // Through the on-disk codec, as a real failover would go.
  snap = fedcleanse::fl::decode_run_snapshot(fedcleanse::fl::encode_run_snapshot(snap));

  Simulation fresh(cfg);
  fedcleanse::fl::resume_server_simulation(fresh, snap, /*new_epoch=*/1);
  EXPECT_EQ(fresh.completed_rounds(), 3);
  EXPECT_EQ(fresh.run_epoch(), 1u);
  EXPECT_EQ(fresh.history(), ran.history());
  EXPECT_EQ(model_bytes(fresh), model_bytes(ran));
}

TEST(Resume, ServerScopeSnapshotRejectsWrongSeedOrScope) {
  auto cfg = tiny_sim_config(34);
  cfg.rounds = 2;
  Simulation ran(cfg);
  ran.run();
  const RunSnapshot snap =
      fedcleanse::fl::make_server_snapshot(ran, ran.completed_rounds(), /*epoch=*/0);

  // Same architecture, different run seed: the stage_state key must refuse.
  auto other_cfg = cfg;
  other_cfg.seed += 1;
  Simulation other(other_cfg);
  EXPECT_THROW(fedcleanse::fl::resume_server_simulation(other, snap, 1),
               fedcleanse::CheckpointError);

  // A full-run snapshot must never cross-resume through the server-scope
  // path (and vice versa): the scopes capture different state.
  const RunSnapshot full =
      fedcleanse::fl::make_run_snapshot(ran, fedcleanse::fl::run_stage::kTrain, 2);
  Simulation same(cfg);
  EXPECT_THROW(fedcleanse::fl::resume_server_simulation(same, full, 1),
               fedcleanse::CheckpointError);
}

TEST(Resume, ClientSnapshotRoundTripIsKeyedBySeedAndId) {
  auto cfg = tiny_sim_config(44);
  cfg.rounds = 2;
  Simulation ran(cfg);
  ran.run();

  RunSnapshot snap = fedcleanse::fl::make_client_snapshot(
      ran.client(1), cfg.seed, /*client_id=*/1, /*next_round=*/2, /*epoch=*/5);
  EXPECT_EQ(snap.stage, fedcleanse::fl::run_stage::kClientTrain);
  EXPECT_EQ(snap.epoch, 5u);
  snap = fedcleanse::fl::decode_run_snapshot(fedcleanse::fl::encode_run_snapshot(snap));

  Simulation fresh(cfg);
  fedcleanse::fl::restore_client_snapshot(fresh.client(1), snap, cfg.seed, 1);
  fedcleanse::common::ByteWriter a;
  fedcleanse::common::ByteWriter b;
  ran.client(1).save_state(a);
  fresh.client(1).save_state(b);
  EXPECT_EQ(a.bytes(), b.bytes());  // the restored replica is byte-exact

  // Restoring under the wrong id or the wrong run seed silently producing a
  // divergent replica is the §18 nightmare scenario — it must throw instead.
  EXPECT_THROW(
      fedcleanse::fl::restore_client_snapshot(fresh.client(0), snap, cfg.seed, 0),
      fedcleanse::CheckpointError);
  EXPECT_THROW(
      fedcleanse::fl::restore_client_snapshot(fresh.client(1), snap, cfg.seed + 1, 1),
      fedcleanse::CheckpointError);
}
