// Unit tests for the defense primitives: ranking, RAP, MVP, the pruning
// engine, and adjusting extreme weights.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "defense/activation_ranking.h"
#include "defense/adjust_weights.h"
#include "defense/majority_vote.h"
#include "defense/pruning.h"
#include "defense/rank_aggregation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model_zoo.h"
#include "tensor/ops.h"

using namespace fedcleanse;
using namespace fedcleanse::defense;
using fedcleanse::common::Rng;

TEST(Ranking, RanksFromMeans) {
  auto ranks = ranks_from_means({0.5, 0.9, 0.1});
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{2, 1, 3}));
}

TEST(Ranking, TiesBrokenByIndex) {
  auto ranks = ranks_from_means({0.5, 0.5, 0.5});
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(Ranking, PruningOrderMostDormantFirst) {
  auto order = pruning_order_from_dormancy({1.0, 3.0, 2.0});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Ranking, ValidatesReports) {
  EXPECT_TRUE(is_valid_rank_report({2, 1, 3}, 3));
  EXPECT_FALSE(is_valid_rank_report({1, 1, 3}, 3));   // duplicate
  EXPECT_FALSE(is_valid_rank_report({0, 1, 2}, 3));   // out of range
  EXPECT_FALSE(is_valid_rank_report({1, 2, 4}, 3));   // out of range
  EXPECT_FALSE(is_valid_rank_report({1, 2}, 3));      // wrong length
}

TEST(RapAggregate, MeanOfRanks) {
  auto mean = rap_aggregate({{1, 2, 3}, {3, 2, 1}}, 3);
  EXPECT_EQ(mean, (std::vector<double>{2, 2, 2}));
}

TEST(RapAggregate, IgnoresMalformedReports) {
  auto mean = rap_aggregate({{1, 2, 3}, {9, 9, 9}, {1, 2}}, 3);
  EXPECT_EQ(mean, (std::vector<double>{1, 2, 3}));
}

TEST(RapAggregate, AllInvalidThrows) {
  EXPECT_THROW(rap_aggregate({{7, 7, 7}}, 3), Error);
}

TEST(RapAggregate, MinorityAttackerInfluenceBounded) {
  // With N honest reports and 1 attacker, the attacker can move a neuron's
  // mean rank by at most (P−1)/N positions.
  const int p = 10, n_honest = 9;
  std::vector<std::uint32_t> honest(static_cast<std::size_t>(p));
  std::iota(honest.begin(), honest.end(), 1);
  std::vector<std::vector<std::uint32_t>> reports(n_honest, honest);
  auto base = rap_aggregate(reports, p);

  // Attacker promotes neuron p−1 (most dormant) to rank 1.
  auto attack = honest;
  std::swap(attack.front(), attack.back());
  reports.push_back(attack);
  auto skewed = rap_aggregate(reports, p);
  const double shift = base[static_cast<std::size_t>(p - 1)] - skewed[static_cast<std::size_t>(p - 1)];
  EXPECT_LE(shift, static_cast<double>(p - 1) / (n_honest + 1) + 1e-9);
}

TEST(RapOrder, DormantFirst) {
  // Client ranks: neuron 2 always most dormant (rank 3).
  auto order = rap_pruning_order({{1, 2, 3}, {2, 1, 3}}, 3);
  EXPECT_EQ(order.front(), 2);
}

TEST(MvpAggregate, VoteShares) {
  auto shares = mvp_aggregate({{1, 0, 0, 1}, {1, 1, 0, 0}}, 4, 0.5);
  EXPECT_EQ(shares, (std::vector<double>{1.0, 0.5, 0.0, 0.5}));
}

TEST(MvpAggregate, DiscardsWrongQuota) {
  // Second ballot votes 3 of 4 at rate 0.5 (quota 2) → discarded.
  auto shares = mvp_aggregate({{1, 1, 0, 0}, {1, 1, 1, 0}}, 4, 0.5);
  EXPECT_EQ(shares, (std::vector<double>{1.0, 1.0, 0.0, 0.0}));
}

TEST(MvpAggregate, DiscardsNonBinary) {
  auto shares = mvp_aggregate({{1, 1, 0, 0}, {2, 0, 0, 0}}, 4, 0.5);
  EXPECT_EQ(shares, (std::vector<double>{1.0, 1.0, 0.0, 0.0}));
}

TEST(MvpAggregate, AllInvalidThrows) {
  EXPECT_THROW(mvp_aggregate({{1, 1, 1, 1}}, 4, 0.5), Error);
}

TEST(MvpExpectedVotes, RoundsAndClamps) {
  EXPECT_EQ(expected_votes(10, 0.5), 5u);
  EXPECT_EQ(expected_votes(10, 0.04), 1u);   // at least one
  EXPECT_EQ(expected_votes(10, 0.99), 9u);   // never the whole layer
  EXPECT_THROW(expected_votes(10, 0.0), Error);
  EXPECT_THROW(expected_votes(10, 1.0), Error);
}

// --- pruning engine -----------------------------------------------------------

namespace {

// Model with a single conv layer whose accuracy oracle is scripted.
struct PruneFixture {
  nn::Sequential model;
  int layer_index;

  explicit PruneFixture(int channels) {
    Rng rng(5);
    layer_index = model.add(std::make_unique<nn::Conv2d>(1, channels, 3, rng));
  }
};

}  // namespace

TEST(PruneUntil, StopsAtThresholdAndReverts) {
  PruneFixture fx(8);
  // Scripted accuracy: fine until 4 neurons pruned, then below threshold.
  auto& layer = fx.model.layer(fx.layer_index);
  auto accuracy = [&] {
    int pruned = 0;
    for (int u = 0; u < 8; ++u) pruned += layer.unit_active(u) ? 0 : 1;
    return pruned <= 3 ? 0.95 : 0.80;
  };
  std::vector<int> order{0, 1, 2, 3, 4, 5};
  auto outcome = prune_until(fx.model, fx.layer_index, order, accuracy, 0.90);
  EXPECT_EQ(outcome.n_pruned, 3);
  EXPECT_TRUE(layer.unit_active(3));   // the reverted neuron
  EXPECT_FALSE(layer.unit_active(2));
  EXPECT_EQ(outcome.trace.size(), 4u);  // includes the reverted step
  EXPECT_DOUBLE_EQ(outcome.final_accuracy, 0.95);
}

TEST(PruneUntil, RevertRestoresWeightsExactly) {
  PruneFixture fx(4);
  auto* conv = dynamic_cast<nn::Conv2d*>(&fx.model.layer(fx.layer_index));
  const auto before = conv->weight().storage();
  // Any prune trips the threshold → everything reverted.
  auto outcome = prune_until(fx.model, fx.layer_index, {0, 1}, [] { return 0.0; }, 0.5);
  EXPECT_EQ(outcome.n_pruned, 0);
  EXPECT_EQ(conv->weight().storage(), before);
}

TEST(PruneUntil, NeverKillsLastUnit) {
  PruneFixture fx(3);
  std::vector<int> order{0, 1, 2};
  auto outcome = prune_until(fx.model, fx.layer_index, order, [] { return 1.0; }, 0.0);
  EXPECT_EQ(outcome.n_pruned, 2);
  EXPECT_TRUE(fx.model.layer(fx.layer_index).unit_active(2));
}

TEST(PruneUntil, RespectsMaxPrunes) {
  PruneFixture fx(8);
  auto outcome =
      prune_until(fx.model, fx.layer_index, {0, 1, 2, 3}, [] { return 1.0; }, 0.0, nullptr, 2);
  EXPECT_EQ(outcome.n_pruned, 2);
}

TEST(PruneUntil, SkipsAlreadyPruned) {
  PruneFixture fx(4);
  fx.model.layer(fx.layer_index).set_unit_active(0, false);
  auto outcome = prune_until(fx.model, fx.layer_index, {0, 1}, [] { return 1.0; }, 0.0);
  EXPECT_EQ(outcome.n_pruned, 1);  // only neuron 1 newly pruned
}

TEST(PruneUntil, BadOrderEntryThrows) {
  PruneFixture fx(4);
  EXPECT_THROW(prune_until(fx.model, fx.layer_index, {9}, [] { return 1.0; }, 0.0), Error);
}

// --- adjusting extreme weights -------------------------------------------------

TEST(AdjustWeights, OneShotBoundsSurvivors) {
  Rng rng(6);
  nn::Sequential model;
  const int li = model.add(std::make_unique<nn::Conv2d>(2, 4, 3, rng));
  auto* conv = dynamic_cast<nn::Conv2d*>(&model.layer(li));
  conv->weight().storage()[0] = 50.0f;   // plant extremes
  conv->weight().storage()[10] = -50.0f;

  const auto population = conv->active_weights();
  const auto [mu, sigma] = tensor::mean_stddev(population);
  const int zeroed = zero_extreme_weights_once(model, {li}, 2.0);
  EXPECT_GE(zeroed, 2);
  const float lo = static_cast<float>(mu - 2.0 * sigma);
  const float hi = static_cast<float>(mu + 2.0 * sigma);
  for (float w : conv->weight().data()) {
    if (w != 0.0f) {
      EXPECT_GE(w, lo);
      EXPECT_LE(w, hi);
    }
  }
}

TEST(AdjustWeights, SweepIsMonotoneAndStopsOnAccuracy) {
  Rng rng(7);
  nn::Sequential model;
  const int li = model.add(std::make_unique<nn::Conv2d>(1, 4, 3, rng));
  int evals = 0;
  AdjustConfig cfg;
  cfg.delta_start = 3.0;
  cfg.delta_step = 0.5;
  cfg.delta_min = 0.5;
  cfg.min_accuracy = 0.9;
  // Accuracy degrades with every accepted step; crosses 0.9 on eval 4.
  auto accuracy = [&] { return 1.0 - 0.03 * evals++; };
  auto outcome = adjust_extreme_weights(model, li, cfg, accuracy);
  // Cumulative zero counts never decrease along the trace.
  for (std::size_t i = 1; i < outcome.trace.size(); ++i) {
    EXPECT_GE(outcome.trace[i].weights_zeroed, outcome.trace[i - 1].weights_zeroed);
  }
  EXPECT_GE(outcome.final_accuracy, 0.9);
}

TEST(AdjustWeights, RevertsOvershootingStep) {
  Rng rng(8);
  nn::Sequential model;
  const int li = model.add(std::make_unique<nn::Conv2d>(1, 4, 3, rng));
  auto* conv = dynamic_cast<nn::Conv2d*>(&model.layer(li));
  conv->weight().storage()[0] = 40.0f;
  const auto before = conv->weight().storage();

  AdjustConfig cfg;
  cfg.delta_start = 2.0;
  cfg.delta_step = 0.5;
  cfg.delta_min = 0.5;
  cfg.min_accuracy = 0.5;
  // First evaluation (after the Δ=2 clip) is already below the floor.
  auto outcome = adjust_extreme_weights(model, li, cfg, [] { return 0.1; });
  EXPECT_EQ(outcome.weights_zeroed, 0);
  EXPECT_EQ(conv->weight().storage(), before);
}

TEST(AdjustWeights, WorksOnLinearLayers) {
  Rng rng(9);
  nn::Sequential model;
  const int li = model.add(std::make_unique<nn::Linear>(8, 8, rng));
  auto* linear = dynamic_cast<nn::Linear*>(&model.layer(li));
  linear->weight().storage()[5] = 30.0f;
  EXPECT_GE(zero_extreme_weights_once(model, {li}, 3.0), 1);
}

TEST(AdjustWeights, DefaultLayersAreConvPlusHead) {
  Rng rng(10);
  auto spec = nn::make_mnist_cnn(rng);
  auto layers = default_adjust_layers(spec.net, spec.last_conv_index);
  ASSERT_EQ(layers.size(), 3u);  // last conv + two linear layers
  EXPECT_EQ(layers[0], spec.last_conv_index);
}

TEST(AdjustWeights, RejectsNonWeightLayer) {
  Rng rng(11);
  auto spec = nn::make_mnist_cnn(rng);
  // tap_index is a ReLU — not adjustable.
  EXPECT_THROW(zero_extreme_weights_once(spec.net, {spec.tap_index}, 3.0), Error);
}
