#include <gtest/gtest.h>

#include <set>

#include "data/backdoor.h"
#include "data/synth.h"

using namespace fedcleanse;
using namespace fedcleanse::data;

TEST(BackdoorPattern, ApplySetsPixels) {
  BackdoorPattern p;
  p.pixels = {{1, 2, 1.0f, -1}, {3, 3, 0.5f, 0}};
  tensor::Tensor img(tensor::Shape{2, 5, 5});
  p.apply(img);
  EXPECT_EQ(img.at(0, 1, 2), 1.0f);
  EXPECT_EQ(img.at(1, 1, 2), 1.0f);  // channel -1 → all channels
  EXPECT_EQ(img.at(0, 3, 3), 0.5f);
  EXPECT_EQ(img.at(1, 3, 3), 0.0f);  // channel 0 only
}

TEST(BackdoorPattern, AppliedLeavesOriginalUntouched) {
  BackdoorPattern p;
  p.pixels = {{0, 0, 1.0f, -1}};
  tensor::Tensor img(tensor::Shape{1, 3, 3});
  auto stamped = p.applied(img);
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_EQ(stamped.at(0, 0, 0), 1.0f);
}

TEST(BackdoorPattern, OutOfBoundsThrows) {
  BackdoorPattern p;
  p.pixels = {{10, 10, 1.0f, -1}};
  tensor::Tensor img(tensor::Shape{1, 5, 5});
  EXPECT_THROW(p.apply(img), Error);
}

class PixelPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(PixelPatternTest, HasRequestedPixelCount) {
  auto p = make_pixel_pattern(GetParam());
  EXPECT_EQ(p.pixels.size(), static_cast<std::size_t>(GetParam()));
  // All pixels distinct.
  std::set<std::pair<int, int>> coords;
  for (const auto& px : p.pixels) coords.insert({px.y, px.x});
  EXPECT_EQ(coords.size(), p.pixels.size());
}

INSTANTIATE_TEST_SUITE_P(PaperPatterns, PixelPatternTest, ::testing::Values(1, 3, 5, 7, 9));

TEST(PixelPattern, RejectsUnsupportedSizes) {
  EXPECT_THROW(make_pixel_pattern(0), Error);
  EXPECT_THROW(make_pixel_pattern(10), Error);
}

TEST(DbaPattern, SplitPartitionsPixels) {
  auto global = make_dba_global_pattern(16, 16);
  auto parts = split_dba(global, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  std::set<std::pair<int, int>> seen;
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
    total += part.pixels.size();
    for (const auto& px : part.pixels) {
      EXPECT_TRUE(seen.insert({px.y, px.x}).second) << "pixel assigned to two attackers";
    }
  }
  EXPECT_EQ(total, global.pixels.size());
}

TEST(DbaPattern, UnionOfPartsEqualsGlobalEffect) {
  auto global = make_dba_global_pattern(16, 16);
  auto parts = split_dba(global, 4);
  tensor::Tensor via_parts(tensor::Shape{3, 16, 16});
  for (const auto& part : parts) part.apply(via_parts);
  tensor::Tensor via_global(tensor::Shape{3, 16, 16});
  global.apply(via_global);
  EXPECT_EQ(via_parts.storage(), via_global.storage());
}

TEST(DbaPattern, TooSmallCanvasThrows) {
  EXPECT_THROW(make_dba_global_pattern(4, 4), Error);
}

TEST(PoisonTrainingSet, AddsRelabeledCopies) {
  auto local = make_synth_digits({5, 1, 0.1});
  auto pattern = make_pixel_pattern(3);
  auto poisoned = poison_training_set(local, pattern, 9, 1, 2);
  // 5 victim images × 2 copies each, on top of the original 50.
  EXPECT_EQ(poisoned.size(), local.size() + 10);
  // The extra examples carry the attack label.
  auto hist_before = local.label_histogram();
  auto hist_after = poisoned.label_histogram();
  EXPECT_EQ(hist_after[1], hist_before[1] + 10);
  EXPECT_EQ(hist_after[9], hist_before[9]);
}

TEST(PoisonTrainingSet, ZeroCopiesIsOriginal) {
  auto local = make_synth_digits({3, 1, 0.1});
  auto poisoned = poison_training_set(local, make_pixel_pattern(1), 9, 0, 0);
  EXPECT_EQ(poisoned.size(), local.size());
}

TEST(BackdoorTestset, OnlyVictimImagesAllAttackLabeled) {
  auto test = make_synth_digits({6, 2, 0.1});
  auto pattern = make_pixel_pattern(5);
  auto bd = make_backdoor_testset(test, pattern, 9, 3);
  EXPECT_EQ(bd.size(), 6u);
  for (std::size_t i = 0; i < bd.size(); ++i) {
    EXPECT_EQ(bd.label(i), 3);
    // Trigger stamped.
    EXPECT_EQ(bd.image(i).at(0, pattern.pixels[0].y, pattern.pixels[0].x), 1.0f);
  }
}

TEST(BackdoorTestset, NoVictimExamplesThrows) {
  Dataset test(10);
  test.add(tensor::Tensor(tensor::Shape{1, 5, 5}), 0);
  EXPECT_THROW(make_backdoor_testset(test, make_pixel_pattern(1), 9, 0), Error);
}
