// Tests for the extension modules: checkpointing, input normalization,
// backdoor analysis, Dirichlet partitioning, reputation aggregation, and
// the evaluation metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "analysis/backdoor_analysis.h"
#include "data/normalize.h"
#include "data/partition.h"
#include "fl/metrics.h"
#include "fl/reputation.h"
#include "nn/activations.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "test_util.h"

using namespace fedcleanse;

// --- checkpointing --------------------------------------------------------------

TEST(Checkpoint, RoundTripsParametersAndMasks) {
  common::Rng rng(3);
  auto spec = nn::make_mnist_cnn(rng);
  spec.net.layer(spec.last_conv_index).set_unit_active(4, false);

  auto bytes = nn::save_model(spec);
  auto restored = nn::load_model(bytes);
  EXPECT_EQ(restored.arch, spec.arch);
  EXPECT_EQ(restored.net.get_flat(), spec.net.get_flat());
  EXPECT_EQ(restored.net.prune_masks(), spec.net.prune_masks());
  EXPECT_EQ(restored.last_conv_index, spec.last_conv_index);
}

TEST(Checkpoint, RestoredModelPredictsIdentically) {
  common::Rng rng(4);
  auto spec = nn::make_small_nn(rng);
  auto restored = nn::load_model(nn::save_model(spec));
  auto x = tensor::Tensor::rand_uniform(tensor::Shape{3, 1, 20, 20}, rng, 0.0f, 1.0f);
  EXPECT_EQ(spec.net.forward(x).storage(), restored.net.forward(x).storage());
}

TEST(Checkpoint, FileRoundTrip) {
  common::Rng rng(5);
  auto spec = nn::make_small_nn(rng);
  const std::string path = "/tmp/fedcleanse_test_ckpt.fckp";
  nn::save_model_file(spec, path);
  auto restored = nn::load_model_file(path);
  EXPECT_EQ(restored.net.get_flat(), spec.net.get_flat());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbage) {
  std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_THROW(nn::load_model(garbage), Error);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(nn::load_model_file("/nonexistent/path.fckp"), Error);
}

TEST(Checkpoint, PayloadChecksumCatchesBitFlips) {
  common::Rng rng(6);
  auto bytes = nn::save_model(nn::make_small_nn(rng));
  // Flip a sample of payload bytes (exhaustive flipping lives in the run
  // snapshot suite; the format is the same header-checksum pattern).
  for (std::size_t i = 0; i < bytes.size(); i += bytes.size() / 37 + 1) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x10;
    EXPECT_THROW(nn::load_model(corrupt), CheckpointError) << "flip at byte " << i;
  }
}

TEST(Checkpoint, TruncationThrowsCheckpointError) {
  common::Rng rng(7);
  auto bytes = nn::save_model(nn::make_small_nn(rng));
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{15},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(nn::load_model(cut), CheckpointError) << "truncated to " << len;
  }
}

TEST(Checkpoint, UnsupportedVersionRejected) {
  common::Rng rng(8);
  auto bytes = nn::save_model(nn::make_small_nn(rng));
  bytes[4] = 0x7F;  // version field follows the 4-byte magic
  EXPECT_THROW(nn::load_model(bytes), CheckpointError);
}

// --- input normalization ----------------------------------------------------------

TEST(Normalize, ClampBoundsPixels) {
  tensor::Tensor img(tensor::Shape{1, 2, 2}, {-1.0f, 0.5f, 2.0f, 1.0f});
  data::clamp_image(img);
  EXPECT_EQ(img.storage(), (std::vector<float>{0.0f, 0.5f, 1.0f, 1.0f}));
}

TEST(Normalize, RescaleMapsToUnitRange) {
  tensor::Tensor img(tensor::Shape{1, 1, 3}, {2.0f, 4.0f, 6.0f});
  data::rescale_image(img);
  EXPECT_EQ(img.storage(), (std::vector<float>{0.0f, 0.5f, 1.0f}));
}

TEST(Normalize, RescaleConstantImageIsNoop) {
  tensor::Tensor img(tensor::Shape{1, 1, 2}, {3.0f, 3.0f});
  data::rescale_image(img);
  EXPECT_EQ(img.storage(), (std::vector<float>{3.0f, 3.0f}));
}

TEST(Normalize, DatasetWideClamp) {
  data::Dataset ds(10);
  ds.add(tensor::Tensor(tensor::Shape{1, 2, 2}, {5.0f, -5.0f, 0.5f, 0.5f}), 0);
  EXPECT_FALSE(data::is_normalized(ds));
  data::normalize_dataset(ds, data::NormalizeMode::kClamp);
  EXPECT_TRUE(data::is_normalized(ds));
}

TEST(Normalize, SynthDataIsAlreadyNormalized) {
  auto ds = data::make_synth_digits({4, 1, 0.1});
  EXPECT_TRUE(data::is_normalized(ds));
}

// --- backdoor analysis -------------------------------------------------------------

TEST(Analysis, ProfileIsNonDestructive) {
  fl::Simulation sim(testutil::tiny_sim_config(61));
  sim.run(false);
  auto& model = sim.server().model();
  const auto before = model.net.get_flat();
  auto profiles = analysis::profile_channels(model, sim.test_set(), sim.backdoor_testset());
  EXPECT_EQ(model.net.get_flat(), before);
  EXPECT_EQ(static_cast<int>(profiles.size()),
            model.net.layer(model.last_conv_index).prunable_units());
  for (const auto& p : profiles) {
    EXPECT_GE(p.clean_activation, 0.0);
    EXPECT_GE(p.backdoor_activation, 0.0);
    EXPECT_NEAR(p.trigger_gap, p.backdoor_activation - p.clean_activation, 1e-12);
    EXPECT_GE(p.test_acc_without, 0.0);
    EXPECT_LE(p.test_acc_without, 1.0);
  }
}

TEST(Analysis, OracleCurveRestoresModel) {
  fl::Simulation sim(testutil::tiny_sim_config(62));
  sim.run(false);
  auto& model = sim.server().model();
  const auto before = model.net.get_flat();
  const auto masks_before = model.net.prune_masks();
  auto curve =
      analysis::oracle_prune_curve(model, sim.test_set(), sim.backdoor_testset(), 5);
  EXPECT_EQ(curve.size(), 5u);
  EXPECT_EQ(model.net.get_flat(), before);
  EXPECT_EQ(model.net.prune_masks(), masks_before);
  // Channels in the curve are distinct.
  std::set<int> channels;
  for (const auto& step : curve) channels.insert(step.channel);
  EXPECT_EQ(channels.size(), curve.size());
}

TEST(Analysis, ChannelMeansMatchAccumulatorWidth) {
  fl::Simulation sim(testutil::tiny_sim_config(63));
  auto& model = sim.server().model();
  auto means = analysis::channel_means(model, sim.test_set());
  EXPECT_EQ(static_cast<int>(means.size()),
            model.net.layer(model.last_conv_index).prunable_units());
}

// --- dirichlet partition --------------------------------------------------------------

TEST(Dirichlet, PartitionCoversAllExamples) {
  auto ds = data::make_synth_digits({20, 1, 0.1});
  auto locals = data::partition_dirichlet(ds, 5, 0.5, 7);
  std::size_t total = 0;
  for (const auto& l : locals) total += l.size();
  EXPECT_EQ(total, ds.size());
}

TEST(Dirichlet, NoClientIsEmpty) {
  auto ds = data::make_synth_digits({5, 1, 0.1});
  for (double alpha : {0.1, 1.0, 100.0}) {
    auto locals = data::partition_dirichlet(ds, 8, alpha, 3);
    for (const auto& l : locals) EXPECT_FALSE(l.empty()) << "alpha " << alpha;
  }
}

TEST(Dirichlet, SmallAlphaIsMoreSkewedThanLarge) {
  auto ds = data::make_synth_digits({40, 1, 0.1});
  auto skew = [&](double alpha) {
    auto locals = data::partition_dirichlet(ds, 10, alpha, 11);
    // Mean over clients of the max label share — 1.0 means single-label.
    double total = 0.0;
    for (const auto& l : locals) {
      auto hist = l.label_histogram();
      const double mx = static_cast<double>(*std::max_element(hist.begin(), hist.end()));
      total += mx / static_cast<double>(l.size());
    }
    return total / 10.0;
  };
  EXPECT_GT(skew(0.1), skew(100.0));
}

TEST(Dirichlet, RejectsBadConfig) {
  auto ds = data::make_synth_digits({2, 1, 0.1});
  EXPECT_THROW(data::partition_dirichlet(ds, 0, 1.0, 1), Error);
  EXPECT_THROW(data::partition_dirichlet(ds, 3, 0.0, 1), Error);
}

// --- reputation aggregation -------------------------------------------------------------

TEST(Reputation, CosineSimilarityBasics) {
  std::vector<float> a{1, 0}, b{0, 1}, c{2, 0}, d{-1, 0};
  EXPECT_NEAR(fl::cosine_similarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(fl::cosine_similarity(a, c), 1.0, 1e-9);
  EXPECT_NEAR(fl::cosine_similarity(a, d), -1.0, 1e-9);
}

TEST(Reputation, AgreementKeepsFullReputation) {
  fl::ReputationAggregator agg(3);
  std::vector<int> ids{0, 1, 2};
  std::vector<std::vector<float>> updates(3, std::vector<float>{1.0f, 1.0f});
  auto out = agg.aggregate(ids, updates);
  EXPECT_NEAR(out[0], 1.0f, 1e-5f);
  for (int c : ids) EXPECT_NEAR(agg.reputation(c), 1.0, 1e-9);
}

TEST(Reputation, OutlierLosesReputationAndInfluence) {
  fl::ReputationAggregator agg(4, /*decay=*/0.5);
  std::vector<int> ids{0, 1, 2, 3};
  // Client 0 pushes the opposite direction of everyone else, repeatedly.
  for (int round = 0; round < 6; ++round) {
    std::vector<std::vector<float>> updates{
        {-10.0f, -10.0f}, {1.0f, 1.0f}, {1.0f, 1.1f}, {0.9f, 1.0f}};
    agg.aggregate(ids, updates);
  }
  EXPECT_LT(agg.reputation(0), 0.1);
  EXPECT_GT(agg.reputation(1), 0.9);

  std::vector<std::vector<float>> updates{
      {-10.0f, -10.0f}, {1.0f, 1.0f}, {1.0f, 1.0f}, {1.0f, 1.0f}};
  auto out = agg.aggregate(ids, updates);
  EXPECT_GT(out[0], 0.5f);  // the outlier barely moves the aggregate
}

TEST(Reputation, RejectsMisalignedInput) {
  fl::ReputationAggregator agg(2);
  EXPECT_THROW(agg.aggregate({0}, {{1.0f}, {2.0f}}), Error);
  EXPECT_THROW(agg.aggregate({0, 5}, {{1.0f}, {2.0f}}), Error);
}

// --- metrics ------------------------------------------------------------------------------

TEST(Metrics, PerfectAndZeroAccuracy) {
  // A model that always predicts the input's dominant... simplest: linear
  // layer rigged to always output class 0.
  common::Rng rng(1);
  nn::Sequential net;
  net.add(std::make_unique<nn::Flatten>());
  auto linear = std::make_unique<nn::Linear>(4, 10, rng);
  linear->weight().fill(0.0f);
  linear->bias().fill(0.0f);
  linear->bias().at(0) = 10.0f;  // always class 0
  net.add(std::move(linear));

  data::Dataset all_zero(10), all_one(10);
  for (int i = 0; i < 5; ++i) {
    all_zero.add(tensor::Tensor(tensor::Shape{1, 2, 2}), 0);
    all_one.add(tensor::Tensor(tensor::Shape{1, 2, 2}), 1);
  }
  EXPECT_DOUBLE_EQ(fl::evaluate_accuracy(net, all_zero), 1.0);
  EXPECT_DOUBLE_EQ(fl::evaluate_accuracy(net, all_one), 0.0);
}

TEST(Metrics, EmptyDatasetThrows) {
  common::Rng rng(1);
  auto spec = nn::make_small_nn(rng);
  data::Dataset empty(10);
  EXPECT_THROW(fl::evaluate_accuracy(spec.net, empty), Error);
}
