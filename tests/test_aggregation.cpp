#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "fl/aggregation.h"
#include "fl/attack.h"

using namespace fedcleanse;
using namespace fedcleanse::fl;

namespace {

std::vector<std::vector<float>> identical_updates(int n, std::vector<float> u) {
  return std::vector<std::vector<float>>(static_cast<std::size_t>(n), std::move(u));
}

}  // namespace

TEST(MeanUpdate, HandComputed) {
  auto out = mean_update({{1, 2}, {3, 4}});
  EXPECT_EQ(out, (std::vector<float>{2, 3}));
}

TEST(MeanUpdate, IdentityOnIdenticalUpdates) {
  auto out = mean_update(identical_updates(5, {1.5f, -2.0f}));
  EXPECT_EQ(out, (std::vector<float>{1.5f, -2.0f}));
}

TEST(MeanUpdate, EmptyThrows) { EXPECT_THROW(mean_update({}), Error); }

TEST(MeanUpdate, DimensionMismatchThrows) {
  EXPECT_THROW(mean_update({{1, 2}, {1}}), Error);
}

TEST(Median, OddCount) {
  auto out = coordinate_median({{1, 10}, {2, 20}, {100, -5}});
  EXPECT_EQ(out, (std::vector<float>{2, 10}));
}

TEST(Median, EvenCountAverages) {
  auto out = coordinate_median({{1}, {3}, {5}, {7}});
  EXPECT_EQ(out, (std::vector<float>{4}));
}

TEST(Median, RobustToSingleOutlier) {
  // One byzantine update with a huge value barely moves the median.
  auto honest = identical_updates(9, {1.0f});
  honest.push_back({1e9f});
  auto out = coordinate_median(honest);
  EXPECT_NEAR(out[0], 1.0f, 1e-6f);
}

TEST(TrimmedMean, DropsExtremes) {
  auto out = trimmed_mean({{0}, {1}, {2}, {3}, {1000}}, 1);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
}

TEST(TrimmedMean, RejectsOverTrim) {
  EXPECT_THROW(trimmed_mean({{1}, {2}}, 1), Error);
}

TEST(Krum, SelectsClusterMember) {
  // 6 honest updates near 1.0, 2 byzantine far away → Krum (f=2) must pick
  // an honest one.
  common::Rng rng(3);
  std::vector<std::vector<float>> updates;
  for (int i = 0; i < 6; ++i) {
    std::vector<float> u(8);
    for (auto& v : u) v = 1.0f + static_cast<float>(rng.normal(0.0, 0.01));
    updates.push_back(std::move(u));
  }
  updates.push_back(std::vector<float>(8, 100.0f));
  updates.push_back(std::vector<float>(8, -100.0f));
  const auto idx = krum_index(updates, 2);
  EXPECT_LT(idx, 6u);
}

TEST(Krum, RequiresEnoughClients) {
  EXPECT_THROW(krum(identical_updates(3, {1.0f}), 2), Error);
}

TEST(MultiKrum, AveragesBestUpdates) {
  std::vector<std::vector<float>> updates = identical_updates(5, {2.0f});
  updates.push_back({1000.0f});
  auto out = multi_krum(updates, 1, 3);
  EXPECT_NEAR(out[0], 2.0f, 1e-6f);
}

TEST(Bulyan, RobustToByzantineMinority) {
  common::Rng rng(4);
  std::vector<std::vector<float>> updates;
  for (int i = 0; i < 8; ++i) {
    std::vector<float> u(4);
    for (auto& v : u) v = 1.0f + static_cast<float>(rng.normal(0.0, 0.05));
    updates.push_back(std::move(u));
  }
  updates.push_back(std::vector<float>(4, 500.0f));
  updates.push_back(std::vector<float>(4, -500.0f));
  auto out = bulyan(updates, 2);
  for (float v : out) EXPECT_NEAR(v, 1.0f, 0.2f);
}

TEST(Aggregate, DispatchesAllKinds) {
  auto updates = identical_updates(6, {1.0f, 2.0f});
  for (auto kind : {AggregatorKind::kFedAvg, AggregatorKind::kMedian,
                    AggregatorKind::kTrimmedMean, AggregatorKind::kKrum,
                    AggregatorKind::kMultiKrum, AggregatorKind::kBulyan}) {
    auto out = aggregate(kind, updates, 1);
    EXPECT_NEAR(out[0], 1.0f, 1e-6f) << aggregator_name(kind);
    EXPECT_NEAR(out[1], 2.0f, 1e-6f) << aggregator_name(kind);
  }
}

TEST(Aggregate, OrderInvariance) {
  std::vector<std::vector<float>> updates{{1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}};
  auto shuffled = updates;
  std::reverse(shuffled.begin(), shuffled.end());
  for (auto kind : {AggregatorKind::kFedAvg, AggregatorKind::kMedian,
                    AggregatorKind::kTrimmedMean}) {
    EXPECT_EQ(aggregate(kind, updates, 1), aggregate(kind, shuffled, 1))
        << aggregator_name(kind);
  }
}

// --- model replacement --------------------------------------------------------

TEST(ModelReplacement, ExactFormula) {
  std::vector<float> local{2.0f, 4.0f};
  std::vector<float> global{1.0f, 1.0f};
  auto update = model_replacement_update(local, global, 3.0);
  EXPECT_EQ(update, (std::vector<float>{3.0f, 9.0f}));
}

TEST(ModelReplacement, GammaEqualsNReplacesGlobal) {
  // With γ = N and all other deltas zero, FedAvg lands exactly on x_atk.
  const int n = 10;
  std::vector<float> global{0.5f};
  std::vector<float> x_atk{3.5f};
  std::vector<std::vector<float>> updates(n - 1, std::vector<float>{0.0f});
  updates.push_back(model_replacement_update(x_atk, global, n));
  auto agg = mean_update(updates);
  EXPECT_NEAR(global[0] + agg[0], x_atk[0], 1e-5f);
}

TEST(ModelReplacement, RejectsBadGamma) {
  std::vector<float> v{1.0f};
  EXPECT_THROW(model_replacement_update(v, v, 0.5), Error);
}

TEST(ModelReplacement, RejectsSizeMismatch) {
  std::vector<float> a{1.0f, 2.0f}, b{1.0f};
  EXPECT_THROW(model_replacement_update(a, b, 2.0), Error);
}
