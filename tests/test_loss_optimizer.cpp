#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

using namespace fedcleanse;
using namespace fedcleanse::nn;
using fedcleanse::common::Rng;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits(tensor::Shape{2, 4});  // all zeros → uniform softmax
  const float value = loss.forward(logits, {0, 3});
  EXPECT_NEAR(value, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits(tensor::Shape{1, 3}, {100.0f, 0.0f, 0.0f});
  EXPECT_LT(loss.forward(logits, {0}), 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(1);
  auto logits = tensor::Tensor::randn(tensor::Shape{3, 5}, rng);
  std::vector<int> labels{0, 2, 4};
  loss.forward(logits, labels);
  auto grad = loss.backward();

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); i += 3) {
    auto up = logits, down = logits;
    up[i] += eps;
    down[i] -= eps;
    SoftmaxCrossEntropy l2;
    const float numeric = (l2.forward(up, labels) - l2.forward(down, labels)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-3f);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  tensor::Tensor logits(tensor::Shape{1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), Error);
  EXPECT_THROW(loss.forward(logits, {-1}), Error);
  EXPECT_THROW(loss.forward(logits, {0, 1}), Error);  // size mismatch
}

TEST(SoftmaxCrossEntropy, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.backward(), Error);
}

TEST(Sgd, PlainStepIsGradientDescent) {
  Rng rng(1);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 2, rng));
  auto params = model.params();
  params[0].value->storage() = {1, 1, 1, 1};
  params[0].grad->storage() = {0.5f, 0, 0, -0.5f};
  params[1].grad->storage() = {0, 0};

  Sgd sgd(model, {0.1, 0.0});
  sgd.step();
  EXPECT_FLOAT_EQ(params[0].value->storage()[0], 0.95f);
  EXPECT_FLOAT_EQ(params[0].value->storage()[3], 1.05f);
}

TEST(Sgd, MomentumAccumulates) {
  Rng rng(1);
  Sequential model;
  model.add(std::make_unique<Linear>(1, 1, rng));
  auto params = model.params();
  params[0].value->storage() = {0.0f};

  Sgd sgd(model, {0.1, 0.9});
  params[0].grad->storage() = {1.0f};
  sgd.step();  // v=1, w=-0.1
  EXPECT_NEAR(params[0].value->storage()[0], -0.1f, 1e-6f);
  params[0].grad->storage() = {1.0f};
  sgd.step();  // v=1.9, w=-0.29
  EXPECT_NEAR(params[0].value->storage()[0], -0.29f, 1e-6f);
}

TEST(Sgd, PerLayerWeightDecay) {
  Rng rng(1);
  Sequential model;
  model.add(std::make_unique<Linear>(1, 1, rng));
  model.layer(0).weight_decay = 0.5;
  auto params = model.params();
  params[0].value->storage() = {2.0f};
  params[0].grad->storage() = {0.0f};
  params[1].grad->storage() = {0.0f};
  Sgd sgd(model, {0.1, 0.0});
  sgd.step();
  // w -= lr * wd * w = 2 − 0.1·0.5·2
  EXPECT_NEAR(params[0].value->storage()[0], 1.9f, 1e-6f);
}

TEST(Sgd, PrunedUnitsStayExactlyZero) {
  Rng rng(2);
  Sequential model;
  model.add(std::make_unique<Conv2d>(1, 4, 3, rng));
  model.layer(0).set_unit_active(2, false);

  Sgd sgd(model, {0.1, 0.9});
  // Even with externally injected gradients, the pruned channel must stay 0.
  auto params = model.params();
  for (auto& g : params[0].grad->storage()) g = 1.0f;
  for (auto& g : params[1].grad->storage()) g = 1.0f;
  sgd.step();
  auto* conv = dynamic_cast<Conv2d*>(&model.layer(0));
  const std::size_t per_channel = 9;
  for (std::size_t i = 0; i < per_channel; ++i) {
    EXPECT_EQ(conv->weight()[2 * per_channel + i], 0.0f);
  }
  EXPECT_EQ(conv->bias()[2], 0.0f);
}
