#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/rng.h"

using fedcleanse::common::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, IndexRejectsZero) { EXPECT_THROW(Rng(1).index(0), fedcleanse::Error); }

TEST(Rng, IntRangeInclusive) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.int_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IntRangeSinglePoint) { EXPECT_EQ(Rng(1).int_range(4, 4), 4); }

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(2);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleChangesOrder) {
  Rng rng(2);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(4);
  auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleAllIsFullSet) {
  Rng rng(4);
  auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(4);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), fedcleanse::Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(77), b(77);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}
