#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/rng.h"

using fedcleanse::common::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, IndexRejectsZero) { EXPECT_THROW(Rng(1).index(0), fedcleanse::Error); }

TEST(Rng, IntRangeInclusive) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.int_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IntRangeSinglePoint) { EXPECT_EQ(Rng(1).int_range(4, 4), 4); }

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(2);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleChangesOrder) {
  Rng rng(2);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(4);
  auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleAllIsFullSet) {
  Rng rng(4);
  auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(4);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), fedcleanse::Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(77), b(77);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// --- State snapshot / restore (crash-resume foundation, DESIGN.md §13) ---

using fedcleanse::common::RngState;

namespace {

// Drive one generator through a mixed sequence covering every draw kind and
// record everything it produced, so two generators can be compared exactly.
std::vector<double> mixed_draw_trace(Rng& rng, int n) {
  std::vector<double> trace;
  for (int i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0: trace.push_back(static_cast<double>(rng.next_u64() >> 11)); break;
      case 1: trace.push_back(rng.uniform()); break;
      case 2: trace.push_back(rng.uniform(-3.0, 5.0)); break;
      case 3: trace.push_back(rng.normal()); break;
      case 4: trace.push_back(static_cast<double>(rng.index(97))); break;
      case 5: trace.push_back(static_cast<double>(rng.int_range(-10, 10))); break;
      case 6: trace.push_back(rng.bernoulli(0.4) ? 1.0 : 0.0); break;
    }
  }
  return trace;
}

}  // namespace

TEST(RngState, RestoreReplaysEveryDrawKind) {
  Rng rng(2024);
  mixed_draw_trace(rng, 23);  // land at an arbitrary mid-sequence position
  const RngState saved = rng.state();
  const auto expected = mixed_draw_trace(rng, 70);

  Rng other(1);  // different seed: restore must fully overwrite
  other.restore(saved);
  EXPECT_EQ(mixed_draw_trace(other, 70), expected);
}

TEST(RngState, CachedNormalSurvivesRoundTrip) {
  // normal() produces values in pairs; snapshot between the two so the state
  // must carry the cached second value for the sequences to line up.
  Rng rng(7);
  rng.normal();  // first of a pair -> second is now cached
  const RngState saved = rng.state();
  EXPECT_TRUE(saved.has_cached_normal);
  const double expected_next = rng.normal();

  Rng other(999);
  other.restore(saved);
  EXPECT_EQ(other.normal(), expected_next);
  // And the streams stay aligned past the cache.
  Rng replay(7);
  replay.normal();
  replay.normal();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(other.next_u64(), replay.next_u64());
}

TEST(RngState, StateIsPureObservation) {
  // Taking a snapshot must not advance or disturb the stream.
  Rng a(5), b(5);
  for (int i = 0; i < 10; ++i) (void)a.state();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngState, SplitUnaffectedByRestore) {
  // A restored parent derives the same child streams as the original.
  Rng parent(31);
  mixed_draw_trace(parent, 11);
  const RngState saved = parent.state();
  Rng child_a = parent.split();

  Rng other(2);
  other.restore(saved);
  Rng child_b = other.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(RngState, CodecRoundTrip) {
  Rng rng(88);
  rng.normal();  // make the cached-normal fields non-trivial
  const RngState state = rng.state();

  fedcleanse::common::ByteWriter w;
  fedcleanse::common::write_rng_state(w, state);
  fedcleanse::common::ByteReader r(w.bytes());
  EXPECT_EQ(fedcleanse::common::read_rng_state(r), state);
  EXPECT_EQ(r.remaining(), 0u);
}
