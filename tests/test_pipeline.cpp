// Integration tests for the defense pipeline and fine-tuning on a tiny
// federation, plus the adaptive-attack staging helpers.
#include <gtest/gtest.h>

#include "defense/majority_vote.h"
#include "defense/pipeline.h"
#include "fl/adaptive_attack.h"
#include "test_util.h"

using namespace fedcleanse;
using namespace fedcleanse::defense;

namespace {

fl::SimulationConfig pipeline_config(std::uint64_t seed = 21) {
  auto cfg = testutil::tiny_sim_config(seed);
  cfg.rounds = 3;
  return cfg;
}

}  // namespace

TEST(Pipeline, RunsAllStagesAndReports) {
  fl::Simulation sim(pipeline_config());
  sim.run(false);
  DefenseConfig cfg;
  cfg.finetune.max_rounds = 2;
  auto report = run_defense(sim, cfg);

  EXPECT_GT(report.training.test_acc, 0.0);
  EXPECT_GE(report.neurons_pruned, 0);
  EXPECT_GE(report.weights_zeroed, 0);
  EXPECT_TRUE(report.phase_seconds.count("pruning"));
  EXPECT_TRUE(report.phase_seconds.count("fine-tuning"));
  EXPECT_TRUE(report.phase_seconds.count("adjust-weights"));
  // The prune mask on the live model matches the reported count.
  auto& layer = sim.server().model().net.layer(sim.server().model().last_conv_index);
  int pruned = 0;
  for (int u = 0; u < layer.prunable_units(); ++u) pruned += layer.unit_active(u) ? 0 : 1;
  EXPECT_EQ(pruned, report.neurons_pruned);
}

TEST(Pipeline, StagesCanBeDisabled) {
  fl::Simulation sim(pipeline_config(22));
  sim.run(false);
  DefenseConfig cfg;
  cfg.enable_finetune = false;
  cfg.enable_adjust_weights = false;
  auto report = run_defense(sim, cfg);
  EXPECT_EQ(report.finetune.rounds_run, 0);
  EXPECT_EQ(report.weights_zeroed, 0);
  EXPECT_FALSE(report.phase_seconds.count("fine-tuning"));
  EXPECT_EQ(report.after_ft.test_acc, report.after_fp.test_acc);
}

TEST(Pipeline, PruningNeverDropsAccuracyBelowFloor) {
  fl::Simulation sim(pipeline_config(23));
  sim.run(false);
  const double baseline = sim.server().validation_accuracy();
  DefenseConfig cfg;
  cfg.enable_finetune = false;
  cfg.enable_adjust_weights = false;
  cfg.prune_acc_drop = 0.05;
  run_defense(sim, cfg);
  EXPECT_GE(sim.server().validation_accuracy(), baseline - 0.05 - 1e-9);
}

TEST(Pipeline, ClientAccuracyOracleWorks) {
  fl::Simulation sim(pipeline_config(24));
  sim.run(false);
  DefenseConfig cfg;
  cfg.use_client_accuracy = true;  // server has no validation data
  cfg.finetune.max_rounds = 1;
  EXPECT_NO_THROW(run_defense(sim, cfg));
}

TEST(Pipeline, RapAndMvpBothProduceFullOrders) {
  fl::Simulation sim(pipeline_config(25));
  sim.run(false);
  const int units =
      sim.server().model().net.layer(sim.server().model().last_conv_index).prunable_units();
  for (auto method : {PruneMethod::kRAP, PruneMethod::kMVP}) {
    DefenseConfig cfg;
    cfg.method = method;
    auto order = federated_pruning_order(sim, cfg);
    EXPECT_EQ(static_cast<int>(order.size()), units) << prune_method_name(method);
  }
}

TEST(FineTune, BroadcastsMasksAndKeepsBest) {
  fl::Simulation sim(pipeline_config(26));
  sim.run(false);
  auto& model = sim.server().model();
  model.net.layer(model.last_conv_index).set_unit_active(1, false);

  FineTuneConfig cfg;
  cfg.max_rounds = 2;
  auto outcome = federated_finetune(sim, cfg);
  EXPECT_GE(outcome.rounds_run, 1);
  EXPECT_EQ(outcome.history.size(), static_cast<std::size_t>(outcome.rounds_run));
  // Pruned unit stayed dead through fine-tuning, on server and clients.
  EXPECT_FALSE(model.net.layer(model.last_conv_index).unit_active(1));
  for (int c : sim.all_client_ids()) {
    EXPECT_FALSE(sim.client(c).model().net.layer(model.last_conv_index).unit_active(1));
  }
}

TEST(FineTune, ScalesClientLearningRate) {
  fl::Simulation sim(pipeline_config(27));
  sim.run(false);
  const double lr_before = sim.client(1).lr();
  FineTuneConfig cfg;
  cfg.max_rounds = 1;
  cfg.lr_scale = 0.25;
  federated_finetune(sim, cfg);
  EXPECT_NEAR(sim.client(1).lr(), lr_before * 0.25, 1e-12);
}

// --- adaptive attacks -----------------------------------------------------------

TEST(AdaptiveAttack, AnticipatedMasksPruneRequestedFraction) {
  fl::Simulation sim(pipeline_config(28));
  sim.run(false);
  auto masks = fl::anticipate_prune_masks(sim, 0.5);
  const auto& model = sim.server().model();
  const auto& mask = masks[static_cast<std::size_t>(model.last_conv_index)];
  int pruned = 0;
  for (auto v : mask) pruned += v == 0 ? 1 : 0;
  EXPECT_EQ(pruned, static_cast<int>(0.5 * mask.size()));
}

TEST(AdaptiveAttack, ArmingSetsAttackerMasks) {
  auto cfg = pipeline_config(29);
  cfg.attack.adaptive = fl::AdaptiveMode::kPruneAware;
  fl::Simulation sim(cfg);
  fl::arm_prune_aware_attackers(sim, 0.5);
  // A pruning-aware attacker trains with the mask applied; its update for
  // masked channels is therefore zero.
  auto global = sim.server().params();
  auto update = sim.client(0).compute_update(global);
  // The masked conv channels contribute zero delta: spot-check via model.
  const auto& model = sim.client(0).model();
  auto& layer = model.net.layer(model.last_conv_index);
  int masked = 0;
  for (int u = 0; u < layer.prunable_units(); ++u) masked += layer.unit_active(u) ? 0 : 1;
  EXPECT_GT(masked, 0);
  (void)update;
}

TEST(AdaptiveAttack, RankManipulationPromotesBackdoorNeurons) {
  auto cfg = pipeline_config(30);
  cfg.rounds = 2;
  fl::Simulation sim(cfg);
  sim.run(false);
  auto global = sim.server().params();

  auto& attacker = sim.client(0);
  auto honest_votes = attacker.vote_report(global, 0.5);

  // Same client, adaptive mode: ballots still meet the quota.
  auto cfg2 = pipeline_config(30);
  cfg2.rounds = 2;
  cfg2.attack.adaptive = fl::AdaptiveMode::kRankManipulation;
  fl::Simulation sim2(cfg2);
  sim2.run(false);
  auto votes = sim2.client(0).vote_report(sim2.server().params(), 0.5);
  std::size_t cast = 0;
  for (auto v : votes) cast += v;
  EXPECT_EQ(cast, defense::expected_votes(static_cast<int>(votes.size()), 0.5));
  (void)honest_votes;
}

TEST(AdaptiveAttack, SelfAdjustProducesValidUpdate) {
  auto cfg = pipeline_config(31);
  cfg.attack.adaptive = fl::AdaptiveMode::kSelfAdjust;
  fl::Simulation sim(cfg);
  EXPECT_NO_THROW(sim.run(false));
}
