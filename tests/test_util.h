// Shared helpers for the fedcleanse test suite.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "fl/simulation.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace fedcleanse::testutil {

// Central-difference gradient check of a whole model against a scalar loss.
// Verifies dLoss/dParam for a sample of parameters and dLoss/dInput for a
// sample of input coordinates.
inline void check_gradients(nn::Sequential& model, const tensor::Tensor& input,
                            const std::vector<int>& labels, double tolerance = 2e-2,
                            int max_checks_per_tensor = 6) {
  nn::SoftmaxCrossEntropy loss;

  auto eval_loss = [&](const tensor::Tensor& x) {
    auto logits = model.forward(x);
    return static_cast<double>(loss.forward(logits, labels));
  };

  // Analytic gradients.
  model.zero_grad();
  auto logits = model.forward(input);
  loss.forward(logits, labels);
  auto grad_input = model.backward(loss.backward());

  const float eps = 1e-3f;

  // Parameter gradients (strided sample across each tensor).
  for (auto& p : model.params()) {
    auto values = p.value->data();
    auto grads = p.grad->data();
    const std::size_t stride =
        std::max<std::size_t>(1, values.size() / static_cast<std::size_t>(max_checks_per_tensor));
    for (std::size_t i = 0; i < values.size(); i += stride) {
      const float saved = values[i];
      values[i] = saved + eps;
      const double up = eval_loss(input);
      values[i] = saved - eps;
      const double down = eval_loss(input);
      values[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads[i], numeric, tolerance)
          << "param grad mismatch at flat index " << i;
    }
  }

  // Input gradients.
  tensor::Tensor probe = input;
  auto pv = probe.data();
  const std::size_t stride =
      std::max<std::size_t>(1, pv.size() / static_cast<std::size_t>(max_checks_per_tensor));
  for (std::size_t i = 0; i < pv.size(); i += stride) {
    const float saved = pv[i];
    pv[i] = saved + eps;
    const double up = eval_loss(probe);
    pv[i] = saved - eps;
    const double down = eval_loss(probe);
    pv[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_input.data()[i], numeric, tolerance)
        << "input grad mismatch at flat index " << i;
  }
}

// A tiny simulation configuration that trains in well under a second.
inline fl::SimulationConfig tiny_sim_config(std::uint64_t seed = 11) {
  fl::SimulationConfig cfg;
  cfg.arch = nn::Architecture::kSmallNn;
  cfg.dataset = data::SynthKind::kDigits;
  cfg.n_clients = 4;
  cfg.n_attackers = 1;
  cfg.rounds = 2;
  cfg.samples_per_class_train = 8;
  cfg.samples_per_class_test = 4;
  cfg.labels_per_client = 3;
  cfg.train.local_epochs = 1;
  cfg.train.batch_size = 16;
  cfg.attack.pattern = data::make_pixel_pattern(3);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 2.0;
  cfg.seed = seed;
  return cfg;
}

}  // namespace fedcleanse::testutil
