#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "tensor/ops.h"

using namespace fedcleanse::tensor;
using fedcleanse::common::Rng;

namespace {

// Reference convolution: the obvious quadruple loop, independent of the
// im2col production kernel.
Tensor conv_reference(const Tensor& input, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec) {
  const int n = input.shape()[0], cin = input.shape()[1], h = input.shape()[2],
            w = input.shape()[3];
  const int cout = weight.shape()[0], kh = weight.shape()[2], kw = weight.shape()[3];
  const int ho = (h + 2 * spec.padding - kh) / spec.stride + 1;
  const int wo = (w + 2 * spec.padding - kw) / spec.stride + 1;
  Tensor out(Shape{n, cout, ho, wo});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < cout; ++oc) {
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          float acc = bias.at(oc);
          for (int ic = 0; ic < cin; ++ic) {
            for (int ky = 0; ky < kh; ++ky) {
              for (int kx = 0; kx < kw; ++kx) {
                const int iy = oy * spec.stride - spec.padding + ky;
                const int ix = ox * spec.stride - spec.padding + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += input.at(b, ic, iy, ix) * weight.at(oc, ic, ky, kx);
              }
            }
          }
          out.at(b, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace

TEST(Matmul, HandComputed) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.storage(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 3});
  EXPECT_THROW(matmul(a, b), fedcleanse::Error);
}

// Property: every transpose combination agrees with explicit transposition.
class MatmulTransposeTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(MatmulTransposeTest, AgreesWithExplicitTranspose) {
  auto [ta, tb] = GetParam();
  Rng rng(31);
  const int m = 4, k = 5, n = 3;
  Tensor a = Tensor::randn(ta ? Shape{k, m} : Shape{m, k}, rng);
  Tensor b = Tensor::randn(tb ? Shape{n, k} : Shape{k, n}, rng);

  auto transpose = [](const Tensor& t) {
    Tensor out(Shape{t.shape()[1], t.shape()[0]});
    for (int i = 0; i < t.shape()[0]; ++i) {
      for (int j = 0; j < t.shape()[1]; ++j) out.at(j, i) = t.at(i, j);
    }
    return out;
  };
  Tensor a_eff = ta ? transpose(a) : a;
  Tensor b_eff = tb ? transpose(b) : b;
  auto expected = matmul(a_eff, b_eff);
  auto actual = matmul_t(a, ta, b, tb);
  ASSERT_EQ(actual.shape(), expected.shape());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MatmulTransposeTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(Conv2d, HandComputedIdentityKernel) {
  // 1x1 kernel with weight 2 and bias 1 is an affine map.
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w(Shape{1, 1, 1, 1}, {2});
  Tensor b(Shape{1}, {1});
  auto y = conv2d_forward(x, w, b, {1, 0});
  EXPECT_EQ(y.storage(), (std::vector<float>{3, 5, 7, 9}));
}

// Property sweep: production conv == reference conv across geometry.
class ConvGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};
// (cin, cout, kernel, stride, padding)

TEST_P(ConvGeometryTest, MatchesReference) {
  auto [cin, cout, kernel, stride, padding] = GetParam();
  Rng rng(17);
  Tensor x = Tensor::randn(Shape{2, cin, 7, 7}, rng);
  Tensor w = Tensor::randn(Shape{cout, cin, kernel, kernel}, rng, 0.0f, 0.5f);
  Tensor b = Tensor::randn(Shape{cout}, rng);
  Conv2dSpec spec{stride, padding};
  auto expected = conv_reference(x, w, b, spec);
  auto actual = conv2d_forward(x, w, b, spec);
  ASSERT_EQ(actual.shape(), expected.shape());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeometryTest,
                         ::testing::Values(std::make_tuple(1, 1, 3, 1, 0),
                                           std::make_tuple(1, 4, 3, 1, 1),
                                           std::make_tuple(3, 2, 3, 1, 1),
                                           std::make_tuple(2, 3, 5, 1, 2),
                                           std::make_tuple(2, 2, 3, 2, 1),
                                           std::make_tuple(4, 4, 1, 1, 0),
                                           std::make_tuple(1, 2, 5, 2, 0)));

TEST(Conv2d, BackwardMatchesFiniteDifference) {
  Rng rng(23);
  Tensor x = Tensor::randn(Shape{1, 2, 5, 5}, rng);
  Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng, 0.0f, 0.5f);
  Tensor b = Tensor::randn(Shape{3}, rng);
  Conv2dSpec spec{1, 1};

  // Scalar objective: sum of outputs → grad_output of ones.
  auto y = conv2d_forward(x, w, b, spec);
  Tensor gy = Tensor::ones(y.shape());
  auto grads = conv2d_backward(x, w, gy, spec);

  const float eps = 1e-3f;
  auto objective = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    return conv2d_forward(xx, ww, bb, spec).sum();
  };
  // Sample a few coordinates of each gradient.
  for (std::size_t i : {0u, 7u, 24u}) {
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const float numeric = (objective(xp, w, b) - objective(xm, w, b)) / (2 * eps);
    EXPECT_NEAR(grads.grad_input[i], numeric, 5e-2f);
  }
  for (std::size_t i : {0u, 10u, 35u}) {
    Tensor wp = w;
    wp[i] += eps;
    Tensor wm = w;
    wm[i] -= eps;
    const float numeric = (objective(x, wp, b) - objective(x, wm, b)) / (2 * eps);
    EXPECT_NEAR(grads.grad_weight[i], numeric, 5e-2f);
  }
  for (std::size_t i : {0u, 2u}) {
    Tensor bp = b;
    bp[i] += eps;
    Tensor bm = b;
    bm[i] -= eps;
    const float numeric = (objective(x, w, bp) - objective(x, w, bm)) / (2 * eps);
    EXPECT_NEAR(grads.grad_bias[i], numeric, 5e-2f);
  }
}

TEST(Conv2d, ShapeValidation) {
  Tensor x(Shape{1, 2, 4, 4});
  Tensor w(Shape{1, 3, 3, 3});  // channel mismatch
  Tensor b(Shape{1});
  EXPECT_THROW(conv2d_forward(x, w, b, {1, 0}), fedcleanse::Error);
}

TEST(MaxPool, ForwardHandComputed) {
  Tensor x(Shape{1, 1, 4, 4}, {1, 2, 3, 4,    //
                               5, 6, 7, 8,    //
                               9, 10, 11, 12,  //
                               13, 14, 15, 16});
  auto result = maxpool2d_forward(x, 2, 2);
  EXPECT_EQ(result.output.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(result.output.storage(), (std::vector<float>{6, 8, 14, 16}));
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Tensor x(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  auto result = maxpool2d_forward(x, 2, 2);
  Tensor gy(Shape{1, 1, 1, 1}, {5});
  auto gx = maxpool2d_backward(x.shape(), result.argmax, gy);
  EXPECT_EQ(gx.storage(), (std::vector<float>{0, 5, 0, 0}));
}

TEST(MaxPool, OverlappingStride) {
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto result = maxpool2d_forward(x, 2, 1);
  EXPECT_EQ(result.output.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(result.output.storage(), (std::vector<float>{5, 6, 8, 9}));
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(3);
  auto logits = Tensor::randn(Shape{5, 10}, rng, 0.0f, 3.0f);
  auto p = softmax_rows(logits);
  for (int i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 10; ++j) sum += p.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 3}, {1000.0f, 1000.0f, 1000.0f});
  auto p = softmax_rows(logits);
  for (float v : p.data()) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-5f);
}

TEST(Softmax, PreservesOrdering) {
  Tensor logits(Shape{1, 3}, {1.0f, 3.0f, 2.0f});
  auto p = softmax_rows(logits);
  EXPECT_GT(p.at(0, 1), p.at(0, 2));
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
}

TEST(Argmax, RowWise) {
  Tensor t(Shape{2, 3}, {0.1f, 0.9f, 0.3f, 0.7f, 0.2f, 0.1f});
  EXPECT_EQ(argmax_rows(t), (std::vector<int>{1, 0}));
}

TEST(MeanStddev, HandComputed) {
  std::vector<float> values{2, 4, 4, 4, 5, 5, 7, 9};
  auto [mean, stddev] = mean_stddev(values);
  EXPECT_DOUBLE_EQ(mean, 5.0);
  EXPECT_DOUBLE_EQ(stddev, 2.0);
}

TEST(MeanStddev, EmptyThrows) {
  std::vector<float> empty;
  EXPECT_THROW(mean_stddev(empty), fedcleanse::Error);
}

TEST(Im2colCache, ForwardCachedMatchesUncached) {
  Rng rng(11);
  Tensor x = Tensor::randn(Shape{3, 4, 6, 6}, rng);
  Tensor w = Tensor::randn(Shape{5, 4, 3, 3}, rng, 0.0f, 0.4f);
  Tensor b = Tensor::randn(Shape{5}, rng);
  Conv2dSpec spec{1, 1};
  std::vector<float> cache;
  auto cached = conv2d_forward_cached(x, w, b, spec, cache);
  auto plain = conv2d_forward(x, w, b, spec);
  EXPECT_EQ(cached.storage(), plain.storage());
  // And the cache feeds a backward identical to the uncached path.
  Tensor gy = Tensor::ones(cached.shape());
  auto g1 = conv2d_backward_cached(x, w, gy, spec, cache);
  auto g2 = conv2d_backward(x, w, gy, spec);
  EXPECT_EQ(g1.grad_weight.storage(), g2.grad_weight.storage());
  EXPECT_EQ(g1.grad_input.storage(), g2.grad_input.storage());
}
