#include <gtest/gtest.h>

#include <functional>

#include "common/serialize.h"

using namespace fedcleanse::common;
using fedcleanse::SerializationError;

TEST(Serialize, PrimitivesRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i32(-12345);
  w.write_f32(3.14159f);
  w.write_f64(-2.718281828459045);
  w.write_bool(true);
  w.write_bool(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i32(), -12345);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.14159f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.718281828459045);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.write_string("hello fedcleanse");
  w.write_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello fedcleanse");
  EXPECT_EQ(r.read_string(), "");
}

TEST(Serialize, VectorsRoundTrip) {
  ByteWriter w;
  w.write_f32_vector({1.5f, -2.5f, 0.0f});
  w.write_u32_vector({1, 2, 3, 4});
  w.write_i32_vector({-1, 0, 1});
  w.write_u8_vector({9, 8, 7});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.5f, -2.5f, 0.0f}));
  EXPECT_EQ(r.read_u32_vector(), (std::vector<std::uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(r.read_i32_vector(), (std::vector<std::int32_t>{-1, 0, 1}));
  EXPECT_EQ(r.read_u8_vector(), (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(Serialize, EmptyVectorsRoundTrip) {
  ByteWriter w;
  w.write_f32_vector({});
  w.write_u8_vector({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.read_f32_vector().empty());
  EXPECT_TRUE(r.read_u8_vector().empty());
}

TEST(Serialize, TruncatedPrimitiveThrows) {
  ByteWriter w;
  w.write_u32(42);
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u32(), SerializationError);
}

TEST(Serialize, TruncatedVectorThrows) {
  ByteWriter w;
  w.write_f32_vector({1.0f, 2.0f, 3.0f});
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);
  ByteReader r(bytes);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(Serialize, LyingLengthPrefixThrows) {
  // A vector header claiming 2^30 floats on a tiny buffer must not allocate
  // or read out of bounds.
  ByteWriter w;
  w.write_u32(1u << 30);
  w.write_f32(1.0f);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(Serialize, LyingStringLengthThrows) {
  ByteWriter w;
  w.write_u32(1000);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_string(), SerializationError);
}

TEST(Serialize, ReadPastEndThrows) {
  ByteWriter w;
  w.write_u8(1);
  ByteReader r(w.bytes());
  r.read_u8();
  EXPECT_THROW(r.read_u8(), SerializationError);
}

TEST(Serialize, RemainingTracksPosition) {
  ByteWriter w;
  w.write_u32(1);
  w.write_u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
}

// ---------------------------------------------------------------------------
// Fuzz-style hardening of the comm payload codecs: every strict prefix of a
// valid payload must throw DecodeError (never crash, hang, or allocate
// unboundedly), and every payload with trailing bytes must be rejected too —
// an oversized payload means sender and receiver disagree on the format.
// ---------------------------------------------------------------------------

#include "comm/message.h"

namespace {

using DecodeFn = std::function<void(const std::vector<std::uint8_t>&)>;

struct CodecCase {
  const char* name;
  std::vector<std::uint8_t> valid;
  DecodeFn decode;
};

std::vector<CodecCase> codec_cases() {
  using namespace fedcleanse::comm;
  std::vector<CodecCase> cases;
  cases.push_back({"flat_params", encode_flat_params({1.5f, -2.0f, 0.25f}),
                   [](const auto& p) { decode_flat_params(p); }});
  cases.push_back({"ranks", encode_ranks({3, 1, 2, 4}),
                   [](const auto& p) { decode_ranks(p); }});
  cases.push_back({"votes", encode_votes({1, 0, 1, 1, 0}),
                   [](const auto& p) { decode_votes(p); }});
  cases.push_back({"vote_request", encode_vote_request(0.5),
                   [](const auto& p) { decode_vote_request(p); }});
  cases.push_back({"masks", encode_masks({{1, 0, 1}, {}, {0, 0}}),
                   [](const auto& p) { decode_masks(p); }});
  cases.push_back({"accuracy", encode_accuracy(0.875),
                   [](const auto& p) { decode_accuracy(p); }});
  return cases;
}

}  // namespace

TEST(CodecFuzz, EveryTruncationThrowsDecodeError) {
  for (const auto& c : codec_cases()) {
    for (std::size_t len = 0; len < c.valid.size(); ++len) {
      std::vector<std::uint8_t> cut(c.valid.begin(),
                                    c.valid.begin() + static_cast<long>(len));
      EXPECT_THROW(c.decode(cut), fedcleanse::comm::DecodeError)
          << c.name << " truncated to " << len << "/" << c.valid.size() << " bytes";
    }
  }
}

TEST(CodecFuzz, TrailingBytesThrowDecodeError) {
  for (const auto& c : codec_cases()) {
    auto oversized = c.valid;
    oversized.push_back(0xEE);
    EXPECT_THROW(c.decode(oversized), fedcleanse::comm::DecodeError) << c.name;
    oversized.insert(oversized.end(), 7, 0xEE);
    EXPECT_THROW(c.decode(oversized), fedcleanse::comm::DecodeError) << c.name;
  }
}

TEST(CodecFuzz, LyingMaskCountDoesNotAllocate) {
  // A masks payload whose count field claims 2^30 entries must be rejected
  // before the per-mask vector is sized (a ~96 GB allocation otherwise).
  ByteWriter w;
  w.write_u32(1u << 30);
  w.write_u8_vector({1, 0});
  EXPECT_THROW(fedcleanse::comm::decode_masks(w.take()),
               fedcleanse::comm::DecodeError);
}

TEST(CodecFuzz, DecodeErrorIsSerializationError) {
  // Callers that only care about "bad bytes" keep catching the base type.
  const std::vector<std::uint8_t> garbage{9, 9};
  EXPECT_THROW(fedcleanse::comm::decode_ranks(garbage), SerializationError);
}
