#include <gtest/gtest.h>

#include <functional>

#include "common/serialize.h"

using namespace fedcleanse::common;
using fedcleanse::SerializationError;

TEST(Serialize, PrimitivesRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i32(-12345);
  w.write_f32(3.14159f);
  w.write_f64(-2.718281828459045);
  w.write_bool(true);
  w.write_bool(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i32(), -12345);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.14159f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.718281828459045);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.write_string("hello fedcleanse");
  w.write_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello fedcleanse");
  EXPECT_EQ(r.read_string(), "");
}

TEST(Serialize, VectorsRoundTrip) {
  ByteWriter w;
  w.write_f32_vector({1.5f, -2.5f, 0.0f});
  w.write_u32_vector({1, 2, 3, 4});
  w.write_i32_vector({-1, 0, 1});
  w.write_u8_vector({9, 8, 7});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.5f, -2.5f, 0.0f}));
  EXPECT_EQ(r.read_u32_vector(), (std::vector<std::uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(r.read_i32_vector(), (std::vector<std::int32_t>{-1, 0, 1}));
  EXPECT_EQ(r.read_u8_vector(), (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(Serialize, EmptyVectorsRoundTrip) {
  ByteWriter w;
  w.write_f32_vector({});
  w.write_u8_vector({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.read_f32_vector().empty());
  EXPECT_TRUE(r.read_u8_vector().empty());
}

TEST(Serialize, TruncatedPrimitiveThrows) {
  ByteWriter w;
  w.write_u32(42);
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u32(), SerializationError);
}

TEST(Serialize, TruncatedVectorThrows) {
  ByteWriter w;
  w.write_f32_vector({1.0f, 2.0f, 3.0f});
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);
  ByteReader r(bytes);
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(Serialize, LyingLengthPrefixThrows) {
  // A vector header claiming 2^30 floats on a tiny buffer must not allocate
  // or read out of bounds.
  ByteWriter w;
  w.write_u32(1u << 30);
  w.write_f32(1.0f);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(Serialize, LyingStringLengthThrows) {
  ByteWriter w;
  w.write_u32(1000);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_string(), SerializationError);
}

TEST(Serialize, ReadPastEndThrows) {
  ByteWriter w;
  w.write_u8(1);
  ByteReader r(w.bytes());
  r.read_u8();
  EXPECT_THROW(r.read_u8(), SerializationError);
}

TEST(Serialize, RemainingTracksPosition) {
  ByteWriter w;
  w.write_u32(1);
  w.write_u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
}

// ---------------------------------------------------------------------------
// Fuzz-style hardening of the comm payload codecs: every strict prefix of a
// valid payload must throw DecodeError (never crash, hang, or allocate
// unboundedly), and every payload with trailing bytes must be rejected too —
// an oversized payload means sender and receiver disagree on the format.
// ---------------------------------------------------------------------------

#include "comm/message.h"

namespace {

using DecodeFn = std::function<void(const std::vector<std::uint8_t>&)>;

struct CodecCase {
  const char* name;
  std::vector<std::uint8_t> valid;
  DecodeFn decode;
};

std::vector<CodecCase> codec_cases() {
  using namespace fedcleanse::comm;
  std::vector<CodecCase> cases;
  cases.push_back({"flat_params", encode_flat_params({1.5f, -2.0f, 0.25f}),
                   [](const auto& p) { decode_flat_params(p); }});
  cases.push_back({"ranks", encode_ranks({3, 1, 2, 4}),
                   [](const auto& p) { decode_ranks(p); }});
  cases.push_back({"votes", encode_votes({1, 0, 1, 1, 0}),
                   [](const auto& p) { decode_votes(p); }});
  cases.push_back({"vote_request", encode_vote_request(0.5),
                   [](const auto& p) { decode_vote_request(p); }});
  cases.push_back({"masks", encode_masks({{1, 0, 1}, {}, {0, 0}}),
                   [](const auto& p) { decode_masks(p); }});
  cases.push_back({"accuracy", encode_accuracy(0.875),
                   [](const auto& p) { decode_accuracy(p); }});
  return cases;
}

}  // namespace

TEST(CodecFuzz, EveryTruncationThrowsDecodeError) {
  for (const auto& c : codec_cases()) {
    for (std::size_t len = 0; len < c.valid.size(); ++len) {
      std::vector<std::uint8_t> cut(c.valid.begin(),
                                    c.valid.begin() + static_cast<long>(len));
      EXPECT_THROW(c.decode(cut), fedcleanse::comm::DecodeError)
          << c.name << " truncated to " << len << "/" << c.valid.size() << " bytes";
    }
  }
}

TEST(CodecFuzz, TrailingBytesThrowDecodeError) {
  for (const auto& c : codec_cases()) {
    auto oversized = c.valid;
    oversized.push_back(0xEE);
    EXPECT_THROW(c.decode(oversized), fedcleanse::comm::DecodeError) << c.name;
    oversized.insert(oversized.end(), 7, 0xEE);
    EXPECT_THROW(c.decode(oversized), fedcleanse::comm::DecodeError) << c.name;
  }
}

TEST(CodecFuzz, LyingMaskCountDoesNotAllocate) {
  // A masks payload whose count field claims 2^30 entries must be rejected
  // before the per-mask vector is sized (a ~96 GB allocation otherwise).
  ByteWriter w;
  w.write_u32(1u << 30);
  w.write_u8_vector({1, 0});
  EXPECT_THROW(fedcleanse::comm::decode_masks(w.take()),
               fedcleanse::comm::DecodeError);
}

TEST(CodecFuzz, DecodeErrorIsSerializationError) {
  // Callers that only care about "bad bytes" keep catching the base type.
  const std::vector<std::uint8_t> garbage{9, 9};
  EXPECT_THROW(fedcleanse::comm::decode_ranks(garbage), SerializationError);
}

// ---------------------------------------------------------------------------
// Frame-decoding fuzz: the socket transport's length-prefixed framing must
// reject truncated, oversized, and garbage length prefixes with typed errors,
// surface in-frame corruption (checksum mismatch) as DecodeError, poison
// itself after any framing error (a desynced TCP stream is dead), and never
// hand out a Message assembled from a partial read.
// ---------------------------------------------------------------------------

#include "comm/frame.h"

namespace {

fedcleanse::comm::Message frame_msg(std::uint32_t round,
                                    std::vector<std::uint8_t> payload) {
  fedcleanse::comm::Message m;
  m.type = fedcleanse::comm::MessageType::kModelUpdate;
  m.round = round;
  m.sender = 3;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

std::vector<std::uint8_t> length_prefix(std::uint32_t len) {
  return {static_cast<std::uint8_t>(len & 0xff),
          static_cast<std::uint8_t>((len >> 8) & 0xff),
          static_cast<std::uint8_t>((len >> 16) & 0xff),
          static_cast<std::uint8_t>((len >> 24) & 0xff)};
}

}  // namespace

TEST(FrameFuzz, ByteAtATimeFeedNeverYieldsPartialMessage) {
  using namespace fedcleanse::comm;
  const std::vector<Message> sent = {
      frame_msg(1, {1, 2, 3}), frame_msg(2, {}),
      frame_msg(3, std::vector<std::uint8_t>(257, 0xAB))};
  std::vector<std::uint8_t> stream;
  std::vector<std::size_t> boundaries;  // stream offset where each frame ends
  for (const auto& m : sent) {
    const auto frame = encode_frame(m);
    stream.insert(stream.end(), frame.begin(), frame.end());
    boundaries.push_back(stream.size());
  }
  FrameDecoder dec;
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    dec.feed(&stream[i], 1);
    auto m = dec.next();
    const bool at_boundary =
        decoded < boundaries.size() && i + 1 == boundaries[decoded];
    if (at_boundary) {
      ASSERT_TRUE(m.has_value()) << "frame " << decoded << " complete but not decoded";
      EXPECT_EQ(m->round, sent[decoded].round);
      EXPECT_EQ(m->payload, sent[decoded].payload);
      EXPECT_TRUE(m->checksum_ok());
      ++decoded;
    } else {
      ASSERT_FALSE(m.has_value()) << "message produced from a partial frame at byte " << i;
    }
  }
  EXPECT_EQ(decoded, sent.size());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(FrameFuzz, EveryTruncationStaysPendingNotPartial) {
  using namespace fedcleanse::comm;
  const auto frame = encode_frame(frame_msg(7, {9, 9, 9}));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(frame.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "cut at " << cut;
    EXPECT_EQ(dec.buffered(), cut);
  }
}

TEST(FrameFuzz, UndersizedLengthPrefixThrowsTransportError) {
  using namespace fedcleanse::comm;
  // A frame body can never be smaller than one message header.
  for (std::uint32_t len : {0u, 1u, static_cast<std::uint32_t>(kMessageHeaderBytes) - 1}) {
    FrameDecoder dec;
    const auto prefix = length_prefix(len);
    dec.feed(prefix.data(), prefix.size());
    EXPECT_THROW(dec.next(), TransportError) << "len=" << len;
  }
}

TEST(FrameFuzz, OversizedLengthPrefixThrowsBeforeBuffering) {
  using namespace fedcleanse::comm;
  // A Byzantine peer claiming a 4 GiB frame must be rejected from the prefix
  // alone — before any frame-sized allocation or further buffering.
  FrameDecoder dec(/*max_frame_bytes=*/1024);
  const auto prefix = length_prefix(0xFFFFFFFFu);
  dec.feed(prefix.data(), prefix.size());
  EXPECT_THROW(dec.next(), TransportError);
  // The framing error is terminal: even a pristine frame is refused now.
  const auto good = encode_frame(frame_msg(1, {4, 2}));
  dec.feed(good.data(), good.size());
  EXPECT_THROW(dec.next(), TransportError);
}

TEST(FrameFuzz, ChecksumMismatchIsDecodeErrorAndPoisons) {
  using namespace fedcleanse::comm;
  auto frame = encode_frame(frame_msg(5, {10, 20, 30, 40}));
  frame.back() ^= 0x01;  // corrupt the last payload byte inside the frame
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  EXPECT_THROW(dec.next(), DecodeError);
  const auto good = encode_frame(frame_msg(6, {1}));
  dec.feed(good.data(), good.size());
  EXPECT_THROW(dec.next(), TransportError);  // poisoned: stream is desynced
}

TEST(FrameFuzz, RandomGarbageNeverCrashesOrLoops) {
  using namespace fedcleanse::comm;
  // Deterministic LCG (no ambient RNG in tests): arbitrary junk fed in
  // arbitrary chunk sizes must always end in a typed error or a pending
  // partial frame — never a crash, hang, or fabricated Message.
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  const auto rnd = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(s >> 33);
  };
  for (int iter = 0; iter < 200; ++iter) {
    FrameDecoder dec(/*max_frame_bytes=*/4096);
    std::vector<std::uint8_t> junk(1 + rnd() % 512);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rnd() & 0xff);
    bool dead = false;
    std::size_t off = 0;
    while (off < junk.size() && !dead) {
      std::size_t chunk = 1 + rnd() % 64;
      if (chunk > junk.size() - off) chunk = junk.size() - off;
      dec.feed(junk.data() + off, chunk);
      off += chunk;
      try {
        while (dec.next().has_value()) {
          // A junk buffer that happens to frame-align into a valid message is
          // astronomically unlikely but legal; keep draining.
        }
      } catch (const fedcleanse::CommError&) {
        dead = true;  // TransportError or DecodeError — both acceptable
      }
    }
  }
}

// --- fleet-observability wire codecs (DESIGN.md §17) -------------------------

TEST(HeartbeatStatusCodec, RoundTrip) {
  using namespace fedcleanse::comm;
  HeartbeatStatus s;
  s.round = 41;
  s.wire_bytes = 0x1234567890ULL;
  s.peak_rss = 7ULL << 30;  // 7 GiB: must survive past 32 bits
  const auto bytes = encode_heartbeat_status(s);
  const auto back = decode_heartbeat_status(bytes);
  EXPECT_EQ(back.round, s.round);
  EXPECT_EQ(back.wire_bytes, s.wire_bytes);
  EXPECT_EQ(back.peak_rss, s.peak_rss);
}

TEST(HeartbeatStatusCodec, EveryTruncationAndTrailingByteThrows) {
  using namespace fedcleanse::comm;
  using fedcleanse::comm::DecodeError;
  HeartbeatStatus s;
  s.round = 3;
  s.wire_bytes = 999;
  s.peak_rss = 1 << 20;
  const auto bytes = encode_heartbeat_status(s);
  ASSERT_FALSE(bytes.empty());
  // A scheduler must never crash (or mis-aggregate) on a torn beacon: every
  // strict prefix is rejected as malformed, never zero-filled.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(decode_heartbeat_status(trunc), DecodeError) << "cut at " << cut;
  }
  auto padded = bytes;
  padded.push_back(0x00);
  EXPECT_THROW(decode_heartbeat_status(padded), DecodeError);
}

TEST(MessageCodec, CorrelationIdSurvivesTheWire) {
  using namespace fedcleanse::comm;
  Message m;
  m.type = MessageType::kRankRequest;
  m.round = 5;
  m.sender = -1;
  m.correlation = 0xCAFEF00Du;
  m.payload = {1, 2, 3};
  m.stamp();
  const auto bytes = encode_message(m);
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = decode_message(bytes);
  EXPECT_EQ(back.correlation, m.correlation);
  EXPECT_TRUE(back.checksum_ok());
}

TEST(MessageCodec, ScopedCorrelationNestsAndRestores) {
  using namespace fedcleanse::comm;
  // Ids are ambient state read by the server's message factory; the RAII
  // guard must restore the enclosing exchange's id (or 0) on every exit.
  EXPECT_EQ(current_correlation_id(), 0u);
  const std::uint32_t a = next_correlation_id();
  const std::uint32_t b = next_correlation_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  {
    ScopedCorrelation outer(a);
    EXPECT_EQ(current_correlation_id(), a);
    {
      ScopedCorrelation inner(b);
      EXPECT_EQ(current_correlation_id(), b);
    }
    EXPECT_EQ(current_correlation_id(), a);
  }
  EXPECT_EQ(current_correlation_id(), 0u);
}
