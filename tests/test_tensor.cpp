#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/tensor.h"

using namespace fedcleanse::tensor;
using fedcleanse::Error;
using fedcleanse::ShapeError;
using fedcleanse::common::Rng;

TEST(Shape, NumelAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[1], 3);
}

TEST(Shape, EmptyShapeHasZeroNumel) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
}

TEST(Shape, NonPositiveDimensionThrows) {
  EXPECT_THROW(Shape({2, 0}), Error);
  EXPECT_THROW(Shape({-1}), Error);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndOnes) {
  auto t = Tensor::full(Shape{4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  auto o = Tensor::ones(Shape{2, 2});
  EXPECT_EQ(o.sum(), 4.0f);
}

TEST(Tensor, DataSizeMatchesShape) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f, 2.0f}), Error);
}

TEST(Tensor, MultiDimAccessors) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(1, 2), 7.0f);
  EXPECT_EQ(t[5], 7.0f);  // row-major

  Tensor t4(Shape{2, 2, 2, 2});
  t4.at(1, 1, 1, 1) = 3.0f;
  EXPECT_EQ(t4[15], 3.0f);
}

TEST(Tensor, RankCheckedAccessors) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(1), Error);
  EXPECT_THROW(t.at(1, 1, 1), Error);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 6});
  auto r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_THROW(t.reshaped(Shape{5}), Error);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a.storage(), (std::vector<float>{11, 22, 33}));
  a -= b;
  EXPECT_EQ(a.storage(), (std::vector<float>{1, 2, 3}));
  a *= b;
  EXPECT_EQ(a.storage(), (std::vector<float>{10, 40, 90}));
  a *= 0.5f;
  EXPECT_EQ(a.storage(), (std::vector<float>{5, 20, 45}));
  a += 1.0f;
  EXPECT_EQ(a.storage(), (std::vector<float>{6, 21, 46}));
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a += b, ShapeError);
  EXPECT_THROW(a -= b, ShapeError);
  EXPECT_THROW(a *= b, ShapeError);
  EXPECT_THROW(a.add_scaled(b, 1.0f), ShapeError);
}

TEST(Tensor, AddScaled) {
  Tensor a(Shape{2}, {1, 1});
  Tensor b(Shape{2}, {2, 4});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a.storage(), (std::vector<float>{2, 3}));
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, {-1, 2, 3, -4});
  EXPECT_EQ(t.sum(), 0.0f);
  EXPECT_EQ(t.mean(), 0.0f);
  EXPECT_EQ(t.min(), -4.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(1.0f + 4 + 9 + 16));
}

TEST(Tensor, RandnMoments) {
  Rng rng(1);
  auto t = Tensor::randn(Shape{10000}, rng, 1.0f, 0.5f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.03f);
}

TEST(Tensor, RandUniformBounds) {
  Rng rng(1);
  auto t = Tensor::rand_uniform(Shape{1000}, rng, -1.0f, 1.0f);
  EXPECT_GE(t.min(), -1.0f);
  EXPECT_LT(t.max(), 1.0f);
}

TEST(Tensor, SerializeRoundTrip) {
  Rng rng(5);
  auto t = Tensor::randn(Shape{3, 4, 5}, rng);
  fedcleanse::common::ByteWriter w;
  t.serialize(w);
  fedcleanse::common::ByteReader r(w.bytes());
  auto back = Tensor::deserialize(r);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back.storage(), t.storage());
}

TEST(Tensor, DeserializeRejectsAbsurdRank) {
  fedcleanse::common::ByteWriter w;
  w.write_u32(1000);
  fedcleanse::common::ByteReader r(w.bytes());
  EXPECT_THROW(Tensor::deserialize(r), Error);
}

TEST(Tensor, FreeFunctionArithmetic) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{2}, {3, 4});
  EXPECT_EQ((a + b).storage(), (std::vector<float>{4, 6}));
  EXPECT_EQ((b - a).storage(), (std::vector<float>{2, 2}));
  EXPECT_EQ((a * 3.0f).storage(), (std::vector<float>{3, 6}));
}
