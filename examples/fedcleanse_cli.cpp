// fedcleanse_cli — flag-driven experiment runner.
//
// Configure the dataset, attack, and defense from the command line, train a
// federated model, run the cleanse pipeline, and optionally checkpoint the
// cleansed model to disk.
//
// Examples:
//   fedcleanse_cli --dataset digits --rounds 25 --attackers 1 --gamma 5
//                  --victim 9 --target 1 --pixels 5 --method mvp
//   fedcleanse_cli --dataset objects --dba --attackers 4 --save model.fckp
//   fedcleanse_cli --dataset fashion --no-finetune --rap
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/logging.h"
#include "defense/pipeline.h"
#include "fl/run_state.h"
#include "fl/simulation.h"
#include "nn/checkpoint.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace fedcleanse;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --dataset digits|fashion|objects   task (default digits)\n"
      "  --clients N        number of clients (default 10)\n"
      "  --attackers N      number of malicious clients (default 1)\n"
      "  --rounds N         training rounds (default 25)\n"
      "  --labels K         labels per client, non-IID (default 3)\n"
      "  --select N         clients sampled per round (default: all)\n"
      "  --samples-per-client N  local dataset size (default: even split)\n"
      "  --residency auto|materialized|virtual  client storage engine\n"
      "                     (auto = virtual for sampled populations >= 4096;\n"
      "                     e.g. --clients 1000000 --select 10 stays O(cohort))\n"
      "  --gamma G          model replacement amplification (default 5)\n"
      "  --victim L         victim label (default 9)\n"
      "  --target L         attack label (default 1)\n"
      "  --pixels N         trigger pixel count 1|3|5|7|9 (default 5)\n"
      "  --dba              split the trigger across attackers (DBA)\n"
      "  --rap | --mvp      pruning method (default mvp)\n"
      "  --prune-rate P     MVP vote rate (default 0.5)\n"
      "  --no-finetune      skip the fine-tuning stage\n"
      "  --no-aw            skip adjusting extreme weights\n"
      "  --scan-quant f32|f16|int8  GEMM kernel for defense activation scans\n"
      "                     (default f32; reduced precision speeds profiling)\n"
      "  --update-codec f32|int8    wire codec for client model updates\n"
      "                     (int8 shrinks uplink ~4x; aggregation stays fp32)\n"
      "  --save PATH        checkpoint the cleansed model\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --journal-out PATH write a JSONL run journal (one line per round)\n"
      "  --trace-out PATH   write a Chrome trace_event file (Perfetto-loadable)\n"
      "  --checkpoint-dir D write rotated crash-resume snapshots into D\n"
      "  --checkpoint-every N  snapshot every N rounds (default 5)\n"
      "  --resume           continue from the newest snapshot in --checkpoint-dir\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();
  std::unique_ptr<obs::Journal> journal;
  fl::SimulationConfig cfg;
  cfg.rounds = 25;
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 5.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = 42;
  int pixels = 5;
  defense::DefenseConfig dcfg;
  dcfg.aw_acc_drop = 0.05;
  std::string save_path;
  std::string journal_path;
  std::string checkpoint_dir;
  int checkpoint_every = 5;
  bool resume = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--dataset") {
      const std::string v = next();
      if (v == "digits") {
        cfg.dataset = data::SynthKind::kDigits;
        cfg.arch = nn::Architecture::kMnistCnn;
      } else if (v == "fashion") {
        cfg.dataset = data::SynthKind::kFashion;
        cfg.arch = nn::Architecture::kFashionCnn;
      } else if (v == "objects") {
        cfg.dataset = data::SynthKind::kObjects;
        cfg.arch = nn::Architecture::kVggSmall;
        cfg.train.lr = 0.2;
      } else {
        std::fprintf(stderr, "unknown dataset %s\n", v.c_str());
        return 2;
      }
    } else if (arg == "--clients") {
      cfg.n_clients = std::atoi(next());
    } else if (arg == "--attackers") {
      cfg.n_attackers = std::atoi(next());
    } else if (arg == "--rounds") {
      cfg.rounds = std::atoi(next());
    } else if (arg == "--labels") {
      cfg.labels_per_client = std::atoi(next());
    } else if (arg == "--select") {
      cfg.clients_per_round = std::atoi(next());
    } else if (arg == "--samples-per-client") {
      cfg.samples_per_client = std::atoi(next());
    } else if (arg == "--residency") {
      const std::string v = next();
      if (v == "auto") {
        cfg.residency = fl::ClientResidency::kAuto;
      } else if (v == "materialized") {
        cfg.residency = fl::ClientResidency::kMaterialized;
      } else if (v == "virtual") {
        cfg.residency = fl::ClientResidency::kVirtual;
      } else {
        std::fprintf(stderr, "unknown residency %s\n", v.c_str());
        return 2;
      }
    } else if (arg == "--gamma") {
      cfg.attack.gamma = std::atof(next());
    } else if (arg == "--victim") {
      cfg.attack.victim_label = std::atoi(next());
    } else if (arg == "--target") {
      cfg.attack.attack_label = std::atoi(next());
    } else if (arg == "--pixels") {
      pixels = std::atoi(next());
    } else if (arg == "--dba") {
      cfg.dba = true;
    } else if (arg == "--rap") {
      dcfg.method = defense::PruneMethod::kRAP;
    } else if (arg == "--mvp") {
      dcfg.method = defense::PruneMethod::kMVP;
    } else if (arg == "--prune-rate") {
      dcfg.vote_prune_rate = std::atof(next());
    } else if (arg == "--no-finetune") {
      dcfg.enable_finetune = false;
    } else if (arg == "--no-aw") {
      dcfg.enable_adjust_weights = false;
    } else if (arg == "--scan-quant") {
      const std::string v = next();
      const auto kernel = tensor::parse_compute_kernel(v);
      if (!kernel) {
        std::fprintf(stderr, "unknown scan kernel %s (want f32|f16|int8)\n", v.c_str());
        return 2;
      }
      cfg.train.scan_kernel = *kernel;
    } else if (arg == "--update-codec") {
      const std::string v = next();
      const auto codec = comm::parse_update_codec(v);
      if (!codec) {
        std::fprintf(stderr, "unknown update codec %s (want f32|int8)\n", v.c_str());
        return 2;
      }
      cfg.train.update_codec = *codec;
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--journal-out") {
      journal_path = next();
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::atoi(next());
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--trace-out") {
      obs::set_trace_path(next());
      obs::set_metrics_enabled(true);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }
  if (!journal_path.empty()) {
    // A resumed run appends (the snapshot's {"kind":"resume"} line marks the
    // boundary) instead of clobbering the crashed run's rounds.
    journal = std::make_unique<obs::Journal>(journal_path, resume);
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot open journal %s\n", journal_path.c_str());
      return 2;
    }
    obs::set_ambient_journal(journal.get());
    obs::set_metrics_enabled(true);
  }

  if (cfg.n_attackers > 0) {
    cfg.attack.pattern = cfg.dba && cfg.dataset == data::SynthKind::kObjects
                             ? data::make_dba_global_pattern(16, 16)
                             : (cfg.dba ? data::make_dba_global_pattern(20, 20)
                                        : data::make_pixel_pattern(pixels));
  }

  std::printf("training: %d clients (%d malicious), %d rounds, %d-label non-IID\n",
              cfg.n_clients, cfg.n_attackers, cfg.rounds, cfg.labels_per_client);
  fl::Simulation sim(cfg);
  std::unique_ptr<fl::CheckpointManager> manager;
  std::optional<fl::RunSnapshot> resumed;
  if (!checkpoint_dir.empty()) {
    manager = std::make_unique<fl::CheckpointManager>(checkpoint_dir, checkpoint_every);
    if (resume) {
      resumed = manager->load_latest();
      if (resumed) {
        fl::resume_simulation(sim, *resumed);
        std::printf("  resumed from %s snapshot (next round %d)\n",
                    resumed->stage.c_str(), resumed->next_round);
      } else {
        std::printf("  no snapshot in %s; starting fresh\n", checkpoint_dir.c_str());
      }
    }
    sim.set_checkpoint_manager(manager.get());
  }
  sim.run();
  std::printf("  trained: TA=%.3f AA=%.3f\n", sim.test_accuracy(), sim.attack_success());

  if (cfg.n_attackers > 0) {
    std::printf("defending (%s%s%s)...\n", prune_method_name(dcfg.method),
                dcfg.enable_finetune ? " + fine-tune" : "",
                dcfg.enable_adjust_weights ? " + adjust-weights" : "");
    auto report = defense::run_defense(sim, dcfg, manager.get(),
                                       resumed ? &*resumed : nullptr);
    std::printf("  after FP: TA=%.3f AA=%.3f (%d pruned)\n", report.after_fp.test_acc,
                report.after_fp.attack_acc, report.neurons_pruned);
    std::printf("  after FT: TA=%.3f AA=%.3f\n", report.after_ft.test_acc,
                report.after_ft.attack_acc);
    std::printf("  after AW: TA=%.3f AA=%.3f (%d zeroed, delta=%.2f)\n",
                report.after_aw.test_acc, report.after_aw.attack_acc,
                report.weights_zeroed, report.adjust.final_delta);
    for (const auto& [phase, seconds] : report.phase_seconds) {
      std::printf("  %s: %.2fs\n", phase.c_str(), seconds);
    }
  }

  if (!save_path.empty()) {
    nn::save_model_file(sim.server().model(), save_path);
    std::printf("saved cleansed model to %s\n", save_path.c_str());
  }

  if (journal) {
    FC_LOG(Info) << "run journal: " << journal->path() << " (" << journal->lines_written()
                 << " lines)";
    obs::set_ambient_journal(nullptr);
  }
  if (obs::flush_trace()) {
    FC_LOG(Info) << "chrome trace: " << obs::trace_path();
  }
  return 0;
}
