// Quickstart: train a backdoored federated model, then cleanse it.
//
// 10 clients (1 malicious) train a small CNN on the synthetic digit task
// with a 3-label non-IID distribution. The attacker poisons digit 9 with a
// 5-pixel trigger (target label 1) and uses model replacement. We then run
// the full defense pipeline — federated pruning (majority vote), federated
// fine-tuning, and adjusting extreme weights — and print the test accuracy
// (TA) and attack success rate (AA) after every stage.
//
// Usage: quickstart [seed] [--clients N] [--select K]
//                   [--scan-quant f32|f16|int8] [--update-codec f32|int8]
//                   [--journal-out run.jsonl] [--trace-out trace.json]
//                   [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//                   [--save model.fckp]
//
// --clients scales the population (--clients 1000000 is a valid, memory-flat
// run: large populations switch to the virtual-client engine, which keeps
// only the sampled cohort resident — DESIGN.md §14). --select sets the
// per-round cohort size; when omitted for a scaled population, 10 clients
// are sampled per round.
//
// Telemetry is opt-in and never changes the run: with --journal-out a JSONL
// run journal (one line per round; validate/tabulate with
// scripts/journal_check.py) is written, with --trace-out (or FEDCLEANSE_TRACE)
// a Chrome trace_event file loadable in chrome://tracing or
// https://ui.perfetto.dev — stdout and the trained model bytes stay identical
// either way.
//
// With --checkpoint-dir the run writes rotated crash-resume snapshots every
// --checkpoint-every rounds (DESIGN.md §13); kill the process at any point
// and rerun with --resume added to continue from the newest snapshot — the
// final model is byte-identical to the uninterrupted run.
//
// --scan-quant runs the defense's activation-profiling scans under a
// reduced-precision GEMM kernel (training math stays fp32). --update-codec
// int8 quantizes client→server update payloads on the wire (~4x smaller
// uplink); the server dequantizes before aggregation. EXPERIMENTS.md records
// the measured TA/AA deltas for both knobs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/logging.h"
#include "defense/pipeline.h"
#include "fl/run_state.h"
#include "fl/simulation.h"
#include "nn/checkpoint.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/quant.h"

using namespace fedcleanse;

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();
  std::uint64_t seed = 42;
  std::string journal_path;
  std::string checkpoint_dir;
  std::string save_path;
  int checkpoint_every = 5;
  int clients = 0;  // 0 = the default 10-client demo
  int select = -1;  // per-round cohort; -1 = derive from the population
  bool resume = false;
  tensor::ComputeKernel scan_kernel = tensor::ComputeKernel::kF32;
  comm::UpdateCodec update_codec = comm::UpdateCodec::kF32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scan-quant") == 0 && i + 1 < argc) {
      const auto kernel = tensor::parse_compute_kernel(argv[++i]);
      if (!kernel) {
        std::fprintf(stderr, "unknown scan kernel %s (want f32|f16|int8)\n", argv[i]);
        return 2;
      }
      scan_kernel = *kernel;
    } else if (std::strcmp(argv[i], "--update-codec") == 0 && i + 1 < argc) {
      const auto codec = comm::parse_update_codec(argv[++i]);
      if (!codec) {
        std::fprintf(stderr, "unknown update codec %s (want f32|int8)\n", argv[i]);
        return 2;
      }
      update_codec = *codec;
    } else if (std::strcmp(argv[i], "--select") == 0 && i + 1 < argc) {
      select = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      obs::set_trace_path(argv[++i]);
      obs::set_metrics_enabled(true);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 && i + 1 < argc) {
      checkpoint_every = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  // Identity for the journal's {"kind":"open"} line and the trace's process
  // track. A resumed run appends a second open line — the new pid marks the
  // restart boundary alongside the snapshot's {"kind":"resume"}.
  obs::set_run_identity("quickstart", obs::hash_argv(argc, argv),
                        tensor::int8_dispatch_name());
  obs::set_trace_process_name("quickstart");

  // A resumed run appends to its journal (the snapshot marks the boundary
  // with a {"kind":"resume"} line) instead of clobbering the rounds the
  // crashed run already recorded.
  std::unique_ptr<obs::Journal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<obs::Journal>(journal_path, resume);
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot open journal %s\n", journal_path.c_str());
      return 2;
    }
    obs::set_ambient_journal(journal.get());
    obs::set_metrics_enabled(true);
  }

  fl::SimulationConfig cfg;
  cfg.arch = nn::Architecture::kMnistCnn;
  cfg.dataset = data::SynthKind::kDigits;
  cfg.n_clients = 10;
  cfg.n_attackers = 1;
  cfg.rounds = 25;
  cfg.labels_per_client = 3;
  cfg.attack.pattern = data::make_pixel_pattern(5);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 5.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = seed;
  cfg.train.scan_kernel = scan_kernel;
  cfg.train.update_codec = update_codec;
  if (clients > 0) cfg.n_clients = clients;
  if (cfg.n_clients > 10) {
    // Scaled population: 1% malicious, fixed-size local datasets (the even
    // split would starve a million clients), sampled cohorts.
    cfg.n_attackers = std::max(1, cfg.n_clients / 100);
    cfg.samples_per_client = 32;
    cfg.clients_per_round = 10;
  }
  if (select >= 0) cfg.clients_per_round = select;

  std::printf("Training %d-client federated model (%d attacker%s, trigger: %s)...\n",
              cfg.n_clients, cfg.n_attackers, cfg.n_attackers == 1 ? "" : "s",
              cfg.attack.pattern.name.c_str());
  fl::Simulation sim(cfg);
  if (sim.virtual_clients()) {
    std::printf("  virtual clients: %d of %d sampled per round, slab-resident cohort only\n",
                cfg.clients_per_round, cfg.n_clients);
  }
  std::unique_ptr<fl::CheckpointManager> manager;
  std::optional<fl::RunSnapshot> resumed;
  if (!checkpoint_dir.empty()) {
    manager = std::make_unique<fl::CheckpointManager>(checkpoint_dir, checkpoint_every);
    if (resume) {
      resumed = manager->load_latest();
      if (resumed) {
        fl::resume_simulation(sim, *resumed);
        std::printf("  resumed from %s snapshot (next round %d)\n",
                    resumed->stage.c_str(), resumed->next_round);
      } else {
        std::printf("  no snapshot in %s; starting fresh\n", checkpoint_dir.c_str());
      }
    }
    sim.set_checkpoint_manager(manager.get());
  }
  sim.run();
  std::printf("  after training: TA=%.3f  AA=%.3f\n", sim.test_accuracy(),
              sim.attack_success());

  defense::DefenseConfig dcfg;
  dcfg.method = defense::PruneMethod::kMVP;
  dcfg.vote_prune_rate = 0.5;

  std::printf("Running defense pipeline (FP -> FT -> AW)...\n");
  auto report = defense::run_defense(sim, dcfg, manager.get(),
                                     resumed ? &*resumed : nullptr);

  std::printf("  stage          TA      AA\n");
  std::printf("  training     %.3f   %.3f\n", report.training.test_acc,
              report.training.attack_acc);
  std::printf("  after FP     %.3f   %.3f   (%d neurons pruned)\n",
              report.after_fp.test_acc, report.after_fp.attack_acc, report.neurons_pruned);
  std::printf("  after FT     %.3f   %.3f   (%d rounds)\n", report.after_ft.test_acc,
              report.after_ft.attack_acc, report.finetune.rounds_run);
  std::printf("  after AW     %.3f   %.3f   (%d weights zeroed, delta=%.2f)\n",
              report.after_aw.test_acc, report.after_aw.attack_acc, report.weights_zeroed,
              report.adjust.final_delta);
  std::printf("Network traffic: %.2f MiB\n",
              static_cast<double>(sim.network().total_bytes()) / (1024.0 * 1024.0));

  if (!save_path.empty()) {
    nn::save_model_file(sim.server().model(), save_path);
    std::printf("saved cleansed model to %s\n", save_path.c_str());
  }

  // Telemetry artifacts land on stderr-side reporting only: stdout above is
  // byte-identical whether or not a journal/trace was requested.
  if (journal) {
    FC_LOG(Info) << "run journal: " << journal->path() << " (" << journal->lines_written()
                 << " lines)";
    obs::set_ambient_journal(nullptr);
  }
  if (obs::flush_trace()) {
    FC_LOG(Info) << "chrome trace: " << obs::trace_path()
                 << " (open in chrome://tracing or ui.perfetto.dev)";
  }
  return 0;
}
