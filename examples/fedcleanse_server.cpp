// Deployment server: drives federated training and the defense pipeline over
// real TCP connections to client processes (DESIGN.md §15).
//
// Remote mode (default): register the data port with the scheduler, wait for
// the full population to register on the data plane, then run the identical
// round protocol the in-process simulation runs — the Simulation is
// constructed with the socket transport, so Server::collect_* and the defense
// stages run unchanged. The run ends by broadcasting kShutdown to the clients
// and notifying the scheduler.
//
// --local runs the in-process reference instead: the same flags, the same
// config, no sockets. A no-fault socket run and the --local run save
// byte-identical models (scripts/multiproc_identity.sh asserts this with
// cmp) — that equivalence is the transport's correctness contract.
//
// Usage: fedcleanse_server --scheduler-port P [--save model.fckp]
//                          [--local] [--no-defense] [--wait-timeout-ms N]
//                          [shared deployment flags — see deploy_common.h]
//
// Degradation: if clients die mid-run (SIGKILL, network loss), training
// rounds proceed while the quorum gate holds and skip aggregation below it;
// the defense protocol instead refuses to cleanse from a sliver of reports
// and the run exits nonzero after still shutting the deployment down.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "comm/scheduler.h"
#include "comm/socket_network.h"
#include "common/logging.h"
#include "common/sysinfo.h"
#include "defense/pipeline.h"
#include "deploy_common.h"
#include "fl/protocol.h"
#include "fl/run_state.h"
#include "fl/simulation.h"
#include "nn/checkpoint.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace fedcleanse;

namespace {

void print_report(const defense::DefenseReport& report) {
  std::printf("  stage          TA      AA\n");
  std::printf("  training     %.3f   %.3f\n", report.training.test_acc,
              report.training.attack_acc);
  std::printf("  after FP     %.3f   %.3f   (%d neurons pruned)\n",
              report.after_fp.test_acc, report.after_fp.attack_acc, report.neurons_pruned);
  std::printf("  after FT     %.3f   %.3f   (%d rounds)\n", report.after_ft.test_acc,
              report.after_ft.attack_acc, report.finetune.rounds_run);
  std::printf("  after AW     %.3f   %.3f   (%d weights zeroed)\n",
              report.after_aw.test_acc, report.after_aw.attack_acc, report.weights_zeroed);
}

}  // namespace

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();
  deploy::Options opt;
  bool local = false;
  bool with_defense = true;
  std::string save_path;
  int wait_timeout_ms = 120000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--local") == 0) {
      local = true;
    } else if (std::strcmp(argv[i], "--no-defense") == 0) {
      with_defense = false;
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else if (std::strcmp(argv[i], "--wait-timeout-ms") == 0 && i + 1 < argc) {
      wait_timeout_ms = std::atoi(argv[++i]);
    } else if (deploy::parse_deploy_flag(argc, argv, i, opt)) {
      continue;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags:\n"
                   "  --local --no-defense --save PATH --wait-timeout-ms N\n%s",
                   argv[i], deploy::deploy_flag_help());
      return 2;
    }
  }
  if (!local && opt.scheduler_port <= 0) {
    std::fprintf(stderr, "--scheduler-port is required (or pass --local)\n");
    return 2;
  }
  if (opt.resume && opt.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  deploy::init_observability(opt, "server", argc, argv);
  std::unique_ptr<obs::Journal> journal;
  if (!opt.journal_path.empty()) {
    // A resumed run appends (the {"kind":"server_resume"} line marks the
    // restart boundary) instead of clobbering the pre-crash rounds.
    journal = std::make_unique<obs::Journal>(opt.journal_path, opt.resume);
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot open journal %s\n", opt.journal_path.c_str());
      return 2;
    }
    obs::set_ambient_journal(journal.get());
    obs::set_metrics_enabled(true);
  }

  const auto cfg = deploy::make_simulation_config(opt);
  const auto dcfg = deploy::make_defense_config(opt);

  int rc = 0;
  try {
    if (local) {
      // In-process reference: the byte-identity baseline for the socket path.
      std::printf("server: local reference run (%d clients, %d rounds)\n",
                  cfg.n_clients, cfg.rounds);
      fl::Simulation sim(cfg);
      // Full-run checkpointing, exactly quickstart's flow: the whole
      // simulation (clients included) lives in this process.
      std::unique_ptr<fl::CheckpointManager> manager;
      std::optional<fl::RunSnapshot> resumed;
      if (!opt.checkpoint_dir.empty()) {
        manager = std::make_unique<fl::CheckpointManager>(opt.checkpoint_dir,
                                                          opt.checkpoint_every);
        if (opt.resume) {
          resumed = manager->load_latest();
          if (resumed) {
            fl::resume_simulation(sim, *resumed);
            std::printf("  resumed from %s snapshot (next round %d)\n",
                        resumed->stage.c_str(), resumed->next_round);
          } else {
            std::printf("  no snapshot in %s; starting fresh\n",
                        opt.checkpoint_dir.c_str());
          }
        }
        sim.set_checkpoint_manager(manager.get());
      }
      sim.run();
      std::printf("  after training: TA=%.3f  AA=%.3f\n", sim.test_accuracy(),
                  sim.attack_success());
      if (with_defense) {
        print_report(defense::run_defense(sim, dcfg, manager.get(),
                                          resumed ? &*resumed : nullptr));
      }
      if (!save_path.empty()) {
        nn::save_model_file(sim.server().model(), save_path);
        std::printf("saved model to %s\n", save_path.c_str());
      }
      return 0;
    }

    comm::SocketServerNetwork net(cfg.n_clients, deploy::make_transport(opt));
    auto exporter = deploy::make_exporter(opt);
    if (exporter && exporter->ok()) {
      const std::size_t quorum_need =
          fl::quorum_count(static_cast<std::size_t>(cfg.n_clients),
                           cfg.fault.min_collect_fraction);
      exporter->set_status_provider([&net, &cfg, quorum_need] {
        obs::JsonObject s;
        s.add("role", "server")
            .add("round", obs::metrics::current_round().value())
            .add("cohort", cfg.n_clients)
            .add("n_alive", net.n_alive())
            .add("quorum_need", static_cast<std::uint64_t>(quorum_need))
            .add("quorum_met",
                 static_cast<std::size_t>(net.n_alive()) >= quorum_need)
            .add("wire_bytes", obs::metrics::transport_bytes_sent().value())
            .add("peak_rss", static_cast<std::uint64_t>(common::peak_rss_bytes()))
            .add_raw("clients", net.peers_status_json());
        return s.str();
      });
    }
    comm::RegisterInfo info;
    info.role = comm::NodeRole::kServer;
    info.port = net.port();
    comm::SchedulerSession session(opt.scheduler_host,
                                   static_cast<std::uint16_t>(opt.scheduler_port), info,
                                   deploy::make_transport(opt));
    std::printf("server: data port %u registered, waiting for %d clients...\n",
                static_cast<unsigned>(net.port()), cfg.n_clients);
    std::fflush(stdout);
    if (!net.wait_for_clients(cfg.n_clients, wait_timeout_ms)) {
      std::fprintf(stderr, "server: only %d of %d clients registered within %d ms\n",
                   net.n_alive(), cfg.n_clients, wait_timeout_ms);
      net.broadcast_shutdown();
      session.notify_shutdown();
      return 1;
    }
    std::printf("server: all %d clients registered, training %d rounds\n", cfg.n_clients,
                cfg.rounds);
    std::fflush(stdout);

    fl::Simulation sim(cfg, &net);
    // Server-scope failover (DESIGN.md §18): snapshot only this node's state
    // at round boundaries; on --resume, restore it at a bumped epoch and
    // roll the live clients to the committed round before replaying.
    std::unique_ptr<fl::CheckpointManager> manager;
    if (!opt.checkpoint_dir.empty()) {
      manager = std::make_unique<fl::CheckpointManager>(opt.checkpoint_dir + "/server",
                                                        opt.checkpoint_every);
      if (opt.resume) {
        if (std::optional<fl::RunSnapshot> snap = manager->load_latest()) {
          const std::uint32_t epoch = snap->epoch + 1;
          fl::resume_server_simulation(sim, *snap, epoch);
          net.set_epoch(epoch);
          const int acked = fl::synchronize_round(sim, sim.all_client_ids());
          std::printf("  resumed at epoch %u (next round %d, %d of %d clients synced)\n",
                      static_cast<unsigned>(epoch), snap->next_round, acked,
                      cfg.n_clients);
        } else {
          std::printf("  no snapshot in %s/server; starting fresh\n",
                      opt.checkpoint_dir.c_str());
        }
      }
      sim.set_checkpoint_manager(manager.get());
    }
    try {
      sim.run();
      std::printf("  after training: TA=%.3f  AA=%.3f  (%d clients alive)\n",
                  sim.test_accuracy(), sim.attack_success(), net.n_alive());
      // No checkpoint manager here: defense-stage snapshots are full-run
      // scope (they capture every client), which a remote server cannot
      // take — a crash during defense restarts from the last training
      // snapshot (DESIGN.md §18 recovery matrix).
      if (with_defense) print_report(defense::run_defense(sim, dcfg));
      if (!save_path.empty()) {
        nn::save_model_file(sim.server().model(), save_path);
        std::printf("saved model to %s\n", save_path.c_str());
      }
    } catch (const QuorumError& e) {
      // Too few live clients to trust a protocol decision: shut the
      // deployment down cleanly rather than hang or crash.
      std::fprintf(stderr, "server: below quorum, abandoning run: %s\n", e.what());
      rc = 1;
    }
    net.broadcast_shutdown();
    session.notify_shutdown();
    std::printf("server: run %s (%d of %d clients alive at shutdown)\n",
                rc == 0 ? "complete" : "abandoned", net.n_alive(), cfg.n_clients);
  } catch (const comm::TransportError& e) {
    std::fprintf(stderr, "server: transport failure: %s\n", e.what());
    rc = 1;
  }
  if (journal) obs::set_ambient_journal(nullptr);
  return rc;
}
