// Deployment scheduler node (DESIGN.md §15): the registration and heartbeat
// endpoint every other process finds first.
//
// The server registers its ephemeral data port here; clients poll until the
// registration ack carries the server's address, then connect to the server
// directly. The scheduler never sees model traffic — it is discovery plus
// observability (registrations, reconnects, and heartbeat-detected deaths
// land in its journal).
//
// Usage: fedcleanse_scheduler [--port P] [--port-file PATH] [--registry PATH]
//                             [--journal-out run.jsonl] [transport flags]
//
// With --port 0 (the default) the OS picks the port; --port-file publishes
// whatever was bound (written atomically, so launch scripts can poll for the
// file and read a complete value). The process exits when the server sends
// kShutdown at the end of its run.
//
// --registry journals every accepted registration to a plain-text file; a
// restarted scheduler run with --registry PATH --resume rebuilds its
// distinct-client roster from it (DESIGN.md §18) while the live nodes'
// scheduler sessions reconnect and re-register on their own.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "comm/scheduler.h"
#include "common/logging.h"
#include "deploy_common.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace fedcleanse;

namespace {

bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();
  deploy::Options opt;
  int port = 0;
  std::string port_file;
  std::string registry_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--registry") == 0 && i + 1 < argc) {
      registry_path = argv[++i];
    } else if (deploy::parse_deploy_flag(argc, argv, i, opt)) {
      continue;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags:\n  --port P --port-file PATH --registry PATH\n%s",
                   argv[i], deploy::deploy_flag_help());
      return 2;
    }
  }
  if (opt.resume && registry_path.empty()) {
    std::fprintf(stderr, "--resume requires --registry\n");
    return 2;
  }

  deploy::init_observability(opt, "scheduler", argc, argv);
  std::unique_ptr<obs::Journal> journal;
  if (!opt.journal_path.empty()) {
    journal = std::make_unique<obs::Journal>(opt.journal_path, opt.resume);
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot open journal %s\n", opt.journal_path.c_str());
      return 2;
    }
    obs::set_ambient_journal(journal.get());
    obs::set_metrics_enabled(true);
  }

  try {
    comm::Scheduler scheduler(deploy::make_transport(opt), "127.0.0.1",
                              static_cast<std::uint16_t>(port));
    if (!registry_path.empty()) {
      if (opt.resume) {
        const int restored = scheduler.load_registry(registry_path);
        std::printf("scheduler: restored %d client(s) from %s\n", restored,
                    registry_path.c_str());
      }
      scheduler.enable_registry(registry_path);
    }
    auto exporter = deploy::make_exporter(opt);
    if (exporter && exporter->ok()) {
      // The fleet table: per-node round progress and heartbeat ages,
      // aggregated from the status snapshots nodes attach to their beacons.
      exporter->set_status_provider(
          [&scheduler] { return scheduler.fleet_status_json(); });
    }
    if (!port_file.empty() && !write_port_file(port_file, scheduler.port())) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 2;
    }
    std::printf("scheduler: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(scheduler.port()));
    std::fflush(stdout);
    scheduler.run_until_shutdown();
    std::printf("scheduler: run complete (server %s, %d distinct clients registered)\n",
                scheduler.server_known() ? "seen" : "never registered",
                scheduler.n_clients_seen());
  } catch (const comm::TransportError& e) {
    std::fprintf(stderr, "scheduler: transport failure: %s\n", e.what());
    return 1;
  }
  if (journal) obs::set_ambient_journal(nullptr);
  return 0;
}
