// Federated training dynamics demo (the Fig 3 style view).
//
// Trains a federated model and prints per-round test accuracy and attack
// success rate. Useful for eyeballing convergence under different non-IID
// distributions and attack settings.
//
// Usage: federated_training [rounds] [labels_per_client] [gamma] [n_attackers] [seed] [lr] [epochs] [spc]
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "fl/simulation.h"
#include "obs/trace.h"

using namespace fedcleanse;

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();  // FEDCLEANSE_TRACE=path enables span tracing
  auto arg = [&](int i, double dflt) {
    return argc > i ? std::strtod(argv[i], nullptr) : dflt;
  };

  fl::SimulationConfig cfg;
  cfg.arch = nn::Architecture::kMnistCnn;
  cfg.dataset = data::SynthKind::kDigits;
  cfg.rounds = static_cast<int>(arg(1, 20));
  cfg.labels_per_client = static_cast<int>(arg(2, 3));
  cfg.attack.gamma = arg(3, 5.0);
  cfg.n_attackers = static_cast<int>(arg(4, 1));
  cfg.seed = static_cast<std::uint64_t>(arg(5, 42));
  cfg.train.lr = arg(6, 0.1);
  cfg.train.local_epochs = static_cast<int>(arg(7, 2));
  cfg.samples_per_class_train = static_cast<int>(arg(8, 100));
  cfg.attack.pattern = data::make_pixel_pattern(5);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.poison_copies = 2;

  fl::Simulation sim(cfg);
  std::printf("round   TA      AA\n");
  for (int r = 0; r < cfg.rounds; ++r) {
    sim.run_round(static_cast<std::uint32_t>(r));
    std::printf("%4d  %.3f  %.3f\n", r, sim.test_accuracy(), sim.attack_success());
  }
  obs::flush_trace();
  return 0;
}
