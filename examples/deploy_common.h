// Shared configuration for the multi-process deployment binaries
// (fedcleanse_scheduler / fedcleanse_server / fedcleanse_client).
//
// Byte-identity across processes hinges on every node building the *same*
// SimulationConfig: the server's Simulation and each client's replica must
// make identical RNG draws (data → server model → validation → per-client
// models/seeds). Both binaries therefore parse the same flags through
// parse_deploy_flag and derive their config through make_simulation_config —
// a flag passed to the server but not the clients is a silent divergence, so
// the launch scripts pass one flag set to every node.
//
// The demo task is quickstart's (synthetic digits, 3-label non-IID, pixel
// trigger 9→1 with model replacement) at a reduced scale that a single-core
// host finishes in seconds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "defense/pipeline.h"
#include "fl/simulation.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "tensor/quant.h"

namespace deploy {

struct Options {
  std::uint64_t seed = 42;
  int clients = 5;
  int rounds = 3;
  int ft_rounds = 3;
  int samples_train = 60;
  int samples_test = 20;
  // Server-side per-client collect deadline. Large on the socket wire: a
  // retransmit in the no-fault path would make the client retrain and
  // desynchronize its RNG stream from the in-process reference.
  int recv_timeout_ms = 60000;
  int max_backoff_shift = 3;
  std::string scheduler_host = "127.0.0.1";
  int scheduler_port = 0;
  std::string journal_path;
  // Observability plane (DESIGN.md §17). All default-off; none of them may
  // perturb model bytes or stdout when enabled.
  int metrics_port = -1;       // -1 = no /metricsz listener; 0 = ephemeral port
  std::string trace_path;      // Chrome trace written at process exit
  std::string metrics_port_file;  // scheduler writes its chosen port here
  fedcleanse::comm::TransportConfig transport;
  // Failover (DESIGN.md §18). The server keeps server-scope snapshots under
  // <checkpoint_dir>/server, each client under <checkpoint_dir>/client-<id>;
  // --resume restores the latest snapshot instead of starting fresh.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  bool resume = false;
  // Quantization knobs. Must match on every node: the server accepts both
  // update codecs on the wire, but the in-process reference replica only
  // stays byte-identical when the clients it mirrors use the same codec.
  fedcleanse::tensor::ComputeKernel scan_kernel =
      fedcleanse::tensor::ComputeKernel::kF32;
  fedcleanse::comm::UpdateCodec update_codec = fedcleanse::comm::UpdateCodec::kF32;
};

// Every tunable the transport and retry layers expose, as flags shared by
// server and client (ISSUE: nothing operational is a hardcoded cap).
inline const char* deploy_flag_help() {
  return "  --seed N --clients N --rounds N --ft-rounds N\n"
         "  --samples-train N --samples-test N\n"
         "  --scheduler-host H --scheduler-port P --journal-out PATH\n"
         "  --metrics-port P (0=ephemeral) --metrics-port-file PATH --trace-out PATH\n"
         "  --recv-timeout-ms N --max-backoff-shift N\n"
         "  --connect-timeout-ms N --accept-timeout-ms N --max-connect-retries N\n"
         "  --backoff-base-ms N --backoff-cap-ms N\n"
         "  --heartbeat-interval-ms N --heartbeat-timeout-ms N\n"
         "  --scan-quant f32|f16|int8 --update-codec f32|int8\n"
         "  --checkpoint-dir PATH --checkpoint-every N --resume\n";
}

// Try to consume argv[i] (and its value) as a shared deployment flag.
// Advances i past the value on a match; returns false on an unknown flag.
inline bool parse_deploy_flag(int argc, char** argv, int& i, Options& opt) {
  const auto has_value = [&](const char* name) {
    return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
  };
  if (has_value("--seed")) {
    opt.seed = std::strtoull(argv[++i], nullptr, 10);
  } else if (has_value("--clients")) {
    opt.clients = std::atoi(argv[++i]);
  } else if (has_value("--rounds")) {
    opt.rounds = std::atoi(argv[++i]);
  } else if (has_value("--ft-rounds")) {
    opt.ft_rounds = std::atoi(argv[++i]);
  } else if (has_value("--samples-train")) {
    opt.samples_train = std::atoi(argv[++i]);
  } else if (has_value("--samples-test")) {
    opt.samples_test = std::atoi(argv[++i]);
  } else if (has_value("--scheduler-host")) {
    opt.scheduler_host = argv[++i];
  } else if (has_value("--scheduler-port")) {
    opt.scheduler_port = std::atoi(argv[++i]);
  } else if (has_value("--journal-out")) {
    opt.journal_path = argv[++i];
  } else if (has_value("--metrics-port")) {
    opt.metrics_port = std::atoi(argv[++i]);
  } else if (has_value("--metrics-port-file")) {
    opt.metrics_port_file = argv[++i];
  } else if (has_value("--trace-out")) {
    opt.trace_path = argv[++i];
  } else if (has_value("--recv-timeout-ms")) {
    opt.recv_timeout_ms = std::atoi(argv[++i]);
  } else if (has_value("--max-backoff-shift")) {
    opt.max_backoff_shift = std::atoi(argv[++i]);
  } else if (has_value("--connect-timeout-ms")) {
    opt.transport.connect_timeout_ms = std::atoi(argv[++i]);
  } else if (has_value("--accept-timeout-ms")) {
    opt.transport.accept_timeout_ms = std::atoi(argv[++i]);
  } else if (has_value("--max-connect-retries")) {
    opt.transport.max_connect_retries = std::atoi(argv[++i]);
  } else if (has_value("--backoff-base-ms")) {
    opt.transport.backoff_base_ms = std::atoi(argv[++i]);
  } else if (has_value("--backoff-cap-ms")) {
    opt.transport.backoff_cap_ms = std::atoi(argv[++i]);
  } else if (has_value("--heartbeat-interval-ms")) {
    opt.transport.heartbeat_interval_ms = std::atoi(argv[++i]);
  } else if (has_value("--heartbeat-timeout-ms")) {
    opt.transport.heartbeat_timeout_ms = std::atoi(argv[++i]);
  } else if (has_value("--scan-quant")) {
    const auto kernel = fedcleanse::tensor::parse_compute_kernel(argv[++i]);
    if (!kernel) {
      std::fprintf(stderr, "unknown scan kernel %s (want f32|f16|int8)\n", argv[i]);
      std::exit(2);
    }
    opt.scan_kernel = *kernel;
  } else if (has_value("--update-codec")) {
    const auto codec = fedcleanse::comm::parse_update_codec(argv[++i]);
    if (!codec) {
      std::fprintf(stderr, "unknown update codec %s (want f32|int8)\n", argv[i]);
      std::exit(2);
    }
    opt.update_codec = *codec;
  } else if (has_value("--checkpoint-dir")) {
    opt.checkpoint_dir = argv[++i];
  } else if (has_value("--checkpoint-every")) {
    opt.checkpoint_every = std::atoi(argv[++i]);
  } else if (std::strcmp(argv[i], "--resume") == 0) {
    opt.resume = true;
  } else {
    return false;
  }
  return true;
}

// Transport config for the node's own sockets. The run seed doubles as the
// jitter seed so reconnect backoff is deterministic per (run, node) without
// touching the protocol RNG streams.
inline fedcleanse::comm::TransportConfig make_transport(const Options& opt) {
  fedcleanse::comm::TransportConfig transport = opt.transport;
  transport.jitter_seed = opt.seed;
  return transport;
}

// Observability bring-up shared by the three deployment binaries: run
// identity (the journal's {"kind":"open"} line), the trace file and its
// process-name track label, and the runtime metrics switch — any requested
// sink turns metrics on. Call before constructing the Journal.
inline void init_observability(const Options& opt, const std::string& role, int argc,
                               char** argv) {
  namespace obs = fedcleanse::obs;
  obs::set_run_identity(role, obs::hash_argv(argc, argv),
                        fedcleanse::tensor::int8_dispatch_name());
  obs::set_trace_process_name(role);
  if (!opt.trace_path.empty()) {
    obs::set_trace_path(opt.trace_path);
    // Flush after main returns so every exit path (early errors included)
    // still writes the trace file.
    std::atexit(+[] { fedcleanse::obs::flush_trace(); });
  }
  if (!opt.journal_path.empty() || !opt.trace_path.empty() || opt.metrics_port >= 0) {
    obs::set_metrics_enabled(true);
  }
}

// /metricsz + /statusz listener when --metrics-port was given; nullptr
// otherwise. Writes the chosen port to --metrics-port-file so launch scripts
// can scrape an ephemeral port.
inline std::unique_ptr<fedcleanse::obs::MetricsExporter> make_exporter(const Options& opt) {
  if (opt.metrics_port < 0) return nullptr;
  auto exporter = std::make_unique<fedcleanse::obs::MetricsExporter>(
      static_cast<std::uint16_t>(opt.metrics_port));
  if (exporter->ok() && !opt.metrics_port_file.empty()) {
    if (std::FILE* f = std::fopen(opt.metrics_port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(exporter->port()));
      std::fclose(f);
    }
  }
  return exporter;
}

inline fedcleanse::fl::SimulationConfig make_simulation_config(const Options& opt) {
  namespace fl = fedcleanse::fl;
  fl::SimulationConfig cfg;
  cfg.arch = fedcleanse::nn::Architecture::kMnistCnn;
  cfg.dataset = fedcleanse::data::SynthKind::kDigits;
  cfg.n_clients = opt.clients;
  cfg.n_attackers = 1;
  cfg.rounds = opt.rounds;
  cfg.labels_per_client = 3;
  cfg.samples_per_class_train = opt.samples_train;
  cfg.samples_per_class_test = opt.samples_test;
  cfg.attack.pattern = fedcleanse::data::make_pixel_pattern(5);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 5.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = opt.seed;
  // recv_timeout is deadline-only: on a wire with no faults the deadline
  // never elapses, so the in-process reference run uses the same value and
  // stays byte-identical.
  cfg.fault.recv_timeout_ms = opt.recv_timeout_ms;
  cfg.protocol.max_backoff_shift = opt.max_backoff_shift;
  cfg.protocol.transport = make_transport(opt);
  cfg.train.scan_kernel = opt.scan_kernel;
  cfg.train.update_codec = opt.update_codec;
  return cfg;
}

inline fedcleanse::defense::DefenseConfig make_defense_config(const Options& opt) {
  fedcleanse::defense::DefenseConfig dcfg;
  dcfg.method = fedcleanse::defense::PruneMethod::kMVP;
  dcfg.vote_prune_rate = 0.5;
  dcfg.finetune.max_rounds = opt.ft_rounds;
  return dcfg;
}

}  // namespace deploy
