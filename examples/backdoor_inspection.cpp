// Backdoor anatomy inspection.
//
// Trains a backdoored federated model, then prints, for every channel of
// the pruning layer (last conv):
//   - mean activation on clean test data            (what FP ranks by)
//   - mean activation on triggered victim images    (the backdoor signal)
//   - max |w| of the channel's weights              (what AW clips)
//   - ASR and TA when that channel alone is pruned  (ground-truth effect)
//
// This is the view a researcher uses to verify that the backdoor hides in
// dormant neurons and/or extreme weights — the two assumptions behind the
// paper's defense.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "nn/activation_stats.h"
#include "nn/conv2d.h"

using namespace fedcleanse;

namespace {

std::vector<double> channel_means(nn::ModelSpec& model, const data::Dataset& ds) {
  nn::ChannelMeanAccumulator acc;
  tensor::Tensor tapped;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < ds.size(); start += 64) {
    idx.clear();
    for (std::size_t i = start; i < std::min(ds.size(), start + 64); ++i) idx.push_back(i);
    auto batch = ds.make_batch(idx);
    model.net.forward_with_tap(batch.images, model.tap_index, tapped);
    acc.add_batch(tapped);
  }
  return acc.means();
}

}  // namespace

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  fl::SimulationConfig cfg;
  cfg.rounds = argc > 1 ? std::atoi(argv[1]) : 25;
  cfg.attack.pattern = data::make_pixel_pattern(argc > 3 ? std::atoi(argv[3]) : 5);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 5.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  fl::Simulation sim(cfg);
  sim.run(false);
  std::printf("trained: TA=%.3f AA=%.3f\n", sim.test_accuracy(), sim.attack_success());

  auto& model = sim.server().model();
  auto clean_means = channel_means(model, sim.test_set());
  auto bd_means = channel_means(model, sim.backdoor_testset());

  auto& conv = dynamic_cast<nn::Conv2d&>(model.net.layer(model.last_conv_index));
  const int units = conv.prunable_units();
  const std::size_t per_channel =
      conv.weight().size() / static_cast<std::size_t>(units);

  std::printf("ch  clean_act  bd_act   ratio  max|w|  TA(-ch)  AA(-ch)\n");
  for (int ch = 0; ch < units; ++ch) {
    float wmax = 0.0f;
    for (std::size_t i = 0; i < per_channel; ++i) {
      wmax = std::max(wmax,
                      std::abs(conv.weight()[static_cast<std::size_t>(ch) * per_channel + i]));
    }
    // Prune just this channel, measure, restore.
    std::vector<float> saved_w = conv.weight().storage();
    std::vector<float> saved_b = conv.bias().storage();
    conv.set_unit_active(ch, false);
    const double ta = fl::evaluate_accuracy(model.net, sim.test_set());
    const double aa = fl::attack_success_rate(model.net, sim.backdoor_testset());
    conv.set_unit_active(ch, true);
    conv.weight().storage() = std::move(saved_w);
    conv.bias().storage() = std::move(saved_b);

    std::printf("%2d  %8.4f  %7.4f  %5.2f  %6.3f  %6.3f  %6.3f\n", ch, clean_means[ch],
                bd_means[ch],
                clean_means[ch] > 1e-9 ? bd_means[ch] / clean_means[ch] : 0.0, wmax, ta, aa);
  }

  // Cumulatively prune channels by descending (backdoor - clean) activation
  // gap: the oracle upper bound on what activation-based pruning can achieve.
  std::vector<int> order(units);
  for (int i = 0; i < units; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return bd_means[a] - clean_means[a] > bd_means[b] - clean_means[b];
  });
  std::printf("\ncumulative oracle pruning (by bd-clean gap):\n k   TA      AA\n");
  for (int k = 0; k < std::min(units, 10); ++k) {
    conv.set_unit_active(order[k], false);
    std::printf("%2d  %.3f  %.3f\n", k + 1, fl::evaluate_accuracy(model.net, sim.test_set()),
                fl::attack_success_rate(model.net, sim.backdoor_testset()));
  }
  return 0;
}
