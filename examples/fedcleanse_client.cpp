// Deployment client: one federated participant as its own process
// (DESIGN.md §15).
//
// The process builds the *same* Simulation the server builds (identical
// flags → identical RNG draws → identical local dataset, model replica, and
// training stream for every id), discovers the server through the scheduler,
// and then answers whatever protocol messages arrive on the wire by routing
// them through the ordinary Client::handle_pending — the same code path the
// in-process simulation exercises. It exits when the server broadcasts
// kShutdown.
//
// Robustness: the transport's io thread owns the link. If the connection
// drops (server restart, transient network failure) it reconnects and
// reregisters with capped exponential backoff while this loop keeps waiting;
// a reply that raced the outage is lost and the server's retry layer
// re-drives the request. Killing this process mid-round (SIGKILL) is the
// chaos test's bread and butter: the server detects the EOF, declares the
// client dead, and finishes the round under its quorum gate.
//
// Usage: fedcleanse_client --id N --scheduler-port P
//                          [--wait-timeout-ms N]
//                          [shared deployment flags — see deploy_common.h]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "comm/scheduler.h"
#include "comm/socket_network.h"
#include "common/logging.h"
#include "common/sysinfo.h"
#include "deploy_common.h"
#include "fl/simulation.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace fedcleanse;

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();
  deploy::Options opt;
  int id = -1;
  int wait_timeout_ms = 120000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--id") == 0 && i + 1 < argc) {
      id = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--wait-timeout-ms") == 0 && i + 1 < argc) {
      wait_timeout_ms = std::atoi(argv[++i]);
    } else if (deploy::parse_deploy_flag(argc, argv, i, opt)) {
      continue;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags:\n  --id N --wait-timeout-ms N\n%s",
                   argv[i], deploy::deploy_flag_help());
      return 2;
    }
  }
  if (id < 0 || id >= opt.clients) {
    std::fprintf(stderr, "--id must be in [0, %d)\n", opt.clients);
    return 2;
  }
  if (opt.scheduler_port <= 0) {
    std::fprintf(stderr, "--scheduler-port is required\n");
    return 2;
  }

  deploy::init_observability(opt, "client-" + std::to_string(id), argc, argv);
  std::unique_ptr<obs::Journal> journal;
  if (!opt.journal_path.empty()) {
    journal = std::make_unique<obs::Journal>(opt.journal_path, false);
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot open journal %s\n", opt.journal_path.c_str());
      return 2;
    }
    obs::set_ambient_journal(journal.get());
    obs::set_metrics_enabled(true);
  }

  const auto cfg = deploy::make_simulation_config(opt);
  int rc = 0;
  try {
    // Register first (the server's barrier counts registrations), then build
    // the replica population while the server builds its own.
    comm::SocketClientNetwork net(cfg.n_clients, id, opt.transport, opt.scheduler_host,
                                  static_cast<std::uint16_t>(opt.scheduler_port));
    auto exporter = deploy::make_exporter(opt);
    if (exporter && exporter->ok()) {
      exporter->set_status_provider([&net, id] {
        obs::JsonObject s;
        s.add("role", "client")
            .add("id", id)
            .add("round", obs::metrics::current_round().value())
            .add("connected", net.connected())
            .add("wire_bytes", obs::metrics::transport_bytes_sent().value())
            .add("peak_rss", static_cast<std::uint64_t>(common::peak_rss_bytes()));
        return s.str();
      });
    }
    fl::Simulation sim(cfg);
    if (!net.wait_connected(wait_timeout_ms)) {
      std::fprintf(stderr, "client %d: no server registration within %d ms\n", id,
                   wait_timeout_ms);
      return 1;
    }
    // With telemetry on, open a persistent scheduler link that beacons this
    // client's progress snapshots — the rows in the scheduler's fleet table.
    // Telemetry off keeps the pre-§17 topology: clients touch the scheduler
    // only during discovery.
    std::unique_ptr<comm::SchedulerSession> fleet_link;
    if (obs::metrics_enabled()) {
      comm::RegisterInfo beacon_info;
      beacon_info.role = comm::NodeRole::kClient;
      beacon_info.node_id = id;
      try {
        fleet_link = std::make_unique<comm::SchedulerSession>(
            opt.scheduler_host, static_cast<std::uint16_t>(opt.scheduler_port),
            beacon_info, opt.transport);
      } catch (const comm::TransportError& e) {
        FC_LOG(Warn) << "client " << id << ": fleet beacon link failed — " << e.what();
      }
    }
    std::printf("client %d: registered%s\n", id,
                sim.client(id).malicious() ? " (malicious)" : "");
    std::fflush(stdout);

    while (!net.shutdown_received()) {
      if (!net.client_wait_for_message(id, std::chrono::milliseconds(200))) continue;
      try {
        sim.client(id).handle_pending(net);
      } catch (const comm::TransportError& e) {
        // The link died mid-reply; the io thread is already reconnecting and
        // the server's retry layer will re-drive the request.
        FC_LOG(Warn) << "client " << id << ": reply lost to a link failure: " << e.what();
      }
    }
    std::printf("client %d: shutdown received, exiting\n", id);
  } catch (const comm::TransportError& e) {
    std::fprintf(stderr, "client %d: transport failure: %s\n", id, e.what());
    rc = 1;
  }
  if (journal) obs::set_ambient_journal(nullptr);
  return rc;
}
