// Deployment client: one federated participant as its own process
// (DESIGN.md §15).
//
// The process builds the *same* Simulation the server builds (identical
// flags → identical RNG draws → identical local dataset, model replica, and
// training stream for every id), discovers the server through the scheduler,
// and then answers whatever protocol messages arrive on the wire by routing
// them through the ordinary Client::handle_pending — the same code path the
// in-process simulation exercises. It exits when the server broadcasts
// kShutdown.
//
// Robustness: the transport's io thread owns the link. If the connection
// drops (server restart, transient network failure) it reconnects and
// reregisters with capped exponential backoff while this loop keeps waiting;
// a reply that raced the outage is lost and the server's retry layer
// re-drives the request. Killing this process mid-round (SIGKILL) is the
// chaos test's bread and butter: the server detects the EOF, declares the
// client dead, and finishes the round under its quorum gate.
//
// Usage: fedcleanse_client --id N --scheduler-port P
//                          [--wait-timeout-ms N]
//                          [shared deployment flags — see deploy_common.h]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "comm/scheduler.h"
#include "comm/socket_network.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/sysinfo.h"
#include "deploy_common.h"
#include "fl/run_state.h"
#include "fl/simulation.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace fedcleanse;

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  obs::init_from_env();
  deploy::Options opt;
  int id = -1;
  int wait_timeout_ms = 120000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--id") == 0 && i + 1 < argc) {
      id = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--wait-timeout-ms") == 0 && i + 1 < argc) {
      wait_timeout_ms = std::atoi(argv[++i]);
    } else if (deploy::parse_deploy_flag(argc, argv, i, opt)) {
      continue;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags:\n  --id N --wait-timeout-ms N\n%s",
                   argv[i], deploy::deploy_flag_help());
      return 2;
    }
  }
  if (id < 0 || id >= opt.clients) {
    std::fprintf(stderr, "--id must be in [0, %d)\n", opt.clients);
    return 2;
  }
  if (opt.scheduler_port <= 0) {
    std::fprintf(stderr, "--scheduler-port is required\n");
    return 2;
  }
  if (opt.resume && opt.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  deploy::init_observability(opt, "client-" + std::to_string(id), argc, argv);
  std::unique_ptr<obs::Journal> journal;
  if (!opt.journal_path.empty()) {
    journal = std::make_unique<obs::Journal>(opt.journal_path, opt.resume);
    if (!journal->ok()) {
      std::fprintf(stderr, "cannot open journal %s\n", opt.journal_path.c_str());
      return 2;
    }
    obs::set_ambient_journal(journal.get());
    obs::set_metrics_enabled(true);
  }

  const auto cfg = deploy::make_simulation_config(opt);
  int rc = 0;
  try {
    // Register first (the server's barrier counts registrations), then build
    // the replica population while the server builds its own.
    comm::SocketClientNetwork net(cfg.n_clients, id, deploy::make_transport(opt),
                                  opt.scheduler_host,
                                  static_cast<std::uint16_t>(opt.scheduler_port));
    auto exporter = deploy::make_exporter(opt);
    if (exporter && exporter->ok()) {
      exporter->set_status_provider([&net, id] {
        obs::JsonObject s;
        s.add("role", "client")
            .add("id", id)
            .add("round", obs::metrics::current_round().value())
            .add("connected", net.connected())
            .add("wire_bytes", obs::metrics::transport_bytes_sent().value())
            .add("peak_rss", static_cast<std::uint64_t>(common::peak_rss_bytes()));
        return s.str();
      });
    }
    fl::Simulation sim(cfg);
    if (!net.wait_connected(wait_timeout_ms)) {
      std::fprintf(stderr, "client %d: no server registration within %d ms\n", id,
                   wait_timeout_ms);
      return 1;
    }
    // With telemetry on, open a persistent scheduler link that beacons this
    // client's progress snapshots — the rows in the scheduler's fleet table.
    // Telemetry off keeps the pre-§17 topology: clients touch the scheduler
    // only during discovery.
    std::unique_ptr<comm::SchedulerSession> fleet_link;
    if (obs::metrics_enabled()) {
      comm::RegisterInfo beacon_info;
      beacon_info.role = comm::NodeRole::kClient;
      beacon_info.node_id = id;
      try {
        fleet_link = std::make_unique<comm::SchedulerSession>(
            opt.scheduler_host, static_cast<std::uint16_t>(opt.scheduler_port),
            beacon_info, deploy::make_transport(opt));
      } catch (const comm::TransportError& e) {
        FC_LOG(Warn) << "client " << id << ": fleet beacon link failed — " << e.what();
      }
    }
    fl::Client& self = sim.client(id);

    // Failover state (DESIGN.md §18). `ring` maps a committed-round index R
    // to this client's state *before* training round R, so a resumed server's
    // kRoundSync can roll us back to exactly the round it replays from. The
    // manager persists the same states across our own crashes, keyed by
    // (run_seed, id) so a snapshot can never resume as a different replica.
    std::uint32_t epoch = 0;
    int position = 0;  // training rounds this replica has locally completed
    std::map<int, std::vector<std::uint8_t>> ring;
    std::unique_ptr<fl::CheckpointManager> manager;
    if (!opt.checkpoint_dir.empty()) {
      manager = std::make_unique<fl::CheckpointManager>(
          opt.checkpoint_dir + "/client-" + std::to_string(id), opt.checkpoint_every);
      if (opt.resume) {
        if (std::optional<fl::RunSnapshot> snap = manager->load_latest()) {
          fl::restore_client_snapshot(self, *snap, cfg.seed, id);
          epoch = snap->epoch;
          position = snap->next_round;
          net.set_epoch(epoch);
          std::printf("client %d: resumed at epoch %u (next round %d)\n", id,
                      static_cast<unsigned>(epoch), snap->next_round);
          if (obs::Journal* j = obs::ambient_journal()) {
            obs::JsonObject entry;
            entry.add("kind", "client_resume")
                .add("client", id)
                .add("round", snap->next_round)
                .add("epoch", static_cast<std::int64_t>(epoch));
            j->write(entry);
          }
        } else {
          std::printf("client %d: no snapshot to resume; starting fresh\n", id);
        }
      }
    }
    {
      // Seed the ring with the current position (round 0 fresh, or the
      // restored round after --resume) so a kRoundSync that arrives before
      // any broadcast still finds its target.
      common::ByteWriter w;
      self.save_state(w);
      ring[position] = w.take();
    }

    std::printf("client %d: registered%s\n", id, self.malicious() ? " (malicious)" : "");
    std::fflush(stdout);

    while (!net.shutdown_received()) {
      if (!net.client_wait_for_message(id, std::chrono::milliseconds(200))) continue;
      while (std::optional<comm::Message> msg = net.client_try_recv(id)) {
        if (msg->type == comm::MessageType::kRoundSync) {
          // A restarted server is re-synchronizing the fleet: roll back to
          // its committed round and adopt its epoch so pre-crash traffic is
          // rejected from here on.
          try {
            const comm::RoundSync sync = comm::decode_round_sync(msg->payload);
            if (sync.epoch < epoch) {
              throw comm::EpochError("round_sync: stale epoch " +
                                     std::to_string(sync.epoch) + " < " +
                                     std::to_string(epoch));
            }
            const auto it = ring.find(sync.next_round);
            if (it == ring.end()) {
              std::fprintf(stderr,
                           "client %d: no round-%d state to sync to (have %zu entries)\n",
                           id, sync.next_round, ring.size());
              rc = 1;
              goto done;
            }
            common::ByteReader r(it->second);
            self.restore_state(r);
            epoch = sync.epoch;
            net.set_epoch(epoch);
            // Rounds past the sync point were never committed server-side;
            // the replay will regenerate them.
            ring.erase(ring.upper_bound(sync.next_round), ring.end());
            comm::Message ack;
            ack.type = comm::MessageType::kRoundSyncAck;
            ack.round = msg->round;
            ack.sender = id;
            ack.correlation = msg->correlation;
            ack.payload = comm::encode_round_sync(sync);
            ack.stamp();
            net.send_to_server(id, std::move(ack));
            FC_METRIC(round_syncs().inc());
            if (obs::Journal* j = obs::ambient_journal()) {
              obs::JsonObject entry;
              entry.add("kind", "round_sync")
                  .add("node", "client")
                  .add("client", id)
                  .add("round", sync.next_round)
                  .add("epoch", static_cast<std::int64_t>(epoch));
              j->write(entry);
            }
            std::printf("client %d: synced to round %d at epoch %u\n", id,
                        sync.next_round, static_cast<unsigned>(epoch));
            std::fflush(stdout);
          } catch (const comm::TransportError& e) {
            FC_LOG(Warn) << "client " << id << ": round-sync ack lost: " << e.what();
          } catch (const Error& e) {
            FC_LOG(Warn) << "client " << id << ": dropping round sync — " << e.what();
          }
          continue;
        }
        // Ring entries are captured for *training* broadcasts only: fine-tune
        // rounds arrive tagged >= 1000 (defense/finetune.cpp) and must not
        // clobber the training-round states a kRoundSync targets.
        const bool training_broadcast =
            msg->type == comm::MessageType::kModelBroadcast &&
            msg->round < static_cast<std::uint32_t>(cfg.rounds);
        self.handle_one(net, *msg);
        if (training_broadcast) {
          const int next_round = static_cast<int>(msg->round) + 1;
          common::ByteWriter w;
          self.save_state(w);
          ring[next_round] = w.take();
          if (manager && manager->due(next_round, cfg.rounds)) {
            manager->save(
                fl::make_client_snapshot(self, cfg.seed, id, next_round, epoch));
          }
        }
      }
    }
  done:
    std::printf("client %d: %s, exiting\n", id,
                rc == 0 ? "shutdown received" : "round sync failed");
  } catch (const comm::TransportError& e) {
    std::fprintf(stderr, "client %d: transport failure: %s\n", id, e.what());
    rc = 1;
  }
  if (journal) obs::set_ambient_journal(nullptr);
  return rc;
}
