// Neural Cleanse demo: reverse-engineer the implanted trigger from a
// backdoored federated model, flag the attacked label by MAD outlier
// detection on the reconstructed-mask norms, and mitigate by pruning.
//
// Renders the reconstructed trigger mask for the flagged label as ASCII art
// so you can see the recovered trigger location.
//
// Usage: neural_cleanse_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/neural_cleanse.h"
#include "common/logging.h"
#include "fl/metrics.h"
#include "fl/simulation.h"

using namespace fedcleanse;

int main(int argc, char** argv) {
  common::init_log_level_from_env();
  fl::SimulationConfig cfg;
  cfg.rounds = 20;
  cfg.attack.pattern = data::make_pixel_pattern(5);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 5.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("Training backdoored model (9 -> 1, 5-pixel trigger)...\n");
  fl::Simulation sim(cfg);
  sim.run(false);
  std::printf("  TA=%.3f  AA=%.3f\n\n", sim.test_accuracy(), sim.attack_success());

  auto model = sim.server().model().clone();
  baselines::NeuralCleanseConfig ncfg;
  ncfg.optimization_steps = 150;
  std::printf("Reverse-engineering triggers for all 10 labels...\n");
  auto report = baselines::run_neural_cleanse(model, sim.test_set(), ncfg);

  std::printf("label  mask-L1  anomaly  flip-rate\n");
  for (int l = 0; l < 10; ++l) {
    std::printf("  %d    %7.2f   %5.2f    %.3f\n", l, report.triggers[l].mask_l1,
                report.anomaly_index[l], report.triggers[l].flip_rate);
  }
  std::printf("flagged labels:");
  for (int l : report.flagged_labels) std::printf(" %d", l);
  std::printf("\n\n");

  for (int l : report.flagged_labels) {
    const auto& mask = report.triggers[static_cast<std::size_t>(l)].mask;
    std::printf("reconstructed trigger mask for label %d:\n", l);
    for (int y = 0; y < mask.shape()[1]; ++y) {
      for (int x = 0; x < mask.shape()[2]; ++x) {
        const float m = mask.at(0, y, x);
        std::putchar(m > 0.5f ? '#' : (m > 0.2f ? '+' : '.'));
      }
      std::putchar('\n');
    }
  }

  std::printf("\nmitigation: pruned %d neurons; clean accuracy %.3f -> %.3f\n",
              report.neurons_pruned, report.accuracy_before, report.accuracy_after);
  std::printf("attack success after mitigation: %.3f\n",
              fl::attack_success_rate(model.net, sim.backdoor_testset()));
  return 0;
}
