#!/bin/sh
# Regenerate every table and figure. FEDCLEANSE_SCALE trades fidelity for
# time. Tables run first (the headline results), then figures/ablations.
#
# micro_ops and fl_scale additionally write BENCH_micro_ops.json and
# BENCH_fl_scale.json into the repo root (the committed baselines —
# scripts/bench_compare.py diffs fresh runs against them). FEDCLEANSE_THREADS
# sets the pool size micro_ops times against (default: hardware concurrency);
# FEDCLEANSE_SCALE_MAX_CLIENTS trims the fl_scale ladder; setting
# FEDCLEANSE_UPDATE_CODEC=int8 reruns fl_scale with quantized uplink.
cd "$(dirname "$0")" || exit 1
: "${FEDCLEANSE_SCALE_MAX_CLIENTS:=100000}"
export FEDCLEANSE_SCALE_MAX_CLIENTS
for b in build/bench/table1_mnist build/bench/table2_fashion \
         build/bench/table3_cifar_dba build/bench/table4_neural_cleanse \
         build/bench/table5_pruning_methods build/bench/table6_adjust_weights \
         build/bench/table7_patterns build/bench/fig3_distribution \
         build/bench/fig5_pruning_curves build/bench/fig6_delta_sweep \
         build/bench/fig7_random_selection build/bench/fig8_num_attackers \
         build/bench/fig9_energy build/bench/fig10_regularization \
         build/bench/ablation_adaptive_attacks build/bench/ablation_aggregators \
         build/bench/micro_ops build/bench/fl_scale; do
  echo "===== $(basename "$b") ====="
  "$b"
  echo
done
