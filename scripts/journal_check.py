#!/usr/bin/env python3
"""Validate a fedcleanse run journal (JSONL) and print its TA/ASR table.

Usage: journal_check.py RUN.jsonl [--quiet] [--stable]

A journal is one JSON object per line, written by Simulation::run,
federated_finetune, and run_defense (see DESIGN.md "Observability").
Checks enforced here:

  * every line parses as a JSON object with a known "kind"
    (train_round | finetune_round | defense | resume, plus the socket
    transport's control-plane events: client_register | reconnect |
    client_dead | server_register, plus the observability plane's
    open | fleet_status — DESIGN.md §17, plus the failover plane's
    server_resume | client_resume | round_sync — DESIGN.md §18)
  * an "open" line carries the writing process's identity: pid, role,
    argv_hash, cpu dispatch tier, and the trace wall-clock anchor
  * a "fleet_status" line (scheduler only) carries the closed round, node
    counts, round-latency percentiles, and straggler/stale counts
  * round-bearing kinds carry round / ta / asr / n_participants / n_valid,
    with ta and asr in [0, 1]
  * rounds are monotonically increasing within each kind (journals append
    in execution order; out-of-order rounds mean interleaved writers)
  * a "defense" line carries the stage accuracies and phase_seconds
  * "train_round" lines carry wire_bytes (client→server uplink for that
    round, a non-negative integer) and update_codec ("f32" or "int8")
  * "train_round" and "defense" lines carry peak_rss (the process's VmHWM
    in bytes), and the values never decrease within one process — VmHWM is
    a lifetime high-water mark, so a drop means interleaved writers. The
    monotonicity window restarts at a resume marker (a new process).

Crash-resume journals (DESIGN.md §13): a resumed run appends to the crashed
run's journal after a {"kind": "resume", "stage": ..., "round": R} marker.
Rounds at or after R were re-run, so the crashed run's entries for them are
superseded and dropped here; a torn (half-written) line is forgiven when a
resume marker follows it, since the crash that tore it is exactly what the
resume repaired. A {"kind": "server_resume"} marker (the remote server's
server-scope restore, DESIGN.md §18) supersedes the same way; client_resume
marks a restarted client process (new VmHWM floor, torn-line forgiveness,
nothing to supersede — clients journal no rounds). With --stable the output omits everything that legitimately
differs between a resumed run and an uninterrupted reference run (wall-clock
phase timings, the journal path), so the two outputs can be diffed byte-for-
byte to prove the resume replayed the same rounds.

Exit code is 1 on any violation, so CI can gate on it.
"""
from __future__ import annotations

import argparse
import json
import sys

ROUND_KINDS = ("train_round", "finetune_round")
# Socket-transport control-plane events (DESIGN.md §15): registrations,
# reconnect-and-reregister, and liveness deaths, written by whichever node
# observed them ("node": server | scheduler | client).
TRANSPORT_KINDS = ("client_register", "reconnect", "client_dead", "server_register")
# Observability-plane events (DESIGN.md §17): the process-identity header every
# telemetry-enabled journal opens with, and the scheduler's per-round fleet
# roll-up.
OBS_KINDS = ("open", "fleet_status")
# Failover events (DESIGN.md §18): the remote server's server-scope resume
# marker, a restarted client's own restore, and the round-sync handshake that
# rolls the fleet back to the committed round (journaled by both roles).
FAILOVER_KINDS = ("server_resume", "client_resume", "round_sync")
KNOWN_KINDS = (ROUND_KINDS + ("defense", "resume") + TRANSPORT_KINDS + OBS_KINDS
               + FAILOVER_KINDS)
OPEN_KEYS = ("pid", "role", "argv_hash", "cpu", "trace_anchor_unix_ns")
FLEET_KEYS = ("round", "n_nodes", "n_reported", "latency_p50_ms",
              "latency_max_ms", "n_stragglers", "n_stale")
ROUND_KEYS = ("round", "ta", "asr", "n_participants", "n_valid")
DEFENSE_KEYS = ("method", "ta", "asr", "ta_before", "asr_before",
                "neurons_pruned", "weights_zeroed", "phase_seconds")
TRANSPORT_NODES = ("server", "scheduler", "client")
DEAD_REASONS = ("eof", "heartbeat", "send", "decode")
UPDATE_CODECS = ("f32", "int8")


def apply_resume(entries: list[dict], stage: str, rnd: int) -> None:
    """Drop entries the resumed run is about to re-write.

    A "train"-stage resume replays training from round `rnd` and everything
    after it (fine-tuning, defense); a "finetune"-stage resume replays
    fine-tune rounds from `rnd` and the defense summary.
    """
    def superseded(e: dict) -> bool:
        kind = e.get("kind")
        if kind == "defense":
            return True
        if kind == "train_round":
            return stage == "train" and e["round"] >= rnd
        if kind == "finetune_round":
            return stage == "train" or e["round"] >= rnd
        return False

    entries[:] = [e for e in entries if not superseded(e)]


def check(path: str) -> tuple[list[dict], list[str]]:
    entries: list[dict] = []
    errors: list[tuple[int, str]] = []
    torn: list[int] = []      # line numbers that failed to parse as JSON
    resumes: list[int] = []   # line numbers of resume markers
    last_round: dict[str, int] = {}
    last_peak = 0             # VmHWM floor for the current process
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append((lineno, f"{where}: not valid JSON ({e})"))
                torn.append(lineno)
                continue
            if not isinstance(entry, dict):
                errors.append((lineno, f"{where}: line is not a JSON object"))
                continue
            kind = entry.get("kind")
            if kind not in KNOWN_KINDS:
                errors.append((lineno, f"{where}: unknown kind {kind!r}"))
                continue
            if kind in ("resume", "server_resume"):
                stage, rnd = entry.get("stage"), entry.get("round")
                # A server-scope resume (§18) only ever restores the training
                # stage — defense-stage snapshots are full-run scope.
                ok_stages = ("train", "finetune") if kind == "resume" else ("train",)
                if stage not in ok_stages or not isinstance(rnd, int):
                    errors.append((lineno, f"{where}: malformed {kind} marker"))
                    continue
                if kind == "server_resume":
                    epoch = entry.get("epoch")
                    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1:
                        errors.append(
                            (lineno, f"{where}: server_resume epoch={epoch!r} "
                                     "not a positive int (resumes start at epoch 1)"))
                resumes.append(lineno)
                apply_resume(entries, stage, rnd)
                # Monotonicity restarts at the resume point for the replayed
                # kinds (the resumed process re-emits those rounds).
                if stage == "train":
                    last_round.pop("finetune_round", None)
                    last_round["train_round"] = rnd - 1
                else:
                    last_round["finetune_round"] = rnd - 1
                last_peak = 0  # the resumed process has its own VmHWM
                continue
            if kind == "client_resume":
                if not isinstance(entry.get("client"), int):
                    errors.append((lineno, f"{where}: client_resume missing client id"))
                for k in ("round", "epoch"):
                    v = entry.get(k)
                    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                        errors.append(
                            (lineno, f"{where}: client_resume {k}={v!r} not a "
                                     "non-negative int"))
                resumes.append(lineno)  # forgive lines torn by the client's crash
                last_peak = 0           # the restarted process has its own VmHWM
                entries.append(entry)
                continue
            if kind == "round_sync":
                node = entry.get("node")
                if node not in ("server", "client"):
                    errors.append((lineno, f"{where}: round_sync node={node!r} unknown"))
                for k in ("round", "epoch"):
                    v = entry.get(k)
                    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                        errors.append(
                            (lineno, f"{where}: round_sync {k}={v!r} not a "
                                     "non-negative int"))
                if node == "client" and not isinstance(entry.get("client"), int):
                    errors.append((lineno, f"{where}: round_sync missing client id"))
                if node == "server" and not isinstance(entry.get("n_acked"), int):
                    errors.append((lineno, f"{where}: round_sync missing n_acked"))
                entries.append(entry)
                continue
            if kind == "open":
                missing = [k for k in OPEN_KEYS if k not in entry]
                if missing:
                    errors.append((lineno, f"{where}: open missing keys {missing}"))
                else:
                    for k in ("pid", "argv_hash", "trace_anchor_unix_ns"):
                        v = entry[k]
                        if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
                            errors.append(
                                (lineno, f"{where}: open {k}={v!r} not a positive int"))
                    for k in ("role", "cpu"):
                        if not isinstance(entry[k], str) or not entry[k]:
                            errors.append(
                                (lineno, f"{where}: open {k}={entry[k]!r} not a "
                                         "non-empty string"))
                # An open line past the first means a new process appended
                # (crash-resume), which carries its own VmHWM floor.
                last_peak = 0
                entries.append(entry)
                continue
            if kind == "fleet_status":
                if entry.get("node") != "scheduler":
                    errors.append(
                        (lineno, f"{where}: fleet_status node={entry.get('node')!r} "
                                 "(only the scheduler aggregates the fleet)"))
                missing = [k for k in FLEET_KEYS if k not in entry]
                if missing:
                    errors.append(
                        (lineno, f"{where}: fleet_status missing keys {missing}"))
                    continue
                for k in ("round", "n_nodes", "n_reported", "n_stragglers", "n_stale"):
                    v = entry[k]
                    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                        errors.append(
                            (lineno, f"{where}: fleet_status {k}={v!r} not a "
                                     "non-negative int"))
                for k in ("latency_p50_ms", "latency_max_ms"):
                    v = entry[k]
                    if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                        errors.append(
                            (lineno, f"{where}: fleet_status {k}={v!r} negative "
                                     "or non-numeric"))
                r = entry["round"]
                if isinstance(r, int) and not isinstance(r, bool):
                    if kind in last_round and r <= last_round[kind]:
                        errors.append(
                            (lineno, f"{where}: fleet_status round {r} not after "
                                     f"{last_round[kind]}"))
                    else:
                        last_round[kind] = r
                entries.append(entry)
                continue
            if kind in TRANSPORT_KINDS:
                node = entry.get("node")
                if node not in TRANSPORT_NODES:
                    errors.append((lineno, f"{where}: {kind} node={node!r} unknown"))
                if not isinstance(entry.get("client"), int):
                    errors.append((lineno, f"{where}: {kind} missing client id"))
                if kind == "client_dead" and entry.get("reason") not in DEAD_REASONS:
                    errors.append(
                        (lineno, f"{where}: client_dead reason={entry.get('reason')!r} "
                                 f"not in {DEAD_REASONS}"))
                if kind == "reconnect" and "generation" not in entry:
                    errors.append((lineno, f"{where}: reconnect missing generation"))
                if kind == "server_register" and "port" not in entry:
                    errors.append((lineno, f"{where}: server_register missing port"))
                entries.append(entry)
                continue
            required = ROUND_KEYS if kind in ROUND_KINDS else DEFENSE_KEYS
            missing = [k for k in required if k not in entry]
            if missing:
                errors.append((lineno, f"{where}: {kind} missing keys {missing}"))
                continue
            for k in ("ta", "asr"):
                v = entry[k]
                if not isinstance(v, (int, float)) or not (0.0 <= v <= 1.0):
                    errors.append((lineno, f"{where}: {k}={v!r} outside [0, 1]"))
            if kind in ("train_round", "defense"):
                rss = entry.get("peak_rss")
                if not isinstance(rss, int) or isinstance(rss, bool) or rss < 0:
                    errors.append(
                        (lineno, f"{where}: {kind} peak_rss={rss!r} missing or invalid"))
                elif rss < last_peak:
                    errors.append(
                        (lineno, f"{where}: peak_rss {rss} below earlier {last_peak} "
                                 "(VmHWM never decreases within one process)"))
                else:
                    last_peak = rss
            if kind == "train_round":
                wire = entry.get("wire_bytes")
                if not isinstance(wire, int) or isinstance(wire, bool) or wire < 0:
                    errors.append(
                        (lineno, f"{where}: wire_bytes={wire!r} missing or invalid"))
                codec = entry.get("update_codec")
                if codec not in UPDATE_CODECS:
                    errors.append(
                        (lineno, f"{where}: update_codec={codec!r} "
                                 f"not in {UPDATE_CODECS}"))
            if kind in ROUND_KINDS:
                r = entry["round"]
                if not isinstance(r, int) or r < 0:
                    errors.append((lineno, f"{where}: bad round {r!r}"))
                elif kind in last_round and r <= last_round[kind]:
                    errors.append(
                        (lineno, f"{where}: {kind} round {r} not after {last_round[kind]}"))
                else:
                    last_round[kind] = r
            entries.append(entry)

    # A line torn by the crash is not an error when a resume marker follows:
    # the entry it would have held was replayed by the resumed run.
    forgiven = {n for n in torn if any(r > n for r in resumes)}
    return entries, [msg for n, msg in errors if n not in forgiven]


def print_table(entries: list[dict], stable: bool) -> None:
    rounds = [e for e in entries if e.get("kind") in ROUND_KINDS]
    if rounds:
        print(f"{'kind':<15} {'round':>5} {'TA':>7} {'ASR':>7} {'valid':>5} {'drop':>4} {'retry':>5}")
        for e in rounds:
            print(f"{e['kind']:<15} {e['round']:>5} {e['ta']:>7.3f} {e['asr']:>7.3f} "
                  f"{e['n_valid']:>5} {e.get('n_dropped', 0):>4} {e.get('n_retried', 0):>5}")
    for e in entries:
        if e.get("kind") != "defense":
            continue
        print(f"defense ({e['method']}): "
              f"TA {e['ta_before']:.3f} -> {e['ta']:.3f}, "
              f"ASR {e['asr_before']:.3f} -> {e['asr']:.3f}, "
              f"{e['neurons_pruned']} pruned, {e['weights_zeroed']} zeroed")
        phases = e.get("phase_seconds") or {}
        if phases and not stable:
            print("  " + "  ".join(f"{k}={v:.2f}s" for k, v in sorted(phases.items())))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("journal", help="path to the JSONL run journal")
    ap.add_argument("--quiet", action="store_true", help="suppress the TA/ASR table")
    ap.add_argument("--stable", action="store_true",
                    help="omit wall-clock timings and the journal path so a "
                         "resumed run's output diffs clean against an "
                         "uninterrupted reference")
    args = ap.parse_args()

    try:
        entries, errors = check(args.journal)
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    if not args.quiet:
        print_table(entries, args.stable)
    if not entries:
        errors.append(f"{args.journal}: journal is empty")
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    if errors:
        return 1
    if args.stable:
        # No entry count: a resumed run legitimately carries one extra "open"
        # line per restarted process, and --stable output must diff clean.
        print("journal: OK")
    else:
        print(f"{args.journal}: OK ({len(entries)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
