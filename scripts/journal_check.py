#!/usr/bin/env python3
"""Validate a fedcleanse run journal (JSONL) and print its TA/ASR table.

Usage: journal_check.py RUN.jsonl [--quiet]

A journal is one JSON object per line, written by Simulation::run,
federated_finetune, and run_defense (see DESIGN.md "Observability").
Checks enforced here:

  * every line parses as a JSON object with a known "kind"
    (train_round | finetune_round | defense)
  * round-bearing kinds carry round / ta / asr / n_participants / n_valid,
    with ta and asr in [0, 1]
  * rounds are monotonically increasing within each kind (journals append
    in execution order; out-of-order rounds mean interleaved writers)
  * a "defense" line carries the stage accuracies and phase_seconds

Exit code is 1 on any violation, so CI can gate on it.
"""
from __future__ import annotations

import argparse
import json
import sys

ROUND_KINDS = ("train_round", "finetune_round")
KNOWN_KINDS = ROUND_KINDS + ("defense",)
ROUND_KEYS = ("round", "ta", "asr", "n_participants", "n_valid")
DEFENSE_KEYS = ("method", "ta", "asr", "ta_before", "asr_before",
                "neurons_pruned", "weights_zeroed", "phase_seconds")


def check(path: str) -> tuple[list[dict], list[str]]:
    entries: list[dict] = []
    errors: list[str] = []
    last_round: dict[str, int] = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON ({e})")
                continue
            if not isinstance(entry, dict):
                errors.append(f"{where}: line is not a JSON object")
                continue
            kind = entry.get("kind")
            if kind not in KNOWN_KINDS:
                errors.append(f"{where}: unknown kind {kind!r}")
                continue
            required = ROUND_KEYS if kind in ROUND_KINDS else DEFENSE_KEYS
            missing = [k for k in required if k not in entry]
            if missing:
                errors.append(f"{where}: {kind} missing keys {missing}")
                continue
            for k in ("ta", "asr"):
                v = entry[k]
                if not isinstance(v, (int, float)) or not (0.0 <= v <= 1.0):
                    errors.append(f"{where}: {k}={v!r} outside [0, 1]")
            if kind in ROUND_KINDS:
                r = entry["round"]
                if not isinstance(r, int) or r < 0:
                    errors.append(f"{where}: bad round {r!r}")
                elif kind in last_round and r <= last_round[kind]:
                    errors.append(
                        f"{where}: {kind} round {r} not after {last_round[kind]}")
                else:
                    last_round[kind] = r
            entries.append(entry)
    return entries, errors


def print_table(entries: list[dict]) -> None:
    rounds = [e for e in entries if e.get("kind") in ROUND_KINDS]
    if rounds:
        print(f"{'kind':<15} {'round':>5} {'TA':>7} {'ASR':>7} {'valid':>5} {'drop':>4} {'retry':>5}")
        for e in rounds:
            print(f"{e['kind']:<15} {e['round']:>5} {e['ta']:>7.3f} {e['asr']:>7.3f} "
                  f"{e['n_valid']:>5} {e.get('n_dropped', 0):>4} {e.get('n_retried', 0):>5}")
    for e in entries:
        if e.get("kind") != "defense":
            continue
        print(f"defense ({e['method']}): "
              f"TA {e['ta_before']:.3f} -> {e['ta']:.3f}, "
              f"ASR {e['asr_before']:.3f} -> {e['asr']:.3f}, "
              f"{e['neurons_pruned']} pruned, {e['weights_zeroed']} zeroed")
        phases = e.get("phase_seconds") or {}
        if phases:
            print("  " + "  ".join(f"{k}={v:.2f}s" for k, v in sorted(phases.items())))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("journal", help="path to the JSONL run journal")
    ap.add_argument("--quiet", action="store_true", help="suppress the TA/ASR table")
    args = ap.parse_args()

    try:
        entries, errors = check(args.journal)
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    if not args.quiet:
        print_table(entries)
    if not entries:
        errors.append(f"{args.journal}: journal is empty")
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    if errors:
        return 1
    print(f"{args.journal}: OK ({len(entries)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
