#!/bin/sh
# Full verification: tier-1 build + test suite, then a ThreadSanitizer pass
# over the concurrency-critical tests (thread pool + determinism).
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== tsan: thread pool + determinism tests under -fsanitize=thread =="
cmake -B build-tsan -S . -DFEDCLEANSE_SANITIZE=thread
cmake --build build-tsan --target fedcleanse_tsan_tests -j
./build-tsan/tests/fedcleanse_tsan_tests

echo "verify: OK"
