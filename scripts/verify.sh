#!/bin/sh
# Full verification: tier-1 build + test suite, a ThreadSanitizer pass over
# the concurrency-critical tests (thread pool + determinism), and an
# ASan/UBSan pass over the kernel + layer tests (packed GEMM, workspace).
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== tsan: thread pool + determinism tests under -fsanitize=thread =="
cmake -B build-tsan -S . -DFEDCLEANSE_SANITIZE=thread
cmake --build build-tsan --target fedcleanse_tsan_tests -j
./build-tsan/tests/fedcleanse_tsan_tests

echo "== asan: kernel + layer tests under -fsanitize=address,undefined =="
cmake -B build-asan -S . -DFEDCLEANSE_SANITIZE=address,undefined
cmake --build build-asan --target fedcleanse_asan_tests -j
ASAN_OPTIONS=halt_on_error=1 ./build-asan/tests/fedcleanse_asan_tests

echo "verify: OK"
