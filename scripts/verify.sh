#!/bin/sh
# Full verification: tier-1 build + test suite, a ThreadSanitizer pass over
# the concurrency-critical tests (thread pool + determinism), and an
# ASan/UBSan pass over the kernel + layer tests (packed GEMM, workspace).
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== tsan: thread pool + determinism tests under -fsanitize=thread =="
cmake -B build-tsan -S . -DFEDCLEANSE_SANITIZE=thread
cmake --build build-tsan --target fedcleanse_tsan_tests -j
./build-tsan/tests/fedcleanse_tsan_tests

echo "== asan: kernel + layer tests under -fsanitize=address,undefined =="
cmake -B build-asan -S . -DFEDCLEANSE_SANITIZE=address,undefined
cmake --build build-asan --target fedcleanse_asan_tests -j
ASAN_OPTIONS=halt_on_error=1 ./build-asan/tests/fedcleanse_asan_tests

echo "== telemetry: quickstart journal + trace, stdout unperturbed =="
./build/examples/quickstart > /tmp/fc_stdout_off.txt
./build/examples/quickstart --journal-out /tmp/fc_run.jsonl \
  --trace-out /tmp/fc_trace.json > /tmp/fc_stdout_on.txt
diff /tmp/fc_stdout_off.txt /tmp/fc_stdout_on.txt
python3 scripts/journal_check.py --quiet /tmp/fc_run.jsonl

echo "== crash-resume: SIGKILL mid-run, resume, model bytes identical =="
rm -rf /tmp/fc_ckpt /tmp/fc_ref.fckp /tmp/fc_out.fckp
./build/examples/quickstart 42 --save /tmp/fc_ref.fckp > /dev/null
./build/examples/quickstart 42 --checkpoint-dir /tmp/fc_ckpt \
  --checkpoint-every 2 --save /tmp/fc_out.fckp > /dev/null &
fc_pid=$!
while [ ! -f /tmp/fc_ckpt/snapshot-000002.fcrs ]; do
  kill -0 "$fc_pid" 2>/dev/null || { echo "run finished before the kill"; exit 1; }
  sleep 0.2
done
kill -9 "$fc_pid"
wait "$fc_pid" || true
./build/examples/quickstart 42 --checkpoint-dir /tmp/fc_ckpt \
  --checkpoint-every 2 --resume --save /tmp/fc_out.fckp > /dev/null
cmp /tmp/fc_ref.fckp /tmp/fc_out.fckp

echo "verify: OK"
