#!/usr/bin/env bash
# Server/scheduler failover gate for the socket deployment (DESIGN.md §18).
#
# The transport chaos test (scripts/proc_chaos.sh) kills *clients* and only
# claims liveness. This script kills the *coordinator* nodes and claims full
# byte-identity:
#
#   phase 1  uninterrupted socket run                    → reference model
#   phase 2  SIGKILL the server mid-round, restart it
#            with --resume                               → cmp vs reference
#   phase 3  SIGKILL the scheduler mid-round, restart it
#            with --registry ... --resume                → cmp vs reference
#
# Phase 2 exercises the whole §18 machinery: the server restores its
# server-scope snapshot at a bumped epoch, re-announces its new data port
# through the scheduler, the surviving clients reconnect, and the kRoundSync
# handshake rolls every replica back to the last committed round before the
# replay — so the final cleansed model must be byte-identical to the
# uninterrupted run. Phase 3 proves the scheduler is not a single point of
# failure: its registry journal rebuilds the roster and the server's session
# reconnects, all without perturbing the data plane.
#
# Timeouts stay at the no-fault defaults: a retransmit would retrain a client
# and break identity, which is exactly what this gate must catch.
#
# Usage: scripts/server_chaos.sh [BUILD_DIR]   (default: build)
set -euo pipefail

# Re-exec as a process-group leader so cleanup can kill the *whole* group:
# `jobs -p` misses grandchildren, and a failed assertion mid-run would leave
# orphaned clients spinning in their reconnect loops.
if [ "${FC_PGL:-}" != 1 ]; then
  FC_PGL=1 exec setsid "$0" "$@"
fi

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO_ROOT/build}"
WORK="$(mktemp -d)"
cleanup() {
  trap '' TERM  # don't let our own group-kill re-enter this handler
  kill -s TERM -- "-$$" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

N=5
FLAGS=(--clients "$N" --rounds 3 --samples-train 60 --ft-rounds 2)

wait_for_port_file() {
  for _ in $(seq 100); do [ -s "$1" ] && break; sleep 0.1; done
  [ -s "$1" ] || { echo "scheduler never published its port ($1)" >&2; exit 1; }
}

# Block until the server journal holds a committed training round, so the
# kill lands mid-run rather than on the registration barrier.
wait_for_round() {  # <journal> <pid>
  for _ in $(seq 600); do
    grep -q '"kind":"train_round"' "$1" 2>/dev/null && return 0
    kill -0 "$2" 2>/dev/null || { echo "process $2 died before round 0" >&2; exit 1; }
    sleep 0.1
  done
  echo "round 0 never committed in $1" >&2
  exit 1
}

echo "[1/3] uninterrupted socket run (the byte-identity reference)"
"$BUILD/examples/fedcleanse_scheduler" --port-file "$WORK/ref.port" \
  >"$WORK/ref-sched.log" 2>&1 &
wait_for_port_file "$WORK/ref.port"
PORT="$(cat "$WORK/ref.port")"
for id in $(seq 0 $((N - 1))); do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$PORT" >"$WORK/ref-client$id.log" 2>&1 &
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT" \
  --save "$WORK/reference.fckp" --journal-out "$WORK/ref-server.jsonl" \
  >"$WORK/ref-server.log" 2>&1
wait

echo "[2/3] SIGKILL the server mid-round; restart with --resume"
"$BUILD/examples/fedcleanse_scheduler" --port-file "$WORK/kill.port" \
  --journal-out "$WORK/kill-sched.jsonl" >"$WORK/kill-sched.log" 2>&1 &
wait_for_port_file "$WORK/kill.port"
PORT="$(cat "$WORK/kill.port")"
for id in $(seq 0 $((N - 1))); do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$PORT" --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 \
    --journal-out "$WORK/kill-client$id.jsonl" >"$WORK/kill-client$id.log" 2>&1 &
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 \
  --save "$WORK/resumed.fckp" --journal-out "$WORK/kill-server.jsonl" \
  >"$WORK/kill-server.log" 2>&1 &
SERVER=$!
wait_for_round "$WORK/kill-server.jsonl" "$SERVER"
kill -9 "$SERVER"
echo "  server killed after a committed round; restarting with --resume"
rc=0
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 --resume \
  --save "$WORK/resumed.fckp" --journal-out "$WORK/kill-server.jsonl" \
  >"$WORK/kill-server-resumed.log" 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: resumed server exited $rc" >&2
  sed -e 's/^/  server: /' "$WORK/kill-server-resumed.log" >&2
  exit 1
fi
wait
if ! cmp "$WORK/reference.fckp" "$WORK/resumed.fckp"; then
  echo "FAIL: resumed-run model diverges from the uninterrupted reference" >&2
  sed -e 's/^/  server: /' "$WORK/kill-server-resumed.log" >&2
  exit 1
fi
grep -q '"kind":"server_resume"' "$WORK/kill-server.jsonl" || {
  echo "FAIL: server journal has no server_resume marker" >&2; exit 1; }
grep -q '"kind":"round_sync"' "$WORK/kill-server.jsonl" || {
  echo "FAIL: server journal has no round_sync handshake" >&2; exit 1; }
synced=$(grep -c '"kind":"round_sync"' "$WORK"/kill-client*.jsonl | \
  awk -F: '{s += $2} END {print s}')
if [ "$synced" -lt "$N" ]; then
  echo "FAIL: only $synced of $N clients journaled a round_sync" >&2
  exit 1
fi
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/kill-server.jsonl"
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/kill-sched.jsonl"
for id in $(seq 0 $((N - 1))); do
  python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/kill-client$id.jsonl"
done
# The superseded pre-crash rounds must collapse to the reference's table:
# same rounds, same accuracies, same wire bytes (DESIGN.md §18).
python3 "$REPO_ROOT/scripts/journal_check.py" --stable "$WORK/ref-server.jsonl" \
  >"$WORK/ref-table.txt"
python3 "$REPO_ROOT/scripts/journal_check.py" --stable "$WORK/kill-server.jsonl" \
  >"$WORK/kill-table.txt"
if ! diff -u "$WORK/ref-table.txt" "$WORK/kill-table.txt"; then
  echo "FAIL: resumed journal's stable table diverges from the reference" >&2
  exit 1
fi
echo "  server failover: model byte-identical, journal supersession clean"

echo "[3/3] SIGKILL the scheduler mid-round; restart with --registry --resume"
# The scheduler must come back on the *same* port (every node was told it on
# the command line), so pick a free one up front instead of --port-file.
SPORT="$(python3 -c 'import socket; s = socket.socket(); s.bind(("127.0.0.1", 0));
print(s.getsockname()[1]); s.close()')"
"$BUILD/examples/fedcleanse_scheduler" --port "$SPORT" \
  --registry "$WORK/registry.txt" >"$WORK/sk-sched.log" 2>&1 &
SCHED=$!
sleep 0.3
for id in $(seq 0 $((N - 1))); do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$SPORT" >"$WORK/sk-client$id.log" 2>&1 &
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$SPORT" \
  --save "$WORK/schedkill.fckp" --journal-out "$WORK/sk-server.jsonl" \
  >"$WORK/sk-server.log" 2>&1 &
SERVER=$!
wait_for_round "$WORK/sk-server.jsonl" "$SERVER"
kill -9 "$SCHED"
echo "  scheduler killed after a committed round; restarting on port $SPORT"
"$BUILD/examples/fedcleanse_scheduler" --port "$SPORT" \
  --registry "$WORK/registry.txt" --resume >"$WORK/sk-sched-restarted.log" 2>&1 &
rc=0
wait "$SERVER" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited $rc after a scheduler restart" >&2
  sed -e 's/^/  server: /' "$WORK/sk-server.log" >&2
  exit 1
fi
wait
if ! cmp "$WORK/reference.fckp" "$WORK/schedkill.fckp"; then
  echo "FAIL: scheduler restart perturbed the data plane (model diverged)" >&2
  exit 1
fi
grep -q "restored" "$WORK/sk-sched-restarted.log" || {
  echo "FAIL: restarted scheduler did not load its registry" >&2; exit 1; }
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/sk-server.jsonl"
echo "server chaos: OK (server and scheduler each killed and recovered; model byte-identical)"
