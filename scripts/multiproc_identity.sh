#!/usr/bin/env bash
# Byte-identity gate for the socket transport (DESIGN.md §15).
#
# Runs the deployment demo twice with identical flags:
#   1. fedcleanse_server --local        — the in-process reference
#   2. scheduler + server + 5 clients   — real processes over TCP
# and asserts with cmp(1) that the two saved models are byte-identical.
# Framing, registration, heartbeats, and the socket recv paths must be
# invisible to the protocol: any divergence (a retransmit that retrained a
# client, a reordered message, a corrupted frame) changes the model bytes.
#
# With --telemetry the socket deployment runs a third time with the full
# observability plane on every node (--metrics-port 0, --trace-out,
# --journal-out) and the saved model is compared against the telemetry-off
# reference: DESIGN.md §17's zero-perturbation invariant, enforced with cmp.
# The per-process traces are then stitched by scripts/trace_merge.py --verify,
# which asserts server sends causally precede same-correlation client spans.
#
# Usage: scripts/multiproc_identity.sh [--telemetry] [BUILD_DIR]   (default: build)
set -euo pipefail

# Re-exec as a process-group leader so cleanup can kill the *whole* group:
# `jobs -p` misses grandchildren, and a failed assertion mid-run used to
# leave orphaned clients spinning in their reconnect loops.
if [ "${FC_PGL:-}" != 1 ]; then
  FC_PGL=1 exec setsid "$0" "$@"
fi

TELEMETRY=0
if [ "${1:-}" = "--telemetry" ]; then
  TELEMETRY=1
  shift
fi

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO_ROOT/build}"
WORK="$(mktemp -d)"
cleanup() {
  trap '' TERM  # don't let our own group-kill re-enter this handler
  kill -s TERM -- "-$$" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

FLAGS=(--clients 5 --rounds 3 --samples-train 60 --ft-rounds 3)

TOTAL=$((3 + TELEMETRY))
echo "[1/$TOTAL] in-process reference run"
"$BUILD/examples/fedcleanse_server" --local "${FLAGS[@]}" \
  --save "$WORK/reference.fckp" >"$WORK/local.log" 2>&1

echo "[2/$TOTAL] socket deployment: scheduler + server + 5 client processes"
"$BUILD/examples/fedcleanse_scheduler" --port-file "$WORK/sched.port" \
  --journal-out "$WORK/sched.jsonl" >"$WORK/sched.log" 2>&1 &
for _ in $(seq 100); do [ -s "$WORK/sched.port" ] && break; sleep 0.1; done
[ -s "$WORK/sched.port" ] || { echo "scheduler never published its port" >&2; exit 1; }
PORT="$(cat "$WORK/sched.port")"

for id in 0 1 2 3 4; do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$PORT" >"$WORK/client$id.log" 2>&1 &
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT" \
  --save "$WORK/socket.fckp" --journal-out "$WORK/server.jsonl" >"$WORK/server.log" 2>&1
wait

echo "[3/$TOTAL] comparing models and validating journals"
if ! cmp "$WORK/reference.fckp" "$WORK/socket.fckp"; then
  echo "FAIL: socket-run model diverges from the in-process reference" >&2
  sed -e 's/^/  server: /' "$WORK/server.log" >&2
  exit 1
fi
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/server.jsonl"
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/sched.jsonl"
echo "multiproc identity: OK (socket model byte-identical to the in-process reference)"

[ "$TELEMETRY" = 1 ] || exit 0

echo "[4/4] telemetry-on socket deployment (metrics + traces + journals everywhere)"
"$BUILD/examples/fedcleanse_scheduler" --port-file "$WORK/sched2.port" \
  --metrics-port 0 --journal-out "$WORK/sched-telem.jsonl" \
  --trace-out "$WORK/sched-telem.trace.json" >"$WORK/sched2.log" 2>&1 &
for _ in $(seq 100); do [ -s "$WORK/sched2.port" ] && break; sleep 0.1; done
[ -s "$WORK/sched2.port" ] || { echo "telemetry scheduler never published its port" >&2; exit 1; }
PORT2="$(cat "$WORK/sched2.port")"

for id in 0 1 2 3 4; do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$PORT2" --metrics-port 0 \
    --journal-out "$WORK/client$id-telem.jsonl" \
    --trace-out "$WORK/client$id-telem.trace.json" >"$WORK/client$id-telem.log" 2>&1 &
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT2" \
  --metrics-port 0 --save "$WORK/telemetry.fckp" \
  --journal-out "$WORK/server-telem.jsonl" \
  --trace-out "$WORK/server-telem.trace.json" >"$WORK/server-telem.log" 2>&1
wait

if ! cmp "$WORK/reference.fckp" "$WORK/telemetry.fckp"; then
  echo "FAIL: telemetry-on model diverges from the telemetry-off reference" >&2
  echo "      (the observability plane perturbed the run — DESIGN.md §17)" >&2
  sed -e 's/^/  server: /' "$WORK/server-telem.log" >&2
  exit 1
fi
for j in "$WORK/server-telem.jsonl" "$WORK/sched-telem.jsonl" \
         "$WORK"/client*-telem.jsonl; do
  python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$j"
done
python3 "$REPO_ROOT/scripts/trace_merge.py" "$WORK"/*-telem.trace.json \
  -o "$WORK/merged.trace.json" --verify
echo "multiproc identity: OK (telemetry-on model byte-identical; merged trace causally ordered)"
