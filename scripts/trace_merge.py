#!/usr/bin/env python3
"""Stitch per-process fedcleanse Chrome traces into one aligned timeline.

Usage: trace_merge.py TRACE.json [TRACE.json ...] -o merged.json [--verify]

Each fedcleanse process writes its own trace_event file (--trace-out /
FEDCLEANSE_TRACE) with timestamps measured from its private steady-clock
epoch. The file's top-level metadata records that epoch's wall-clock anchor
("trace_wall_anchor_unix_ns", captured back to back with the steady read —
DESIGN.md §17), plus the writer's pid and process name. This tool:

  * loads every input trace, skipping unreadable or truncated files with a
    warning — a SIGKILLed client never flushes its trace, and a faulted
    deployment should still merge from the survivors;
  * shifts every event onto the shared wall clock: the earliest anchor across
    the inputs becomes t=0 and each file's events move forward by
    (anchor - min_anchor) microseconds;
  * keeps each process on its own track (events already carry the writer's
    real pid; process_name metadata events label the tracks), adding a
    process_sort_index so scheduler / server / clients stack in a stable
    order in the Perfetto UI (https://ui.perfetto.dev).

--verify additionally checks causality across the merge: every span in a
client process that carries a correlation id (args.corr, stamped by the
round-trip exchange — wire_recv, client.handle, and the reply's wire_send)
must start no earlier than the server's first wire_send span with the same
id. Anchors on one host agree to well under a scheduling quantum, so
--slack-us (default 100) absorbs the capture jitter without masking real
ordering bugs, which are off by whole spans, not microseconds. Any violation
(or a corr'd client span with no matching server send in the inputs) exits 1,
so CI can gate on it.

Exit code: 0 on success, 1 on verification failure or no loadable inputs.
"""
from __future__ import annotations

import argparse
import json
import sys


def load_trace(path: str) -> dict | None:
    """Parse one per-process trace; None (with a warning) if unusable."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: skipping {path}: {e}", file=sys.stderr)
        return None
    meta = doc.get("metadata") if isinstance(doc, dict) else None
    anchor = meta.get("trace_wall_anchor_unix_ns") if isinstance(meta, dict) else None
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(anchor, int) or not isinstance(events, list):
        print(f"warning: skipping {path}: missing wall anchor or traceEvents "
              "(pre-§17 trace?)", file=sys.stderr)
        return None
    return {
        "path": path,
        "anchor_ns": anchor,
        "pid": meta.get("pid"),
        "name": meta.get("process_name") or f"pid{meta.get('pid')}",
        "events": [e for e in events if isinstance(e, dict)],
    }


def sort_key(name: str) -> tuple[int, str]:
    """Stable track order: scheduler, then server, then clients, then rest."""
    for rank, prefix in enumerate(("scheduler", "server", "client")):
        if name.startswith(prefix):
            return (rank, name)
    return (3, name)


def merge(traces: list[dict]) -> list[dict]:
    min_anchor = min(t["anchor_ns"] for t in traces)
    merged: list[dict] = []
    for idx, t in enumerate(sorted(traces, key=lambda t: sort_key(t["name"]))):
        offset_us = (t["anchor_ns"] - min_anchor) / 1000.0
        pid = t["pid"]
        merged.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"sort_index": idx}})
        have_name_meta = False
        for ev in t["events"]:
            ev = dict(ev)
            ev["pid"] = pid  # one track per source file, even on pid reuse
            if ev.get("ph") == "M":
                if ev.get("name") == "process_name":
                    have_name_meta = True
            elif "ts" in ev:
                ev["ts"] = ev["ts"] + offset_us
            merged.append(ev)
        if not have_name_meta:
            merged.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": t["name"]}})
    return merged


def verify(traces: list[dict], slack_us: float) -> tuple[int, list[str]]:
    """Causality over the merge: server wire_send precedes same-corr client spans."""
    min_anchor = min(t["anchor_ns"] for t in traces)
    send_start: dict[int, float] = {}   # corr -> earliest aligned server send ts
    client_spans: list[tuple[str, dict, float]] = []
    for t in traces:
        offset_us = (t["anchor_ns"] - min_anchor) / 1000.0
        is_server = t["name"].startswith("server")
        is_client = t["name"].startswith("client")
        for ev in t["events"]:
            if ev.get("ph") != "X":
                continue
            corr = (ev.get("args") or {}).get("corr")
            if not isinstance(corr, int) or corr == 0:  # 0 = unstamped control
                continue
            ts = ev.get("ts", 0.0) + offset_us
            if is_server and ev.get("name") == "wire_send":
                send_start[corr] = min(ts, send_start.get(corr, ts))
            elif is_client:
                client_spans.append((t["name"], ev, ts))
    errors = []
    for proc, ev, ts in client_spans:
        corr = ev["args"]["corr"]
        sent = send_start.get(corr)
        if sent is None:
            errors.append(f"{proc}: span {ev.get('name')!r} corr={corr} has no "
                          "server wire_send with that correlation id")
        elif ts + slack_us < sent:
            errors.append(f"{proc}: span {ev.get('name')!r} corr={corr} starts at "
                          f"{ts:.3f}us, before the server's first wire_send at "
                          f"{sent:.3f}us")
    return len(client_spans), errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="per-process trace_event files")
    ap.add_argument("-o", "--output", required=True, help="merged trace path")
    ap.add_argument("--verify", action="store_true",
                    help="check server sends precede same-corr client spans")
    ap.add_argument("--slack-us", type=float, default=100.0,
                    help="anchor-capture jitter tolerated by --verify (µs)")
    args = ap.parse_args()

    traces = [t for t in (load_trace(p) for p in args.traces) if t is not None]
    if not traces:
        print("error: no loadable traces", file=sys.stderr)
        return 1

    merged = merge(traces)
    with open(args.output, "w") as f:
        json.dump({"displayTimeUnit": "ms",
                   "metadata": {
                       "merged_from": [t["path"] for t in traces],
                       "wall_anchor_unix_ns": min(t["anchor_ns"] for t in traces),
                   },
                   "traceEvents": merged}, f)
        f.write("\n")
    n_events = sum(1 for e in merged if e.get("ph") == "X")
    print(f"{args.output}: {len(traces)} processes, {n_events} spans merged")

    if args.verify:
        n_spans, errors = verify(traces, args.slack_us)
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        if errors:
            return 1
        if n_spans == 0:
            print("error: --verify found no correlated client spans "
                  "(traces from a telemetry-off run?)", file=sys.stderr)
            return 1
        print(f"verify: {n_spans} correlated client spans causally "
              "ordered after their server sends")
    return 0


if __name__ == "__main__":
    sys.exit(main())
