#!/usr/bin/env bash
# Process-level chaos for the socket deployment (DESIGN.md §15).
#
# Launches scheduler + server + 8 client processes, SIGKILLs two clients
# mid-run, restarts one of them, and asserts:
#   * the server finishes the whole run (training + defense) with exit 0 —
#     the quorum gate absorbs the dead clients instead of hanging or crashing
#   * the server journal records both deaths (kind=client_dead) and the
#     restarted client's reregistration (kind=reconnect)
#   * every journal still validates under scripts/journal_check.py
#
# The collect deadline is lowered to 3 s (vs the no-fault default of 60 s):
# retransmit-driven divergence is irrelevant here — no identity is claimed,
# only liveness and bookkeeping.
#
# Usage: scripts/proc_chaos.sh [BUILD_DIR]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO_ROOT/build}"
WORK="$(mktemp -d)"
cleanup() {
  local pids
  pids=$(jobs -p)
  [ -n "$pids" ] && kill $pids 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

N=8
FLAGS=(--clients "$N" --rounds 4 --samples-train 40 --ft-rounds 2
       --recv-timeout-ms 3000 --heartbeat-interval-ms 100 --heartbeat-timeout-ms 2000)

echo "[1/4] launching scheduler + server + $N clients"
"$BUILD/examples/fedcleanse_scheduler" --port-file "$WORK/sched.port" \
  --journal-out "$WORK/sched.jsonl" >"$WORK/sched.log" 2>&1 &
for _ in $(seq 100); do [ -s "$WORK/sched.port" ] && break; sleep 0.1; done
[ -s "$WORK/sched.port" ] || { echo "scheduler never published its port" >&2; exit 1; }
PORT="$(cat "$WORK/sched.port")"

declare -a CPID
for id in $(seq 0 $((N - 1))); do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$PORT" >"$WORK/client$id.log" 2>&1 &
  CPID[$id]=$!
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT" \
  --journal-out "$WORK/server.jsonl" >"$WORK/server.log" 2>&1 &
SERVER=$!

# Wait until round 0 lands in the journal, so the kills hit a running round
# protocol rather than the registration barrier.
for _ in $(seq 600); do
  grep -q '"kind":"train_round"' "$WORK/server.jsonl" 2>/dev/null && break
  kill -0 "$SERVER" 2>/dev/null || { echo "server died before round 0" >&2; exit 1; }
  sleep 0.1
done
grep -q '"kind":"train_round"' "$WORK/server.jsonl" || {
  echo "round 0 never completed" >&2; exit 1; }

echo "[2/4] SIGKILL clients 3 and 5 mid-run; restarting client 3"
kill -9 "${CPID[3]}" "${CPID[5]}"
sleep 1
"$BUILD/examples/fedcleanse_client" --id 3 "${FLAGS[@]}" \
  --scheduler-port "$PORT" >"$WORK/client3-restarted.log" 2>&1 &

echo "[3/4] waiting for the server to finish"
rc=0
wait "$SERVER" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited $rc — the quorum gate should have absorbed 2 dead clients" >&2
  sed -e 's/^/  server: /' "$WORK/server.log" >&2
  exit 1
fi

echo "[4/4] checking the journal's death and reconnect bookkeeping"
dead=$(grep -c '"kind":"client_dead"' "$WORK/server.jsonl" || true)
if [ "$dead" -lt 2 ]; then
  echo "FAIL: expected >= 2 client_dead events, found $dead" >&2
  exit 1
fi
if ! grep -q '"kind":"reconnect"' "$WORK/server.jsonl"; then
  echo "FAIL: restarted client produced no reconnect event" >&2
  exit 1
fi
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/server.jsonl"
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/sched.jsonl"
echo "proc chaos: OK (run completed under quorum; $dead deaths and a reregistration journaled)"
