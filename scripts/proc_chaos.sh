#!/usr/bin/env bash
# Process-level chaos for the socket deployment (DESIGN.md §15).
#
# Launches scheduler + server + 8 client processes with the observability
# plane on (journals, traces, scheduler /statusz — DESIGN.md §17), SIGKILLs
# two clients mid-run, restarts one of them, and asserts:
#   * the server finishes the whole run (training + defense) with exit 0 —
#     the quorum gate absorbs the dead clients instead of hanging or crashing
#   * the scheduler's /statusz fleet table, scraped mid-run, lists clients
#     with per-node round progress and heartbeat ages
#   * the server journal records both deaths (kind=client_dead) and the
#     restarted client's reregistration (kind=reconnect); journals open with
#     process-identity lines and the scheduler journals fleet_status roll-ups
#   * every journal still validates under scripts/journal_check.py
#   * the survivors' traces merge into one causally ordered timeline
#     (scripts/trace_merge.py --verify) — the SIGKILLed clients never flush
#     theirs, and the merge must tolerate that
#
# The collect deadline is lowered to 3 s (vs the no-fault default of 60 s):
# retransmit-driven divergence is irrelevant here — no identity is claimed,
# only liveness and bookkeeping.
#
# Usage: scripts/proc_chaos.sh [BUILD_DIR]   (default: build)
set -euo pipefail

# Re-exec as a process-group leader so cleanup can kill the *whole* group:
# `jobs -p` misses grandchildren, and a failed assertion mid-run used to
# leave orphaned clients spinning in their reconnect loops.
if [ "${FC_PGL:-}" != 1 ]; then
  FC_PGL=1 exec setsid "$0" "$@"
fi

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO_ROOT/build}"
WORK="$(mktemp -d)"
cleanup() {
  trap '' TERM  # don't let our own group-kill re-enter this handler
  kill -s TERM -- "-$$" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

N=8
FLAGS=(--clients "$N" --rounds 4 --samples-train 40 --ft-rounds 2
       --recv-timeout-ms 3000 --heartbeat-interval-ms 100 --heartbeat-timeout-ms 2000)

echo "[1/6] launching scheduler + server + $N clients (telemetry on)"
"$BUILD/examples/fedcleanse_scheduler" --port-file "$WORK/sched.port" \
  --journal-out "$WORK/sched.jsonl" --trace-out "$WORK/sched.trace.json" \
  --metrics-port 0 --metrics-port-file "$WORK/sched.metrics.port" \
  >"$WORK/sched.log" 2>&1 &
for _ in $(seq 100); do [ -s "$WORK/sched.port" ] && break; sleep 0.1; done
[ -s "$WORK/sched.port" ] || { echo "scheduler never published its port" >&2; exit 1; }
PORT="$(cat "$WORK/sched.port")"
[ -s "$WORK/sched.metrics.port" ] || { echo "scheduler never published its metrics port" >&2; exit 1; }
MPORT="$(cat "$WORK/sched.metrics.port")"

declare -a CPID
for id in $(seq 0 $((N - 1))); do
  "$BUILD/examples/fedcleanse_client" --id "$id" "${FLAGS[@]}" \
    --scheduler-port "$PORT" --trace-out "$WORK/client$id.trace.json" \
    >"$WORK/client$id.log" 2>&1 &
  CPID[$id]=$!
done
"$BUILD/examples/fedcleanse_server" "${FLAGS[@]}" --scheduler-port "$PORT" \
  --journal-out "$WORK/server.jsonl" --trace-out "$WORK/server.trace.json" \
  >"$WORK/server.log" 2>&1 &
SERVER=$!

# Wait until round 0 lands in the journal, so the kills hit a running round
# protocol rather than the registration barrier.
for _ in $(seq 600); do
  grep -q '"kind":"train_round"' "$WORK/server.jsonl" 2>/dev/null && break
  kill -0 "$SERVER" 2>/dev/null || { echo "server died before round 0" >&2; exit 1; }
  sleep 0.1
done
grep -q '"kind":"train_round"' "$WORK/server.jsonl" || {
  echo "round 0 never completed" >&2; exit 1; }

echo "[2/6] scraping the scheduler's /statusz fleet table mid-run"
# Clients beacon their progress snapshots every heartbeat interval; retry the
# scrape briefly so a just-opened round has time to reach the fleet table.
python3 - "$MPORT" <<'EOF'
import json, sys, time, urllib.request
port = sys.argv[1]
last = None
for _ in range(100):
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/statusz", timeout=2) as r:
            last = json.load(r)
    except Exception as e:
        last = e
        time.sleep(0.2)
        continue
    if isinstance(last, dict) and last.get("role") == "scheduler":
        clients = [n for n in last.get("nodes", [])
                   if n.get("role") == "client" and "round" in n
                   and "heartbeat_age_ms" in n]
        if clients:
            rounds = sorted(n["round"] for n in clients)
            print(f"  fleet table: {len(clients)} clients reporting, "
                  f"rounds {rounds[0]}..{rounds[-1]}, max heartbeat age "
                  f"{max(n['heartbeat_age_ms'] for n in clients)}ms")
            sys.exit(0)
    time.sleep(0.2)
print(f"FAIL: /statusz never showed a client fleet table; last: {last}",
      file=sys.stderr)
sys.exit(1)
EOF

echo "[3/6] SIGKILL clients 3 and 5 mid-run; restarting client 3"
kill -9 "${CPID[3]}" "${CPID[5]}"
sleep 1
"$BUILD/examples/fedcleanse_client" --id 3 "${FLAGS[@]}" \
  --scheduler-port "$PORT" --trace-out "$WORK/client3-restarted.trace.json" \
  >"$WORK/client3-restarted.log" 2>&1 &

echo "[4/6] waiting for the server to finish"
rc=0
wait "$SERVER" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: server exited $rc — the quorum gate should have absorbed 2 dead clients" >&2
  sed -e 's/^/  server: /' "$WORK/server.log" >&2
  exit 1
fi

echo "[5/6] checking journal bookkeeping (deaths, reconnect, open, fleet_status)"
dead=$(grep -c '"kind":"client_dead"' "$WORK/server.jsonl" || true)
if [ "$dead" -lt 2 ]; then
  echo "FAIL: expected >= 2 client_dead events, found $dead" >&2
  exit 1
fi
if ! grep -q '"kind":"reconnect"' "$WORK/server.jsonl"; then
  echo "FAIL: restarted client produced no reconnect event" >&2
  exit 1
fi
for j in "$WORK/server.jsonl" "$WORK/sched.jsonl"; do
  if ! grep -q '"kind":"open"' "$j"; then
    echo "FAIL: $j has no process-identity open line" >&2
    exit 1
  fi
done
if ! grep -q '"kind":"fleet_status"' "$WORK/sched.jsonl"; then
  echo "FAIL: scheduler journal has no fleet_status roll-up" >&2
  exit 1
fi
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/server.jsonl"
python3 "$REPO_ROOT/scripts/journal_check.py" --quiet "$WORK/sched.jsonl"

echo "[6/6] merging the survivors' traces into one timeline"
# The scheduler and surviving clients are still flushing; let them exit.
# (SIGKILLed clients 3 and 5 never wrote a trace — the merge skips them.)
wait || true
python3 "$REPO_ROOT/scripts/trace_merge.py" "$WORK"/*.trace.json \
  -o "$WORK/merged.trace.json" --verify
echo "proc chaos: OK (run completed under quorum; $dead deaths and a reregistration journaled)"
