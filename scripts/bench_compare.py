#!/usr/bin/env python3
"""Compare two BENCH_micro_ops.json files and flag perf regressions.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.10]

Records are matched on (op, size, kernel). A record whose candidate
serial_ns_per_iter exceeds the baseline by more than the tolerance is a
regression; the exit code is 1 if any regression is found, so a CI step can
gate on it. Records present on only one side are reported but never fail the
comparison (benches come and go across commits).

Only serial times are compared: pooled times depend on the runner's core
count, which differs between the machine that produced the baseline and CI.
"""
from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict[tuple[str, str, str], dict]:
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for rec in doc.get("results", []):
        key = (rec.get("op", ""), rec.get("size", ""), rec.get("kernel", ""))
        out[key] = rec
    return out


def fmt_key(key: tuple[str, str, str]) -> str:
    op, size, kernel = key
    return f"{op}/{size}" + (f"[{kernel}]" if kernel else "")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before a record counts as a regression",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = []
    print(f"{'record':<40} {'base ns':>14} {'cand ns':>14} {'ratio':>8}")
    print("-" * 80)
    for key in sorted(base.keys() & cand.keys()):
        b = base[key]["serial_ns_per_iter"]
        c = cand[key]["serial_ns_per_iter"]
        ratio = c / b if b > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.tolerance:
            regressions.append((key, ratio))
            marker = "  <-- REGRESSION"
        print(f"{fmt_key(key):<40} {b:>14.0f} {c:>14.0f} {ratio:>7.2f}x{marker}")

    for key in sorted(base.keys() - cand.keys()):
        print(f"{fmt_key(key):<40} (only in baseline)")
    for key in sorted(cand.keys() - base.keys()):
        print(f"{fmt_key(key):<40} (only in candidate)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.tolerance:.0%}:")
        for key, ratio in regressions:
            print(f"  {fmt_key(key)}: {ratio:.2f}x")
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
