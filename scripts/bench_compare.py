#!/usr/bin/env python3
"""Compare two bench JSON files and flag perf regressions.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.10]

Handles both BENCH_micro_ops.json (serial_ns_per_iter per kernel record)
and BENCH_fl_scale.json (rounds_per_sec per population rung, compared as
ns-per-round so lower is uniformly better). Records are matched on
(op, size-or-n_clients, kernel). A record whose candidate time exceeds the
baseline by more than the tolerance is a regression; the exit code is 1 if
any regression is found, so a CI step can gate on it. Records present on
only one side are reported but never fail the comparison (benches come and
go across commits). A missing baseline file is a notice, not an error: the
first run on a branch has nothing to compare against, so CI proceeds and
uploads the candidate as the next baseline.

Only serial times are compared: pooled times depend on the runner's core
count, which differs between the machine that produced the baseline and CI.

Two informational summaries follow the regression table (neither gates):
  * quantized-kernel speedups within the candidate — for every (op, size)
    carrying an f32 row plus int8/f16/fused siblings, the ratio of the f32
    (or unfused) serial time to the sibling's;
  * wire-bytes deltas for fl_scale rungs that report wire_bytes, so a codec
    change shows its uplink shrink next to the perf numbers.
"""
from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict[tuple[str, str, str], dict]:
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for rec in doc.get("results", []):
        size = rec.get("size", rec.get("n_clients", ""))
        key = (rec.get("op", ""), str(size), rec.get("kernel", ""))
        out[key] = rec
    return out


def metric_ns(rec: dict) -> float | None:
    """A record's comparable cost in nanoseconds (lower is better)."""
    if "serial_ns_per_iter" in rec:
        return rec["serial_ns_per_iter"]
    rps = rec.get("rounds_per_sec")
    if isinstance(rps, (int, float)) and rps > 0:
        return 1e9 / rps
    return None


def fmt_key(key: tuple[str, str, str]) -> str:
    op, size, kernel = key
    return f"{op}/{size}" + (f"[{kernel}]" if kernel else "")


# Reference-kernel tag per sibling tag: quantized/fused rows are compared
# against the plain fp32 row that shares their (op, size).
QUANT_PAIRS = {
    "int8_prepacked": "f32_packed",
    "f16_packed": "f32_packed",
    "fused_epilogue": "unfused",
}


def summarize_quant(records: dict[tuple[str, str, str], dict]) -> None:
    lines = []
    for (op, size, kernel), rec in sorted(records.items()):
        ref_kernel = QUANT_PAIRS.get(kernel)
        if ref_kernel is None:
            continue
        ref = records.get((op, size, ref_kernel))
        if ref is None:
            continue
        b, c = metric_ns(ref), metric_ns(rec)
        if not b or not c:
            continue
        lines.append(f"  {op}/{size}: {kernel} is {b / c:.2f}x vs {ref_kernel}")
    if lines:
        print("\nquantized-kernel speedups (candidate, serial):")
        for line in lines:
            print(line)


def summarize_wire_bytes(base: dict[tuple[str, str, str], dict],
                         cand: dict[tuple[str, str, str], dict]) -> None:
    lines = []
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key].get("wire_bytes"), cand[key].get("wire_bytes")
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)) or c <= 0:
            continue
        codec = cand[key].get("update_codec", "")
        tag = f" [{codec}]" if codec else ""
        lines.append(f"  {fmt_key(key)}: {b:.0f} -> {c:.0f} bytes "
                     f"({b / c:.2f}x smaller){tag}" if b >= c else
                     f"  {fmt_key(key)}: {b:.0f} -> {c:.0f} bytes "
                     f"({c / b:.2f}x larger){tag}")
    if lines:
        print("\nwire bytes (baseline -> candidate):")
        for line in lines:
            print(line)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before a record counts as a regression",
    )
    args = ap.parse_args()

    try:
        base = load(args.baseline)
    except FileNotFoundError:
        print(f"notice: baseline {args.baseline} not found; nothing to compare "
              "(first run on this branch?) — passing")
        return 0
    cand = load(args.candidate)

    regressions = []
    print(f"{'record':<40} {'base ns':>14} {'cand ns':>14} {'ratio':>8}")
    print("-" * 80)
    for key in sorted(base.keys() & cand.keys()):
        b = metric_ns(base[key])
        c = metric_ns(cand[key])
        if b is None or c is None:
            print(f"{fmt_key(key):<40} (no comparable metric)")
            continue
        ratio = c / b if b > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.tolerance:
            regressions.append((key, ratio))
            marker = "  <-- REGRESSION"
        print(f"{fmt_key(key):<40} {b:>14.0f} {c:>14.0f} {ratio:>7.2f}x{marker}")

    for key in sorted(base.keys() - cand.keys()):
        print(f"{fmt_key(key):<40} (only in baseline)")
    for key in sorted(cand.keys() - base.keys()):
        print(f"{fmt_key(key):<40} (only in candidate)")

    summarize_quant(cand)
    summarize_wire_bytes(base, cand)

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.tolerance:.0%}:")
        for key, ratio in regressions:
            print(f"  {fmt_key(key)}: {ratio:.2f}x")
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
