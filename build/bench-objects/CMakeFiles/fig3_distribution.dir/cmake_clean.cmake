file(REMOVE_RECURSE
  "../bench/fig3_distribution"
  "../bench/fig3_distribution.pdb"
  "CMakeFiles/fig3_distribution.dir/fig3_distribution.cpp.o"
  "CMakeFiles/fig3_distribution.dir/fig3_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
