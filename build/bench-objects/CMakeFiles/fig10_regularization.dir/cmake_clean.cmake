file(REMOVE_RECURSE
  "../bench/fig10_regularization"
  "../bench/fig10_regularization.pdb"
  "CMakeFiles/fig10_regularization.dir/fig10_regularization.cpp.o"
  "CMakeFiles/fig10_regularization.dir/fig10_regularization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
