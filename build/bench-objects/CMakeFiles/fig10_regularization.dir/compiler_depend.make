# Empty compiler generated dependencies file for fig10_regularization.
# This may be replaced when dependencies are built.
