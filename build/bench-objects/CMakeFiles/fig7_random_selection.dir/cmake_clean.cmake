file(REMOVE_RECURSE
  "../bench/fig7_random_selection"
  "../bench/fig7_random_selection.pdb"
  "CMakeFiles/fig7_random_selection.dir/fig7_random_selection.cpp.o"
  "CMakeFiles/fig7_random_selection.dir/fig7_random_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_random_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
