# Empty compiler generated dependencies file for table2_fashion.
# This may be replaced when dependencies are built.
