file(REMOVE_RECURSE
  "../bench/table2_fashion"
  "../bench/table2_fashion.pdb"
  "CMakeFiles/table2_fashion.dir/table2_fashion.cpp.o"
  "CMakeFiles/table2_fashion.dir/table2_fashion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fashion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
