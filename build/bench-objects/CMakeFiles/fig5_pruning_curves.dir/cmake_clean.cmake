file(REMOVE_RECURSE
  "../bench/fig5_pruning_curves"
  "../bench/fig5_pruning_curves.pdb"
  "CMakeFiles/fig5_pruning_curves.dir/fig5_pruning_curves.cpp.o"
  "CMakeFiles/fig5_pruning_curves.dir/fig5_pruning_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pruning_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
