# Empty dependencies file for fig5_pruning_curves.
# This may be replaced when dependencies are built.
