file(REMOVE_RECURSE
  "../bench/ablation_aggregators"
  "../bench/ablation_aggregators.pdb"
  "CMakeFiles/ablation_aggregators.dir/ablation_aggregators.cpp.o"
  "CMakeFiles/ablation_aggregators.dir/ablation_aggregators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
