file(REMOVE_RECURSE
  "../bench/table4_neural_cleanse"
  "../bench/table4_neural_cleanse.pdb"
  "CMakeFiles/table4_neural_cleanse.dir/table4_neural_cleanse.cpp.o"
  "CMakeFiles/table4_neural_cleanse.dir/table4_neural_cleanse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_neural_cleanse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
