# Empty dependencies file for table4_neural_cleanse.
# This may be replaced when dependencies are built.
