file(REMOVE_RECURSE
  "../bench/table7_patterns"
  "../bench/table7_patterns.pdb"
  "CMakeFiles/table7_patterns.dir/table7_patterns.cpp.o"
  "CMakeFiles/table7_patterns.dir/table7_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
