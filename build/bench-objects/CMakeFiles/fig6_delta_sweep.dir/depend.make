# Empty dependencies file for fig6_delta_sweep.
# This may be replaced when dependencies are built.
