file(REMOVE_RECURSE
  "../bench/fig6_delta_sweep"
  "../bench/fig6_delta_sweep.pdb"
  "CMakeFiles/fig6_delta_sweep.dir/fig6_delta_sweep.cpp.o"
  "CMakeFiles/fig6_delta_sweep.dir/fig6_delta_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
