file(REMOVE_RECURSE
  "../bench/table3_cifar_dba"
  "../bench/table3_cifar_dba.pdb"
  "CMakeFiles/table3_cifar_dba.dir/table3_cifar_dba.cpp.o"
  "CMakeFiles/table3_cifar_dba.dir/table3_cifar_dba.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cifar_dba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
