# Empty dependencies file for table3_cifar_dba.
# This may be replaced when dependencies are built.
