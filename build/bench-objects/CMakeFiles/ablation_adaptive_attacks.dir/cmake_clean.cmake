file(REMOVE_RECURSE
  "../bench/ablation_adaptive_attacks"
  "../bench/ablation_adaptive_attacks.pdb"
  "CMakeFiles/ablation_adaptive_attacks.dir/ablation_adaptive_attacks.cpp.o"
  "CMakeFiles/ablation_adaptive_attacks.dir/ablation_adaptive_attacks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
