# Empty dependencies file for fig8_num_attackers.
# This may be replaced when dependencies are built.
