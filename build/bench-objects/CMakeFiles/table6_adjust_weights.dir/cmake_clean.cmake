file(REMOVE_RECURSE
  "../bench/table6_adjust_weights"
  "../bench/table6_adjust_weights.pdb"
  "CMakeFiles/table6_adjust_weights.dir/table6_adjust_weights.cpp.o"
  "CMakeFiles/table6_adjust_weights.dir/table6_adjust_weights.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_adjust_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
