# Empty compiler generated dependencies file for table6_adjust_weights.
# This may be replaced when dependencies are built.
