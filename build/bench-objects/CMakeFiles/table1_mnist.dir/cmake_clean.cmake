file(REMOVE_RECURSE
  "../bench/table1_mnist"
  "../bench/table1_mnist.pdb"
  "CMakeFiles/table1_mnist.dir/table1_mnist.cpp.o"
  "CMakeFiles/table1_mnist.dir/table1_mnist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
