# Empty dependencies file for table1_mnist.
# This may be replaced when dependencies are built.
