# Empty compiler generated dependencies file for table5_pruning_methods.
# This may be replaced when dependencies are built.
