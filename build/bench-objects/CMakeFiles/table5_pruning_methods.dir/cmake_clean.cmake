file(REMOVE_RECURSE
  "../bench/table5_pruning_methods"
  "../bench/table5_pruning_methods.pdb"
  "CMakeFiles/table5_pruning_methods.dir/table5_pruning_methods.cpp.o"
  "CMakeFiles/table5_pruning_methods.dir/table5_pruning_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pruning_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
