
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aggregation.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_aggregation.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_aggregation.cpp.o.d"
  "/root/repo/tests/test_backdoor.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_backdoor.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_backdoor.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_defense_units.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_defense_units.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_defense_units.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_layers.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_layers.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_layers.cpp.o.d"
  "/root/repo/tests/test_loss_optimizer.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_loss_optimizer.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_loss_optimizer.cpp.o.d"
  "/root/repo/tests/test_neural_cleanse.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_neural_cleanse.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_neural_cleanse.cpp.o.d"
  "/root/repo/tests/test_ops.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_ops.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_ops.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sequential.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_sequential.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_sequential.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_threadpool.cpp" "tests/CMakeFiles/fedcleanse_tests.dir/test_threadpool.cpp.o" "gcc" "tests/CMakeFiles/fedcleanse_tests.dir/test_threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedcleanse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
