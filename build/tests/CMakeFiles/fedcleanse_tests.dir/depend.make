# Empty dependencies file for fedcleanse_tests.
# This may be replaced when dependencies are built.
