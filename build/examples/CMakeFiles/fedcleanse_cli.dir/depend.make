# Empty dependencies file for fedcleanse_cli.
# This may be replaced when dependencies are built.
