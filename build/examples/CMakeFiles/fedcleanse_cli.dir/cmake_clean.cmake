file(REMOVE_RECURSE
  "CMakeFiles/fedcleanse_cli.dir/fedcleanse_cli.cpp.o"
  "CMakeFiles/fedcleanse_cli.dir/fedcleanse_cli.cpp.o.d"
  "fedcleanse_cli"
  "fedcleanse_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcleanse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
