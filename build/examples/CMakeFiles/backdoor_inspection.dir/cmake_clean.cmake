file(REMOVE_RECURSE
  "CMakeFiles/backdoor_inspection.dir/backdoor_inspection.cpp.o"
  "CMakeFiles/backdoor_inspection.dir/backdoor_inspection.cpp.o.d"
  "backdoor_inspection"
  "backdoor_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backdoor_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
