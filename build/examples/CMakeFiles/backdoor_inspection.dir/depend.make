# Empty dependencies file for backdoor_inspection.
# This may be replaced when dependencies are built.
