# Empty dependencies file for neural_cleanse_demo.
# This may be replaced when dependencies are built.
