file(REMOVE_RECURSE
  "CMakeFiles/neural_cleanse_demo.dir/neural_cleanse_demo.cpp.o"
  "CMakeFiles/neural_cleanse_demo.dir/neural_cleanse_demo.cpp.o.d"
  "neural_cleanse_demo"
  "neural_cleanse_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_cleanse_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
