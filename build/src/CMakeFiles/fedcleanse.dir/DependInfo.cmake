
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/backdoor_analysis.cpp" "src/CMakeFiles/fedcleanse.dir/analysis/backdoor_analysis.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/analysis/backdoor_analysis.cpp.o.d"
  "/root/repo/src/baselines/neural_cleanse.cpp" "src/CMakeFiles/fedcleanse.dir/baselines/neural_cleanse.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/baselines/neural_cleanse.cpp.o.d"
  "/root/repo/src/comm/channel.cpp" "src/CMakeFiles/fedcleanse.dir/comm/channel.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/comm/channel.cpp.o.d"
  "/root/repo/src/comm/message.cpp" "src/CMakeFiles/fedcleanse.dir/comm/message.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/comm/message.cpp.o.d"
  "/root/repo/src/comm/network.cpp" "src/CMakeFiles/fedcleanse.dir/comm/network.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/comm/network.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/fedcleanse.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/fedcleanse.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/serialize.cpp" "src/CMakeFiles/fedcleanse.dir/common/serialize.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/common/serialize.cpp.o.d"
  "/root/repo/src/common/threadpool.cpp" "src/CMakeFiles/fedcleanse.dir/common/threadpool.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/common/threadpool.cpp.o.d"
  "/root/repo/src/data/backdoor.cpp" "src/CMakeFiles/fedcleanse.dir/data/backdoor.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/backdoor.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/fedcleanse.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/normalize.cpp" "src/CMakeFiles/fedcleanse.dir/data/normalize.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/normalize.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/CMakeFiles/fedcleanse.dir/data/partition.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/partition.cpp.o.d"
  "/root/repo/src/data/synth_digits.cpp" "src/CMakeFiles/fedcleanse.dir/data/synth_digits.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/synth_digits.cpp.o.d"
  "/root/repo/src/data/synth_fashion.cpp" "src/CMakeFiles/fedcleanse.dir/data/synth_fashion.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/synth_fashion.cpp.o.d"
  "/root/repo/src/data/synth_objects.cpp" "src/CMakeFiles/fedcleanse.dir/data/synth_objects.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/data/synth_objects.cpp.o.d"
  "/root/repo/src/defense/activation_ranking.cpp" "src/CMakeFiles/fedcleanse.dir/defense/activation_ranking.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/activation_ranking.cpp.o.d"
  "/root/repo/src/defense/adjust_weights.cpp" "src/CMakeFiles/fedcleanse.dir/defense/adjust_weights.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/adjust_weights.cpp.o.d"
  "/root/repo/src/defense/finetune.cpp" "src/CMakeFiles/fedcleanse.dir/defense/finetune.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/finetune.cpp.o.d"
  "/root/repo/src/defense/majority_vote.cpp" "src/CMakeFiles/fedcleanse.dir/defense/majority_vote.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/majority_vote.cpp.o.d"
  "/root/repo/src/defense/pipeline.cpp" "src/CMakeFiles/fedcleanse.dir/defense/pipeline.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/pipeline.cpp.o.d"
  "/root/repo/src/defense/pruning.cpp" "src/CMakeFiles/fedcleanse.dir/defense/pruning.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/pruning.cpp.o.d"
  "/root/repo/src/defense/rank_aggregation.cpp" "src/CMakeFiles/fedcleanse.dir/defense/rank_aggregation.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/defense/rank_aggregation.cpp.o.d"
  "/root/repo/src/fl/adaptive_attack.cpp" "src/CMakeFiles/fedcleanse.dir/fl/adaptive_attack.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/adaptive_attack.cpp.o.d"
  "/root/repo/src/fl/aggregation.cpp" "src/CMakeFiles/fedcleanse.dir/fl/aggregation.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/aggregation.cpp.o.d"
  "/root/repo/src/fl/attack.cpp" "src/CMakeFiles/fedcleanse.dir/fl/attack.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/attack.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/CMakeFiles/fedcleanse.dir/fl/client.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/client.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/CMakeFiles/fedcleanse.dir/fl/metrics.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/metrics.cpp.o.d"
  "/root/repo/src/fl/reputation.cpp" "src/CMakeFiles/fedcleanse.dir/fl/reputation.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/reputation.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/CMakeFiles/fedcleanse.dir/fl/server.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/server.cpp.o.d"
  "/root/repo/src/fl/simulation.cpp" "src/CMakeFiles/fedcleanse.dir/fl/simulation.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/fl/simulation.cpp.o.d"
  "/root/repo/src/nn/activation_stats.cpp" "src/CMakeFiles/fedcleanse.dir/nn/activation_stats.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/activation_stats.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/fedcleanse.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/CMakeFiles/fedcleanse.dir/nn/checkpoint.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/fedcleanse.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/fedcleanse.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/fedcleanse.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/fedcleanse.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/fedcleanse.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/CMakeFiles/fedcleanse.dir/nn/model_zoo.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/model_zoo.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/fedcleanse.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/fedcleanse.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/fedcleanse.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/fedcleanse.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/fedcleanse.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/fedcleanse.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
