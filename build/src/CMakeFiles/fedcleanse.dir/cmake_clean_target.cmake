file(REMOVE_RECURSE
  "libfedcleanse.a"
)
