# Empty dependencies file for fedcleanse.
# This may be replaced when dependencies are built.
