#include "defense/activation_ranking.h"

#include <algorithm>
#include <numeric>

namespace fedcleanse::defense {

std::vector<std::uint32_t> ranks_from_means(const std::vector<double>& means) {
  std::vector<std::size_t> order(means.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (means[a] != means[b]) return means[a] > means[b];
    return a < b;
  });
  std::vector<std::uint32_t> ranks(means.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    ranks[order[pos]] = static_cast<std::uint32_t>(pos + 1);
  }
  return ranks;
}

std::vector<int> pruning_order_from_dormancy(const std::vector<double>& dormancy) {
  std::vector<int> order(dormancy.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto da = dormancy[static_cast<std::size_t>(a)];
    const auto db = dormancy[static_cast<std::size_t>(b)];
    if (da != db) return da > db;  // more dormant first
    return a < b;
  });
  return order;
}

bool is_valid_rank_report(const std::vector<std::uint32_t>& report, int n_neurons) {
  if (static_cast<int>(report.size()) != n_neurons) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n_neurons) + 1, false);
  for (std::uint32_t r : report) {
    if (r < 1 || r > static_cast<std::uint32_t>(n_neurons)) return false;
    if (seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

}  // namespace fedcleanse::defense
