// Shared ranking utilities for the federated pruning methods.
#pragma once

#include <cstdint>
#include <vector>

namespace fedcleanse::defense {

// Rank position (1 = most active) per neuron from activation means.
std::vector<std::uint32_t> ranks_from_means(const std::vector<double>& means);

// Neuron indices ordered most-dormant-first, given a per-neuron "dormancy
// score" where LARGER means MORE dormant (e.g. mean rank position in RAP,
// prune-vote share in MVP).
std::vector<int> pruning_order_from_dormancy(const std::vector<double>& dormancy);

// Validate a client rank report: it must be a permutation of 1..P. Malformed
// reports (wrong length, duplicate or out-of-range ranks) are rejected by
// the aggregators.
bool is_valid_rank_report(const std::vector<std::uint32_t>& report, int n_neurons);

}  // namespace fedcleanse::defense
