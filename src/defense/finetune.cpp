#include "defense/finetune.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/journal.h"

namespace fedcleanse::defense {

void write_finetune_state(common::ByteWriter& w, const FineTuneState& state) {
  w.write_i32(state.next_round);
  w.write_f64(state.best);
  w.write_f32_vector(state.best_params);
  w.write_i32(state.stale);
  w.write_u32(static_cast<std::uint32_t>(state.history.size()));
  for (const auto& rec : state.history) fl::write_round_record(w, rec);
}

FineTuneState read_finetune_state(common::ByteReader& r) {
  FineTuneState state;
  state.next_round = r.read_i32();
  state.best = r.read_f64();
  state.best_params = r.read_f32_vector();
  state.stale = r.read_i32();
  const std::uint32_t n = r.read_u32();
  state.history.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) state.history.push_back(fl::read_round_record(r));
  return state;
}

FineTuneOutcome federated_finetune(fl::Simulation& sim, const FineTuneConfig& config,
                                   const FineTuneState* resume,
                                   const FineTuneCheckpointHook& checkpoint) {
  FC_REQUIRE(config.max_rounds >= 0 && config.patience >= 1, "bad fine-tune config");
  auto& server = sim.server();
  // Every client when materialized; the deterministic defense committee in
  // virtual mode (the population is too large to mask-and-rescale wholesale).
  const auto clients = sim.protocol_client_ids();

  FineTuneState state;
  if (resume == nullptr) {
    // Propagate the pruned structure to every client so local training cannot
    // resurrect pruned neurons, and drop the learning rate for recovery. Masks
    // have no acknowledgement, so on a faulty wire re-send them once per
    // configured retry: a client that misses every copy fine-tunes unmasked,
    // which the server's keep-best loop tolerates.
    const std::uint32_t mask_round = 2002;  // defense round-tag space
    const int mask_sends = 1 + std::max(0, sim.config().fault.max_request_retries);
    for (int s = 0; s < mask_sends; ++s) {
      server.broadcast_masks(clients, mask_round);
      sim.dispatch_clients(clients);
      if (sim.faulty_network() == nullptr) break;  // perfect wire: one send is enough
    }
    if (sim.remote()) {
      // The cohort lives in other processes: deliver the rescale over the
      // wire (kLrScale, no ack — same degradation contract as the masks).
      server.broadcast_lr_scale(clients, config.lr_scale, 2003);
    } else {
      for (int c : clients) {
        auto& client = sim.client(c);
        client.set_lr(client.lr() * config.lr_scale);
      }
    }
    // Keep-best: fine-tuning must never leave the model worse than its best
    // observed state (attackers participate and can destabilize rounds).
    state.best = server.validation_accuracy();
    state.best_params = server.params();
  } else {
    // Masks, rescaled learning rates, and the wire all live in the restored
    // simulation; re-broadcasting would consume fault-RNG draws the
    // uninterrupted run never made.
    state = *resume;
  }

  for (int r = state.next_round; r < config.max_rounds; ++r) {
    // A snapshot can capture the loop right after the round that exhausted
    // patience; the resumed run must stop where the uninterrupted one did.
    if (state.stale >= config.patience) break;
    if (sim.virtual_clients()) {
      // Fine-tune on the committee that holds the masks and rescaled rates;
      // a population draw would mostly hit unmasked clients.
      sim.run_round(static_cast<std::uint32_t>(1000 + r), clients);
    } else {
      sim.run_round(static_cast<std::uint32_t>(1000 + r));  // distinct round ids
    }

    fl::RoundRecord rec;
    rec.round = r;
    rec.test_acc = sim.test_accuracy();
    rec.attack_acc = sim.attack_success();
    const auto& ex = sim.last_round_stats();
    rec.n_participants = ex.n_participants;
    rec.n_valid = ex.n_valid;
    rec.n_dropped = ex.n_dropped;
    rec.n_corrupted = ex.n_corrupted;
    rec.n_retried = ex.n_retried;
    rec.quorum_met = ex.quorum_met;
    state.history.push_back(rec);
    if (obs::Journal* journal = obs::ambient_journal()) {
      obs::JsonObject entry;
      entry.add("kind", "finetune_round")
          .add("round", rec.round)
          .add("ta", rec.test_acc)
          .add("asr", rec.attack_acc)
          .add("n_participants", rec.n_participants)
          .add("n_valid", rec.n_valid)
          .add("n_dropped", rec.n_dropped)
          .add("n_corrupted", rec.n_corrupted)
          .add("n_retried", rec.n_retried)
          .add("quorum_met", rec.quorum_met);
      journal->write(entry);
    }

    const double acc = server.validation_accuracy();
    FC_LOG(Debug) << "fine-tune round " << r << " val=" << acc << " TA=" << rec.test_acc
                  << " AA=" << rec.attack_acc;
    if (acc > state.best) {
      state.best = acc;
      state.best_params = server.params();
      state.stale = 0;
    } else {
      ++state.stale;
    }
    state.next_round = r + 1;
    // Checkpoint after the stop decision is folded into `stale`, so a resume
    // from this snapshot takes the same branch the uninterrupted run took.
    if (checkpoint) checkpoint(state);
    if (state.stale >= config.patience) break;
  }
  server.set_params(state.best_params);

  FineTuneOutcome outcome;
  outcome.rounds_run = static_cast<int>(state.history.size());
  outcome.history = std::move(state.history);
  outcome.final_accuracy = server.validation_accuracy();
  return outcome;
}

}  // namespace fedcleanse::defense
