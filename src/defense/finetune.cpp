#include "defense/finetune.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/journal.h"

namespace fedcleanse::defense {

FineTuneOutcome federated_finetune(fl::Simulation& sim, const FineTuneConfig& config) {
  FC_REQUIRE(config.max_rounds >= 0 && config.patience >= 1, "bad fine-tune config");
  auto& server = sim.server();
  const auto clients = sim.all_client_ids();

  // Propagate the pruned structure to every client so local training cannot
  // resurrect pruned neurons, and drop the learning rate for recovery. Masks
  // have no acknowledgement, so on a faulty wire re-send them once per
  // configured retry: a client that misses every copy fine-tunes unmasked,
  // which the server's keep-best loop tolerates.
  const std::uint32_t mask_round = 2002;  // defense round-tag space
  const int mask_sends = 1 + std::max(0, sim.config().fault.max_request_retries);
  for (int s = 0; s < mask_sends; ++s) {
    server.broadcast_masks(clients, mask_round);
    sim.dispatch_clients(clients);
    if (sim.faulty_network() == nullptr) break;  // perfect wire: one send is enough
  }
  for (int c : clients) {
    auto& client = sim.clients()[static_cast<std::size_t>(c)];
    client.set_lr(client.lr() * config.lr_scale);
  }

  FineTuneOutcome outcome;
  double best = server.validation_accuracy();
  // Keep-best: fine-tuning must never leave the model worse than its best
  // observed state (attackers participate and can destabilize rounds).
  std::vector<float> best_params = server.params();
  int stale = 0;
  for (int r = 0; r < config.max_rounds; ++r) {
    sim.run_round(static_cast<std::uint32_t>(1000 + r));  // distinct round ids
    ++outcome.rounds_run;

    fl::RoundRecord rec;
    rec.round = r;
    rec.test_acc = sim.test_accuracy();
    rec.attack_acc = sim.attack_success();
    const auto& ex = sim.last_round_stats();
    rec.n_participants = ex.n_participants;
    rec.n_valid = ex.n_valid;
    rec.n_dropped = ex.n_dropped;
    rec.n_corrupted = ex.n_corrupted;
    rec.n_retried = ex.n_retried;
    rec.quorum_met = ex.quorum_met;
    outcome.history.push_back(rec);
    if (obs::Journal* journal = obs::ambient_journal()) {
      obs::JsonObject entry;
      entry.add("kind", "finetune_round")
          .add("round", rec.round)
          .add("ta", rec.test_acc)
          .add("asr", rec.attack_acc)
          .add("n_participants", rec.n_participants)
          .add("n_valid", rec.n_valid)
          .add("n_dropped", rec.n_dropped)
          .add("n_corrupted", rec.n_corrupted)
          .add("n_retried", rec.n_retried)
          .add("quorum_met", rec.quorum_met);
      journal->write(entry);
    }

    const double acc = server.validation_accuracy();
    FC_LOG(Debug) << "fine-tune round " << r << " val=" << acc << " TA=" << rec.test_acc
                  << " AA=" << rec.attack_acc;
    if (acc > best) {
      best = acc;
      best_params = server.params();
      stale = 0;
    } else if (++stale >= config.patience) {
      break;
    }
  }
  server.set_params(best_params);
  outcome.final_accuracy = server.validation_accuracy();
  return outcome;
}

}  // namespace fedcleanse::defense
