#include "defense/majority_vote.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "defense/activation_ranking.h"

namespace fedcleanse::defense {

std::size_t expected_votes(int n_neurons, double prune_rate) {
  FC_REQUIRE(n_neurons > 0, "need at least one neuron");
  FC_REQUIRE(prune_rate > 0.0 && prune_rate < 1.0, "prune rate must be in (0,1)");
  return static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n_neurons) - 1.0,
                       std::max(1.0, std::round(prune_rate * n_neurons))));
}

std::vector<double> mvp_aggregate(const std::vector<std::vector<std::uint8_t>>& reports,
                                  int n_neurons, double prune_rate) {
  const std::size_t quota = expected_votes(n_neurons, prune_rate);
  std::vector<double> sums(static_cast<std::size_t>(n_neurons), 0.0);
  std::size_t valid = 0;
  for (const auto& ballot : reports) {
    if (static_cast<int>(ballot.size()) != n_neurons) continue;
    std::size_t votes = 0;
    bool ok = true;
    for (std::uint8_t v : ballot) {
      if (v > 1) {
        ok = false;
        break;
      }
      votes += v;
    }
    if (!ok || votes != quota) continue;  // protocol violation → discard
    for (int i = 0; i < n_neurons; ++i) {
      sums[static_cast<std::size_t>(i)] += ballot[static_cast<std::size_t>(i)];
    }
    ++valid;
  }
  if (valid == 0) throw ConfigError("no valid vote ballots to aggregate");
  for (auto& s : sums) s /= static_cast<double>(valid);
  return sums;
}

std::vector<int> mvp_pruning_order(const std::vector<std::vector<std::uint8_t>>& reports,
                                   int n_neurons, double prune_rate) {
  return pruning_order_from_dormancy(mvp_aggregate(reports, n_neurons, prune_rate));
}

StreamingVoteAggregator::StreamingVoteAggregator(int n_neurons, double prune_rate)
    : n_neurons_(n_neurons), quota_(expected_votes(n_neurons, prune_rate)) {
  sums_.assign(static_cast<std::size_t>(n_neurons), 0.0);
}

void StreamingVoteAggregator::accept(const std::vector<std::uint8_t>& ballot) {
  if (static_cast<int>(ballot.size()) != n_neurons_) return;
  std::size_t votes = 0;
  for (std::uint8_t v : ballot) {
    if (v > 1) return;
    votes += v;
  }
  if (votes != quota_) return;  // protocol violation → discard
  for (int i = 0; i < n_neurons_; ++i) {
    sums_[static_cast<std::size_t>(i)] += ballot[static_cast<std::size_t>(i)];
  }
  ++valid_;
}

std::vector<double> StreamingVoteAggregator::shares() const {
  if (valid_ == 0) throw ConfigError("no valid vote ballots to aggregate");
  std::vector<double> shares = sums_;
  for (auto& s : shares) s /= static_cast<double>(valid_);
  return shares;
}

std::vector<int> StreamingVoteAggregator::pruning_order() const {
  return pruning_order_from_dormancy(shares());
}

}  // namespace fedcleanse::defense
