// Rank Aggregation-based Pruning (RAP, §IV-A1).
//
// Clients send the rank position of every neuron (1 = most active on their
// local data); the server averages rank positions across clients and prunes
// in decreasing order of mean rank (most dormant first). Malformed reports
// — anything that is not a permutation of 1..P — are discarded, so a
// Byzantine client cannot crash or trivially skew the aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedcleanse::defense {

// Mean rank position per neuron. Invalid reports are ignored; throws
// ConfigError if no valid report remains.
std::vector<double> rap_aggregate(const std::vector<std::vector<std::uint32_t>>& reports,
                                  int n_neurons);

// Neuron indices ordered most-dormant-first (largest mean rank first).
std::vector<int> rap_pruning_order(const std::vector<std::vector<std::uint32_t>>& reports,
                                   int n_neurons);

// Streaming counterpart of rap_aggregate: reports are folded into a per-
// neuron rank histogram (double sums of integer ranks — exact, so the fold
// order cannot matter) as they clear the exchange, instead of being buffered
// per client. Validation is identical report for report; mean_ranks() equals
// rap_aggregate() over the same reports to the last bit.
class StreamingRankAggregator {
 public:
  explicit StreamingRankAggregator(int n_neurons);

  // Folds the report if it is a valid permutation of 1..P; silently discards
  // it otherwise (mirroring rap_aggregate).
  void accept(const std::vector<std::uint32_t>& report);

  std::size_t valid() const { return valid_; }

  // Mean rank position per neuron; throws ConfigError if nothing valid
  // was accepted.
  std::vector<double> mean_ranks() const;
  // Neuron indices ordered most-dormant-first (== rap_pruning_order).
  std::vector<int> pruning_order() const;

 private:
  int n_neurons_;
  std::vector<double> sums_;
  std::size_t valid_ = 0;
};

}  // namespace fedcleanse::defense
