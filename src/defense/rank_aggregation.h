// Rank Aggregation-based Pruning (RAP, §IV-A1).
//
// Clients send the rank position of every neuron (1 = most active on their
// local data); the server averages rank positions across clients and prunes
// in decreasing order of mean rank (most dormant first). Malformed reports
// — anything that is not a permutation of 1..P — are discarded, so a
// Byzantine client cannot crash or trivially skew the aggregation.
#pragma once

#include <cstdint>
#include <vector>

namespace fedcleanse::defense {

// Mean rank position per neuron. Invalid reports are ignored; throws
// ConfigError if no valid report remains.
std::vector<double> rap_aggregate(const std::vector<std::vector<std::uint32_t>>& reports,
                                  int n_neurons);

// Neuron indices ordered most-dormant-first (largest mean rank first).
std::vector<int> rap_pruning_order(const std::vector<std::vector<std::uint32_t>>& reports,
                                   int n_neurons);

}  // namespace fedcleanse::defense
