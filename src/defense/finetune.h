// Federated fine-tuning of the pruned model (§IV-B).
//
// The server pushes the prune masks to every client, then runs ordinary
// FedAvg rounds on the pruned model until the validation accuracy stops
// improving. Attackers participate (the paper does not exclude them), which
// is why the attack success rate climbs back during this phase.
#pragma once

#include <vector>

#include "fl/simulation.h"

namespace fedcleanse::defense {

struct FineTuneConfig {
  int max_rounds = 10;
  // Stop after this many consecutive rounds without min_improvement.
  int patience = 2;
  double min_improvement = 0.002;
  // Clients fine-tune at lr_scale × their training learning rate.
  double lr_scale = 0.5;
};

struct FineTuneOutcome {
  int rounds_run = 0;
  double final_accuracy = 0.0;
  std::vector<fl::RoundRecord> history;
};

FineTuneOutcome federated_finetune(fl::Simulation& sim, const FineTuneConfig& config);

}  // namespace fedcleanse::defense
