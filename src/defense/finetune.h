// Federated fine-tuning of the pruned model (§IV-B).
//
// The server pushes the prune masks to every client, then runs ordinary
// FedAvg rounds on the pruned model until the validation accuracy stops
// improving. Attackers participate (the paper does not exclude them), which
// is why the attack success rate climbs back during this phase.
#pragma once

#include <functional>
#include <vector>

#include "fl/simulation.h"

namespace fedcleanse::defense {

struct FineTuneConfig {
  int max_rounds = 10;
  // Stop after this many consecutive rounds without min_improvement.
  int patience = 2;
  double min_improvement = 0.002;
  // Clients fine-tune at lr_scale × their training learning rate.
  double lr_scale = 0.5;
};

struct FineTuneOutcome {
  int rounds_run = 0;
  double final_accuracy = 0.0;
  std::vector<fl::RoundRecord> history;
};

// The keep-best loop's full cross-round state, captured at a fine-tune round
// boundary so a crashed run can resume mid-fine-tuning (DESIGN.md §13). The
// mask broadcast and learning-rate rescale happen once, before round 0, and
// live inside the simulation snapshot — a resume must not repeat them.
struct FineTuneState {
  int next_round = 0;  // fine-tune round the loop continues at
  double best = 0.0;
  std::vector<float> best_params;
  int stale = 0;
  std::vector<fl::RoundRecord> history;
};

// FineTuneState ↔ bytes (embedded in the defense stage snapshot).
void write_finetune_state(common::ByteWriter& w, const FineTuneState& state);
FineTuneState read_finetune_state(common::ByteReader& r);

// Invoked after every completed fine-tune round with the current loop state.
// The defense pipeline installs one that writes a run snapshot when the
// round is due.
using FineTuneCheckpointHook = std::function<void(const FineTuneState&)>;

// Run (or, with `resume`, continue) the fine-tuning stage. `resume` must
// come from a snapshot of a simulation restored into `sim`.
FineTuneOutcome federated_finetune(fl::Simulation& sim, const FineTuneConfig& config,
                                   const FineTuneState* resume = nullptr,
                                   const FineTuneCheckpointHook& checkpoint = {});

}  // namespace fedcleanse::defense
