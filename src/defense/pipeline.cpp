#include "defense/pipeline.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/sysinfo.h"
#include "defense/majority_vote.h"
#include "defense/rank_aggregation.h"
#include "fl/protocol.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedcleanse::defense {

// Round tags for the defense protocol's messages, far above any training or
// fine-tuning round so a delayed training reply can never be mistaken for a
// defense report (and crashed clients stay crashed).
namespace round_tag {
constexpr std::uint32_t kRanks = 2000;
constexpr std::uint32_t kVotes = 2001;
constexpr std::uint32_t kAccuracyBase = 3000;  // +1 per oracle call
}  // namespace round_tag

const char* prune_method_name(PruneMethod method) {
  switch (method) {
    case PruneMethod::kRAP: return "rank-aggregation";
    case PruneMethod::kMVP: return "majority-vote";
  }
  return "?";
}

namespace {

StageMetrics snapshot(fl::Simulation& sim) {
  return StageMetrics{sim.test_accuracy(), sim.attack_success()};
}

// Accuracy oracle for the pruning loop: the server's validation set, or the
// mean of client-reported accuracies when the server has no data. Each call
// uses a fresh round tag so a delayed report from an earlier call (evaluated
// at older parameters) can never be accepted as current.
std::function<double()> make_accuracy_oracle(fl::Simulation& sim,
                                             const DefenseConfig& config) {
  if (!config.use_client_accuracy) {
    return [&sim] { return sim.server().validation_accuracy(); };
  }
  return [&sim, round = round_tag::kAccuracyBase]() mutable {
    const auto clients = sim.protocol_client_ids();
    auto ex = fl::exchange_with_retries<double>(
        sim, clients,
        [&](const std::vector<int>& ids) { sim.server().request_accuracies(ids, round); },
        [&](const std::vector<int>& ids, fl::CollectStats* cs) {
          return sim.server().collect_accuracies(ids, round, cs);
        },
        "accuracy oracle");
    ++round;
    if (!ex.stats.quorum_met) {
      throw QuorumError("accuracy oracle: " + std::to_string(ex.stats.n_valid) + "/" +
                        std::to_string(clients.size()) + " clients reported");
    }
    return std::accumulate(ex.values.begin(), ex.values.end(), 0.0) /
           static_cast<double>(ex.values.size());
  };
}

}  // namespace

namespace {

void write_stage_metrics(common::ByteWriter& w, const StageMetrics& m) {
  w.write_f64(m.test_acc);
  w.write_f64(m.attack_acc);
}

StageMetrics read_stage_metrics(common::ByteReader& r) {
  StageMetrics m;
  m.test_acc = r.read_f64();
  m.attack_acc = r.read_f64();
  return m;
}

void write_prune_outcome(common::ByteWriter& w, const PruneOutcome& p) {
  w.write_i32(p.n_pruned);
  w.write_f64(p.final_accuracy);
  w.write_u32(static_cast<std::uint32_t>(p.trace.size()));
  for (const auto& step : p.trace) {
    w.write_i32(step.neuron);
    w.write_f64(step.accuracy);
    w.write_f64(step.attack_acc);
  }
  w.write_u8_vector(p.final_mask);
}

PruneOutcome read_prune_outcome(common::ByteReader& r) {
  PruneOutcome p;
  p.n_pruned = r.read_i32();
  p.final_accuracy = r.read_f64();
  const std::uint32_t n = r.read_u32();
  p.trace.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PruneStep step;
    step.neuron = r.read_i32();
    step.accuracy = r.read_f64();
    step.attack_acc = r.read_f64();
    p.trace.push_back(step);
  }
  p.final_mask = r.read_u8_vector();
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode_defense_progress(const DefenseProgress& progress) {
  common::ByteWriter w;
  write_stage_metrics(w, progress.training);
  write_stage_metrics(w, progress.after_fp);
  w.write_f64(progress.baseline);
  write_prune_outcome(w, progress.prune);
  fl::write_exchange_stats(w, progress.fp_exchange);
  w.write_f64(progress.pruning_seconds);
  write_finetune_state(w, progress.finetune);
  return w.take();
}

DefenseProgress decode_defense_progress(const std::vector<std::uint8_t>& bytes) {
  try {
    common::ByteReader r(bytes);
    DefenseProgress progress;
    progress.training = read_stage_metrics(r);
    progress.after_fp = read_stage_metrics(r);
    progress.baseline = r.read_f64();
    progress.prune = read_prune_outcome(r);
    progress.fp_exchange = fl::read_exchange_stats(r);
    progress.pruning_seconds = r.read_f64();
    progress.finetune = read_finetune_state(r);
    if (!r.exhausted()) throw CheckpointError("defense progress has trailing bytes");
    return progress;
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    throw CheckpointError(std::string("defense progress undecodable: ") + e.what());
  }
}

std::vector<int> federated_pruning_order(fl::Simulation& sim, const DefenseConfig& config,
                                         fl::ExchangeStats* stats) {
  auto& server = sim.server();
  const auto clients = sim.protocol_client_ids();
  const int units = server.model().net.layer(server.model().last_conv_index).prunable_units();

  auto below_quorum = [&](const fl::ExchangeStats& st) {
    return QuorumError(std::string(prune_method_name(config.method)) + " pruning: " +
                       std::to_string(st.n_valid) + "/" + std::to_string(clients.size()) +
                       " valid reports after " + std::to_string(st.n_retried) + " retries");
  };

  // Reports stream into O(neurons) rank/vote histograms as they clear the
  // exchange — never a buffered report list. Rank and vote sums are integers
  // carried in doubles, so the fold order cannot change the aggregate and the
  // result matches the materialized rap/mvp_pruning_order bit for bit.
  obs::Span span("defense.fp_scan", "defense");
  if (config.method == PruneMethod::kRAP) {
    StreamingRankAggregator agg(units);
    auto ex = fl::exchange_streaming<std::vector<std::uint32_t>>(
        sim, clients,
        [&](const std::vector<int>& ids) { server.request_ranks(ids, round_tag::kRanks); },
        [&](const std::vector<int>& ids, fl::CollectStats* cs) {
          return server.collect_ranks(ids, round_tag::kRanks, cs);
        },
        [&agg](std::size_t, std::vector<std::uint32_t>&& report) { agg.accept(report); },
        "FP rank collection");
    if (stats != nullptr) *stats = ex.stats;
    if (!ex.stats.quorum_met) throw below_quorum(ex.stats);
    return agg.pruning_order();
  }
  StreamingVoteAggregator agg(units, config.vote_prune_rate);
  auto ex = fl::exchange_streaming<std::vector<std::uint8_t>>(
      sim, clients,
      [&](const std::vector<int>& ids) {
        server.request_votes(ids, config.vote_prune_rate, round_tag::kVotes);
      },
      [&](const std::vector<int>& ids, fl::CollectStats* cs) {
        return server.collect_votes(ids, round_tag::kVotes, cs);
      },
      [&agg](std::size_t, std::vector<std::uint8_t>&& ballot) { agg.accept(ballot); },
      "FP vote collection");
  if (stats != nullptr) *stats = ex.stats;
  if (!ex.stats.quorum_met) throw below_quorum(ex.stats);
  return agg.pruning_order();
}

DefenseReport run_defense(fl::Simulation& sim, const DefenseConfig& config,
                          fl::CheckpointManager* checkpoint,
                          const fl::RunSnapshot* resume) {
  DefenseReport report;
  auto& server = sim.server();
  auto& model = server.model();

  // `progress` mirrors everything computed before fine-tuning; fine-tune
  // snapshots embed it so a resume can skip the oracle and pruning protocol.
  DefenseProgress progress;
  const FineTuneState* ft_resume = nullptr;
  if (resume != nullptr && resume->stage == fl::run_stage::kFinetune) {
    progress = decode_defense_progress(resume->stage_state);
    report.training = progress.training;
    report.after_fp = progress.after_fp;
    report.prune = progress.prune;
    report.neurons_pruned = report.prune.n_pruned;
    report.fp_exchange = progress.fp_exchange;
    report.phase_seconds["pruning"] = progress.pruning_seconds;
    ft_resume = &progress.finetune;
  } else {
    report.training = snapshot(sim);
    // One oracle closure for baseline + pruning loop: it tags every
    // client-accuracy exchange with a strictly increasing round.
    auto accuracy_oracle = make_accuracy_oracle(sim, config);
    progress.baseline = accuracy_oracle();

    // --- Stage 1: Federated Pruning -----------------------------------------
    {
      obs::Span span("defense.pruning", "defense", &report.phase_seconds["pruning"]);
      auto order = federated_pruning_order(sim, config, &report.fp_exchange);
      auto& accuracy_eval = accuracy_oracle;
      std::function<double()> asr_eval;
      if (config.record_asr_traces) {
        asr_eval = [&sim] { return sim.attack_success(); };
      }
      report.prune = prune_until(model.net, model.last_conv_index, order, accuracy_eval,
                                 progress.baseline - config.prune_acc_drop, asr_eval);
      report.neurons_pruned = report.prune.n_pruned;
    }
    report.after_fp = snapshot(sim);
    FC_LOG(Info) << "FP pruned " << report.neurons_pruned << " neurons; TA "
                 << report.training.test_acc << " -> " << report.after_fp.test_acc << ", AA "
                 << report.training.attack_acc << " -> " << report.after_fp.attack_acc;
    progress.training = report.training;
    progress.after_fp = report.after_fp;
    progress.prune = report.prune;
    progress.fp_exchange = report.fp_exchange;
    progress.pruning_seconds = report.phase_seconds["pruning"];
  }
  const double baseline = progress.baseline;

  // --- Stage 2: Fine-tuning (optional) ---------------------------------------
  if (config.enable_finetune) {
    obs::Span span("defense.finetune", "defense", &report.phase_seconds["fine-tuning"]);
    FineTuneCheckpointHook hook;
    if (checkpoint != nullptr && checkpoint->enabled()) {
      hook = [&](const FineTuneState& state) {
        if (!checkpoint->due(state.next_round, config.finetune.max_rounds)) return;
        progress.finetune = state;
        auto snap =
            fl::make_run_snapshot(sim, fl::run_stage::kFinetune, state.next_round);
        snap.stage_state = encode_defense_progress(progress);
        checkpoint->save(snap);
      };
    }
    report.finetune = federated_finetune(sim, config.finetune, ft_resume, hook);
  }
  report.after_ft = snapshot(sim);

  // --- Stage 3: Adjusting Extreme Weights (optional) --------------------------
  if (config.enable_adjust_weights) {
    obs::Span span("defense.adjust_weights", "defense",
                   &report.phase_seconds["adjust-weights"]);
    auto accuracy_eval = [&server] { return server.validation_accuracy(); };
    std::function<double()> asr_eval;
    if (config.record_asr_traces) {
      asr_eval = [&sim] { return sim.attack_success(); };
    }
    AdjustConfig adjust = config.adjust;
    // The floor is anchored to the pre-defense baseline, not the post-FT
    // accuracy: fine-tuning buys headroom that AW is allowed to spend (the
    // paper's §IV-B/V-E trade-off).
    adjust.min_accuracy = std::min(accuracy_eval(), baseline) - config.aw_acc_drop;
    const auto layers = config.aw_include_fc
                            ? default_adjust_layers(model.net, model.last_conv_index)
                            : std::vector<int>{model.last_conv_index};
    report.adjust =
        adjust_extreme_weights(model.net, layers, adjust, accuracy_eval, asr_eval);
    report.weights_zeroed = report.adjust.weights_zeroed;
  }
  report.after_aw = snapshot(sim);
  FC_LOG(Info) << "defense complete: TA " << report.after_aw.test_acc << ", AA "
               << report.after_aw.attack_acc << " (zeroed " << report.weights_zeroed
               << " weights, final delta " << report.adjust.final_delta << ")";

  if (obs::Journal* journal = obs::ambient_journal()) {
    obs::JsonObject phases_json;
    for (const auto& [phase, seconds] : report.phase_seconds) {
      phases_json.add(phase, seconds);
    }
    obs::JsonObject entry;
    entry.add("kind", "defense")
        .add("method", prune_method_name(config.method))
        .add("ta", report.after_aw.test_acc)
        .add("asr", report.after_aw.attack_acc)
        .add("ta_before", report.training.test_acc)
        .add("asr_before", report.training.attack_acc)
        .add("ta_after_fp", report.after_fp.test_acc)
        .add("asr_after_fp", report.after_fp.attack_acc)
        .add("ta_after_ft", report.after_ft.test_acc)
        .add("asr_after_ft", report.after_ft.attack_acc)
        .add("neurons_pruned", report.neurons_pruned)
        .add("weights_zeroed", report.weights_zeroed)
        .add("finetune_rounds", report.finetune.rounds_run)
        .add("n_valid", report.fp_exchange.n_valid)
        .add("n_dropped", report.fp_exchange.n_dropped)
        .add("n_corrupted", report.fp_exchange.n_corrupted)
        .add("n_retried", report.fp_exchange.n_retried)
        .add("peak_rss", static_cast<std::uint64_t>(common::peak_rss_bytes()))
        .add_raw("phase_seconds", phases_json.str());
    journal->write(entry);
  }
  FC_METRIC(peak_rss_bytes().set(static_cast<double>(common::peak_rss_bytes())));
  return report;
}

}  // namespace fedcleanse::defense
