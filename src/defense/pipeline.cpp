#include "defense/pipeline.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"
#include "defense/majority_vote.h"
#include "defense/rank_aggregation.h"

namespace fedcleanse::defense {

const char* prune_method_name(PruneMethod method) {
  switch (method) {
    case PruneMethod::kRAP: return "rank-aggregation";
    case PruneMethod::kMVP: return "majority-vote";
  }
  return "?";
}

namespace {

StageMetrics snapshot(fl::Simulation& sim) {
  return StageMetrics{sim.test_accuracy(), sim.attack_success()};
}

// Accuracy oracle for the pruning loop: the server's validation set, or the
// mean of client-reported accuracies when the server has no data.
std::function<double()> make_accuracy_oracle(fl::Simulation& sim,
                                             const DefenseConfig& config) {
  if (!config.use_client_accuracy) {
    return [&sim] { return sim.server().validation_accuracy(); };
  }
  return [&sim] {
    const auto clients = sim.all_client_ids();
    sim.server().request_accuracies(clients, 0);
    sim.dispatch_clients(clients);
    auto reports = sim.server().collect_accuracies(clients);
    return std::accumulate(reports.begin(), reports.end(), 0.0) /
           static_cast<double>(reports.size());
  };
}

}  // namespace

std::vector<int> federated_pruning_order(fl::Simulation& sim, const DefenseConfig& config) {
  auto& server = sim.server();
  const auto clients = sim.all_client_ids();
  const int units = server.model().net.layer(server.model().last_conv_index).prunable_units();

  if (config.method == PruneMethod::kRAP) {
    server.request_ranks(clients, 0);
    sim.dispatch_clients(clients);
    auto reports = server.collect_ranks(clients);
    return rap_pruning_order(reports, units);
  }
  server.request_votes(clients, config.vote_prune_rate, 0);
  sim.dispatch_clients(clients);
  auto reports = server.collect_votes(clients);
  return mvp_pruning_order(reports, units, config.vote_prune_rate);
}

DefenseReport run_defense(fl::Simulation& sim, const DefenseConfig& config) {
  common::PhaseTimer phases;
  DefenseReport report;
  auto& server = sim.server();
  auto& model = server.model();

  report.training = snapshot(sim);
  const double baseline = make_accuracy_oracle(sim, config)();

  // --- Stage 1: Federated Pruning -------------------------------------------
  {
    auto timer = phases.scope("pruning");
    auto order = federated_pruning_order(sim, config);
    auto accuracy_eval = make_accuracy_oracle(sim, config);
    std::function<double()> asr_eval;
    if (config.record_asr_traces) {
      asr_eval = [&sim] { return sim.attack_success(); };
    }
    report.prune = prune_until(model.net, model.last_conv_index, order, accuracy_eval,
                               baseline - config.prune_acc_drop, asr_eval);
    report.neurons_pruned = report.prune.n_pruned;
  }
  report.after_fp = snapshot(sim);
  FC_LOG(Info) << "FP pruned " << report.neurons_pruned << " neurons; TA "
               << report.training.test_acc << " -> " << report.after_fp.test_acc << ", AA "
               << report.training.attack_acc << " -> " << report.after_fp.attack_acc;

  // --- Stage 2: Fine-tuning (optional) ---------------------------------------
  if (config.enable_finetune) {
    auto timer = phases.scope("fine-tuning");
    report.finetune = federated_finetune(sim, config.finetune);
  }
  report.after_ft = snapshot(sim);

  // --- Stage 3: Adjusting Extreme Weights (optional) --------------------------
  if (config.enable_adjust_weights) {
    auto timer = phases.scope("adjust-weights");
    auto accuracy_eval = [&server] { return server.validation_accuracy(); };
    std::function<double()> asr_eval;
    if (config.record_asr_traces) {
      asr_eval = [&sim] { return sim.attack_success(); };
    }
    AdjustConfig adjust = config.adjust;
    // The floor is anchored to the pre-defense baseline, not the post-FT
    // accuracy: fine-tuning buys headroom that AW is allowed to spend (the
    // paper's §IV-B/V-E trade-off).
    adjust.min_accuracy = std::min(accuracy_eval(), baseline) - config.aw_acc_drop;
    const auto layers = config.aw_include_fc
                            ? default_adjust_layers(model.net, model.last_conv_index)
                            : std::vector<int>{model.last_conv_index};
    report.adjust =
        adjust_extreme_weights(model.net, layers, adjust, accuracy_eval, asr_eval);
    report.weights_zeroed = report.adjust.weights_zeroed;
  }
  report.after_aw = snapshot(sim);
  FC_LOG(Info) << "defense complete: TA " << report.after_aw.test_acc << ", AA "
               << report.after_aw.attack_acc << " (zeroed " << report.weights_zeroed
               << " weights, final delta " << report.adjust.final_delta << ")";

  report.phase_seconds = phases.totals();
  return report;
}

}  // namespace fedcleanse::defense
