#include "defense/pipeline.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "defense/majority_vote.h"
#include "defense/rank_aggregation.h"
#include "fl/protocol.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace fedcleanse::defense {

// Round tags for the defense protocol's messages, far above any training or
// fine-tuning round so a delayed training reply can never be mistaken for a
// defense report (and crashed clients stay crashed).
namespace round_tag {
constexpr std::uint32_t kRanks = 2000;
constexpr std::uint32_t kVotes = 2001;
constexpr std::uint32_t kAccuracyBase = 3000;  // +1 per oracle call
}  // namespace round_tag

const char* prune_method_name(PruneMethod method) {
  switch (method) {
    case PruneMethod::kRAP: return "rank-aggregation";
    case PruneMethod::kMVP: return "majority-vote";
  }
  return "?";
}

namespace {

StageMetrics snapshot(fl::Simulation& sim) {
  return StageMetrics{sim.test_accuracy(), sim.attack_success()};
}

// Accuracy oracle for the pruning loop: the server's validation set, or the
// mean of client-reported accuracies when the server has no data. Each call
// uses a fresh round tag so a delayed report from an earlier call (evaluated
// at older parameters) can never be accepted as current.
std::function<double()> make_accuracy_oracle(fl::Simulation& sim,
                                             const DefenseConfig& config) {
  if (!config.use_client_accuracy) {
    return [&sim] { return sim.server().validation_accuracy(); };
  }
  return [&sim, round = round_tag::kAccuracyBase]() mutable {
    const auto clients = sim.all_client_ids();
    auto ex = fl::exchange_with_retries<double>(
        sim, clients,
        [&](const std::vector<int>& ids) { sim.server().request_accuracies(ids, round); },
        [&](const std::vector<int>& ids, fl::CollectStats* cs) {
          return sim.server().collect_accuracies(ids, round, cs);
        },
        "accuracy oracle");
    ++round;
    if (!ex.stats.quorum_met) {
      throw QuorumError("accuracy oracle: " + std::to_string(ex.stats.n_valid) + "/" +
                        std::to_string(clients.size()) + " clients reported");
    }
    return std::accumulate(ex.values.begin(), ex.values.end(), 0.0) /
           static_cast<double>(ex.values.size());
  };
}

}  // namespace

std::vector<int> federated_pruning_order(fl::Simulation& sim, const DefenseConfig& config,
                                         fl::ExchangeStats* stats) {
  auto& server = sim.server();
  const auto clients = sim.all_client_ids();
  const int units = server.model().net.layer(server.model().last_conv_index).prunable_units();

  auto below_quorum = [&](const fl::ExchangeStats& st) {
    return QuorumError(std::string(prune_method_name(config.method)) + " pruning: " +
                       std::to_string(st.n_valid) + "/" + std::to_string(clients.size()) +
                       " valid reports after " + std::to_string(st.n_retried) + " retries");
  };

  obs::Span span("defense.fp_scan", "defense");
  if (config.method == PruneMethod::kRAP) {
    auto ex = fl::exchange_with_retries<std::vector<std::uint32_t>>(
        sim, clients,
        [&](const std::vector<int>& ids) { server.request_ranks(ids, round_tag::kRanks); },
        [&](const std::vector<int>& ids, fl::CollectStats* cs) {
          return server.collect_ranks(ids, round_tag::kRanks, cs);
        },
        "FP rank collection");
    if (stats != nullptr) *stats = ex.stats;
    if (!ex.stats.quorum_met) throw below_quorum(ex.stats);
    return rap_pruning_order(ex.values, units);
  }
  auto ex = fl::exchange_with_retries<std::vector<std::uint8_t>>(
      sim, clients,
      [&](const std::vector<int>& ids) {
        server.request_votes(ids, config.vote_prune_rate, round_tag::kVotes);
      },
      [&](const std::vector<int>& ids, fl::CollectStats* cs) {
        return server.collect_votes(ids, round_tag::kVotes, cs);
      },
      "FP vote collection");
  if (stats != nullptr) *stats = ex.stats;
  if (!ex.stats.quorum_met) throw below_quorum(ex.stats);
  return mvp_pruning_order(ex.values, units, config.vote_prune_rate);
}

DefenseReport run_defense(fl::Simulation& sim, const DefenseConfig& config) {
  DefenseReport report;
  auto& server = sim.server();
  auto& model = server.model();

  report.training = snapshot(sim);
  // One oracle closure for baseline + pruning loop: it tags every
  // client-accuracy exchange with a strictly increasing round.
  auto accuracy_oracle = make_accuracy_oracle(sim, config);
  const double baseline = accuracy_oracle();

  // --- Stage 1: Federated Pruning -------------------------------------------
  {
    obs::Span span("defense.pruning", "defense", &report.phase_seconds["pruning"]);
    auto order = federated_pruning_order(sim, config, &report.fp_exchange);
    auto& accuracy_eval = accuracy_oracle;
    std::function<double()> asr_eval;
    if (config.record_asr_traces) {
      asr_eval = [&sim] { return sim.attack_success(); };
    }
    report.prune = prune_until(model.net, model.last_conv_index, order, accuracy_eval,
                               baseline - config.prune_acc_drop, asr_eval);
    report.neurons_pruned = report.prune.n_pruned;
  }
  report.after_fp = snapshot(sim);
  FC_LOG(Info) << "FP pruned " << report.neurons_pruned << " neurons; TA "
               << report.training.test_acc << " -> " << report.after_fp.test_acc << ", AA "
               << report.training.attack_acc << " -> " << report.after_fp.attack_acc;

  // --- Stage 2: Fine-tuning (optional) ---------------------------------------
  if (config.enable_finetune) {
    obs::Span span("defense.finetune", "defense", &report.phase_seconds["fine-tuning"]);
    report.finetune = federated_finetune(sim, config.finetune);
  }
  report.after_ft = snapshot(sim);

  // --- Stage 3: Adjusting Extreme Weights (optional) --------------------------
  if (config.enable_adjust_weights) {
    obs::Span span("defense.adjust_weights", "defense",
                   &report.phase_seconds["adjust-weights"]);
    auto accuracy_eval = [&server] { return server.validation_accuracy(); };
    std::function<double()> asr_eval;
    if (config.record_asr_traces) {
      asr_eval = [&sim] { return sim.attack_success(); };
    }
    AdjustConfig adjust = config.adjust;
    // The floor is anchored to the pre-defense baseline, not the post-FT
    // accuracy: fine-tuning buys headroom that AW is allowed to spend (the
    // paper's §IV-B/V-E trade-off).
    adjust.min_accuracy = std::min(accuracy_eval(), baseline) - config.aw_acc_drop;
    const auto layers = config.aw_include_fc
                            ? default_adjust_layers(model.net, model.last_conv_index)
                            : std::vector<int>{model.last_conv_index};
    report.adjust =
        adjust_extreme_weights(model.net, layers, adjust, accuracy_eval, asr_eval);
    report.weights_zeroed = report.adjust.weights_zeroed;
  }
  report.after_aw = snapshot(sim);
  FC_LOG(Info) << "defense complete: TA " << report.after_aw.test_acc << ", AA "
               << report.after_aw.attack_acc << " (zeroed " << report.weights_zeroed
               << " weights, final delta " << report.adjust.final_delta << ")";

  if (obs::Journal* journal = obs::ambient_journal()) {
    obs::JsonObject phases_json;
    for (const auto& [phase, seconds] : report.phase_seconds) {
      phases_json.add(phase, seconds);
    }
    obs::JsonObject entry;
    entry.add("kind", "defense")
        .add("method", prune_method_name(config.method))
        .add("ta", report.after_aw.test_acc)
        .add("asr", report.after_aw.attack_acc)
        .add("ta_before", report.training.test_acc)
        .add("asr_before", report.training.attack_acc)
        .add("ta_after_fp", report.after_fp.test_acc)
        .add("asr_after_fp", report.after_fp.attack_acc)
        .add("ta_after_ft", report.after_ft.test_acc)
        .add("asr_after_ft", report.after_ft.attack_acc)
        .add("neurons_pruned", report.neurons_pruned)
        .add("weights_zeroed", report.weights_zeroed)
        .add("finetune_rounds", report.finetune.rounds_run)
        .add("n_valid", report.fp_exchange.n_valid)
        .add("n_dropped", report.fp_exchange.n_dropped)
        .add("n_corrupted", report.fp_exchange.n_corrupted)
        .add("n_retried", report.fp_exchange.n_retried)
        .add_raw("phase_seconds", phases_json.str());
    journal->write(entry);
  }
  return report;
}

}  // namespace fedcleanse::defense
