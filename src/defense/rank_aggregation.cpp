#include "defense/rank_aggregation.h"

#include "common/error.h"
#include "defense/activation_ranking.h"

namespace fedcleanse::defense {

std::vector<double> rap_aggregate(const std::vector<std::vector<std::uint32_t>>& reports,
                                  int n_neurons) {
  FC_REQUIRE(n_neurons > 0, "need at least one neuron");
  std::vector<double> sums(static_cast<std::size_t>(n_neurons), 0.0);
  std::size_t valid = 0;
  for (const auto& report : reports) {
    if (!is_valid_rank_report(report, n_neurons)) continue;
    for (int i = 0; i < n_neurons; ++i) {
      sums[static_cast<std::size_t>(i)] += report[static_cast<std::size_t>(i)];
    }
    ++valid;
  }
  if (valid == 0) throw ConfigError("no valid rank reports to aggregate");
  for (auto& s : sums) s /= static_cast<double>(valid);
  return sums;
}

std::vector<int> rap_pruning_order(const std::vector<std::vector<std::uint32_t>>& reports,
                                   int n_neurons) {
  // Mean rank position IS the dormancy score: large mean rank = usually
  // ranked near the bottom = dormant.
  return pruning_order_from_dormancy(rap_aggregate(reports, n_neurons));
}

StreamingRankAggregator::StreamingRankAggregator(int n_neurons) : n_neurons_(n_neurons) {
  FC_REQUIRE(n_neurons > 0, "need at least one neuron");
  sums_.assign(static_cast<std::size_t>(n_neurons), 0.0);
}

void StreamingRankAggregator::accept(const std::vector<std::uint32_t>& report) {
  if (!is_valid_rank_report(report, n_neurons_)) return;
  for (int i = 0; i < n_neurons_; ++i) {
    sums_[static_cast<std::size_t>(i)] += report[static_cast<std::size_t>(i)];
  }
  ++valid_;
}

std::vector<double> StreamingRankAggregator::mean_ranks() const {
  if (valid_ == 0) throw ConfigError("no valid rank reports to aggregate");
  std::vector<double> means = sums_;
  for (auto& s : means) s /= static_cast<double>(valid_);
  return means;
}

std::vector<int> StreamingRankAggregator::pruning_order() const {
  return pruning_order_from_dormancy(mean_ranks());
}

}  // namespace fedcleanse::defense
