#include "defense/adjust_weights.h"

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace fedcleanse::defense {

namespace {

// The weight tensor of a supported layer (Conv2d or Linear).
tensor::Tensor& layer_weight(nn::Sequential& model, int layer_index) {
  FC_REQUIRE(layer_index >= 0 && layer_index < model.size(), "layer index out of range");
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&model.layer(layer_index))) {
    return conv->weight();
  }
  if (auto* linear = dynamic_cast<nn::Linear*>(&model.layer(layer_index))) {
    return linear->weight();
  }
  throw ConfigError("adjust-weights target must be Conv2d or Linear");
}

struct LayerBounds {
  int layer_index;
  float lo0, hi0;  // μ, σ pre-multiplied: bounds are μ ± Δ·σ
  double mu, sigma;
};

// Zero all weights outside [μ − Δσ, μ + Δσ]; returns how many changed from
// non-zero to zero. Zeros are excluded from the clip (they are either pruned
// units or previously culled weights).
int clip_outside(tensor::Tensor& weight, double mu, double sigma, double delta) {
  const float lo = static_cast<float>(mu - delta * sigma);
  const float hi = static_cast<float>(mu + delta * sigma);
  int zeroed = 0;
  for (auto& w : weight.storage()) {
    if (w != 0.0f && (w < lo || w > hi)) {
      w = 0.0f;
      ++zeroed;
    }
  }
  return zeroed;
}

std::vector<LayerBounds> compute_bounds(nn::Sequential& model,
                                        const std::vector<int>& layer_indices) {
  FC_REQUIRE(!layer_indices.empty(), "adjust-weights needs at least one target layer");
  std::vector<LayerBounds> bounds;
  for (int li : layer_indices) {
    auto& weight = layer_weight(model, li);
    std::vector<float> population;
    population.reserve(weight.size());
    for (float w : weight.data()) {
      if (w != 0.0f) population.push_back(w);
    }
    FC_REQUIRE(!population.empty(), "layer has no non-zero weights");
    const auto [mu, sigma] = tensor::mean_stddev(population);
    bounds.push_back(LayerBounds{li, 0.0f, 0.0f, mu, sigma});
  }
  return bounds;
}

}  // namespace

std::vector<int> default_adjust_layers(nn::Sequential& model, int last_conv_index) {
  std::vector<int> layers{last_conv_index};
  for (int li = last_conv_index + 1; li < model.size(); ++li) {
    if (dynamic_cast<nn::Linear*>(&model.layer(li)) != nullptr) layers.push_back(li);
  }
  return layers;
}

AdjustOutcome adjust_extreme_weights(nn::Sequential& model,
                                     const std::vector<int>& layer_indices,
                                     const AdjustConfig& config,
                                     const std::function<double()>& accuracy_eval,
                                     const std::function<double()>& asr_eval) {
  FC_REQUIRE(config.delta_start >= config.delta_min && config.delta_step > 0.0,
             "bad AW sweep configuration");
  auto bounds = compute_bounds(model, layer_indices);

  AdjustOutcome outcome;
  outcome.final_delta = config.delta_start;
  outcome.final_accuracy = accuracy_eval();

  for (double delta = config.delta_start; delta >= config.delta_min - 1e-9;
       delta -= config.delta_step) {
    // Snapshot all target layers for revert.
    std::vector<std::vector<float>> saved;
    saved.reserve(bounds.size());
    int newly_zeroed = 0;
    for (const auto& b : bounds) {
      auto& weight = layer_weight(model, b.layer_index);
      saved.push_back(weight.storage());
      newly_zeroed += clip_outside(weight, b.mu, b.sigma, delta);
    }

    AdjustStep step;
    step.delta = delta;
    step.accuracy = accuracy_eval();
    step.attack_acc = asr_eval ? asr_eval() : 0.0;
    step.weights_zeroed = outcome.weights_zeroed + newly_zeroed;
    outcome.trace.push_back(step);

    if (step.accuracy < config.min_accuracy) {
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        layer_weight(model, bounds[i].layer_index).storage() = std::move(saved[i]);
      }
      break;
    }
    outcome.weights_zeroed += newly_zeroed;
    outcome.final_delta = delta;
    outcome.final_accuracy = step.accuracy;
  }
  return outcome;
}

AdjustOutcome adjust_extreme_weights(nn::Sequential& model, int layer_index,
                                     const AdjustConfig& config,
                                     const std::function<double()>& accuracy_eval,
                                     const std::function<double()>& asr_eval) {
  return adjust_extreme_weights(model, std::vector<int>{layer_index}, config, accuracy_eval,
                                asr_eval);
}

int zero_extreme_weights_once(nn::Sequential& model, const std::vector<int>& layer_indices,
                              double delta) {
  auto bounds = compute_bounds(model, layer_indices);
  int zeroed = 0;
  for (const auto& b : bounds) {
    zeroed += clip_outside(layer_weight(model, b.layer_index), b.mu, b.sigma, delta);
  }
  return zeroed;
}

}  // namespace fedcleanse::defense
