// Majority Voting-based Pruning (MVP, §IV-A2).
//
// The server announces a pruning rate p; every client votes for the ⌈p·P⌉
// neurons it finds least active (vote 1 = prune). The server averages the
// votes and prunes the neurons with the highest prune-vote share. A client
// whose ballot does not contain the agreed number of votes is discarded.
// Compared with RAP this reveals less about local activations and bounds a
// minority attacker's influence to 1/N per neuron.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedcleanse::defense {

// Fraction of (valid) clients voting to prune each neuron.
std::vector<double> mvp_aggregate(const std::vector<std::vector<std::uint8_t>>& reports,
                                  int n_neurons, double prune_rate);

// Neuron indices ordered by descending prune-vote share.
std::vector<int> mvp_pruning_order(const std::vector<std::vector<std::uint8_t>>& reports,
                                   int n_neurons, double prune_rate);

// Number of votes a valid ballot must contain for rate p over P neurons.
std::size_t expected_votes(int n_neurons, double prune_rate);

// Streaming counterpart of mvp_aggregate: ballots fold into a per-neuron
// vote histogram as they clear the exchange (integer sums in doubles —
// exact, order-free). Validation is identical ballot for ballot; shares()
// equals mvp_aggregate() over the same ballots to the last bit.
class StreamingVoteAggregator {
 public:
  StreamingVoteAggregator(int n_neurons, double prune_rate);

  // Folds the ballot if it has the right length, only 0/1 entries, and
  // exactly the agreed vote quota; silently discards it otherwise.
  void accept(const std::vector<std::uint8_t>& ballot);

  std::size_t valid() const { return valid_; }

  // Prune-vote share per neuron; throws ConfigError if nothing valid was
  // accepted.
  std::vector<double> shares() const;
  // Neuron indices ordered by descending prune-vote share
  // (== mvp_pruning_order).
  std::vector<int> pruning_order() const;

 private:
  int n_neurons_;
  std::size_t quota_;
  std::vector<double> sums_;
  std::size_t valid_ = 0;
};

}  // namespace fedcleanse::defense
