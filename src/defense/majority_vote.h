// Majority Voting-based Pruning (MVP, §IV-A2).
//
// The server announces a pruning rate p; every client votes for the ⌈p·P⌉
// neurons it finds least active (vote 1 = prune). The server averages the
// votes and prunes the neurons with the highest prune-vote share. A client
// whose ballot does not contain the agreed number of votes is discarded.
// Compared with RAP this reveals less about local activations and bounds a
// minority attacker's influence to 1/N per neuron.
#pragma once

#include <cstdint>
#include <vector>

namespace fedcleanse::defense {

// Fraction of (valid) clients voting to prune each neuron.
std::vector<double> mvp_aggregate(const std::vector<std::vector<std::uint8_t>>& reports,
                                  int n_neurons, double prune_rate);

// Neuron indices ordered by descending prune-vote share.
std::vector<int> mvp_pruning_order(const std::vector<std::vector<std::uint8_t>>& reports,
                                   int n_neurons, double prune_rate);

// Number of votes a valid ballot must contain for rate p over P neurons.
std::size_t expected_votes(int n_neurons, double prune_rate);

}  // namespace fedcleanse::defense
