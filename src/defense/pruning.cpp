#include "defense/pruning.h"

#include <algorithm>

namespace fedcleanse::defense {

PruneOutcome prune_until(nn::Sequential& model, int layer_index,
                         const std::vector<int>& order,
                         const std::function<double()>& accuracy_eval, double min_accuracy,
                         const std::function<double()>& asr_eval, int max_prunes) {
  FC_REQUIRE(layer_index >= 0 && layer_index < model.size(), "layer index out of range");
  auto& layer = model.layer(layer_index);
  const int units = layer.prunable_units();
  FC_REQUIRE(units > 0, "layer has no prunable units");
  FC_REQUIRE(static_cast<int>(order.size()) <= units, "order longer than unit count");

  PruneOutcome outcome;
  int active = 0;
  for (int u = 0; u < units; ++u) active += layer.unit_active(u) ? 1 : 0;

  const int budget = max_prunes < 0 ? static_cast<int>(order.size()) : max_prunes;
  // Snapshot the layer's weights so a reverted prune restores exactly.
  for (int step = 0; step < budget && step < static_cast<int>(order.size()); ++step) {
    const int neuron = order[static_cast<std::size_t>(step)];
    FC_REQUIRE(neuron >= 0 && neuron < units, "pruning order names a bad neuron");
    if (!layer.unit_active(neuron)) continue;  // already pruned
    if (active <= 1) break;                    // never kill the whole layer

    // Save the neuron's parameters before zeroing them.
    std::vector<std::vector<float>> saved;
    for (auto& p : layer.params()) {
      saved.emplace_back(p.value->storage());
    }

    layer.set_unit_active(neuron, false);
    --active;

    PruneStep trace_step;
    trace_step.neuron = neuron;
    trace_step.accuracy = accuracy_eval();
    trace_step.attack_acc = asr_eval ? asr_eval() : 0.0;
    outcome.trace.push_back(trace_step);

    if (trace_step.accuracy < min_accuracy) {
      // Revert: restore parameters and reactivate.
      auto params = layer.params();
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i].value->storage() = std::move(saved[i]);
      }
      layer.set_unit_active(neuron, true);
      ++active;
      break;
    }
    ++outcome.n_pruned;
  }

  outcome.final_accuracy = accuracy_eval();
  outcome.final_mask = layer.prune_mask();
  return outcome;
}

}  // namespace fedcleanse::defense
