// The server-side pruning engine (Algorithm 1, "Federated Pruning" loop).
//
// Given a pruning order (from RAP or MVP) and an accuracy oracle, prune
// neurons cumulatively and stop before the accuracy falls below the
// threshold, reverting the offending prune.
#pragma once

#include <functional>
#include <vector>

#include "nn/sequential.h"

namespace fedcleanse::defense {

struct PruneStep {
  int neuron = -1;
  double accuracy = 0.0;
  // Attack success rate at this step, if an ASR oracle was supplied
  // (reporting only — the defender never sees this).
  double attack_acc = 0.0;
};

struct PruneOutcome {
  int n_pruned = 0;
  double final_accuracy = 0.0;
  // Per-step trace (Fig 5): accuracy after pruning each successive neuron,
  // including the reverted step if any.
  std::vector<PruneStep> trace;
  std::vector<std::uint8_t> final_mask;
};

// Prune units of `model.layer(layer_index)` following `order`
// (most-dormant-first). After each prune, `accuracy_eval()` is consulted;
// pruning stops (and the last prune is reverted) once it would fall below
// `min_accuracy`. `asr_eval` is optional and only recorded in the trace.
//
// `max_prunes` < 0 means "as many as the threshold allows"; at least one
// unit is always kept active.
PruneOutcome prune_until(nn::Sequential& model, int layer_index,
                         const std::vector<int>& order,
                         const std::function<double()>& accuracy_eval, double min_accuracy,
                         const std::function<double()>& asr_eval = nullptr,
                         int max_prunes = -1);

}  // namespace fedcleanse::defense
