// The full defense pipeline (Algorithm 1):
//   Federated Pruning (RAP or MVP) → optional Fine-Tuning → Adjusting
//   Extreme Weights — with per-phase wall-clock timing (Fig 9).
//
// Operates on a finished fl::Simulation: the same clients that trained the
// model answer the pruning protocol and participate in fine-tuning, so
// attackers get every chance the paper gives them.
#pragma once

#include <map>
#include <string>

#include "defense/adjust_weights.h"
#include "defense/finetune.h"
#include "defense/pruning.h"
#include "fl/run_state.h"
#include "fl/simulation.h"

namespace fedcleanse::defense {

enum class PruneMethod { kRAP, kMVP };
const char* prune_method_name(PruneMethod method);

struct DefenseConfig {
  PruneMethod method = PruneMethod::kMVP;
  // p announced to clients under MVP.
  double vote_prune_rate = 0.5;
  // Pruning stops when validation accuracy falls more than this below the
  // pre-defense baseline.
  double prune_acc_drop = 0.02;
  // If true, the server has no validation data and instead averages
  // client-reported accuracies (attackers inflate theirs).
  bool use_client_accuracy = false;
  bool enable_finetune = true;
  FineTuneConfig finetune;
  bool enable_adjust_weights = true;
  AdjustConfig adjust;  // adjust.min_accuracy is derived from aw_acc_drop
  // AW stops when accuracy falls more than this below the post-FT accuracy.
  double aw_acc_drop = 0.03;
  // Also adjust the fully connected head, not just the last conv layer (see
  // adjust_weights.h for the rationale; false reproduces the paper's literal
  // single-layer rule).
  bool aw_include_fc = true;
  // Record ASR traces inside prune/adjust sweeps (reporting only; slower).
  bool record_asr_traces = false;
};

struct StageMetrics {
  double test_acc = 0.0;
  double attack_acc = 0.0;
};

struct DefenseReport {
  StageMetrics training;   // before any defense
  StageMetrics after_fp;   // after federated pruning
  StageMetrics after_ft;   // after fine-tuning (== after_fp if disabled)
  StageMetrics after_aw;   // after adjusting extreme weights (final)
  int neurons_pruned = 0;
  int weights_zeroed = 0;
  PruneOutcome prune;
  FineTuneOutcome finetune;
  AdjustOutcome adjust;
  // What the FP rank/vote exchange saw at the server (degraded-mode
  // bookkeeping; all-valid on a perfect wire).
  fl::ExchangeStats fp_exchange;
  // Phase name → seconds ("pruning", "fine-tuning", "adjust-weights").
  std::map<std::string, double> phase_seconds;
};

// Everything the pipeline has computed when a fine-tune-stage snapshot is
// taken: the pre-defense metrics, the whole pruning stage's outcome, and the
// fine-tune loop's keep-best state. Stored (encoded) in
// fl::RunSnapshot::stage_state so run_defense can resume after fine-tune
// round N without repeating the oracle baseline or the pruning protocol.
struct DefenseProgress {
  StageMetrics training;
  StageMetrics after_fp;
  double baseline = 0.0;  // pre-defense accuracy-oracle reading
  PruneOutcome prune;
  fl::ExchangeStats fp_exchange;
  double pruning_seconds = 0.0;
  FineTuneState finetune;
};

// DefenseProgress ↔ bytes. decode throws CheckpointError on malformed input
// (the enclosing snapshot's checksum normally catches corruption first).
std::vector<std::uint8_t> encode_defense_progress(const DefenseProgress& progress);
DefenseProgress decode_defense_progress(const std::vector<std::uint8_t>& bytes);

// Run the configured stages against sim's global model, in place.
//
// Unlike training rounds, the defense protocol cannot proceed on a
// below-quorum collect (a pruning decision from a sliver of clients is worse
// than no decision): throws QuorumError when, after all retries, fewer than
// ceil(min_collect_fraction · clients) valid reports arrived.
//
// With a `checkpoint` manager, each due fine-tune round writes a resumable
// snapshot (pruning and adjust-weights replay deterministically from the
// nearest earlier snapshot, so they need none of their own). `resume` is the
// snapshot the caller already restored into `sim`: a "finetune"-stage
// snapshot skips straight past the baseline oracle and pruning protocol;
// a "train"-stage one runs the full defense.
DefenseReport run_defense(fl::Simulation& sim, const DefenseConfig& config,
                          fl::CheckpointManager* checkpoint = nullptr,
                          const fl::RunSnapshot* resume = nullptr);

// Just the federated-pruning stage (used by Table V / Fig 5): returns the
// pruning order chosen by the configured method without applying it.
// `stats`, when non-null, receives the exchange bookkeeping.
std::vector<int> federated_pruning_order(fl::Simulation& sim, const DefenseConfig& config,
                                         fl::ExchangeStats* stats = nullptr);

}  // namespace fedcleanse::defense
