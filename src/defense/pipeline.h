// The full defense pipeline (Algorithm 1):
//   Federated Pruning (RAP or MVP) → optional Fine-Tuning → Adjusting
//   Extreme Weights — with per-phase wall-clock timing (Fig 9).
//
// Operates on a finished fl::Simulation: the same clients that trained the
// model answer the pruning protocol and participate in fine-tuning, so
// attackers get every chance the paper gives them.
#pragma once

#include <map>
#include <string>

#include "defense/adjust_weights.h"
#include "defense/finetune.h"
#include "defense/pruning.h"
#include "fl/simulation.h"

namespace fedcleanse::defense {

enum class PruneMethod { kRAP, kMVP };
const char* prune_method_name(PruneMethod method);

struct DefenseConfig {
  PruneMethod method = PruneMethod::kMVP;
  // p announced to clients under MVP.
  double vote_prune_rate = 0.5;
  // Pruning stops when validation accuracy falls more than this below the
  // pre-defense baseline.
  double prune_acc_drop = 0.02;
  // If true, the server has no validation data and instead averages
  // client-reported accuracies (attackers inflate theirs).
  bool use_client_accuracy = false;
  bool enable_finetune = true;
  FineTuneConfig finetune;
  bool enable_adjust_weights = true;
  AdjustConfig adjust;  // adjust.min_accuracy is derived from aw_acc_drop
  // AW stops when accuracy falls more than this below the post-FT accuracy.
  double aw_acc_drop = 0.03;
  // Also adjust the fully connected head, not just the last conv layer (see
  // adjust_weights.h for the rationale; false reproduces the paper's literal
  // single-layer rule).
  bool aw_include_fc = true;
  // Record ASR traces inside prune/adjust sweeps (reporting only; slower).
  bool record_asr_traces = false;
};

struct StageMetrics {
  double test_acc = 0.0;
  double attack_acc = 0.0;
};

struct DefenseReport {
  StageMetrics training;   // before any defense
  StageMetrics after_fp;   // after federated pruning
  StageMetrics after_ft;   // after fine-tuning (== after_fp if disabled)
  StageMetrics after_aw;   // after adjusting extreme weights (final)
  int neurons_pruned = 0;
  int weights_zeroed = 0;
  PruneOutcome prune;
  FineTuneOutcome finetune;
  AdjustOutcome adjust;
  // What the FP rank/vote exchange saw at the server (degraded-mode
  // bookkeeping; all-valid on a perfect wire).
  fl::ExchangeStats fp_exchange;
  // Phase name → seconds ("pruning", "fine-tuning", "adjust-weights").
  std::map<std::string, double> phase_seconds;
};

// Run the configured stages against sim's global model, in place.
//
// Unlike training rounds, the defense protocol cannot proceed on a
// below-quorum collect (a pruning decision from a sliver of clients is worse
// than no decision): throws QuorumError when, after all retries, fewer than
// ceil(min_collect_fraction · clients) valid reports arrived.
DefenseReport run_defense(fl::Simulation& sim, const DefenseConfig& config);

// Just the federated-pruning stage (used by Table V / Fig 5): returns the
// pruning order chosen by the configured method without applying it.
// `stats`, when non-null, receives the exchange bookkeeping.
std::vector<int> federated_pruning_order(fl::Simulation& sim, const DefenseConfig& config,
                                         fl::ExchangeStats* stats = nullptr);

}  // namespace fedcleanse::defense
