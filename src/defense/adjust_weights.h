// Adjusting Extreme Weights (AW, §IV-C / Algorithm 1).
//
// For each target layer, compute μ and σ of its non-zero weights, then zero
// every weight outside μ ± Δ·σ, decreasing Δ from a large starting value
// until the validation accuracy would fall below a threshold. Because the
// bounds come from statistics computed once up front, shrinking Δ only ever
// zeroes *more* weights, so the sweep is monotone and a per-layer weight
// snapshot suffices to revert the final overshooting step.
//
// The paper applies AW to the last convolutional layer. At our model scale
// the backdoor's logit-flipping capacity partly sits in the fully connected
// head, so the pipeline also passes the FC layers by default (see
// DESIGN.md §5); the single-layer behaviour is available by passing just
// the conv layer index.
#pragma once

#include <functional>
#include <vector>

#include "nn/sequential.h"

namespace fedcleanse::defense {

struct AdjustConfig {
  double delta_start = 6.0;
  double delta_step = 0.25;  // ε in Algorithm 1
  double delta_min = 0.5;
  // Stop (and revert the last step) when accuracy drops below this.
  double min_accuracy = 0.0;
};

struct AdjustStep {
  double delta = 0.0;
  double accuracy = 0.0;
  double attack_acc = 0.0;  // reporting only
  int weights_zeroed = 0;   // cumulative accepted
};

struct AdjustOutcome {
  int weights_zeroed = 0;
  double final_delta = 0.0;
  double final_accuracy = 0.0;
  std::vector<AdjustStep> trace;  // Fig 6 series
};

// Sweep Δ downward over the given layers (each must be Conv2d or Linear;
// statistics and bounds are per layer).
AdjustOutcome adjust_extreme_weights(nn::Sequential& model,
                                     const std::vector<int>& layer_indices,
                                     const AdjustConfig& config,
                                     const std::function<double()>& accuracy_eval,
                                     const std::function<double()>& asr_eval = nullptr);

// Single-layer convenience overload (the paper's literal form).
AdjustOutcome adjust_extreme_weights(nn::Sequential& model, int layer_index,
                                     const AdjustConfig& config,
                                     const std::function<double()>& accuracy_eval,
                                     const std::function<double()>& asr_eval = nullptr);

// One-shot variant (Table VII uses a fixed Δ = 3): zero weights of the
// layers outside their μ ± Δ·σ and return how many newly became zero.
int zero_extreme_weights_once(nn::Sequential& model, const std::vector<int>& layer_indices,
                              double delta);

// Layers AW should target for this model: the last conv layer plus every
// Linear layer after it (the classifier head).
std::vector<int> default_adjust_layers(nn::Sequential& model, int last_conv_index);

}  // namespace fedcleanse::defense
