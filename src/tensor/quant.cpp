#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace fedcleanse::tensor {

const char* compute_kernel_name(ComputeKernel kernel) {
  switch (kernel) {
    case ComputeKernel::kF32: return "f32";
    case ComputeKernel::kF16: return "f16";
    case ComputeKernel::kInt8: return "int8";
  }
  return "unknown";
}

std::optional<ComputeKernel> parse_compute_kernel(const std::string& name) {
  if (name == "f32") return ComputeKernel::kF32;
  if (name == "f16") return ComputeKernel::kF16;
  if (name == "int8") return ComputeKernel::kInt8;
  return std::nullopt;
}

float max_abs(const float* x, std::size_t n) {
  // Eight independent accumulator chains: GCC will not vectorize a single
  // fmax reduction without -ffast-math, but it will keep eight scalar
  // chains in registers, which is enough to saturate the load ports.
  float m0 = 0.0f, m1 = 0.0f, m2 = 0.0f, m3 = 0.0f;
  float m4 = 0.0f, m5 = 0.0f, m6 = 0.0f, m7 = 0.0f;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m0 = std::max(m0, std::fabs(x[i + 0]));
    m1 = std::max(m1, std::fabs(x[i + 1]));
    m2 = std::max(m2, std::fabs(x[i + 2]));
    m3 = std::max(m3, std::fabs(x[i + 3]));
    m4 = std::max(m4, std::fabs(x[i + 4]));
    m5 = std::max(m5, std::fabs(x[i + 5]));
    m6 = std::max(m6, std::fabs(x[i + 6]));
    m7 = std::max(m7, std::fabs(x[i + 7]));
  }
  for (; i < n; ++i) m0 = std::max(m0, std::fabs(x[i]));
  return std::max(std::max(std::max(m0, m1), std::max(m2, m3)),
                  std::max(std::max(m4, m5), std::max(m6, m7)));
}

float int8_scale(float maxabs) {
  return maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
}

void quantize_s8(const float* x, std::size_t n, float scale, std::int8_t* q) {
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < n; ++i) {
    // rintf honors the current rounding mode (nearest-even), matching the
    // vcvtps2dq lanes the vectorizer emits for this loop.
    float v = std::rintf(x[i] * inv);
    v = v < -127.0f ? -127.0f : v;
    v = v > 127.0f ? 127.0f : v;
    q[i] = static_cast<std::int8_t>(static_cast<int>(v));
  }
}

void dequantize_s8(const std::int8_t* q, std::size_t n, float scale, float* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<float>(q[i]) * scale;
}

#if defined(__FLT16_MAX__)

std::uint16_t f32_to_f16(float v) {
  const _Float16 h = static_cast<_Float16>(v);
  std::uint16_t bits;
  std::memcpy(&bits, &h, sizeof(bits));
  return bits;
}

float f16_to_f32(std::uint16_t h) {
  _Float16 v;
  std::memcpy(&v, &h, sizeof(v));
  return static_cast<float>(v);
}

void f32_to_f16_n(const float* x, std::size_t n, std::uint16_t* out) {
  // The element type punning keeps this a straight-line convert loop, which
  // GCC turns into vcvtps2ph under F16C.
  auto* dst = reinterpret_cast<_Float16*>(out);
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<_Float16>(x[i]);
}

void f16_to_f32_n(const std::uint16_t* x, std::size_t n, float* out) {
  const auto* src = reinterpret_cast<const _Float16*>(x);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(src[i]);
}

#else  // portable binary16 conversion, round-to-nearest-even

std::uint16_t f32_to_f16(float v) {
  std::uint32_t f;
  std::memcpy(&f, &v, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t mag = f & 0x7FFFFFFFu;
  if (mag >= 0x7F800000u) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mag > 0x7F800000u ? 0x200u : 0u));
  }
  if (mag >= 0x47800000u) {  // overflows binary16 -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (mag < 0x38800000u) {  // subnormal or zero in binary16
    const std::uint32_t shifted = mag ? (mag & 0x7FFFFFu) | 0x800000u : 0u;
    const int shift = mag ? 126 - static_cast<int>(mag >> 23) : 0;
    if (!mag || shift > 24) return static_cast<std::uint16_t>(sign);
    std::uint32_t m = shifted >> (shift + 13);
    const std::uint32_t rem = shifted & ((1u << (shift + 13)) - 1u);
    const std::uint32_t half = 1u << (shift + 12);
    if (rem > half || (rem == half && (m & 1u))) ++m;
    return static_cast<std::uint16_t>(sign | m);
  }
  std::uint32_t rounded = mag + 0xFFFu + ((mag >> 13) & 1u);
  return static_cast<std::uint16_t>(sign | ((rounded - 0x38000000u) >> 13));
}

float f16_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t man = h & 0x3FFu;
  std::uint32_t f;
  if (exp == 0x1Fu) {
    f = sign | 0x7F800000u | (man << 13);
  } else if (exp != 0) {
    f = sign | ((exp + 112u) << 23) | (man << 13);
  } else if (man != 0) {
    int e = -1;
    do {
      ++e;
      man <<= 1;
    } while ((man & 0x400u) == 0);
    f = sign | ((113u - e - 1u) << 23) | ((man & 0x3FFu) << 13);
  } else {
    f = sign;
  }
  float v;
  std::memcpy(&v, &f, sizeof(v));
  return v;
}

void f32_to_f16_n(const float* x, std::size_t n, std::uint16_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f32_to_f16(x[i]);
}

void f16_to_f32_n(const std::uint16_t* x, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f16_to_f32(x[i]);
}

#endif

}  // namespace fedcleanse::tensor
