// Numeric kernels on Tensor: matrix multiply, 2-D convolution and pooling
// (forward + backward), row softmax, and weight statistics. These are the
// testable primitives that the nn layers delegate to.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace fedcleanse::tensor {

// C[m,n] = A[m,k] · B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
// C[k_a?,..] with optional transposes: computes op(A) · op(B) where
// op transposes the 2-D argument when the flag is set.
Tensor matmul_t(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b);

struct Conv2dSpec {
  int stride = 1;
  int padding = 0;
};

// input [N, Cin, H, W], weight [Cout, Cin, kh, kw], bias [Cout]
// → output [N, Cout, Ho, Wo] with Ho = (H + 2p − kh)/s + 1.
Tensor conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, const Conv2dSpec& spec);

// im2col: unfold one image's receptive fields into a [kdim, pdim] column
// buffer (kdim = Cin·kh·kw, pdim = Ho·Wo). Shared by conv forward/backward;
// the NN layer caches the result so backward skips the rebuild.
void im2col(const float* image, int cin, int h, int w, int kh, int kw,
            const Conv2dSpec& spec, int ho, int wo, float* col);

// Variants that reuse a caller-provided column cache holding the unfolded
// batch ([N][kdim·pdim], concatenated). `channel_active` (optional, [Cout])
// marks pruned output channels: inactive channels are skipped in the packed
// GEMMs — forward writes exact zeros for them, backward produces exact-zero
// grad_weight/grad_bias rows and drops them from the grad_input contraction.
// `fuse_relu` applies max(0, ·) inside the GEMM epilogue — bit-identical to
// running nn::ReLU over the returned tensor (including -0.0f preservation),
// but without the extra pass over memory.
Tensor conv2d_forward_cached(const Tensor& input, const Tensor& weight, const Tensor& bias,
                             const Conv2dSpec& spec, std::vector<float>& col_cache,
                             const std::uint8_t* channel_active = nullptr,
                             bool fuse_relu = false);
// Reduced-precision conv forward for activation-profiling scans: kF32
// delegates to conv2d_forward_cached; kInt8/kF16 run the quantized GEMMs
// (weights packed once per call, activations quantized inside the pack).
// Pruned channels need no mask support here — set_unit_active zeroes their
// weights and bias, so they quantize to zero rows and stay exact zeros.
// Falls back to fp32 when the spatial extent exceeds the quantized kernels'
// single-pass column limit (kGemmNC).
Tensor conv2d_forward_quant(const Tensor& input, const Tensor& weight, const Tensor& bias,
                            const Conv2dSpec& spec, std::vector<float>& col_cache,
                            ComputeKernel kernel, bool fuse_relu = false,
                            const std::uint8_t* channel_active = nullptr);
Conv2dGrads conv2d_backward_cached(const Tensor& input, const Tensor& weight,
                                   const Tensor& grad_output, const Conv2dSpec& spec,
                                   const std::vector<float>& col_cache,
                                   const std::uint8_t* channel_active = nullptr);

struct MaxPoolResult {
  Tensor output;
  // Flat input index of the argmax for every output element, used by backward.
  std::vector<std::int64_t> argmax;
};

// Non-overlapping (stride == kernel) and overlapping max pooling.
MaxPoolResult maxpool2d_forward(const Tensor& input, int kernel, int stride);
Tensor maxpool2d_backward(const Shape& input_shape, const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_output);

// Row-wise softmax of logits [N, K].
Tensor softmax_rows(const Tensor& logits);
// Row-wise argmax of [N, K].
std::vector<int> argmax_rows(const Tensor& t);

// Mean and standard deviation (population) of a float span.
std::pair<double, double> mean_stddev(std::span<const float> values);

}  // namespace fedcleanse::tensor
