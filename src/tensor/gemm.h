// Cache-blocked, register-tiled single-precision GEMM.
//
//   C[m,n] (+)= op(A)[m,k] · op(B)[k,n]
//
// The kernel packs panels of A and B into contiguous, 64-byte-aligned
// workspace buffers (handling all four transpose variants in the pack step)
// and runs an mr×nr register tile over them, written as plain loops with
// compile-time trip counts so the compiler auto-vectorizes the inner
// dimension to FMA on any target (portable scalar code on targets without
// SIMD). Blocking follows the classic Goto/BLIS scheme: KC×NR slivers of B
// stream from L1, MC×KC panels of A sit in L2, NC bounds the packed-B
// footprint.
//
// Determinism: for a fixed (shape, mask) the floating-point accumulation
// order per C element is a function of the blocking constants only — k is
// swept in ascending KC blocks by every thread, and threads partition rows
// of C, which they own exclusively. Results are therefore bit-identical for
// every thread count, which the determinism suite pins.
#pragma once

#include <cstdint>

namespace fedcleanse::tensor {

// Register tile and cache-blocking constants (see DESIGN.md §8). With AVX2
// (8-wide) the 4×16 tile holds 8 accumulator vectors plus 4 broadcasts and
// 2 B vectors — 14 of the 16 architectural YMM registers, the largest shape
// GCC allocates without spilling accumulators to the stack.
inline constexpr int kGemmMR = 4;
inline constexpr int kGemmNR = 16;
inline constexpr int kGemmMC = 96;    // A panel rows:   MC·KC floats ≈ 96 KiB (L2)
inline constexpr int kGemmKC = 256;   // shared k depth: KC·NR floats ≈ 16 KiB (L1)
inline constexpr int kGemmNC = 2048;  // packed-B bound: KC·NC floats ≈ 2 MiB

// Optional sparsity structure, used by the pruning defense: a pruned conv
// channel is a zero row of the weight matrix, and skipping it explicitly
// preserves the speed the legacy kernel got from its `a == 0` test.
struct GemmMask {
  // [m] entries; rows of C whose entry is 0 are neither computed nor written
  // (the caller must pre-initialize them — typically to exact zeros).
  const std::uint8_t* row_active = nullptr;
  // [k] entries; contraction indices whose entry is 0 are dropped in the pack
  // step. Skipping is value-preserving when the corresponding A column or B
  // row is exactly zero (pruned weights are), since x + (±0·y) == x for the
  // accumulators this kernel produces.
  const std::uint8_t* k_active = nullptr;
};

// Fused epilogue, applied while the C tile is still cache-hot instead of in
// a separate pass over memory. Each piece is placed so the floating-point
// operation order matches the unfused pipeline bit for bit:
//   row_bias — added when the first k block *stores* its tile
//     (bias + acc == acc + bias, so this equals pre-filling C with the bias
//     and accumulating into it, which is what conv2d_forward_cached did).
//     Requires accumulate == false.
//   col_bias — added after the last k block finishes a column range
//     (equals nn::Linear's post-GEMM `y[i][j] += bias[j]` sweep; adding at
//     the first block would NOT match once k spans multiple KC blocks).
//   relu — clamped after the last k block, `v < 0 ? 0 : v` (preserves -0.0f
//     exactly like nn::ReLU::forward). Runs after col_bias.
//   softmax — row softmax over the finished row after the last k block,
//     replicating ops.cpp's softmax_rows element for element. Requires
//     n <= kGemmNC so a row is finished within a single column block.
struct GemmEpilogue {
  const float* row_bias = nullptr;  // [m]
  const float* col_bias = nullptr;  // [n]
  bool relu = false;
  bool softmax = false;
  bool any() const {
    return row_bias != nullptr || col_bias != nullptr || relu || softmax;
  }
};

// C is row-major with leading dimension ldc; A/B are row-major as *stored*
// (lda/ldb are the stored row strides; the transpose flags select how they
// are read). accumulate=false overwrites C, accumulate=true adds to it.
// Rows ≥ m·n·k of work are spread over the ambient thread pool in MC-row
// blocks; see the determinism note above.
void gemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a, int lda,
          const float* b, int ldb, float* c, int ldc, bool accumulate,
          const GemmMask& mask = {}, const GemmEpilogue& epi = {});

// The legacy scalar i-k-j kernel (with its `aik == 0` skip), kept as the
// correctness oracle for tests and the baseline for bench comparisons.
void gemm_reference(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
                    int lda, const float* b, int ldb, float* c, int ldc, bool accumulate);

}  // namespace fedcleanse::tensor
