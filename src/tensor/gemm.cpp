#include "tensor/gemm.h"

#include <algorithm>
#include <cstddef>

#include "common/error.h"
#include "common/threadpool.h"
#include "obs/metrics.h"
#include "tensor/gemm_internal.h"
#include "tensor/workspace.h"

namespace fedcleanse::tensor {

namespace {

using detail::epilogue_cols;
using detail::epilogue_softmax;
using detail::micro_edge;
using detail::micro_full;

// Row blocks only pay for pool dispatch above this many multiply-accumulates
// (m·k·n); smaller products run inline (same threshold as the old matmul).
constexpr std::size_t kParallelFlops = 1u << 20;

constexpr int kStripsPerBlock = (kGemmMC + kGemmMR - 1) / kGemmMR;

inline int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Pack a kc×nr sliver of op(B) columns [j0, j0+n_sub) into bp, zero-padded to
// NR so the microkernel never needs a column edge case. kidx maps packed
// depth p to the stored k index (nullptr → identity starting at k0).
void pack_b_sliver(const float* b, int ldb, bool tb, int k0, int kc, const int* kidx,
                   int j0, int n_sub, float* bp) {
  for (int p = 0; p < kc; ++p) {
    const int kk = kidx != nullptr ? kidx[p] : k0 + p;
    float* dst = bp + static_cast<std::size_t>(p) * kGemmNR;
    int j = 0;
    if (!tb) {
      const float* src = b + static_cast<std::size_t>(kk) * ldb + j0;
      for (; j < n_sub; ++j) dst[j] = src[j];
    } else {
      for (; j < n_sub; ++j) dst[j] = b[static_cast<std::size_t>(j0 + j) * ldb + kk];
    }
    for (; j < kGemmNR; ++j) dst[j] = 0.0f;
  }
}

// Pack an mr-strip of op(A) rows [i0, i0+m_sub) into ap, zero-padded to MR.
void pack_a_strip(const float* a, int lda, bool ta, int k0, int kc, const int* kidx,
                  int i0, int m_sub, float* ap) {
  for (int p = 0; p < kc; ++p) {
    const int kk = kidx != nullptr ? kidx[p] : k0 + p;
    float* dst = ap + static_cast<std::size_t>(p) * kGemmMR;
    int i = 0;
    if (ta) {
      const float* src = a + static_cast<std::size_t>(kk) * lda + i0;
      for (; i < m_sub; ++i) dst[i] = src[i];
    } else {
      for (; i < m_sub; ++i) dst[i] = a[static_cast<std::size_t>(i0 + i) * lda + kk];
    }
    for (; i < kGemmMR; ++i) dst[i] = 0.0f;
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a, int lda,
          const float* b, int ldb, float* c, int ldc, bool accumulate,
          const GemmMask& mask, const GemmEpilogue& epi) {
  if (m <= 0 || n <= 0) return;
  FC_REQUIRE(epi.row_bias == nullptr || !accumulate,
             "gemm row_bias epilogue requires accumulate == false");
  FC_REQUIRE(!epi.softmax || n <= kGemmNC,
             "gemm softmax epilogue requires a row to finish in one column block");

  Workspace& cws = Workspace::tls();
  const Workspace::Mark outer = cws.mark();

  // Compact the contraction dimension when a k mask prunes entries; an
  // all-active mask degenerates to the unmasked fast path.
  const int* kidx = nullptr;
  int keff = std::max(k, 0);
  if (mask.k_active != nullptr && k > 0) {
    int* idx = static_cast<int*>(cws.alloc_bytes(static_cast<std::size_t>(k) * sizeof(int)));
    int cnt = 0;
    for (int p = 0; p < k; ++p) {
      if (mask.k_active[p] != 0) idx[cnt++] = p;
    }
    if (cnt < k) {
      kidx = idx;
      keff = cnt;
    }
  }
  const std::uint8_t* row_active = mask.row_active;
  if (row_active != nullptr &&
      std::all_of(row_active, row_active + m, [](std::uint8_t v) { return v != 0; })) {
    row_active = nullptr;
  }

  if (keff == 0) {
    // Empty contraction contributes nothing; overwrite mode still owns the
    // active rows of C (filled with the row bias, or zero), and the
    // post-accumulation epilogue still applies.
    if (!accumulate) {
      for (int i = 0; i < m; ++i) {
        if (row_active != nullptr && row_active[i] == 0) continue;
        std::fill_n(c + static_cast<std::size_t>(i) * ldc, n,
                    epi.row_bias != nullptr ? epi.row_bias[i] : 0.0f);
      }
    }
    epilogue_cols(c, ldc, 0, m, 0, n, row_active, epi);
    if (epi.softmax) epilogue_softmax(c, ldc, 0, m, n, row_active);
    cws.release(outer);
    return;
  }

  const std::size_t work = static_cast<std::size_t>(m) * static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(keff);
  FC_METRIC(gemm_calls().inc());
  FC_METRIC(gemm_flops().add(2 * static_cast<std::uint64_t>(work)));
  const int n_mblocks = ceil_div(m, kGemmMC);
  const bool parallel = work >= kParallelFlops && n_mblocks > 1;

  for (int jc = 0; jc < n; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, n - jc);
    const int n_slivers = ceil_div(nc, kGemmNR);
    for (int pc = 0, pcn = 0; pc < keff; pc += kGemmKC, ++pcn) {
      const int kc = std::min(kGemmKC, keff - pc);
      const bool acc_block = accumulate || pcn > 0;
      const bool last_kblock = pc + kc == keff;
      // The row bias rides on the first k block's overwrite store; the rest
      // of the epilogue waits for the last block to finish the columns.
      const float* rb = !acc_block ? epi.row_bias : nullptr;
      const int* kslice = kidx != nullptr ? kidx + pc : nullptr;

      // B panel packed once per (jc, pc) on the calling thread; row blocks
      // below only read it.
      const Workspace::Mark bmark = cws.mark();
      float* bp = cws.alloc_floats(static_cast<std::size_t>(n_slivers) * kc * kGemmNR);
      for (int js = 0; js < n_slivers; ++js) {
        pack_b_sliver(b, ldb, trans_b, pc, kc, kslice, jc + js * kGemmNR,
                      std::min(kGemmNR, nc - js * kGemmNR),
                      bp + static_cast<std::size_t>(js) * kc * kGemmNR);
      }

      // Each MC-row block owns its rows of C exclusively and sweeps k in the
      // same order no matter which thread runs it → bit-identical results
      // for every thread count. The epilogue runs inside the block for the
      // same reason: the rows it touches belong to exactly one task.
      auto run_mblock = [&](std::size_t blk) {
        const int i0 = static_cast<int>(blk) * kGemmMC;
        const int mc = std::min(kGemmMC, m - i0);
        const int n_strips = ceil_div(mc, kGemmMR);

        Workspace& ws = Workspace::tls();
        const Workspace::Mark amark = ws.mark();
        float* ap = ws.alloc_floats(static_cast<std::size_t>(n_strips) * kc * kGemmMR);

        bool strip_live[kStripsPerBlock];
        for (int is = 0; is < n_strips; ++is) {
          const int r0 = i0 + is * kGemmMR;
          const int m_sub = std::min(kGemmMR, m - r0);
          bool live = true;
          if (row_active != nullptr) {
            live = false;
            for (int i = 0; i < m_sub; ++i) live |= row_active[r0 + i] != 0;
          }
          strip_live[is] = live;
          if (live) {
            pack_a_strip(a, lda, trans_a, pc, kc, kslice, r0, m_sub,
                         ap + static_cast<std::size_t>(is) * kc * kGemmMR);
          }
        }

        for (int js = 0; js < n_slivers; ++js) {
          const int j0 = jc + js * kGemmNR;
          const int n_sub = std::min(kGemmNR, nc - js * kGemmNR);
          const float* bsl = bp + static_cast<std::size_t>(js) * kc * kGemmNR;
          for (int is = 0; is < n_strips; ++is) {
            if (!strip_live[is]) continue;
            const int r0 = i0 + is * kGemmMR;
            const int m_sub = std::min(kGemmMR, m - r0);
            const float* asl = ap + static_cast<std::size_t>(is) * kc * kGemmMR;
            float* csl = c + static_cast<std::size_t>(r0) * ldc + j0;
            if (m_sub == kGemmMR && n_sub == kGemmNR && row_active == nullptr) {
              if (acc_block) {
                micro_full<true, false>(kc, asl, bsl, csl, ldc);
              } else if (rb != nullptr) {
                micro_full<false, true>(kc, asl, bsl, csl, ldc, rb + r0);
              } else {
                micro_full<false, false>(kc, asl, bsl, csl, ldc);
              }
            } else {
              micro_edge(kc, asl, bsl, csl, ldc, m_sub, n_sub, acc_block,
                         row_active != nullptr ? row_active + r0 : nullptr,
                         rb != nullptr ? rb + r0 : nullptr);
            }
          }
        }
        if (last_kblock) {
          epilogue_cols(c, ldc, i0, mc, jc, nc, row_active, epi);
          if (epi.softmax) epilogue_softmax(c, ldc, i0, mc, n, row_active);
        }
        ws.release(amark);
      };

      if (parallel) {
        common::ambient_parallel_for(static_cast<std::size_t>(n_mblocks), run_mblock);
      } else {
        for (int blk = 0; blk < n_mblocks; ++blk) run_mblock(static_cast<std::size_t>(blk));
      }
      cws.release(bmark);
    }
  }
  cws.release(outer);
}

void gemm_reference(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
                    int lda, const float* b, int ldb, float* c, int ldc, bool accumulate) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (!accumulate) std::fill_n(crow, n, 0.0f);
    for (int p = 0; p < k; ++p) {
      const float aik = trans_a ? a[static_cast<std::size_t>(p) * lda + i]
                                : a[static_cast<std::size_t>(i) * lda + p];
      if (aik == 0.0f) continue;
      if (!trans_b) {
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      } else {
        for (int j = 0; j < n; ++j) crow[j] += aik * b[static_cast<std::size_t>(j) * ldb + p];
      }
    }
  }
}

}  // namespace fedcleanse::tensor
