#include "tensor/workspace.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"

namespace fedcleanse::tensor {

namespace {

constexpr std::size_t kMinChunkBytes = 256 * 1024;

inline std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) / align * align;
}

}  // namespace

Workspace::Chunk::Chunk(std::size_t bytes) {
  raw = std::make_unique<std::byte[]>(bytes + kAlign - 1);
  const auto addr = reinterpret_cast<std::uintptr_t>(raw.get());
  base = raw.get() + (round_up(addr, kAlign) - addr);
  cap = bytes;
}

void* Workspace::alloc_bytes(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1), kAlign);
  // Find a chunk with room, starting at the active one. Tail space skipped
  // here is stranded until release(); in_use_ counts only live allocations,
  // which is exactly what a single coalesced chunk would need.
  while (active_ < chunks_.size() && chunks_[active_].cap - chunks_[active_].used < bytes) {
    ++active_;
  }
  if (active_ == chunks_.size()) {
    const std::size_t chunk_bytes = std::max(bytes, kMinChunkBytes);
    chunks_.emplace_back(chunk_bytes);
    ++chunk_allocs_;
    FC_METRIC(workspace_chunk_allocs().inc());
    FC_METRIC(workspace_chunk_bytes().add(chunk_bytes));
  }
  Chunk& c = chunks_[active_];
  void* p = c.base + c.used;
  c.used += bytes;
  in_use_ += bytes;
  high_water_ = std::max(high_water_, in_use_);
  return p;
}

float* Workspace::alloc_floats(std::size_t n) {
  return static_cast<float*>(alloc_bytes(n * sizeof(float)));
}

void Workspace::release(const Mark& m) {
  FC_REQUIRE(m.chunk <= active_ && m.chunk <= chunks_.size(),
             "Workspace::release with a mark from a different epoch");
  for (std::size_t i = chunks_.size(); i-- > m.chunk + 1;) {
    in_use_ -= chunks_[i].used;
    chunks_[i].used = 0;
  }
  if (m.chunk < chunks_.size()) {
    in_use_ -= chunks_[m.chunk].used - m.used;
    chunks_[m.chunk].used = m.used;
  }
  active_ = m.chunk;
  if (in_use_ == 0 && chunks_.size() > 1) coalesce();
}

void Workspace::coalesce() {
  // Fully released but fragmented: replace every chunk with one sized to the
  // high-water mark, so the next iteration's allocation pattern fits without
  // growing. This is the last heap allocation the arena performs.
  chunks_.clear();
  const std::size_t chunk_bytes = std::max(round_up(high_water_, kAlign), kMinChunkBytes);
  chunks_.emplace_back(chunk_bytes);
  ++chunk_allocs_;
  FC_METRIC(workspace_chunk_allocs().inc());
  FC_METRIC(workspace_chunk_bytes().add(chunk_bytes));
  active_ = 0;
}

std::size_t Workspace::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.cap;
  return total;
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace fedcleanse::tensor
