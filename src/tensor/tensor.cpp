#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace fedcleanse::tensor {

void Shape::validate() const {
  for (int d : dims_) {
    FC_REQUIRE(d > 0, "shape dimensions must be positive, got " + std::to_string(d));
  }
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (int d : dims_) n *= static_cast<std::size_t>(d);
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FC_REQUIRE(data_.size() == shape_.numel(),
             "data size " + std::to_string(data_.size()) + " does not match shape " +
                 shape_.to_string());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, common::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, common::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float& Tensor::at(int i) {
  FC_REQUIRE(shape_.rank() == 1, "at(i) on tensor of shape " + shape_.to_string());
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(int i) const { return const_cast<Tensor*>(this)->at(i); }

float& Tensor::at(int i, int j) {
  FC_REQUIRE(shape_.rank() == 2, "at(i,j) on tensor of shape " + shape_.to_string());
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}
float Tensor::at(int i, int j) const { return const_cast<Tensor*>(this)->at(i, j); }

float& Tensor::at(int i, int j, int k) {
  FC_REQUIRE(shape_.rank() == 3, "at(i,j,k) on tensor of shape " + shape_.to_string());
  return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
}
float Tensor::at(int i, int j, int k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::at(int i, int j, int k, int l) {
  FC_REQUIRE(shape_.rank() == 4, "at(i,j,k,l) on tensor of shape " + shape_.to_string());
  return data_[((static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k) * shape_[3] +
               l];
}
float Tensor::at(int i, int j, int k, int l) const {
  return const_cast<Tensor*>(this)->at(i, j, k, l);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  FC_REQUIRE(new_shape.numel() == shape_.numel(),
             "reshape " + shape_.to_string() + " -> " + new_shape.to_string() +
                 " changes element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw ShapeError(std::string(op) + ": " + shape_.to_string() + " vs " +
                     other.shape_.to_string());
  }
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  check_same_shape(other, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::operator+=(float s) {
  for (auto& x : data_) x += s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  check_same_shape(other, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::mean() const {
  FC_REQUIRE(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  FC_REQUIRE(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  FC_REQUIRE(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

void Tensor::serialize(common::ByteWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(shape_.rank()));
  for (int d : shape_.dims()) w.write_i32(d);
  w.write_f32_vector(data_);
}

Tensor Tensor::deserialize(common::ByteReader& r) {
  std::uint32_t rank = r.read_u32();
  FC_REQUIRE(rank <= 8, "implausible tensor rank in payload");
  std::vector<int> dims(rank);
  for (auto& d : dims) d = r.read_i32();
  std::vector<float> data = r.read_f32_vector();
  return Tensor(Shape(std::move(dims)), std::move(data));
}

Tensor operator+(Tensor a, const Tensor& b) {
  a += b;
  return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
  a -= b;
  return a;
}

Tensor operator*(Tensor a, float s) {
  a *= s;
  return a;
}

}  // namespace fedcleanse::tensor
