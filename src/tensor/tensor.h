// Dense row-major float tensor (NCHW convention for image batches).
//
// This is the numeric substrate for the whole repo: the NN layers, the
// federated averaging math, and the defense algorithms all operate on
// Tensor or on its flat float storage. Deliberately minimal: contiguous
// float32 storage, value semantics, shape-checked arithmetic, no strides,
// no broadcasting beyond scalar ops.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace fedcleanse::tensor {

// Tensor shape: up to a handful of dimensions, all positive.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<int> dims) : dims_(std::move(dims)) { validate(); }

  int rank() const { return static_cast<int>(dims_.size()); }
  int operator[](int i) const { return dims_[static_cast<std::size_t>(i)]; }
  std::size_t numel() const;
  const std::vector<int>& dims() const { return dims_; }
  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }
  std::string to_string() const;

 private:
  void validate() const;
  std::vector<int> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  // I.i.d. N(mean, stddev).
  static Tensor randn(Shape shape, common::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  // I.i.d. U[lo, hi).
  static Tensor rand_uniform(Shape shape, common::Rng& rng, float lo, float hi);

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return std::span<float>(data_); }
  std::span<const float> data() const { return std::span<const float>(data_); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  // Element access. 1-4D overloads with debug-friendly bounds behaviour:
  // index arithmetic is unchecked in release hot loops, but the flat
  // accessors validate.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(int i);
  float at(int i) const;
  float& at(int i, int j);
  float at(int i, int j) const;
  float& at(int i, int j, int k);
  float at(int i, int j, int k) const;
  float& at(int i, int j, int k, int l);
  float at(int i, int j, int k, int l) const;

  // Reinterpret with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  // Elementwise in-place arithmetic (shape-checked).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator*=(float s);
  Tensor& operator+=(float s);

  // `this += scale * other` (axpy); the FedAvg workhorse.
  void add_scaled(const Tensor& other, float scale);
  void fill(float value);

  // Reductions.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  // L2 norm of the flat data.
  float norm() const;

  void serialize(common::ByteWriter& w) const;
  static Tensor deserialize(common::ByteReader& r);

 private:
  void check_same_shape(const Tensor& other, const char* op) const;
  Shape shape_;
  std::vector<float> data_;
};

// Free-function arithmetic returning new tensors.
Tensor operator+(Tensor a, const Tensor& b);
Tensor operator-(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, float s);

}  // namespace fedcleanse::tensor
