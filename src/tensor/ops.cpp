#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/threadpool.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace fedcleanse::tensor {

Tensor matmul(const Tensor& a, const Tensor& b) { return matmul_t(a, false, b, false); }

Tensor matmul_t(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b) {
  FC_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2, "matmul requires 2-D tensors");
  const int m = transpose_a ? a.shape()[1] : a.shape()[0];
  const int k = transpose_a ? a.shape()[0] : a.shape()[1];
  const int k2 = transpose_b ? b.shape()[1] : b.shape()[0];
  const int n = transpose_b ? b.shape()[0] : b.shape()[1];
  FC_REQUIRE(k == k2, "matmul inner dimensions disagree: " + a.shape().to_string() + " x " +
                          b.shape().to_string());

  Tensor c(Shape{m, n});
  gemm(transpose_a, transpose_b, m, n, k, a.data().data(), a.shape()[1], b.data().data(),
       b.shape()[1], c.data().data(), n, /*accumulate=*/false);
  return c;
}

namespace {
inline int conv_out_dim(int in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}
}  // namespace

void im2col(const float* image, int cin, int h, int w, int kh, int kw,
            const Conv2dSpec& spec, int ho, int wo, float* col) {
  float* cp = col;
  for (int ic = 0; ic < cin; ++ic) {
    const float* plane = image + static_cast<std::size_t>(ic) * h * w;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        for (int oy = 0; oy < ho; ++oy) {
          const int iy = oy * spec.stride - spec.padding + ky;
          if (iy < 0 || iy >= h) {
            for (int ox = 0; ox < wo; ++ox) *cp++ = 0.0f;
            continue;
          }
          const float* row = &plane[static_cast<std::size_t>(iy) * w];
          for (int ox = 0; ox < wo; ++ox) {
            const int ix = ox * spec.stride - spec.padding + kx;
            *cp++ = (ix < 0 || ix >= w) ? 0.0f : row[ix];
          }
        }
      }
    }
  }
}

namespace {

struct ConvDims {
  int n, cin, h, w, cout, kh, kw, ho, wo, kdim, pdim;
};

ConvDims conv_dims(const Tensor& input, const Tensor& weight, const Conv2dSpec& spec) {
  FC_REQUIRE(input.shape().rank() == 4, "conv2d input must be [N,C,H,W]");
  FC_REQUIRE(weight.shape().rank() == 4, "conv2d weight must be [O,C,kh,kw]");
  ConvDims d;
  d.n = input.shape()[0];
  d.cin = input.shape()[1];
  d.h = input.shape()[2];
  d.w = input.shape()[3];
  d.cout = weight.shape()[0];
  d.kh = weight.shape()[2];
  d.kw = weight.shape()[3];
  FC_REQUIRE(weight.shape()[1] == d.cin, "conv2d channel mismatch");
  d.ho = conv_out_dim(d.h, d.kh, spec.stride, spec.padding);
  d.wo = conv_out_dim(d.w, d.kw, spec.stride, spec.padding);
  FC_REQUIRE(d.ho > 0 && d.wo > 0, "conv2d output would be empty");
  d.kdim = d.cin * d.kh * d.kw;
  d.pdim = d.ho * d.wo;
  return d;
}

}  // namespace

Tensor conv2d_forward_cached(const Tensor& input, const Tensor& weight, const Tensor& bias,
                             const Conv2dSpec& spec, std::vector<float>& col_cache,
                             const std::uint8_t* channel_active, bool fuse_relu) {
  const ConvDims d = conv_dims(input, weight, spec);
  FC_REQUIRE(bias.shape().rank() == 1 && bias.shape()[0] == d.cout, "conv2d bias mismatch");
  col_cache.resize(static_cast<std::size_t>(d.n) * d.kdim * d.pdim);

  Tensor out(Shape{d.n, d.cout, d.ho, d.wo});
  const auto in = input.data();
  const auto wt = weight.data();
  const auto bs = bias.data();
  auto ov = out.data();
  const GemmMask mask{channel_active, nullptr};

  // Each sample owns a disjoint slice of the column cache and of the output,
  // so the batch dimension parallelizes without reordering any float op.
  common::ambient_parallel_for(static_cast<std::size_t>(d.n), [&](std::size_t sample) {
    const int b = static_cast<int>(sample);
    float* col = &col_cache[static_cast<std::size_t>(b) * d.kdim * d.pdim];
    im2col(&in[static_cast<std::size_t>(b) * d.cin * d.h * d.w], d.cin, d.h, d.w, d.kh, d.kw,
           spec, d.ho, d.wo, col);
    float* osample = &ov[static_cast<std::size_t>(b) * d.cout * d.pdim];
    if (channel_active == nullptr) {
      // out[oc, :] = bias[oc] + weight[oc, :] · col, bias carried in as the
      // GEMM's row_bias epilogue (bit-identical to prefill + accumulate).
      gemm(false, false, d.cout, d.pdim, d.kdim, wt.data(), d.kdim, col, d.pdim, osample,
           d.pdim, /*accumulate=*/false, mask, GemmEpilogue{bs.data(), nullptr, fuse_relu});
    } else {
      // Masked path keeps the explicit prefill: pruned channels are skipped
      // by the row mask (including the relu pass) and stay at the exact zero
      // written here.
      for (int oc = 0; oc < d.cout; ++oc) {
        std::fill_n(osample + static_cast<std::size_t>(oc) * d.pdim, d.pdim,
                    channel_active[oc] != 0 ? bs[oc] : 0.0f);
      }
      gemm(false, false, d.cout, d.pdim, d.kdim, wt.data(), d.kdim, col, d.pdim, osample,
           d.pdim, /*accumulate=*/true, mask, GemmEpilogue{nullptr, nullptr, fuse_relu});
    }
  });
  return out;
}

Tensor conv2d_forward_quant(const Tensor& input, const Tensor& weight, const Tensor& bias,
                            const Conv2dSpec& spec, std::vector<float>& col_cache,
                            ComputeKernel kernel, bool fuse_relu,
                            const std::uint8_t* channel_active) {
  const ConvDims d = conv_dims(input, weight, spec);
  if (kernel == ComputeKernel::kF32 || d.pdim > kGemmNC) {
    return conv2d_forward_cached(input, weight, bias, spec, col_cache, channel_active,
                                 fuse_relu);
  }
  FC_REQUIRE(bias.shape().rank() == 1 && bias.shape()[0] == d.cout, "conv2d bias mismatch");
  col_cache.resize(static_cast<std::size_t>(d.n) * d.kdim * d.pdim);

  Tensor out(Shape{d.n, d.cout, d.ho, d.wo});
  const auto in = input.data();
  const auto wt = weight.data();
  const auto bs = bias.data();
  auto ov = out.data();
  const GemmEpilogue epi{bs.data(), nullptr, fuse_relu};

  // Weights quantize/convert once per call and are shared read-only by every
  // sample; the quantized GEMMs are serial, so the batch loop provides the
  // parallelism (disjoint outputs, deterministic per-sample float sequences).
  if (kernel == ComputeKernel::kInt8) {
    const PackedInt8A pa = pack_a_int8(wt.data(), d.kdim, d.cout, d.kdim,
                                       /*per_channel=*/true);
    common::ambient_parallel_for(static_cast<std::size_t>(d.n), [&](std::size_t sample) {
      const int b = static_cast<int>(sample);
      float* col = &col_cache[static_cast<std::size_t>(b) * d.kdim * d.pdim];
      im2col(&in[static_cast<std::size_t>(b) * d.cin * d.h * d.w], d.cin, d.h, d.w, d.kh,
             d.kw, spec, d.ho, d.wo, col);
      gemm_s8(pa, d.pdim, col, d.pdim, &ov[static_cast<std::size_t>(b) * d.cout * d.pdim],
              d.pdim, /*accumulate=*/false, epi);
    });
    return out;
  }

  std::vector<std::uint16_t> wq(static_cast<std::size_t>(d.cout) * d.kdim);
  f32_to_f16_n(wt.data(), wq.size(), wq.data());
  common::ambient_parallel_for(static_cast<std::size_t>(d.n), [&](std::size_t sample) {
    const int b = static_cast<int>(sample);
    float* col = &col_cache[static_cast<std::size_t>(b) * d.kdim * d.pdim];
    im2col(&in[static_cast<std::size_t>(b) * d.cin * d.h * d.w], d.cin, d.h, d.w, d.kh, d.kw,
           spec, d.ho, d.wo, col);
    Workspace& ws = Workspace::tls();
    const Workspace::Mark mark = ws.mark();
    const std::size_t col_elems = static_cast<std::size_t>(d.kdim) * d.pdim;
    auto* colq = static_cast<std::uint16_t*>(ws.alloc_bytes(col_elems * sizeof(std::uint16_t)));
    f32_to_f16_n(col, col_elems, colq);
    gemm_f16(d.cout, d.pdim, d.kdim, wq.data(), d.kdim, colq, d.pdim,
             &ov[static_cast<std::size_t>(b) * d.cout * d.pdim], d.pdim,
             /*accumulate=*/false, epi);
    ws.release(mark);
  });
  return out;
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec) {
  std::vector<float> scratch;
  return conv2d_forward_cached(input, weight, bias, spec, scratch);
}

namespace {

Conv2dGrads conv2d_backward_impl(const Tensor& input, const Tensor& weight,
                                 const Tensor& grad_output, const Conv2dSpec& spec,
                                 const float* col_cache,
                                 const std::uint8_t* channel_active) {
  const ConvDims d = conv_dims(input, weight, spec);
  FC_REQUIRE(grad_output.shape()[0] == d.n && grad_output.shape()[1] == d.cout,
             "conv2d_backward grad_output shape mismatch");

  Conv2dGrads g{Tensor(input.shape()), Tensor(weight.shape()), Tensor(Shape{d.cout})};
  const auto wt = weight.data();
  const auto go = grad_output.data();
  auto gi = g.grad_input.data();
  auto gw = g.grad_weight.data();
  auto gb = g.grad_bias.data();

  // grad_input is disjoint per sample, but grad_weight/grad_bias are sums
  // over the batch. Each sample writes its contribution into its own slot of
  // a workspace scratch area; a serial in-order reduction below then produces
  // the exact float sequence of the serial kernel, independent of thread
  // count. The scratch lives on the calling thread's arena and is released
  // (for byte-identical reuse next call) before returning.
  const std::size_t wslot = static_cast<std::size_t>(d.cout) * d.kdim;
  Workspace& cws = Workspace::tls();
  const Workspace::Mark outer = cws.mark();
  float* gw_partial = cws.alloc_floats(static_cast<std::size_t>(d.n) * wslot);
  float* gb_partial = cws.alloc_floats(static_cast<std::size_t>(d.n) * d.cout);
  const GemmMask row_mask{channel_active, nullptr};
  const GemmMask contraction_mask{nullptr, channel_active};

  common::ambient_parallel_for(static_cast<std::size_t>(d.n), [&](std::size_t sample) {
    const int b = static_cast<int>(sample);
    const float* col = &col_cache[static_cast<std::size_t>(b) * d.kdim * d.pdim];
    const float* gsample = &go[static_cast<std::size_t>(b) * d.cout * d.pdim];
    float* gwp = &gw_partial[static_cast<std::size_t>(b) * wslot];
    float* gbp = &gb_partial[static_cast<std::size_t>(b) * d.cout];

    for (int oc = 0; oc < d.cout; ++oc) {
      if (channel_active != nullptr && channel_active[oc] == 0) {
        // Pruned channel: exact-zero gradient rows, skipped in the GEMMs.
        gbp[oc] = 0.0f;
        std::fill_n(gwp + static_cast<std::size_t>(oc) * d.kdim, d.kdim, 0.0f);
        continue;
      }
      const float* grow = gsample + static_cast<std::size_t>(oc) * d.pdim;
      float gbacc = 0.0f;
      for (int p = 0; p < d.pdim; ++p) gbacc += grow[p];
      gbp[oc] = gbacc;
    }
    // gw[oc, k] = Σ_p grad[oc, p] · col[k, p]  (B read transposed).
    gemm(false, true, d.cout, d.kdim, d.pdim, gsample, d.pdim, col, d.pdim, gwp, d.kdim,
         /*accumulate=*/false, row_mask);

    // gcol[k, p] = Σ_oc w[oc, k] · grad[oc, p]  (A read transposed; pruned
    // channels drop out of the contraction).
    Workspace& ws = Workspace::tls();
    const Workspace::Mark smark = ws.mark();
    float* gcol = ws.alloc_floats(static_cast<std::size_t>(d.kdim) * d.pdim);
    gemm(true, false, d.kdim, d.pdim, d.cout, wt.data(), d.kdim, gsample, d.pdim, gcol,
         d.pdim, /*accumulate=*/false, contraction_mask);

    // col2im scatter of gcol into grad_input.
    const float* gcp = gcol;
    float* gimage = &gi[static_cast<std::size_t>(b) * d.cin * d.h * d.w];
    for (int ic = 0; ic < d.cin; ++ic) {
      float* plane = gimage + static_cast<std::size_t>(ic) * d.h * d.w;
      for (int ky = 0; ky < d.kh; ++ky) {
        for (int kx = 0; kx < d.kw; ++kx) {
          for (int oy = 0; oy < d.ho; ++oy) {
            const int iy = oy * spec.stride - spec.padding + ky;
            if (iy < 0 || iy >= d.h) {
              gcp += d.wo;
              continue;
            }
            float* row = &plane[static_cast<std::size_t>(iy) * d.w];
            for (int ox = 0; ox < d.wo; ++ox) {
              const int ix = ox * spec.stride - spec.padding + kx;
              if (ix >= 0 && ix < d.w) row[ix] += *gcp;
              ++gcp;
            }
          }
        }
      }
    }
    ws.release(smark);
  });

  // Ordered reduction: batch order, never thread-completion order.
  for (int b = 0; b < d.n; ++b) {
    const float* gwp = &gw_partial[static_cast<std::size_t>(b) * wslot];
    for (std::size_t i = 0; i < wslot; ++i) gw[i] += gwp[i];
    const float* gbp = &gb_partial[static_cast<std::size_t>(b) * d.cout];
    for (int oc = 0; oc < d.cout; ++oc) gb[oc] += gbp[oc];
  }
  cws.release(outer);
  return g;
}

}  // namespace

Conv2dGrads conv2d_backward_cached(const Tensor& input, const Tensor& weight,
                                   const Tensor& grad_output, const Conv2dSpec& spec,
                                   const std::vector<float>& col_cache,
                                   const std::uint8_t* channel_active) {
  const ConvDims d = conv_dims(input, weight, spec);
  FC_REQUIRE(col_cache.size() == static_cast<std::size_t>(d.n) * d.kdim * d.pdim,
             "conv2d_backward column cache has the wrong size");
  return conv2d_backward_impl(input, weight, grad_output, spec, col_cache.data(),
                              channel_active);
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& grad_output, const Conv2dSpec& spec) {
  const ConvDims d = conv_dims(input, weight, spec);
  Workspace& ws = Workspace::tls();
  const Workspace::Mark mk = ws.mark();
  float* col = ws.alloc_floats(static_cast<std::size_t>(d.n) * d.kdim * d.pdim);
  const auto in = input.data();
  common::ambient_parallel_for(static_cast<std::size_t>(d.n), [&](std::size_t b) {
    im2col(&in[b * d.cin * d.h * d.w], d.cin, d.h, d.w, d.kh, d.kw, spec, d.ho, d.wo,
           &col[b * d.kdim * d.pdim]);
  });
  Conv2dGrads g = conv2d_backward_impl(input, weight, grad_output, spec, col, nullptr);
  ws.release(mk);
  return g;
}

MaxPoolResult maxpool2d_forward(const Tensor& input, int kernel, int stride) {
  FC_REQUIRE(input.shape().rank() == 4, "maxpool input must be [N,C,H,W]");
  FC_REQUIRE(kernel > 0 && stride > 0, "maxpool kernel/stride must be positive");
  const int n = input.shape()[0], c = input.shape()[1], h = input.shape()[2],
            w = input.shape()[3];
  const int ho = (h - kernel) / stride + 1;
  const int wo = (w - kernel) / stride + 1;
  FC_REQUIRE(ho > 0 && wo > 0, "maxpool output would be empty");

  MaxPoolResult result{Tensor(Shape{n, c, ho, wo}), {}};
  result.argmax.resize(result.output.size());
  const auto in = input.data();
  auto out = result.output.data();

  std::size_t oi = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride + ky;
            const std::size_t row = ((static_cast<std::size_t>(b) * c + ch) * h + iy) * w;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride + kx;
              const float v = in[row + ix];
              if (v > best) {
                best = v;
                best_idx = static_cast<std::int64_t>(row + ix);
              }
            }
          }
          out[oi] = best;
          result.argmax[oi] = best_idx;
        }
      }
    }
  }
  return result;
}

Tensor maxpool2d_backward(const Shape& input_shape, const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_output) {
  FC_REQUIRE(argmax.size() == grad_output.size(), "maxpool argmax/grad size mismatch");
  Tensor grad_in(input_shape);
  auto gi = grad_in.data();
  const auto go = grad_output.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    gi[static_cast<std::size_t>(argmax[i])] += go[i];
  }
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  FC_REQUIRE(logits.shape().rank() == 2, "softmax_rows requires [N,K]");
  const int n = logits.shape()[0], k = logits.shape()[1];
  Tensor out(logits.shape());
  const auto in = logits.data();
  auto ov = out.data();
  for (int i = 0; i < n; ++i) {
    const float* row = &in[static_cast<std::size_t>(i) * k];
    float* orow = &ov[static_cast<std::size_t>(i) * k];
    float mx = row[0];
    for (int j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    for (int j = 0; j < k; ++j) orow[j] /= denom;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& t) {
  FC_REQUIRE(t.shape().rank() == 2, "argmax_rows requires [N,K]");
  const int n = t.shape()[0], k = t.shape()[1];
  std::vector<int> out(static_cast<std::size_t>(n));
  const auto v = t.data();
  for (int i = 0; i < n; ++i) {
    const float* row = &v[static_cast<std::size_t>(i) * k];
    int best = 0;
    for (int j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

std::pair<double, double> mean_stddev(std::span<const float> values) {
  FC_REQUIRE(!values.empty(), "mean_stddev of empty span");
  double mean = 0.0;
  for (float v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (float v : values) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(values.size());
  return {mean, std::sqrt(var)};
}

}  // namespace fedcleanse::tensor
