// Per-thread scratch arena for the tensor kernels.
//
// A Workspace is a chunked bump allocator with strict stack discipline:
// callers take a Mark, allocate any number of aligned buffers, and release
// back to the mark when done. Nested mark/release pairs (conv calls gemm,
// gemm packs panels) compose naturally. Nothing is freed on release — the
// memory is reused verbatim by the next identical allocation pattern, so a
// steady-state training loop performs zero heap allocations through the
// arena after its first iteration.
//
// Each thread (main or pool worker) owns its own arena via Workspace::tls();
// buffers therefore never cross threads unless the caller explicitly hands a
// pointer to a parallel_for body (allowed: disjoint writes only, and the
// allocating frame outlives the parallel region).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace fedcleanse::tensor {

class Workspace {
 public:
  // All allocations are aligned to kAlign bytes (cache line / AVX-512 lane).
  static constexpr std::size_t kAlign = 64;

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Aligned, uninitialized storage for `n` floats. Pointers stay valid until
  // the enclosing mark is released (growth appends chunks, never moves them).
  float* alloc_floats(std::size_t n);
  // Aligned raw storage, for index buffers and the like.
  void* alloc_bytes(std::size_t bytes);

  Mark mark() const { return Mark{active_, active_ < chunks_.size() ? chunks_[active_].used : 0}; }
  void release(const Mark& m);

  // Monotonic count of chunks ever malloc'd — the observable for the
  // "allocation-free after warmup" property tests.
  std::size_t chunk_allocs() const { return chunk_allocs_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t high_water_bytes() const { return high_water_; }
  std::size_t capacity_bytes() const;

  // The calling thread's arena (pool workers each get their own).
  static Workspace& tls();

 private:
  struct Chunk {
    explicit Chunk(std::size_t bytes);
    std::unique_ptr<std::byte[]> raw;  // over-allocated for manual alignment
    std::byte* base = nullptr;         // kAlign-aligned start
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  // Merge a multi-chunk arena into one chunk sized to the high-water mark.
  // Only legal (and only called) when fully released.
  void coalesce();

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;       // chunk currently being bumped
  std::size_t in_use_ = 0;       // total bytes currently allocated
  std::size_t high_water_ = 0;   // max of in_use_ over the arena's lifetime
  std::size_t chunk_allocs_ = 0;
};

}  // namespace fedcleanse::tensor
