// int8 and fp16 GEMM drivers (DESIGN.md §16).
//
// The int8 path reuses the fp32 kernel's blocking (KC-depth panels, MR-row
// strips, NR-column slivers) but contracts int16 *pairs*: both AVX2's
// vpmaddwd and AVX-VNNI's vpdpwssd multiply two adjacent int16 lanes and
// add (into) an int32 lane, so depth is packed two-at-a-time. With |q| ≤ 127
// a pair-sum peaks at 32 258 and a KC=256 sweep at ~4.2e6 — far inside
// int32, so accumulation within a k block is exact; blocks fold into fp32 C.
//
// A (the weight operand) is quantized and packed once per scan via
// pack_a_int8; B (activations) quantizes per tensor with the conversion
// fused into its pack step (float load → scale → cvtps2dq → int16 merge),
// which is what keeps the end-to-end ratio above 2× — a separate scalar
// quantization pass costs more than the GEMM saves.
//
// The SIMD kernels are compiled with function-level target attributes and
// picked once at startup via __builtin_cpu_supports, so the fast paths
// exist regardless of the translation unit's -march baseline: vpdpwssd
// where AVX-VNNI is available, vpmaddwd+vpaddd on plain AVX2, and a
// portable scalar kernel (same exact int32 sums) everywhere else.
#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "tensor/gemm_internal.h"
#include "tensor/workspace.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define FC_QUANT_X86 1
#include <immintrin.h>
#endif

namespace fedcleanse::tensor {

namespace {

inline int ceil_div(int a, int b) { return (a + b - 1) / b; }

// int16 entries per packed depth-pair row of a strip / sliver.
constexpr int kPairA = kGemmMR * 2;
constexpr int kPairB = kGemmNR * 2;
constexpr int kPairsPerBlock = (kGemmKC + 1) / 2;

// int32 accumulator tile produced by the int8 microkernels.
using AccTile = std::int32_t[kGemmMR * kGemmNR];

// Portable kernel computing the same exact int32 pair sums as the SIMD
// variants — the dispatch fallback and the semantics reference.
void micro_s8_portable(int pairs, const std::int16_t* __restrict ap,
                       const std::int16_t* __restrict bp, std::int32_t* __restrict acc) {
  std::int32_t t[kGemmMR][kGemmNR] = {};
  for (int p = 0; p < pairs; ++p) {
    const std::int16_t* arow = ap + static_cast<std::size_t>(p) * kPairA;
    const std::int16_t* brow = bp + static_cast<std::size_t>(p) * kPairB;
    for (int i = 0; i < kGemmMR; ++i) {
      const std::int32_t x0 = arow[2 * i], x1 = arow[2 * i + 1];
      for (int j = 0; j < kGemmNR; ++j) {
        t[i][j] += x0 * brow[2 * j] + x1 * brow[2 * j + 1];
      }
    }
  }
  std::memcpy(acc, t, sizeof(t));
}

#if defined(FC_QUANT_X86)

inline std::int32_t load_i32(const std::int16_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// One microkernel body, instantiated for both dot-product instructions. The
// 8 accumulators (4 rows × 2 halves of NR=16) plus a broadcast and 2 B
// vectors stay in YMM registers across the whole depth sweep; depth is
// unrolled by two packed pairs to cover the broadcast latency.
#define FC_S8_MICRO_STEP(DOT, AOFF, BL, BH)                          \
  av = _mm256_set1_epi32(load_i32(arow + (AOFF)));                   \
  a0l = DOT(a0l, av, BL);                                            \
  a0h = DOT(a0h, av, BH);                                            \
  av = _mm256_set1_epi32(load_i32(arow + (AOFF) + 2));               \
  a1l = DOT(a1l, av, BL);                                            \
  a1h = DOT(a1h, av, BH);                                            \
  av = _mm256_set1_epi32(load_i32(arow + (AOFF) + 4));               \
  a2l = DOT(a2l, av, BL);                                            \
  a2h = DOT(a2h, av, BH);                                            \
  av = _mm256_set1_epi32(load_i32(arow + (AOFF) + 6));               \
  a3l = DOT(a3l, av, BL);                                            \
  a3h = DOT(a3h, av, BH);

#define FC_S8_MICRO_BODY(DOT)                                                        \
  __m256i a0l = _mm256_setzero_si256(), a0h = a0l, a1l = a0l, a1h = a0l, a2l = a0l,  \
          a2h = a0l, a3l = a0l, a3h = a0l;                                           \
  __m256i av;                                                                        \
  int p = 0;                                                                         \
  for (; p + 2 <= pairs; p += 2) {                                                   \
    const std::int16_t* arow = ap + static_cast<std::size_t>(p) * kPairA;            \
    const std::int16_t* brow = bp + static_cast<std::size_t>(p) * kPairB;            \
    __m256i bl = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow));         \
    __m256i bh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 16));    \
    FC_S8_MICRO_STEP(DOT, 0, bl, bh)                                                 \
    bl = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 32));            \
    bh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 48));            \
    FC_S8_MICRO_STEP(DOT, 8, bl, bh)                                                 \
  }                                                                                  \
  for (; p < pairs; ++p) {                                                           \
    const std::int16_t* arow = ap + static_cast<std::size_t>(p) * kPairA;            \
    const std::int16_t* brow = bp + static_cast<std::size_t>(p) * kPairB;            \
    const __m256i bl = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow));   \
    const __m256i bh =                                                               \
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + 16));             \
    FC_S8_MICRO_STEP(DOT, 0, bl, bh)                                                 \
  }                                                                                  \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0), a0l);                     \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 8), a0h);                     \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 16), a1l);                    \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 24), a1h);                    \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 32), a2l);                    \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 40), a2h);                    \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 48), a3l);                    \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 56), a3h);

#define FC_DOT_MADD(acc, a, b) _mm256_add_epi32(acc, _mm256_madd_epi16(a, b))
#define FC_DOT_VNNI(acc, a, b) _mm256_dpwssd_avx_epi32(acc, a, b)

__attribute__((target("avx2"))) void micro_s8_avx2(int pairs,
                                                   const std::int16_t* __restrict ap,
                                                   const std::int16_t* __restrict bp,
                                                   std::int32_t* __restrict acc) {
  FC_S8_MICRO_BODY(FC_DOT_MADD)
}

__attribute__((target("avxvnni"))) void micro_s8_vnni(int pairs,
                                                      const std::int16_t* __restrict ap,
                                                      const std::int16_t* __restrict bp,
                                                      std::int32_t* __restrict acc) {
  FC_S8_MICRO_BODY(FC_DOT_VNNI)
}

// Full-width (n_sub == NR) fused quantize+pack of one B sliver: float load,
// scale, cvtps2dq (round-to-nearest-even, same as std::rintf), and a merge
// of two depths into each 32-bit lane.
__attribute__((target("avx2"))) void pack_b_q8_full_avx2(const float* b, int ldb,
                                                         float binv, int k0, int kc,
                                                         int j0, std::int16_t* bp) {
  const int pairs = (kc + 1) / 2;
  const __m256 vinv = _mm256_set1_ps(binv);
  const __m256i mask16 = _mm256_set1_epi32(0xFFFF);
  for (int p = 0; p < pairs; ++p) {
    const float* r0 = b + static_cast<std::size_t>(k0 + 2 * p) * ldb + j0;
    const bool has2 = 2 * p + 1 < kc;
    const float* r1 =
        has2 ? b + static_cast<std::size_t>(k0 + 2 * p + 1) * ldb + j0 : nullptr;
    std::int16_t* dst = bp + static_cast<std::size_t>(p) * kPairB;
    for (int half = 0; half < 2; ++half) {
      const __m256i lo =
          _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(r0 + 8 * half), vinv));
      const __m256i hi =
          has2 ? _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(r1 + 8 * half), vinv))
               : _mm256_setzero_si256();
      const __m256i w =
          _mm256_or_si256(_mm256_slli_epi32(hi, 16), _mm256_and_si256(lo, mask16));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16 * half), w);
    }
  }
}

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }
bool cpu_has_avxvnni() { return __builtin_cpu_supports("avxvnni"); }

#else

bool cpu_has_avx2() { return false; }
bool cpu_has_avxvnni() { return false; }

#endif  // FC_QUANT_X86

using MicroS8Fn = void (*)(int, const std::int16_t*, const std::int16_t*, std::int32_t*);

MicroS8Fn select_micro_s8() {
#if defined(FC_QUANT_X86)
  if (cpu_has_avxvnni()) return micro_s8_vnni;
  if (cpu_has_avx2()) return micro_s8_avx2;
#endif
  return micro_s8_portable;
}

}  // namespace

const char* int8_dispatch_name() {
  if (cpu_has_avxvnni()) return "avx-vnni";
  if (cpu_has_avx2()) return "avx2";
  return "scalar";
}

namespace {

// Fused quantize+pack of one B sliver: reads kc float rows of n_sub columns,
// writes packed int16 depth-pairs zero-padded to NR columns and a whole
// trailing pair.
void pack_b_q8(const float* b, int ldb, float binv, int k0, int kc, int j0, int n_sub,
               std::int16_t* bp) {
  static const bool have_avx2 = cpu_has_avx2();
#if defined(FC_QUANT_X86)
  if (have_avx2 && n_sub == kGemmNR) {
    pack_b_q8_full_avx2(b, ldb, binv, k0, kc, j0, bp);
    return;
  }
#else
  (void)have_avx2;
#endif
  const int pairs = (kc + 1) / 2;
  for (int p = 0; p < pairs; ++p) {
    const float* r0 = b + static_cast<std::size_t>(k0 + 2 * p) * ldb + j0;
    const float* r1 = 2 * p + 1 < kc
                          ? b + static_cast<std::size_t>(k0 + 2 * p + 1) * ldb + j0
                          : nullptr;
    std::int16_t* dst = bp + static_cast<std::size_t>(p) * kPairB;
    int j = 0;
    for (; j < n_sub; ++j) {
      dst[2 * j] = static_cast<std::int16_t>(static_cast<std::int32_t>(std::rintf(r0[j] * binv)));
      dst[2 * j + 1] =
          r1 != nullptr
              ? static_cast<std::int16_t>(static_cast<std::int32_t>(std::rintf(r1[j] * binv)))
              : 0;
    }
    for (; j < kGemmNR; ++j) {
      dst[2 * j] = 0;
      dst[2 * j + 1] = 0;
    }
  }
}

// Dequantize an int32 accumulator tile into C: c = (float)acc · (sa[i]·sb).
void store_tile_s8(const std::int32_t* acc, float* c, int ldc, int m_sub, int n_sub,
                   bool accumulate, const float* sa, float sb) {
  for (int i = 0; i < m_sub; ++i) {
    const float s = sa[i] * sb;
    const std::int32_t* arow = acc + static_cast<std::size_t>(i) * kGemmNR;
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (accumulate) {
      for (int j = 0; j < n_sub; ++j) crow[j] += static_cast<float>(arow[j]) * s;
    } else {
      for (int j = 0; j < n_sub; ++j) crow[j] = static_cast<float>(arow[j]) * s;
    }
  }
}

void add_row_bias(float* c, int ldc, int m, int n, const float* rb) {
  for (int i = 0; i < m; ++i) {
    const float bi = rb[i];
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) crow[j] += bi;
  }
}

// The whole epilogue runs as a post-pass here (the quantized paths carry no
// bitwise-identity contract, so there is nothing to stage block-by-block).
void apply_epilogue(float* c, int ldc, int m, int n, const GemmEpilogue& epi) {
  if (epi.row_bias != nullptr) add_row_bias(c, ldc, m, n, epi.row_bias);
  detail::epilogue_cols(c, ldc, 0, m, 0, n, nullptr, epi);
  if (epi.softmax) detail::epilogue_softmax(c, ldc, 0, m, n, nullptr);
}

// fp16 packs: convert to fp32 on the way into the panel buffers, then run
// the shared fp32 register tile — storage is binary16, arithmetic is fp32.
void pack_b_sliver_f16(const std::uint16_t* b, int ldb, int k0, int kc, int j0,
                       int n_sub, float* bp) {
  for (int p = 0; p < kc; ++p) {
    const std::uint16_t* src = b + static_cast<std::size_t>(k0 + p) * ldb + j0;
    float* dst = bp + static_cast<std::size_t>(p) * kGemmNR;
    f16_to_f32_n(src, static_cast<std::size_t>(n_sub), dst);
    for (int j = n_sub; j < kGemmNR; ++j) dst[j] = 0.0f;
  }
}

void pack_a_strip_f16(const std::uint16_t* a, int lda, int k0, int kc, int i0, int m_sub,
                      float* ap) {
  for (int p = 0; p < kc; ++p) {
    float* dst = ap + static_cast<std::size_t>(p) * kGemmMR;
    int i = 0;
    for (; i < m_sub; ++i) dst[i] = f16_to_f32(a[static_cast<std::size_t>(i0 + i) * lda + k0 + p]);
    for (; i < kGemmMR; ++i) dst[i] = 0.0f;
  }
}

}  // namespace

PackedInt8A pack_a_int8(const float* a, int lda, int m, int k, bool per_channel) {
  FC_REQUIRE(m > 0 && k > 0, "pack_a_int8 requires a non-empty matrix");
  PackedInt8A pa;
  pa.m = m;
  pa.k = k;
  pa.kc_blocks = ceil_div(k, kGemmKC);
  const int n_strips = ceil_div(m, kGemmMR);
  pa.strip_stride = static_cast<std::size_t>(kPairsPerBlock) * kPairA;
  pa.block_stride = static_cast<std::size_t>(n_strips) * pa.strip_stride;

  pa.scales.assign(static_cast<std::size_t>(m), 0.0f);
  std::vector<std::int8_t> aq(static_cast<std::size_t>(m) * k);
  float tensor_scale = 1.0f;
  if (!per_channel) {
    float mx = 0.0f;
    for (int i = 0; i < m; ++i) {
      mx = std::max(mx, max_abs(a + static_cast<std::size_t>(i) * lda,
                                static_cast<std::size_t>(k)));
    }
    tensor_scale = int8_scale(mx);
  }
  for (int i = 0; i < m; ++i) {
    const float* row = a + static_cast<std::size_t>(i) * lda;
    const float scale =
        per_channel ? int8_scale(max_abs(row, static_cast<std::size_t>(k))) : tensor_scale;
    pa.scales[static_cast<std::size_t>(i)] = scale;
    quantize_s8(row, static_cast<std::size_t>(k), scale,
                aq.data() + static_cast<std::size_t>(i) * k);
  }

  pa.data.assign(static_cast<std::size_t>(pa.kc_blocks) * pa.block_stride, 0);
  for (int pc = 0, blk = 0; pc < k; pc += kGemmKC, ++blk) {
    const int kc = std::min(kGemmKC, k - pc);
    const int pairs = (kc + 1) / 2;
    for (int is = 0; is < n_strips; ++is) {
      const int i0 = is * kGemmMR;
      const int m_sub = std::min(kGemmMR, m - i0);
      std::int16_t* dst0 = pa.data.data() + static_cast<std::size_t>(blk) * pa.block_stride +
                           static_cast<std::size_t>(is) * pa.strip_stride;
      for (int p = 0; p < pairs; ++p) {
        std::int16_t* dst = dst0 + static_cast<std::size_t>(p) * kPairA;
        for (int i = 0; i < m_sub; ++i) {
          dst[2 * i] = aq[static_cast<std::size_t>(i0 + i) * k + pc + 2 * p];
          dst[2 * i + 1] =
              2 * p + 1 < kc ? aq[static_cast<std::size_t>(i0 + i) * k + pc + 2 * p + 1] : 0;
        }
      }
    }
  }
  return pa;
}

void gemm_s8(const PackedInt8A& pa, int n, const float* b, int ldb, float* c, int ldc,
             bool accumulate, const GemmEpilogue& epi) {
  static const MicroS8Fn micro = select_micro_s8();
  const int m = pa.m, k = pa.k;
  if (m <= 0 || n <= 0) return;
  FC_REQUIRE(n <= kGemmNC, "gemm_s8 requires n <= kGemmNC");
  FC_REQUIRE(epi.row_bias == nullptr || !accumulate,
             "gemm_s8 row_bias epilogue requires accumulate == false");
  FC_METRIC(gemm_calls().inc());
  FC_METRIC(gemm_flops().add(2 * static_cast<std::uint64_t>(m) * n * k));

  // Per-tensor activation scale over the k×n view of B.
  float bmax = 0.0f;
  for (int p = 0; p < k; ++p) {
    bmax = std::max(bmax, max_abs(b + static_cast<std::size_t>(p) * ldb,
                                  static_cast<std::size_t>(n)));
  }
  const float sb = int8_scale(bmax);
  const float binv = bmax > 0.0f ? 1.0f / sb : 0.0f;

  Workspace& ws = Workspace::tls();
  const Workspace::Mark mark = ws.mark();
  const int n_slivers = ceil_div(n, kGemmNR);
  const std::size_t sliver_stride = static_cast<std::size_t>(kPairsPerBlock) * kPairB;
  auto* bp = static_cast<std::int16_t*>(
      ws.alloc_bytes(static_cast<std::size_t>(n_slivers) * sliver_stride * sizeof(std::int16_t)));

  const int n_strips = ceil_div(m, kGemmMR);
  for (int pc = 0, blk = 0; pc < k; pc += kGemmKC, ++blk) {
    const int kc = std::min(kGemmKC, k - pc);
    const int pairs = (kc + 1) / 2;
    const bool acc_block = accumulate || blk > 0;
    for (int js = 0; js < n_slivers; ++js) {
      pack_b_q8(b, ldb, binv, pc, kc, js * kGemmNR, std::min(kGemmNR, n - js * kGemmNR),
                bp + static_cast<std::size_t>(js) * sliver_stride);
    }
    const std::int16_t* ablk = pa.data.data() + static_cast<std::size_t>(blk) * pa.block_stride;
    for (int js = 0; js < n_slivers; ++js) {
      const int j0 = js * kGemmNR;
      const int n_sub = std::min(kGemmNR, n - j0);
      const std::int16_t* bsl = bp + static_cast<std::size_t>(js) * sliver_stride;
      for (int is = 0; is < n_strips; ++is) {
        const int r0 = is * kGemmMR;
        const int m_sub = std::min(kGemmMR, m - r0);
        alignas(32) AccTile acc;
        micro(pairs, ablk + static_cast<std::size_t>(is) * pa.strip_stride, bsl, acc);
        store_tile_s8(acc, c + static_cast<std::size_t>(r0) * ldc + j0, ldc, m_sub, n_sub,
                      acc_block, pa.scales.data() + r0, sb);
      }
    }
  }
  ws.release(mark);
  apply_epilogue(c, ldc, m, n, epi);
}

void gemm_f16(int m, int n, int k, const std::uint16_t* a, int lda,
              const std::uint16_t* b, int ldb, float* c, int ldc, bool accumulate,
              const GemmEpilogue& epi) {
  if (m <= 0 || n <= 0) return;
  FC_REQUIRE(n <= kGemmNC, "gemm_f16 requires n <= kGemmNC");
  FC_REQUIRE(epi.row_bias == nullptr || !accumulate,
             "gemm_f16 row_bias epilogue requires accumulate == false");
  if (k <= 0) {
    if (!accumulate) {
      for (int i = 0; i < m; ++i) std::fill_n(c + static_cast<std::size_t>(i) * ldc, n, 0.0f);
    }
    apply_epilogue(c, ldc, m, n, epi);
    return;
  }
  FC_METRIC(gemm_calls().inc());
  FC_METRIC(gemm_flops().add(2 * static_cast<std::uint64_t>(m) * n * k));

  Workspace& ws = Workspace::tls();
  const Workspace::Mark mark = ws.mark();
  const int n_slivers = ceil_div(n, kGemmNR);
  const int n_strips = ceil_div(m, kGemmMR);
  float* bp = ws.alloc_floats(static_cast<std::size_t>(n_slivers) * kGemmKC * kGemmNR);
  float* ap = ws.alloc_floats(static_cast<std::size_t>(kGemmKC) * kGemmMR);

  for (int pc = 0, blk = 0; pc < k; pc += kGemmKC, ++blk) {
    const int kc = std::min(kGemmKC, k - pc);
    const bool acc_block = accumulate || blk > 0;
    for (int js = 0; js < n_slivers; ++js) {
      pack_b_sliver_f16(b, ldb, pc, kc, js * kGemmNR, std::min(kGemmNR, n - js * kGemmNR),
                        bp + static_cast<std::size_t>(js) * kc * kGemmNR);
    }
    for (int is = 0; is < n_strips; ++is) {
      const int r0 = is * kGemmMR;
      const int m_sub = std::min(kGemmMR, m - r0);
      pack_a_strip_f16(a, lda, pc, kc, r0, m_sub, ap);
      for (int js = 0; js < n_slivers; ++js) {
        const int j0 = js * kGemmNR;
        const int n_sub = std::min(kGemmNR, n - j0);
        const float* bsl = bp + static_cast<std::size_t>(js) * kc * kGemmNR;
        float* csl = c + static_cast<std::size_t>(r0) * ldc + j0;
        if (m_sub == kGemmMR && n_sub == kGemmNR) {
          if (acc_block) {
            detail::micro_full<true, false>(kc, ap, bsl, csl, ldc);
          } else {
            detail::micro_full<false, false>(kc, ap, bsl, csl, ldc);
          }
        } else {
          detail::micro_edge(kc, ap, bsl, csl, ldc, m_sub, n_sub, acc_block, nullptr);
        }
      }
    }
  }
  ws.release(mark);
  apply_epilogue(c, ldc, m, n, epi);
}

}  // namespace fedcleanse::tensor
