// Reduced-precision compute primitives (DESIGN.md §16).
//
// Two storage formats ride on the same blocked-GEMM skeleton as the fp32
// kernel, both strictly opt-in — fp32 stays the determinism reference:
//
//   int8  — symmetric linear quantization (zero-point 0). Weights quantize
//           per output channel (scale_i = max|row_i| / 127), activations
//           per tensor; products accumulate in int32 (a KC=256 depth of
//           127·127 pair-sums peaks at ~4.2e6, far inside int32) and
//           dequantize into fp32 C with a single fused multiply.
//   fp16  — IEEE binary16 storage with fp32 accumulation: operands convert
//           on pack, every arithmetic op is fp32, so the only error is the
//           storage rounding of A and B.
//
// Quantized GEMMs are serial by design: conv callers parallelize across
// batch samples, which keeps per-element work deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tensor/gemm.h"

namespace fedcleanse::tensor {

// Per-call kernel selector for forward paths that tolerate reduced
// precision (the defense's activation-profiling scans).
enum class ComputeKernel : std::uint8_t { kF32 = 0, kF16 = 1, kInt8 = 2 };

const char* compute_kernel_name(ComputeKernel kernel);
std::optional<ComputeKernel> parse_compute_kernel(const std::string& name);

// Which int8 microkernel runtime CPU detection selected: "avx-vnni", "avx2",
// or "scalar". Diagnostic only (journal "open" lines record it so a result
// can be traced back to the machine tier that produced it).
const char* int8_dispatch_name();

// max |x[i]| over n entries (0 for n == 0). Written so GCC vectorizes the
// reduction without -ffast-math.
float max_abs(const float* x, std::size_t n);

// Symmetric int8 scale for a tensor whose magnitudes reach `maxabs`:
// q = round(x / scale) spans [-127, 127]. A zero tensor gets scale 1 so
// dequantization stays exact (0 * 1 == 0) and nothing divides by zero.
float int8_scale(float maxabs);

// q[i] = clamp(round(x[i] / scale), -127, 127), round-to-nearest-even.
void quantize_s8(const float* x, std::size_t n, float scale, std::int8_t* q);
void dequantize_s8(const std::int8_t* q, std::size_t n, float scale, float* x);

// IEEE binary16 <-> binary32, round-to-nearest-even. Hardware F16C when the
// compiler provides _Float16, portable bit manipulation otherwise.
std::uint16_t f32_to_f16(float v);
float f16_to_f32(std::uint16_t h);
void f32_to_f16_n(const float* x, std::size_t n, std::uint16_t* out);
void f16_to_f32_n(const std::uint16_t* x, std::size_t n, float* out);

// A (the weight operand) quantized and packed once per scan: row-major
// [m, k] source laid out as KC-depth blocks of MR-row strips, each depth
// *pair* interleaved as int16 (the AVX2 vpmaddwd / AVX-VNNI vpdpwssd
// contract multiplies int16 pairs into int32 lanes). Odd k and ragged m
// pad with zeros; padded rows carry scale 0 so they dequantize to 0.
struct PackedInt8A {
  std::vector<std::int16_t> data;
  std::vector<float> scales;  // [m] per-row dequant scales
  int m = 0;
  int k = 0;
  int kc_blocks = 0;
  std::size_t strip_stride = 0;  // int16 entries per (strip, k block)
  std::size_t block_stride = 0;  // int16 entries per k block
};

// per_channel=true gives every row its own scale (weights); false derives
// one scale from max|A| and replicates it (per-tensor).
PackedInt8A pack_a_int8(const float* a, int lda, int m, int k, bool per_channel);

// C[m,n] (+)= dequant(Aq · quant(B)): B quantizes per tensor on the fly
// (fused into its pack step), products accumulate in int32 per KC block and
// fold into fp32 C. Supports the full GemmEpilogue; requires n <= kGemmNC.
void gemm_s8(const PackedInt8A& a, int n, const float* b, int ldb, float* c, int ldc,
             bool accumulate, const GemmEpilogue& epi = {});

// C[m,n] (+)= A·B with fp16 storage and fp32 accumulation. A is [m,k] and
// B is [k,n], both row-major binary16; requires n <= kGemmNC.
void gemm_f16(int m, int n, int k, const std::uint16_t* a, int lda,
              const std::uint16_t* b, int ldb, float* c, int ldc, bool accumulate,
              const GemmEpilogue& epi = {});

}  // namespace fedcleanse::tensor
