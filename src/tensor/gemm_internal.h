// Register-tile microkernels and epilogue passes shared by the fp32 GEMM
// (gemm.cpp) and the quantized drivers (gemm_quant.cpp). Internal to
// src/tensor — not part of the public kernel API.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/gemm.h"

namespace fedcleanse::tensor::detail {

// The register tile: a full MR×NR block of C accumulated over kc packed
// depths. Every trip count except kc is a compile-time constant and the
// unroll pragmas flatten both tile loops, so the j dimension vectorizes
// (two 8-lane FMAs per row on AVX2) and `acc` is scalar-replaced into
// registers across the whole k sweep. The store loops must also have
// constant bounds — a runtime-bounded read of `acc` would force the whole
// block onto the stack — which is why edges go through micro_edge instead.
//
// HasBias fuses the per-row bias into the overwrite store (bias + acc is
// bitwise acc + bias, so this equals accumulating into a bias-prefilled C).
template <bool Accumulate, bool HasBias>
inline void micro_full(int kc, const float* __restrict ap, const float* __restrict bp,
                       float* __restrict c, int ldc, const float* __restrict rb = nullptr) {
  static_assert(!(Accumulate && HasBias), "row bias is a store-time epilogue");
  float acc[kGemmMR][kGemmNR] = {};
  for (int p = 0; p < kc; ++p) {
    const float* __restrict arow = ap + static_cast<std::size_t>(p) * kGemmMR;
    const float* __restrict brow = bp + static_cast<std::size_t>(p) * kGemmNR;
#pragma GCC unroll 16
    for (int i = 0; i < kGemmMR; ++i) {
      const float ai = arow[i];
#pragma GCC unroll 32
      for (int j = 0; j < kGemmNR; ++j) acc[i][j] += ai * brow[j];
    }
  }
#pragma GCC unroll 16
  for (int i = 0; i < kGemmMR; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
#pragma GCC unroll 32
    for (int j = 0; j < kGemmNR; ++j) {
      if constexpr (Accumulate) {
        crow[j] += acc[i][j];
      } else if constexpr (HasBias) {
        crow[j] = acc[i][j] + rb[i];
      } else {
        crow[j] = acc[i][j];
      }
    }
  }
}

// Edge / masked tiles: run the full kernel into a stack tile (the packs are
// zero-padded, so the extra lanes compute exact zeros), then copy out only
// the live m_sub×n_sub sub-block, honoring the row mask. The extra copy is
// confined to ragged borders and pruned strips. rb, when non-null, is the
// per-row bias for an overwrite store (callers pass it only when the tile
// belongs to the first k block of a non-accumulating product).
inline void micro_edge(int kc, const float* __restrict ap, const float* __restrict bp,
                       float* __restrict c, int ldc, int m_sub, int n_sub, bool accumulate,
                       const std::uint8_t* row_active, const float* rb = nullptr) {
  float tmp[kGemmMR][kGemmNR];
  micro_full<false, false>(kc, ap, bp, &tmp[0][0], kGemmNR);
  for (int i = 0; i < m_sub; ++i) {
    if (row_active != nullptr && row_active[i] == 0) continue;
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if (accumulate) {
      for (int j = 0; j < n_sub; ++j) crow[j] += tmp[i][j];
    } else if (rb != nullptr) {
      const float bi = rb[i];
      for (int j = 0; j < n_sub; ++j) crow[j] = tmp[i][j] + bi;
    } else {
      for (int j = 0; j < n_sub; ++j) crow[j] = tmp[i][j];
    }
  }
}

// Post-pass epilogue over finished rows [i0, i0+mc) × cols [jc, jc+nc):
// column bias then ReLU, both while the tile range is still cache-hot.
// Inactive rows hold caller-owned exact zeros and are left untouched.
inline void epilogue_cols(float* c, int ldc, int i0, int mc, int jc, int nc,
                          const std::uint8_t* row_active, const GemmEpilogue& epi) {
  if (epi.col_bias == nullptr && !epi.relu) return;
  const float* cb = epi.col_bias != nullptr ? epi.col_bias + jc : nullptr;
  for (int i = 0; i < mc; ++i) {
    if (row_active != nullptr && row_active[i0 + i] == 0) continue;
    float* crow = c + static_cast<std::size_t>(i0 + i) * ldc + jc;
    if (cb != nullptr) {
      for (int j = 0; j < nc; ++j) crow[j] += cb[j];
    }
    if (epi.relu) {
      // `v < 0 ? 0 : v`, not max(): preserves -0.0f exactly like nn::ReLU.
      for (int j = 0; j < nc; ++j) crow[j] = crow[j] < 0.0f ? 0.0f : crow[j];
    }
  }
}

// Row softmax over complete rows [i0, i0+mc), replicating ops.cpp's
// softmax_rows element for element (same max sweep, same accumulation
// order for the denominator) so the fused head is bit-identical.
inline void epilogue_softmax(float* c, int ldc, int i0, int mc, int n,
                             const std::uint8_t* row_active) {
  for (int i = 0; i < mc; ++i) {
    if (row_active != nullptr && row_active[i0 + i] == 0) continue;
    float* crow = c + static_cast<std::size_t>(i0 + i) * ldc;
    float mx = crow[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, crow[j]);
    float denom = 0.0f;
    for (int j = 0; j < n; ++j) {
      crow[j] = std::exp(crow[j] - mx);
      denom += crow[j];
    }
    for (int j = 0; j < n; ++j) crow[j] /= denom;
  }
}

}  // namespace fedcleanse::tensor::detail
