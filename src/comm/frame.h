// Length-prefixed TCP framing over the PR 2 checksummed wire format.
//
// A frame is a u32 little-endian length followed by exactly that many bytes
// of encode_message() output (type + round + sender + payload checksum +
// payload). The length prefix is validated before any allocation: a prefix
// smaller than one message header or larger than max_frame_bytes throws
// TransportError, and anything wrong *inside* the frame (garbage type byte,
// lying payload length, checksum mismatch) surfaces as the existing
// DecodeError from decode_message. Either way the decoder never hands out a
// partially-read Message — a frame is decoded only once it is complete.
//
// A framing error on a TCP stream means the two ends have lost byte
// alignment; the connection must be dropped, so FrameDecoder refuses further
// use after a throw.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/message.h"
#include "comm/transport.h"

namespace fedcleanse::comm {

inline constexpr std::size_t kFrameLengthBytes = 4;

// Message → one wire frame (length prefix + encode_message bytes).
std::vector<std::uint8_t> encode_frame(const Message& m);

// Frame + send_all in one call.
void send_frame(Socket& socket, const Message& m);

class FrameDecoder;

// Read one complete frame within the deadline (handshake helper): nullopt on
// timeout, TransportError on EOF, with framing/decode errors propagating.
std::optional<Message> recv_frame(Socket& socket, FrameDecoder& decoder, int timeout_ms);

// Incremental decoder for a TCP byte stream: feed() whatever recv returned,
// then drain next() until it yields nullopt (incomplete trailing frame).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = TransportConfig{}.max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n);

  // The next complete message, or nullopt if the buffered bytes end mid-
  // frame. Throws TransportError on an invalid length prefix and DecodeError
  // on undecodable frame contents; after any throw the stream is desynced
  // and every further call rethrows.
  std::optional<Message> next();

  // Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buf_.size() - pos_; }
  // True when the buffered bytes stop partway through a frame — what a
  // connection torn by SIGKILL leaves behind.
  bool mid_frame() const { return buffered() > 0; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
  bool poisoned_ = false;
};

}  // namespace fedcleanse::comm
