#include "comm/fault_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedcleanse::comm {

namespace {
// splitmix64's additive constant. The walk state after k outputs is
// seed + k·γ (the mix never feeds back), which is what makes the per-link
// streams lazily derivable.
constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ULL;
}  // namespace

void FaultConfig::validate(int n_clients) const {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(dropout_rate) || !in01(corrupt_rate) || !in01(duplicate_rate) ||
      !in01(delay_rate) || !in01(straggler_fraction) || !in01(straggler_miss_rate) ||
      !in01(min_collect_fraction)) {
    throw ConfigError("fault rates must lie in [0, 1]");
  }
  if (max_request_retries < 0) throw ConfigError("max_request_retries must be >= 0");
  if (recv_timeout_ms < 0) throw ConfigError("recv_timeout_ms must be >= 0");
  for (const auto& cp : crash_schedule) {
    if (cp.client < 0 || cp.client >= n_clients) {
      throw ConfigError("crash_schedule names client " + std::to_string(cp.client) +
                        " outside [0, " + std::to_string(n_clients) + ")");
    }
  }
}

FaultModel::FaultModel(FaultConfig config, int n_clients, std::uint64_t seed)
    : config_(std::move(config)), n_clients_(n_clients), seed_(seed) {
  FC_REQUIRE(n_clients > 0, "fault model needs at least one client");
  config_.validate(n_clients);
  const auto n = static_cast<std::size_t>(n_clients);

  if (config_.straggler_fraction > 0.0) {
    // The pick seed sits where the old eager walk left it: after the 2n
    // per-link stream seeds, i.e. at offset 2n·γ.
    std::uint64_t state = seed + 2 * static_cast<std::uint64_t>(n) * kSplitMixGamma;
    common::Rng pick(common::splitmix64(state));
    straggler_.assign(n, 0);
    const auto k = std::min<std::size_t>(
        n, static_cast<std::size_t>(
               std::lround(config_.straggler_fraction * static_cast<double>(n))));
    for (std::size_t c : pick.sample_without_replacement(n, std::max<std::size_t>(1, k))) {
      straggler_[c] = 1;
    }
  }

  for (const auto& cp : config_.crash_schedule) {
    auto [it, inserted] = crash_round_.try_emplace(cp.client, cp.round);
    if (!inserted) it->second = std::min(it->second, cp.round);
  }
}

common::Rng& FaultModel::stream(int client, Direction dir) {
  const int key = 2 * client + static_cast<int>(dir);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    // Lazy equivalent of the old eager loop `for k: splitmix64(state)`: the
    // k-th output of a walk from seed_ is one splitmix64 step at offset k·γ.
    std::uint64_t state = seed_ + static_cast<std::uint64_t>(key) * kSplitMixGamma;
    it = streams_.emplace(key, common::Rng(common::splitmix64(state))).first;
  }
  return it->second;
}

bool FaultModel::crashed(int client, std::uint32_t round) const {
  if (crash_round_.empty()) return false;
  const auto it = crash_round_.find(client);
  return it != crash_round_.end() && round >= it->second;
}

bool FaultModel::straggler(int client) const {
  return !straggler_.empty() && straggler_[static_cast<std::size_t>(client)] != 0;
}

FaultModel::Fate FaultModel::next_fate(int client, Direction dir, std::uint32_t round) {
  (void)round;  // crash handling is the caller's (it consumes no randomness)
  auto& rng = stream(client, dir);
  Fate fate;
  // Fixed draw count per call keeps the stream aligned no matter which
  // faults fire.
  fate.drop = rng.bernoulli(config_.dropout_rate);
  fate.corrupt = rng.bernoulli(config_.corrupt_rate);
  fate.duplicate = rng.bernoulli(config_.duplicate_rate);
  fate.delay = rng.bernoulli(config_.delay_rate);
  if (dir == Direction::kUplink && straggler(client)) {
    fate.delay = rng.bernoulli(config_.straggler_miss_rate) || fate.delay;
  }
  return fate;
}

std::vector<std::pair<int, common::RngState>> FaultModel::stream_states() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, common::RngState>> states;
  states.reserve(streams_.size());
  for (const auto& [key, s] : streams_) states.emplace_back(key, s.state());
  return states;
}

void FaultModel::restore_stream_states(
    const std::vector<std::pair<int, common::RngState>>& states) {
  std::lock_guard<std::mutex> lock(mu_);
  streams_.clear();
  for (const auto& [key, state] : states) {
    if (key < 0 || key >= 2 * n_clients_) {
      throw CheckpointError("fault snapshot names stream " + std::to_string(key) +
                            " outside [0, " + std::to_string(2 * n_clients_) + ")");
    }
    common::Rng rng(0);
    rng.restore(state);
    streams_.insert_or_assign(key, rng);
  }
}

void FaultModel::corrupt(Message& message, int client, Direction dir) {
  auto& rng = stream(client, dir);
  auto& payload = message.payload;
  std::size_t mode = rng.index(4);
  if (payload.empty() && mode < 2) mode = 2;  // nothing to truncate/flip
  switch (mode) {
    case 0:  // truncate: the classic torn read
      payload.resize(rng.index(payload.size()));
      break;
    case 1: {  // flip bytes in place: garbage values, maybe a lying prefix
      const std::size_t flips = 1 + payload.size() / 16;
      for (std::size_t i = 0; i < flips; ++i) {
        payload[rng.index(payload.size())] ^=
            static_cast<std::uint8_t>(1 + rng.index(255));
      }
      break;
    }
    case 2: {  // append trailing garbage: oversized payload
      const std::size_t extra = 1 + rng.index(8);
      for (std::size_t i = 0; i < extra; ++i) {
        payload.push_back(static_cast<std::uint8_t>(rng.next_u64() & 0xFF));
      }
      break;
    }
    default: {  // mistype: valid bytes, wrong protocol slot
      const auto current = static_cast<std::uint8_t>(message.type);
      const auto shifted =
          static_cast<std::uint8_t>(1 + (current - 1 + 1 + rng.index(8)) % 9);
      message.type = *parse_message_type(shifted);
      break;
    }
  }
}

}  // namespace fedcleanse::comm
