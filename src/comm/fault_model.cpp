#include "comm/fault_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedcleanse::comm {

void FaultConfig::validate(int n_clients) const {
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(dropout_rate) || !in01(corrupt_rate) || !in01(duplicate_rate) ||
      !in01(delay_rate) || !in01(straggler_fraction) || !in01(straggler_miss_rate) ||
      !in01(min_collect_fraction)) {
    throw ConfigError("fault rates must lie in [0, 1]");
  }
  if (max_request_retries < 0) throw ConfigError("max_request_retries must be >= 0");
  if (recv_timeout_ms < 0) throw ConfigError("recv_timeout_ms must be >= 0");
  for (const auto& cp : crash_schedule) {
    if (cp.client < 0 || cp.client >= n_clients) {
      throw ConfigError("crash_schedule names client " + std::to_string(cp.client) +
                        " outside [0, " + std::to_string(n_clients) + ")");
    }
  }
}

FaultModel::FaultModel(FaultConfig config, int n_clients, std::uint64_t seed)
    : config_(std::move(config)) {
  FC_REQUIRE(n_clients > 0, "fault model needs at least one client");
  config_.validate(n_clients);
  const auto n = static_cast<std::size_t>(n_clients);

  // All per-link streams and the straggler draw derive from one splitmix64
  // walk over the fault seed: fully reproducible, independent per link.
  std::uint64_t state = seed;
  streams_.reserve(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) streams_.emplace_back(common::splitmix64(state));

  straggler_.assign(n, 0);
  if (config_.straggler_fraction > 0.0) {
    common::Rng pick(common::splitmix64(state));
    const auto k = std::min<std::size_t>(
        n, static_cast<std::size_t>(
               std::lround(config_.straggler_fraction * static_cast<double>(n))));
    for (std::size_t c : pick.sample_without_replacement(n, std::max<std::size_t>(1, k))) {
      straggler_[c] = 1;
    }
  }

  crash_round_.assign(n, std::nullopt);
  for (const auto& cp : config_.crash_schedule) {
    auto& slot = crash_round_[static_cast<std::size_t>(cp.client)];
    slot = slot ? std::min(*slot, cp.round) : cp.round;
  }
}

common::Rng& FaultModel::stream(int client, Direction dir) {
  return streams_[2 * static_cast<std::size_t>(client) + static_cast<std::size_t>(dir)];
}

bool FaultModel::crashed(int client, std::uint32_t round) const {
  const auto& slot = crash_round_[static_cast<std::size_t>(client)];
  return slot && round >= *slot;
}

bool FaultModel::straggler(int client) const {
  return straggler_[static_cast<std::size_t>(client)] != 0;
}

FaultModel::Fate FaultModel::next_fate(int client, Direction dir, std::uint32_t round) {
  (void)round;  // crash handling is the caller's (it consumes no randomness)
  auto& rng = stream(client, dir);
  Fate fate;
  // Fixed draw count per call keeps the stream aligned no matter which
  // faults fire.
  fate.drop = rng.bernoulli(config_.dropout_rate);
  fate.corrupt = rng.bernoulli(config_.corrupt_rate);
  fate.duplicate = rng.bernoulli(config_.duplicate_rate);
  fate.delay = rng.bernoulli(config_.delay_rate);
  if (dir == Direction::kUplink && straggler(client)) {
    fate.delay = rng.bernoulli(config_.straggler_miss_rate) || fate.delay;
  }
  return fate;
}

std::vector<common::RngState> FaultModel::stream_states() const {
  std::vector<common::RngState> states;
  states.reserve(streams_.size());
  for (const auto& s : streams_) states.push_back(s.state());
  return states;
}

void FaultModel::restore_stream_states(const std::vector<common::RngState>& states) {
  if (states.size() != streams_.size()) {
    throw CheckpointError("fault snapshot has " + std::to_string(states.size()) +
                          " RNG streams, expected " + std::to_string(streams_.size()));
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) streams_[i].restore(states[i]);
}

void FaultModel::corrupt(Message& message, int client, Direction dir) {
  auto& rng = stream(client, dir);
  auto& payload = message.payload;
  std::size_t mode = rng.index(4);
  if (payload.empty() && mode < 2) mode = 2;  // nothing to truncate/flip
  switch (mode) {
    case 0:  // truncate: the classic torn read
      payload.resize(rng.index(payload.size()));
      break;
    case 1: {  // flip bytes in place: garbage values, maybe a lying prefix
      const std::size_t flips = 1 + payload.size() / 16;
      for (std::size_t i = 0; i < flips; ++i) {
        payload[rng.index(payload.size())] ^=
            static_cast<std::uint8_t>(1 + rng.index(255));
      }
      break;
    }
    case 2: {  // append trailing garbage: oversized payload
      const std::size_t extra = 1 + rng.index(8);
      for (std::size_t i = 0; i < extra; ++i) {
        payload.push_back(static_cast<std::uint8_t>(rng.next_u64() & 0xFF));
      }
      break;
    }
    default: {  // mistype: valid bytes, wrong protocol slot
      const auto current = static_cast<std::uint8_t>(message.type);
      const auto shifted =
          static_cast<std::uint8_t>(1 + (current - 1 + 1 + rng.index(8)) % 9);
      message.type = *parse_message_type(shifted);
      break;
    }
  }
}

}  // namespace fedcleanse::comm
