// Typed messages exchanged between the FL server and clients.
//
// Everything that crosses the server↔client boundary is serialized to bytes
// (common::ByteWriter) so the simulator measures real payload sizes and the
// server can never trust client memory directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace fedcleanse::comm {

enum class MessageType : std::uint8_t {
  // Training protocol.
  kModelBroadcast = 1,  // server → client: flat global parameters
  kModelUpdate = 2,     // client → server: flat parameter delta
  // Federated pruning protocol.
  kRankRequest = 3,     // server → client: request activation ranking
  kRankReport = 4,      // client → server: neuron ranks (RAP)
  kVoteRequest = 5,     // server → client: request prune votes at rate p
  kVoteReport = 6,      // client → server: 0/1 prune votes (MVP)
  // Fine-tuning / evaluation protocol.
  kMaskBroadcast = 7,   // server → client: prune masks per layer
  kAccuracyRequest = 8, // server → client: request local accuracy
  kAccuracyReport = 9,  // client → server: local accuracy value
};

const char* message_type_name(MessageType t);

struct Message {
  MessageType type{};
  std::uint32_t round = 0;
  std::int32_t sender = -1;  // client id, or -1 for the server
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const { return payload.size() + 10; }
};

// --- payload codecs ---------------------------------------------------------

std::vector<std::uint8_t> encode_flat_params(const std::vector<float>& params);
std::vector<float> decode_flat_params(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_ranks(const std::vector<std::uint32_t>& ranks);
std::vector<std::uint32_t> decode_ranks(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_votes(const std::vector<std::uint8_t>& votes);
std::vector<std::uint8_t> decode_votes(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_vote_request(double prune_rate);
double decode_vote_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_masks(const std::vector<std::vector<std::uint8_t>>& masks);
std::vector<std::vector<std::uint8_t>> decode_masks(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_accuracy(double accuracy);
double decode_accuracy(const std::vector<std::uint8_t>& payload);

}  // namespace fedcleanse::comm
