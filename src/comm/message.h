// Typed messages exchanged between the FL server and clients.
//
// Everything that crosses the server↔client boundary is serialized to bytes
// (common::ByteWriter) so the simulator measures real payload sizes and the
// server can never trust client memory directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace fedcleanse::comm {

enum class MessageType : std::uint8_t {
  // Training protocol.
  kModelBroadcast = 1,  // server → client: flat global parameters
  kModelUpdate = 2,     // client → server: flat parameter delta
  // Federated pruning protocol.
  kRankRequest = 3,     // server → client: request activation ranking
  kRankReport = 4,      // client → server: neuron ranks (RAP)
  kVoteRequest = 5,     // server → client: request prune votes at rate p
  kVoteReport = 6,      // client → server: 0/1 prune votes (MVP)
  // Fine-tuning / evaluation protocol.
  kMaskBroadcast = 7,   // server → client: prune masks per layer
  kAccuracyRequest = 8, // server → client: request local accuracy
  kAccuracyReport = 9,  // client → server: local accuracy value
  // Control-plane protocol (multi-process deployment, DESIGN.md §15).
  kLrScale = 10,        // server → client: multiply local learning rate
  kShutdown = 11,       // server → client / scheduler → node: run is over
  kRegister = 12,       // node → scheduler, client → server: join the cohort
  kRegisterAck = 13,    // reply to kRegister: accepted + topology info
  kHeartbeat = 14,      // node → peer: liveness beacon
  kHeartbeatAck = 15,   // peer → node: beacon echo
  // Quantized-wire training protocol (DESIGN.md §16).
  kModelUpdateQuantized = 16,  // client → server: int8 parameter delta
  // Failover protocol (DESIGN.md §18).
  kRoundSync = 17,     // server → client: roll back to the committed round
  kRoundSyncAck = 18,  // client → server: rolled back, ready to replay
};

const char* message_type_name(MessageType t);
// Validated conversion from a (possibly corrupted) wire byte.
std::optional<MessageType> parse_message_type(std::uint8_t raw);

// Malformed message or payload: truncated, oversized, lying length prefix,
// unknown type byte. Subtype of SerializationError so callers that only care
// about "bad bytes" can catch the base type.
class DecodeError : public SerializationError {
 public:
  explicit DecodeError(const std::string& what) : SerializationError(what) {}
};

// Snapshot-epoch mismatch: a message from a different resume generation of
// the run (a pre-crash server's stale kRoundSync, or a client that resumed
// past the server's restored state). Subtype of DecodeError so the generic
// collect loops treat it as a malformed-but-logged reply rather than a fatal
// transport fault.
class EpochError : public DecodeError {
 public:
  explicit EpochError(const std::string& what) : DecodeError(what) {}
};

// FNV-1a 64 over the payload bytes — the wire integrity check. Flipped,
// truncated, or appended payload bytes (fault injection, or a torn read)
// fail verification at the receiver instead of decoding into silent garbage.
std::uint64_t payload_checksum(const std::vector<std::uint8_t>& payload);

// Wire header: type (u8) + round (u32) + sender (i32) + correlation (u32) +
// checksum (u64) + payload length (u32). Single source of truth shared by
// Message::wire_size() and the encode_message()/decode_message() pair, so a
// header change cannot silently skew Network::total_bytes() accounting.
inline constexpr std::size_t kMessageHeaderBytes = 1 + 4 + 4 + 4 + 8 + 4;

// Process-wide correlation-id allocator for distributed tracing (DESIGN.md
// §17). The round-protocol driver (fl::exchange_streaming) draws one id per
// exchange and stamps it into every request of that exchange; clients echo the
// id back in their replies, so the merged multi-process trace can pair a
// server dispatch span with the client work it caused. Ids are observability
// metadata only — no protocol decision reads them — and 0 means "unstamped"
// (control-plane beacons, pre-correlation traffic).
std::uint32_t next_correlation_id();
// The id the current exchange stamped (0 outside any exchange). Set/restored
// RAII-style by ScopedCorrelation; read by the server's message factory.
std::uint32_t current_correlation_id();

class ScopedCorrelation {
 public:
  explicit ScopedCorrelation(std::uint32_t id);
  ~ScopedCorrelation();
  ScopedCorrelation(const ScopedCorrelation&) = delete;
  ScopedCorrelation& operator=(const ScopedCorrelation&) = delete;

 private:
  std::uint32_t previous_;
};

struct Message {
  MessageType type{};
  std::uint32_t round = 0;
  std::int32_t sender = -1;  // client id, or -1 for the server
  std::uint32_t correlation = 0;  // exchange id (0 = unstamped control traffic)
  std::uint64_t checksum = 0;  // payload_checksum(payload), set by stamp()
  std::vector<std::uint8_t> payload;

  // Compute the checksum — call after filling the payload, before sending.
  // Anything that mutates the payload afterwards (FaultModel::corrupt) is
  // detectable via checksum_ok().
  Message& stamp() {
    checksum = payload_checksum(payload);
    return *this;
  }
  bool checksum_ok() const { return checksum == payload_checksum(payload); }

  std::size_t wire_size() const { return kMessageHeaderBytes + payload.size(); }
};

// Full message ↔ bytes. encode_message's output is exactly wire_size() bytes;
// decode_message throws DecodeError on truncation, trailing bytes, or an
// unknown type byte.
std::vector<std::uint8_t> encode_message(const Message& m);
Message decode_message(const std::vector<std::uint8_t>& bytes);

// Checkpoint codec: serialize a message *verbatim*, keeping the stored
// checksum even when it no longer matches the payload. encode_message always
// re-stamps the true checksum, which would silently heal a fault-corrupted
// in-flight message across a crash-resume; this pair keeps the wire state
// bit-exact so the resumed run rejects exactly what the uninterrupted run
// would have. Only run snapshots use it — never the wire.
void write_message_verbatim(common::ByteWriter& w, const Message& m);
Message read_message_verbatim(common::ByteReader& r);

// --- payload codecs ---------------------------------------------------------
// Every decoder validates the payload end to end and throws DecodeError on
// anything malformed (truncated, oversized, or with a lying length prefix);
// a Byzantine client can never crash the server with bad bytes.

std::vector<std::uint8_t> encode_flat_params(const std::vector<float>& params);
std::vector<float> decode_flat_params(const std::vector<std::uint8_t>& payload);

// Codec for the client→server update payload. kF32 sends raw floats
// (kModelUpdate, byte-identical to the original wire); kInt8 sends a
// per-tensor scale plus int8 quantized values (kModelUpdateQuantized) at
// ~3.9× fewer bytes, dequantized at the server before aggregation.
enum class UpdateCodec : std::uint8_t { kF32 = 0, kInt8 = 1 };

const char* update_codec_name(UpdateCodec codec);
std::optional<UpdateCodec> parse_update_codec(const std::string& name);

// kModelUpdateQuantized payload: [f32 scale][u8-vector of int8 values].
// decode throws DecodeError on truncation, trailing bytes, or a non-finite /
// non-positive scale (a corrupted scale would silently rescale the whole
// update).
std::vector<std::uint8_t> encode_flat_params_q8(const std::vector<float>& params);
std::vector<float> decode_flat_params_q8(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_ranks(const std::vector<std::uint32_t>& ranks);
std::vector<std::uint32_t> decode_ranks(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_votes(const std::vector<std::uint8_t>& votes);
std::vector<std::uint8_t> decode_votes(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_vote_request(double prune_rate);
double decode_vote_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_masks(const std::vector<std::vector<std::uint8_t>>& masks);
std::vector<std::vector<std::uint8_t>> decode_masks(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_accuracy(double accuracy);
double decode_accuracy(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_lr_scale(double factor);
double decode_lr_scale(const std::vector<std::uint8_t>& payload);

// --- deployment control-plane payloads --------------------------------------

enum class NodeRole : std::uint8_t { kServer = 0, kClient = 1 };

// kRegister payload: who is joining and where it can be reached.
struct RegisterInfo {
  NodeRole role = NodeRole::kClient;
  std::int32_t node_id = -1;      // client id, or -1 for the server
  std::uint16_t port = 0;         // listening port (server only; 0 for clients)
  std::uint32_t generation = 0;   // bumped on each reconnect-and-reregister
  std::uint32_t epoch = 0;        // snapshot epoch (0 = fresh run; DESIGN.md §18)
};

std::vector<std::uint8_t> encode_register(const RegisterInfo& info);
RegisterInfo decode_register(const std::vector<std::uint8_t>& payload);

// kRegisterAck payload: registration verdict plus server discovery info (the
// scheduler tells clients where the server listens once it has registered).
struct RegisterAck {
  bool accepted = false;
  bool server_known = false;
  std::string server_host;
  std::uint16_t server_port = 0;
  std::int32_t n_clients_registered = 0;
  std::uint32_t epoch = 0;  // the acceptor's snapshot epoch
};

std::vector<std::uint8_t> encode_register_ack(const RegisterAck& ack);
RegisterAck decode_register_ack(const std::vector<std::uint8_t>& payload);

// Optional kHeartbeat payload (DESIGN.md §17): a compact progress/metric
// snapshot the fleet view aggregates. An empty heartbeat payload remains
// valid (PR 7's bare beacon); a non-empty one must decode exactly.
struct HeartbeatStatus {
  std::uint32_t round = 0;       // last FL round this node touched
  std::uint64_t wire_bytes = 0;  // transport bytes sent by this node so far
  std::uint64_t peak_rss = 0;    // VmHWM of the beaconing process, bytes
};

std::vector<std::uint8_t> encode_heartbeat_status(const HeartbeatStatus& s);
HeartbeatStatus decode_heartbeat_status(const std::vector<std::uint8_t>& payload);

// kRoundSync / kRoundSyncAck payload (DESIGN.md §18): the resumed server's
// snapshot epoch and the round both sides must be positioned at before the
// run replays. The client echoes the payload back verbatim as its ack, so
// the server can verify the client landed on the intended (epoch, round).
struct RoundSync {
  std::uint32_t epoch = 0;
  std::int32_t next_round = 0;  // rounds committed; the next round to run
};

std::vector<std::uint8_t> encode_round_sync(const RoundSync& sync);
RoundSync decode_round_sync(const std::vector<std::uint8_t>& payload);

}  // namespace fedcleanse::comm
