// TCP transports behind the Network interface (DESIGN.md §15).
//
// SocketServerNetwork and SocketClientNetwork put the federated protocol on a
// real wire while reusing the in-process Network's channels as their receive
// queues: reader threads decode frames off the sockets and enqueue them
// through the base class, so Server::collect_* and Client::handle_pending run
// unchanged against either transport. Sends bypass the channels and go
// straight to the peer's socket.
//
// Liveness (server side): every data connection starts with a kRegister
// handshake; after that the client beacons kHeartbeat at a configured
// interval. A client is declared dead on connection EOF (a SIGKILLed process
// closes instantly) or when its last traffic is older than
// heartbeat_timeout_ms (a hung process). Dead clients short-circuit
// recv_from_client_for, so the round protocol's quorum gate sees the loss
// within one deadline instead of burning full timeouts per retry. A restarted
// client reconnects and reregisters with a bumped generation; the stale
// connection's reader learns its generation is old and exits silently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "comm/frame.h"
#include "comm/network.h"
#include "comm/transport.h"

namespace fedcleanse::comm {

// This process's progress snapshot for heartbeat beacons (DESIGN.md §17):
// round from the fl.round gauge, sent bytes from the transport counter, peak
// RSS from /proc. Returns nullopt when the metrics runtime switch is off —
// telemetry-off heartbeats must stay empty-payload so the wire byte stream
// matches a run with no telemetry built at all.
std::optional<HeartbeatStatus> current_heartbeat_status();

// Server-side data plane: one Listener, one accept thread, one reader thread
// per registered client, and a monitor thread enforcing heartbeat staleness.
class SocketServerNetwork : public Network {
 public:
  // Binds host:port (port 0 = ephemeral, see port()) and starts the accept
  // and monitor threads. Clients connect directly; scheduler registration is
  // the binary's job (comm/scheduler.h).
  SocketServerNetwork(int n_clients, const TransportConfig& config,
                      const std::string& host = "127.0.0.1", std::uint16_t port = 0);
  ~SocketServerNetwork() override;

  std::uint16_t port() const { return listener_.port(); }

  // Block until at least `n` clients are registered and alive. Called before
  // round 0 so the first broadcast never races registration.
  bool wait_for_clients(int n, int timeout_ms);

  // Registered-and-alive peers right now.
  int n_alive() const;
  bool is_alive(int client) const;

  // Send kShutdown to every live client (end of run).
  void broadcast_shutdown();

  // Per-peer status table as a JSON array string: id, alive, generation,
  // heartbeat age, and each peer's last self-reported HeartbeatStatus (when
  // it beaconed one). Feeds the server binary's /statusz.
  std::string peers_status_json() const;

  // Snapshot epoch this server runs at (DESIGN.md §18). A resumed server sets
  // it before accepting traffic; a client registering from a *newer* epoch
  // than ours is nacked — it resumed past the state we restored, and letting
  // it in would silently mix generations.
  void set_epoch(std::uint32_t epoch) { epoch_.store(epoch); }
  std::uint32_t epoch() const { return epoch_.load(); }

  // Network overrides: sends frame onto the client's socket (silently dropped
  // when the client is dead — the retry/quorum layer owns recovery); receives
  // drain the base channels that the reader threads fill, with a dead-client
  // early exit on the deadline path.
  void send_to_client(int client, Message message) override;
  std::optional<Message> recv_from_client_for(int client,
                                              std::chrono::milliseconds timeout) override;

 private:
  struct Peer {
    Socket sock;
    std::mutex send_mu;  // serializes writes to sock (reader replies + sends)
    std::thread reader;
    std::uint32_t generation = 0;
    bool alive = false;
    std::chrono::steady_clock::time_point last_seen{};
    bool has_status = false;
    HeartbeatStatus status;  // last decoded heartbeat snapshot (guarded by peers_mu_)
  };

  void accept_loop();
  void monitor_loop();
  void reader_loop(int client, std::uint32_t generation);
  // Registration handshake on a fresh connection (accept thread).
  void handle_registration(Socket sock);
  // Declare `client` dead if `generation` is still current.
  void mark_dead(int client, std::uint32_t generation, const char* reason);
  Peer* peer_ptr(int client);

  TransportConfig config_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint32_t> epoch_{0};
  mutable std::mutex peers_mu_;
  std::condition_variable peers_cv_;
  std::map<int, std::unique_ptr<Peer>> peers_;
  std::thread accept_thread_;
  std::thread monitor_thread_;
};

// Client-side data plane: an io thread that discovers the server through the
// scheduler, maintains the registered connection (reconnect-and-reregister
// with capped backoff after any failure), and pumps inbound frames into the
// base downlink channel; plus a heartbeat thread beaconing liveness.
class SocketClientNetwork : public Network {
 public:
  SocketClientNetwork(int n_clients, int client_id, const TransportConfig& config,
                      const std::string& scheduler_host, std::uint16_t scheduler_port);
  ~SocketClientNetwork() override;

  int client_id() const { return client_id_; }

  // Block until the first registration with the server succeeds.
  bool wait_connected(int timeout_ms);
  bool connected() const;
  // True once the server sent kShutdown — the main loop's exit condition.
  bool shutdown_received() const { return shutdown_.load(); }

  // Snapshot epoch stamped into this client's kRegister (DESIGN.md §18). A
  // resumed client sets it from its restored snapshot; the round-sync
  // handler raises it when the server resumes past it.
  void set_epoch(std::uint32_t epoch) { epoch_.store(epoch); }
  std::uint32_t epoch() const { return epoch_.load(); }

  // Network overrides. send_to_server throws TransportError while the link is
  // down (the caller's reply is lost; the server's retry re-drives it after
  // the reconnect). Receive paths are the base implementations over the
  // downlink channel the io thread fills.
  void send_to_server(int client, Message message) override;

 private:
  void io_loop();
  void heartbeat_loop();
  // One full discover → connect → register pass. Returns the registered
  // socket or nullopt (retry after backoff).
  std::optional<Socket> establish(std::uint32_t generation);

  int client_id_;
  TransportConfig config_;
  std::string scheduler_host_;
  std::uint16_t scheduler_port_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint32_t> epoch_{0};
  mutable std::mutex link_mu_;
  std::condition_variable link_cv_;
  Socket sock_;            // valid only while registered_ (guarded by link_mu_)
  bool registered_ = false;
  std::uint32_t generation_ = 0;
  std::thread io_thread_;
  std::thread heartbeat_thread_;
};

}  // namespace fedcleanse::comm
