// In-memory network wiring one server to N clients with per-direction
// channels and aggregate traffic accounting.
//
// The send paths are virtual so a fault-injection layer (FaultyNetwork) can
// wrap the wire without either endpoint knowing: server and clients only ever
// hold a Network&.
//
// Links are materialized lazily on first use and keyed by client id, so a
// million-client population costs nothing until a client actually appears in
// a round's cohort. Creation is guarded by a mutex (client tasks may race on
// first contact when the server's broadcast was dropped by the fault layer);
// Link storage is a unique_ptr behind an ordered map, so references stay
// stable for the lifetime of the network and iteration is id-ordered.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/channel.h"
#include "common/error.h"
#include "common/serialize.h"

namespace fedcleanse::comm {

class Network {
 public:
  explicit Network(int n_clients);
  virtual ~Network() = default;

  int n_clients() const { return n_clients_; }
  // Links that have carried (or queued) at least one message.
  std::size_t n_active_links() const;

  // Server side. The receive paths are virtual alongside the sends so a
  // socket transport (SocketServerNetwork) can route them over TCP while
  // reusing the base channels as its receive queues — and so a dead peer can
  // short-circuit a deadline wait instead of burning the full timeout.
  virtual void send_to_client(int client, Message message);
  virtual std::optional<Message> try_recv_from_client(int client);
  virtual Message recv_from_client(int client);
  // Deadline-bounded receive: nullopt if the client sent nothing in time.
  virtual std::optional<Message> recv_from_client_for(int client,
                                                      std::chrono::milliseconds timeout);

  // Client side.
  virtual void send_to_server(int client, Message message);
  virtual std::optional<Message> client_try_recv(int client);
  virtual Message client_recv(int client);
  // Block until a server message is queued for `client` (or the deadline
  // passes) without consuming it — the remote client main-loop idle wait.
  virtual bool client_wait_for_message(int client, std::chrono::milliseconds timeout);

  // Release any fault-delayed messages into their channels (no-op on a
  // perfect wire). The simulation calls this at phase boundaries, from the
  // coordinating thread only.
  virtual void flush_delayed() {}

  // Total bytes that have crossed the network in either direction. Dropped
  // messages never reach a channel and are not counted.
  std::size_t total_bytes() const;
  std::size_t downlink_bytes() const;  // server → clients
  std::size_t uplink_bytes() const;    // clients → server

  // Checkpoint support (coordinating thread only, no client tasks running):
  // serialize / restore the materialized links' queued messages and byte
  // counters, keyed by client id. Messages are written verbatim so a
  // fault-corrupted in-flight message stays corrupted across a crash-resume.
  // Virtual so FaultyNetwork can append its delayed queues, fault stats, and
  // RNG stream states. restore_state expects an identically-configured
  // network (same n_clients) and throws CheckpointError on mismatch.
  virtual void save_state(common::ByteWriter& w) const;
  virtual void restore_state(common::ByteReader& r);

 protected:
  // Channel accessors for transport subclasses: a socket network's reader
  // threads enqueue decoded frames here, so every recv path (and the byte
  // accounting) flows through the same channels as the in-process reference.
  Channel& downlink(int client);  // server → client queue
  Channel& uplink(int client);    // client → server queue

 private:
  struct Link {
    Channel to_client;
    Channel to_server;
  };
  // Find-or-create; thread-safe, O(log links) under a short lock.
  Link& link(int client);
  int n_clients_;
  mutable std::mutex mu_;
  // Channel is not movable (mutex member), so links are held by unique_ptr;
  // element pointers survive map growth.
  std::map<int, std::unique_ptr<Link>> links_;
};

}  // namespace fedcleanse::comm
