// In-memory network wiring one server to N clients with per-direction
// channels and aggregate traffic accounting.
#pragma once

#include <vector>

#include <memory>

#include "comm/channel.h"
#include "common/error.h"

namespace fedcleanse::comm {

class Network {
 public:
  explicit Network(int n_clients);

  int n_clients() const { return static_cast<int>(links_.size()); }

  // Server side.
  void send_to_client(int client, Message message);
  std::optional<Message> try_recv_from_client(int client);
  Message recv_from_client(int client);

  // Client side.
  void send_to_server(int client, Message message);
  std::optional<Message> client_try_recv(int client);
  Message client_recv(int client);

  // Total bytes that have crossed the network in either direction.
  std::size_t total_bytes() const;
  std::size_t downlink_bytes() const;  // server → clients
  std::size_t uplink_bytes() const;    // clients → server

 private:
  struct Link {
    Channel to_client;
    Channel to_server;
  };
  Link& link(int client);
  const Link& link(int client) const;
  // deque-free storage: Channel is not movable (mutex member), so links are
  // held by unique_ptr.
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace fedcleanse::comm
