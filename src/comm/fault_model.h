// Seeded fault injection for the in-memory wire.
//
// FaultModel decides, deterministically, what happens to every message on
// every link: delivered, dropped, corrupted, duplicated, or delayed past the
// current protocol phase. Each (client, direction) pair owns its own
// common::Rng stream derived from a single fault seed, so the fate sequence
// of a link depends only on the seed and that link's own send order — never
// on thread scheduling. That is what keeps fault-injected runs bit-identical
// across thread counts (DESIGN.md §7).
//
// Streams are materialized lazily on first use: the k-th stream seed of the
// original eager splitmix64 walk is recoverable in O(1) as splitmix64 applied
// at offset k·γ (the mix never feeds back into the walk state), so a
// million-client population costs nothing until a link actually carries a
// message — and the lazily-derived fate sequences are bit-identical to the
// eager ones.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "comm/message.h"
#include "common/rng.h"

namespace fedcleanse::comm {

// One crash entry: the client's link goes permanently silent (both
// directions) for every message stamped with `round` or later.
struct CrashPoint {
  int client = 0;
  std::uint32_t round = 0;
};

// All knobs default to a perfect wire; Simulation only installs the faulty
// network when any_faults() (or force_faulty_network) is set, so the default
// path is byte-identical to a build without this layer.
struct FaultConfig {
  // --- per-message fault probabilities, applied per link direction ----------
  double dropout_rate = 0.0;    // message silently lost
  double corrupt_rate = 0.0;    // payload/type mutated (see FaultModel::corrupt)
  double duplicate_rate = 0.0;  // message delivered twice
  double delay_rate = 0.0;      // held until the next protocol phase; later
                                // messages overtake it (reordering + delay)

  // --- per-client schedules -------------------------------------------------
  // Fraction of clients (chosen by the fault seed) whose uplink replies miss
  // the server's deadline with probability straggler_miss_rate.
  double straggler_fraction = 0.0;
  double straggler_miss_rate = 0.75;
  std::vector<CrashPoint> crash_schedule;

  // --- degraded-mode round protocol -----------------------------------------
  // The server proceeds with a collect phase when at least
  // ceil(min_collect_fraction · participants) valid reports arrived (always
  // at least one). Below quorum: training rounds skip aggregation, the
  // defense protocol throws QuorumError.
  double min_collect_fraction = 0.5;
  // Retransmissions of an unanswered/undecodable request before giving up.
  int max_request_retries = 2;
  // Server-side recv deadline per client; doubles per retry attempt, capped
  // at 8× (the "capped backoff").
  int recv_timeout_ms = 25;

  // 0 = derive from SimulationConfig::seed (independently of the simulation's
  // own RNG stream, so enabling faults never perturbs data/init draws).
  std::uint64_t fault_seed = 0;
  // Install the FaultyNetwork wrapper even with every rate at zero — used by
  // tests to prove the wrapper itself is behaviour-neutral.
  bool force_faulty_network = false;

  bool any_faults() const {
    return dropout_rate > 0.0 || corrupt_rate > 0.0 || duplicate_rate > 0.0 ||
           delay_rate > 0.0 || straggler_fraction > 0.0 || !crash_schedule.empty();
  }
  // Throws ConfigError on out-of-range knobs.
  void validate(int n_clients) const;
};

// Aggregate message-level fault counts (what the wire did, as opposed to the
// server-side RoundRecord counts, which record what the protocol observed).
struct FaultStats {
  std::size_t dropped = 0;
  std::size_t corrupted = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  std::size_t crashed = 0;  // messages eaten by a crashed link

  FaultStats& operator+=(const FaultStats& o) {
    dropped += o.dropped;
    corrupted += o.corrupted;
    duplicated += o.duplicated;
    delayed += o.delayed;
    crashed += o.crashed;
    return *this;
  }
};

class FaultModel {
 public:
  enum class Direction { kDownlink = 0, kUplink = 1 };

  struct Fate {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    bool delay = false;
  };

  FaultModel(FaultConfig config, int n_clients, std::uint64_t seed);

  const FaultConfig& config() const { return config_; }

  // Crash/straggler schedules (pure lookups; no RNG consumed).
  bool crashed(int client, std::uint32_t round) const;
  bool straggler(int client) const;

  // Draw the fate of the next message on (client, dir). Advances that link
  // direction's RNG stream by a fixed number of draws per call, so the stream
  // stays aligned regardless of which faults actually fire.
  Fate next_fate(int client, Direction dir, std::uint32_t round);

  // Mutate a message in one of four ways (truncate payload, flip payload
  // bytes, append trailing garbage, or mistype), drawn from the same link
  // stream. Every mode produces something the receiving side must survive.
  void corrupt(Message& message, int client, Direction dir);

  // Checkpoint support: the RNG states of every stream touched so far, as
  // (2·client + dir, state) pairs in key order. Untouched streams are pure
  // functions of the seed and need no saving; the straggler and crash
  // schedules are likewise rebuilt by the constructor.
  // restore_stream_states throws CheckpointError on an out-of-range key
  // (snapshot from a different topology).
  std::vector<std::pair<int, common::RngState>> stream_states() const;
  void restore_stream_states(const std::vector<std::pair<int, common::RngState>>& states);

 private:
  // Find-or-create; thread-safe (client tasks race on uplink streams of
  // different clients). Draws on the returned stream stay single-threaded
  // per link under the FaultyNetwork threading contract.
  common::Rng& stream(int client, Direction dir);

  FaultConfig config_;
  int n_clients_ = 0;
  std::uint64_t seed_ = 0;
  mutable std::mutex mu_;
  std::map<int, common::Rng> streams_;  // key = 2·client + dir, lazily seeded
  std::vector<char> straggler_;         // empty unless straggler_fraction > 0
  std::map<int, std::uint32_t> crash_round_;
};

}  // namespace fedcleanse::comm
