// Scheduler node: the deployment's registration and heartbeat endpoint
// (DESIGN.md §15), in the shape of mindspore's scheduler_node.
//
// The scheduler is discovery + observability, not a data plane: the server
// registers its listening port here, clients ask where the server is, and
// long-lived links (the server's) beacon heartbeats so node death lands in
// the journal even when no round is in flight. Model traffic always flows
// directly between server and clients.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/frame.h"
#include "comm/transport.h"

namespace fedcleanse::comm {

class Scheduler {
 public:
  Scheduler(const TransportConfig& config, const std::string& host = "127.0.0.1",
            std::uint16_t port = 0);
  ~Scheduler();

  std::uint16_t port() const { return listener_.port(); }

  // True once a server has registered its data port.
  bool server_known() const;
  // Distinct client ids that have registered so far.
  int n_clients_seen() const;

  // Block until a kShutdown arrives (the server announcing end of run) or
  // stop() is called from another thread.
  void run_until_shutdown();
  void stop();

  // --- restart tolerance (DESIGN.md §18) ------------------------------------
  // Journal every accepted registration to a plain-text file ("client <id>
  // <generation>" / "server <port>"), appending across restarts.
  void enable_registry(const std::string& path);
  // Rebuild the distinct-client roster from a registry file written by a
  // previous incarnation; returns the number of clients restored. The server
  // address is deliberately NOT restored — a pre-crash data port may be
  // stale, and the server's session re-registers it within one heartbeat
  // interval anyway.
  int load_registry(const std::string& path);

  // Live fleet table (DESIGN.md §17), aggregated from the status snapshots
  // heartbeating nodes attach to their beacons: one JSON object with the max
  // observed round plus a per-node row (role, round, heartbeat age, wire
  // bytes, peak RSS, straggler/stale flags). Served by the scheduler
  // binary's /statusz; valid JSON with or without telemetry (bare beacons
  // just produce rows with no progress fields).
  std::string fleet_status_json() const;

 private:
  struct Conn {
    Socket sock;
    std::thread th;
  };

  // One heartbeating node as the scheduler sees it. `status` is the node's
  // own claim (its round, its sent bytes); `last_seen`/`dead` are the
  // scheduler's liveness judgement.
  struct FleetNode {
    NodeRole role = NodeRole::kClient;
    bool dead = false;
    std::chrono::steady_clock::time_point last_seen{};
    bool has_status = false;
    HeartbeatStatus status;
  };

  void accept_loop();
  void conn_loop(Conn* conn);
  void handle_register(Conn* conn, const Message& m);
  // Fold one beacon into the fleet table; journals a fleet_status line when
  // the beacon advances the fleet-wide max round.
  void note_heartbeat(std::int32_t peer_id, NodeRole role, const Message& m);
  void mark_node_dead(std::int32_t peer_id);
  // Emit the {"kind":"fleet_status"} journal line for `round`. Caller holds mu_.
  void journal_fleet_status_locked(std::uint32_t round,
                                   std::chrono::steady_clock::time_point now) const;

  TransportConfig config_;
  Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::string server_host_;
  std::uint16_t server_port_ = 0;
  std::vector<int> clients_seen_;  // distinct registered client ids
  std::vector<std::unique_ptr<Conn>> conns_;
  std::ofstream registry_;  // restart journal (guarded by mu_); closed = off

  // Fleet view (guarded by mu_). Keyed by node id; the server is -1.
  std::map<std::int32_t, FleetNode> fleet_;
  bool fleet_round_seen_ = false;
  std::uint32_t fleet_round_ = 0;  // max round any node has reported
  std::chrono::steady_clock::time_point fleet_round_first_{};
  std::vector<double> fleet_round_latencies_ms_;  // arrival lag per node, this round
};

// One registration round-trip with the scheduler (connect → kRegister →
// kRegisterAck → close). Clients poll this until the ack carries the server's
// address; throws TransportError when the scheduler is unreachable and
// DecodeError on a malformed ack.
RegisterAck scheduler_register_once(const std::string& host, std::uint16_t port,
                                    const RegisterInfo& info, const TransportConfig& config);

// The server's persistent scheduler link: registers the data port, then
// beacons kHeartbeat in a background thread so the scheduler's journal can
// tell a finished run from a dead server. notify_shutdown() tells the
// scheduler the run is over (it exits run_until_shutdown).
//
// The session survives a scheduler restart (DESIGN.md §18): when the link
// drops, the background thread reconnects with jittered capped backoff and
// re-registers at a bumped generation — a restarted scheduler re-learns this
// node (and, for the server role, its current data port) without the run
// stopping. Only the *initial* registration throws on failure.
class SchedulerSession {
 public:
  SchedulerSession(const std::string& host, std::uint16_t port, const RegisterInfo& info,
                   const TransportConfig& config);
  ~SchedulerSession();

  void notify_shutdown();

 private:
  void heartbeat_loop();

  TransportConfig config_;
  std::string host_;
  std::uint16_t port_;
  RegisterInfo info_;  // generation bumped per reconnect (guarded by send_mu_)
  std::atomic<bool> stop_{false};
  std::mutex send_mu_;
  Socket sock_;
  std::thread heartbeat_thread_;
};

}  // namespace fedcleanse::comm
