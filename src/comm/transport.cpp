#include "comm/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/rng.h"

namespace fedcleanse::comm {

namespace {

std::string with_errno(const std::string& what, int err) {
  if (err == 0) return what;
  return what + ": " + std::strerror(err) + " (errno " + std::to_string(err) + ")";
}

// IPv4 resolution without DNS: numeric literals plus the one name every
// deployment script uses. Anything else is a config error, not a lookup.
in_addr resolve_host(const std::string& host) {
  in_addr addr{};
  const std::string target = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, target.c_str(), &addr) != 1) {
    throw TransportError("cannot parse host '" + host + "' (IPv4 literal or localhost)");
  }
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  // Best-effort: latency tuning, never fatal.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_nonblocking(int fd, bool on) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw TransportError("fcntl(F_GETFL)", errno);
  const int wanted = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, wanted) < 0) throw TransportError("fcntl(F_SETFL)", errno);
}

}  // namespace

TransportError::TransportError(const std::string& what, int sys_errno)
    : CommError("transport: " + with_errno(what, sys_errno)), errno_(sys_errno) {}

void TransportConfig::validate() const {
  if (connect_timeout_ms <= 0 || accept_timeout_ms <= 0) {
    throw ConfigError("transport timeouts must be positive");
  }
  if (max_connect_retries < 0 || backoff_base_ms <= 0 || backoff_cap_ms < backoff_base_ms) {
    throw ConfigError("transport backoff: need retries >= 0, 0 < base <= cap");
  }
  if (heartbeat_interval_ms <= 0 || heartbeat_timeout_ms < heartbeat_interval_ms) {
    throw ConfigError("heartbeat: need 0 < interval <= timeout");
  }
  if (max_frame_bytes < 64) {
    throw ConfigError("max_frame_bytes too small to carry any message");
  }
}

int backoff_delay_ms(const TransportConfig& config, int attempt) {
  if (attempt < 0) attempt = 0;
  // 1 << 20 ms is already ~17 minutes; beyond that the shift would overflow
  // long before the cap stops mattering.
  const int shift = attempt > 20 ? 20 : attempt;
  const long long delay = static_cast<long long>(config.backoff_base_ms) << shift;
  return static_cast<int>(delay > config.backoff_cap_ms ? config.backoff_cap_ms : delay);
}

int backoff_delay_jittered_ms(const TransportConfig& config, int node_id, int attempt) {
  const int delay = backoff_delay_ms(config, attempt);
  const int floor = (delay + 1) / 2;
  if (delay <= floor) return delay;
  // One splitmix64 draw per (seed, node, attempt) triple. The mixing
  // constants are arbitrary odd values keeping node 0 / attempt 0 away from
  // the zero state.
  std::uint64_t state = config.jitter_seed ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node_id)) *
                         0x9e3779b97f4a7c15ull) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt)) *
                         0xbf58476d1ce4e5b9ull);
  const std::uint64_t draw = common::splitmix64(state);
  const std::uint64_t span = static_cast<std::uint64_t>(delay - floor) + 1;
  return floor + static_cast<int>(draw % span);
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  // Best-effort: ENOTCONN on an already-dead connection is expected.
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(const std::uint8_t* data, std::size_t n) {
  if (fd_ < 0) throw TransportError("send on closed socket");
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw TransportError("send", errno);
    }
    sent += static_cast<std::size_t>(w);
  }
}

Socket::RecvStatus Socket::recv_some(std::uint8_t* buf, std::size_t cap, int timeout_ms,
                                     std::size_t* n_read) {
  *n_read = 0;
  if (fd_ < 0) throw TransportError("recv on closed socket");
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw TransportError("poll", errno);
    }
    if (rc == 0) return RecvStatus::kTimeout;
    break;
  }
  for (;;) {
    const ssize_t r = ::recv(fd_, buf, cap, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      // The peer being SIGKILLed surfaces as ECONNRESET — that is EOF for
      // our purposes (the reader declares the peer dead either way), but the
      // errno is preserved for diagnostics via the thrown path elsewhere.
      if (errno == ECONNRESET) return RecvStatus::kEof;
      throw TransportError("recv", errno);
    }
    if (r == 0) return RecvStatus::kEof;
    *n_read = static_cast<std::size_t>(r);
    return RecvStatus::kData;
  }
}

std::string Socket::peer_ip() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (fd_ < 0 || getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "?";
  }
  char buf[INET_ADDRSTRLEN] = {0};
  if (inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) return "?";
  return buf;
}

Listener::Listener(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError("socket", errno);
  int one = 1;
  (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = resolve_host(host.empty() ? "0.0.0.0" : host);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    throw TransportError("bind port " + std::to_string(port), err);
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    close();
    throw TransportError("listen", err);
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    close();
    throw TransportError("getsockname", err);
  }
  port_ = ntohs(addr.sin_port);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Listener::accept_for(int timeout_ms) {
  if (fd_ < 0) throw TransportError("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;
    throw TransportError("poll(listener)", errno);
  }
  if (rc == 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) return std::nullopt;
    throw TransportError("accept", errno);
  }
  set_nodelay(client);
  return Socket(client);
}

Socket connect_to(const std::string& host, std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket", errno);
  Socket sock(fd);  // owns the fd from here; any throw below closes it
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = resolve_host(host);
  addr.sin_port = htons(port);
  set_nonblocking(fd, true);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      throw TransportError("connect " + host + ":" + std::to_string(port), errno);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) throw TransportError("poll(connect)", errno);
    if (rc == 0) {
      throw TransportError("connect " + host + ":" + std::to_string(port) + " timed out",
                           ETIMEDOUT);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw TransportError("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) {
      throw TransportError("connect " + host + ":" + std::to_string(port), err);
    }
  }
  set_nonblocking(fd, false);
  set_nodelay(fd);
  return sock;
}

Socket connect_with_backoff(const std::string& host, std::uint16_t port,
                            const TransportConfig& config,
                            const std::function<bool()>& cancelled) {
  const int attempts = 1 + config.max_connect_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (cancelled && cancelled()) throw TransportError("connect cancelled");
    try {
      return connect_to(host, port, config.connect_timeout_ms);
    } catch (const TransportError&) {
      if (attempt + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_delay_ms(config, attempt)));
  }
  throw TransportError("connect " + host + ":" + std::to_string(port) +
                       ": retries exhausted");
}

}  // namespace fedcleanse::comm
