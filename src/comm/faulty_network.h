// Fault-injecting wire: a Network whose send paths run every message through
// a seeded FaultModel before it reaches a channel.
//
// Threading contract (mirrors Simulation's use of the wire): downlink state
// for link c is touched only by the coordinating (server) thread; uplink
// state only by client c's worker task. flush_delayed() and stats() must be
// called from the coordinating thread while no client tasks run (the
// simulation calls them at phase boundaries, after the pool barrier). Under
// that contract the only lock needed beyond the Channels' own mutexes is the
// short one guarding lazy per-link state creation, and the per-link RNG
// streams make every fault decision independent of thread scheduling.
//
// Like the base Network, per-link fault state is sparse and keyed by
// 2·client + direction, so only links that actually carry traffic cost
// memory — the map's key order is (client asc, downlink first), preserving
// the eager implementation's flush order exactly.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <mutex>

#include "comm/fault_model.h"
#include "comm/network.h"

namespace fedcleanse::comm {

class FaultyNetwork : public Network {
 public:
  FaultyNetwork(int n_clients, FaultConfig config, std::uint64_t seed);

  void send_to_client(int client, Message message) override;
  void send_to_server(int client, Message message) override;

  // Deliver every message that was delayed in an *earlier* phase; messages
  // delayed in the current phase stay held, so a delayed message always
  // misses at least one collect deadline before arriving (stale by then).
  void flush_delayed() override;

  const FaultModel& model() const { return model_; }
  // Aggregate fault counts across all links (coordinating thread only).
  FaultStats stats() const;

  // Checkpoint support (coordinating thread only): base channels, then the
  // phase counter, the touched links' fault stats and delayed queues, and
  // the fault model's touched RNG stream states — all sparse, keyed by
  // 2·client + direction.
  void save_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

 private:
  struct Delayed {
    Message message;
    std::uint64_t phase;
  };
  struct LinkState {
    std::deque<Delayed> delayed;
    FaultStats stats;
  };

  void inject(int client, FaultModel::Direction dir, Message message);
  void deliver(int client, FaultModel::Direction dir, Message message);
  // Find-or-create; thread-safe creation, per-link mutation under the
  // threading contract above.
  LinkState& state(int client, FaultModel::Direction dir);

  FaultModel model_;
  mutable std::mutex mu_;
  std::map<int, LinkState> links_;  // key = 2·client + dir, lazily created
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace fedcleanse::comm
