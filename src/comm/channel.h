// Thread-safe FIFO message channel — the in-memory "wire" between the
// server and one client.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.h"

namespace fedcleanse::comm {

class Channel {
 public:
  // Enqueue a message; returns its wire size in bytes.
  std::size_t send(Message message);

  // Non-blocking receive.
  std::optional<Message> try_recv();
  // Blocking receive (used when clients run on worker threads).
  Message recv();

  std::size_t pending() const;
  std::size_t bytes_sent() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace fedcleanse::comm
