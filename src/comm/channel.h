// Thread-safe FIFO message channel — the in-memory "wire" between the
// server and one client.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.h"

namespace fedcleanse::comm {

class Channel {
 public:
  // Enqueue a message; returns its wire size in bytes.
  std::size_t send(Message message);

  // Non-blocking receive.
  std::optional<Message> try_recv();
  // Blocking receive (used when clients run on worker threads).
  Message recv();
  // Blocking receive with a deadline: returns the next message, or nullopt if
  // none arrived within `timeout`. The degraded-mode round protocol uses this
  // so a crashed or straggling peer can never wedge the server. The deadline
  // is absolute (computed once up front), so spurious wakeups cannot stretch
  // the wait beyond `timeout`.
  std::optional<Message> recv_for(std::chrono::milliseconds timeout);

  // Block until the queue is non-empty or the deadline passes, without
  // consuming anything. Lets a client main loop sleep between server messages
  // while leaving the actual drain to try_recv-based handlers.
  bool wait_nonempty(std::chrono::milliseconds timeout);

  std::size_t pending() const;
  std::size_t bytes_sent() const;

  // Checkpoint support (quiescent wire only — no concurrent senders or
  // receivers): copy out / replace the queued messages and byte counter.
  // Counter restoration keeps Network::total_bytes() identical across a
  // crash-resume, so traffic accounting never forgets the pre-crash rounds.
  std::vector<Message> snapshot_queue() const;
  void restore(std::vector<Message> queue, std::size_t bytes_sent);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace fedcleanse::comm
