#include "comm/socket_network.h"

#include <algorithm>

#include "comm/scheduler.h"
#include "common/logging.h"
#include "common/sysinfo.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedcleanse::comm {

namespace {

constexpr std::chrono::milliseconds kRecvPollSlice{50};

Message control_message(MessageType type, std::int32_t sender,
                        std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.type = type;
  m.round = 0;
  m.sender = sender;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

void journal_event(const char* kind, const char* node, std::int32_t client,
                   const char* extra_key = nullptr, const std::string& extra = "") {
  obs::Journal* journal = obs::ambient_journal();
  if (journal == nullptr) return;
  obs::JsonObject entry;
  entry.add("kind", kind).add("node", node).add("client", client);
  if (extra_key != nullptr) entry.add(extra_key, extra);
  journal->write(entry);
}

// A heartbeat that carries a status snapshot — build, attach, restamp. The
// bare beacon stays as-is when telemetry is off.
Message heartbeat_message(std::int32_t sender) {
  Message m = control_message(MessageType::kHeartbeat, sender);
  if (auto status = current_heartbeat_status()) {
    m.payload = encode_heartbeat_status(*status);
    m.stamp();
  }
  return m;
}

}  // namespace

std::optional<HeartbeatStatus> current_heartbeat_status() {
  if (!obs::metrics_enabled()) return std::nullopt;
  HeartbeatStatus s;
  s.round = static_cast<std::uint32_t>(obs::metrics::current_round().value());
  s.wire_bytes = obs::metrics::transport_bytes_sent().value();
  s.peak_rss = static_cast<std::uint64_t>(common::peak_rss_bytes());
  return s;
}

// --- SocketServerNetwork -----------------------------------------------------

SocketServerNetwork::SocketServerNetwork(int n_clients, const TransportConfig& config,
                                         const std::string& host, std::uint16_t port)
    : Network(n_clients), config_(config), listener_(host, port) {
  config_.validate();
  accept_thread_ = std::thread([this] { accept_loop(); });
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

SocketServerNetwork::~SocketServerNetwork() {
  stop_.store(true);
  peers_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  for (auto& [id, peer] : peers_) {
    peer->sock.shutdown_both();
    if (peer->reader.joinable()) peer->reader.join();
  }
}

SocketServerNetwork::Peer* SocketServerNetwork::peer_ptr(int client) {
  auto it = peers_.find(client);
  return it == peers_.end() ? nullptr : it->second.get();
}

int SocketServerNetwork::n_alive() const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  int n = 0;
  for (const auto& [id, peer] : peers_) n += peer->alive ? 1 : 0;
  return n;
}

bool SocketServerNetwork::is_alive(int client) const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  auto it = peers_.find(client);
  return it != peers_.end() && it->second->alive;
}

bool SocketServerNetwork::wait_for_clients(int n, int timeout_ms) {
  const auto count_alive = [this] {
    int alive = 0;
    for (const auto& [id, peer] : peers_) alive += peer->alive ? 1 : 0;
    return alive;
  };
  std::unique_lock<std::mutex> lock(peers_mu_);
  peers_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                     [&] { return stop_.load() || count_alive() >= n; });
  return count_alive() >= n;
}

void SocketServerNetwork::accept_loop() {
  while (!stop_.load()) {
    std::optional<Socket> sock;
    try {
      sock = listener_.accept_for(config_.accept_timeout_ms);
    } catch (const TransportError& e) {
      if (stop_.load()) return;
      FC_LOG(Warn) << "server transport: accept failed — " << e.what();
      continue;
    }
    if (sock) handle_registration(std::move(*sock));
  }
}

void SocketServerNetwork::handle_registration(Socket sock) {
  RegisterInfo info;
  try {
    FrameDecoder decoder(config_.max_frame_bytes);
    auto hello = recv_frame(sock, decoder, config_.connect_timeout_ms);
    if (!hello || hello->type != MessageType::kRegister) {
      FC_LOG(Warn) << "server transport: connection did not register — dropped";
      return;
    }
    info = decode_register(hello->payload);
  } catch (const Error& e) {
    FC_LOG(Warn) << "server transport: registration handshake failed — " << e.what();
    return;
  }
  if (info.role != NodeRole::kClient || info.node_id < 0 || info.node_id >= n_clients()) {
    FC_LOG(Warn) << "server transport: rejecting registration of node " << info.node_id;
    RegisterAck nack;
    nack.epoch = epoch_.load();
    try {
      send_frame(sock, control_message(MessageType::kRegisterAck, -1,
                                       encode_register_ack(nack)));
    } catch (const TransportError&) {
    }
    return;
  }
  if (info.epoch > epoch_.load()) {
    // The client resumed from a snapshot newer than the state this server
    // restored — admitting it would mix snapshot generations. Nack with our
    // epoch; the operator must restart the server from a newer snapshot (or
    // the client from scratch).
    FC_LOG(Warn) << "server transport: rejecting client " << info.node_id
                 << " from future epoch " << info.epoch << " (ours is " << epoch_.load()
                 << ")";
    RegisterAck nack;
    nack.epoch = epoch_.load();
    try {
      send_frame(sock, control_message(MessageType::kRegisterAck, -1,
                                       encode_register_ack(nack)));
    } catch (const TransportError&) {
    }
    return;
  }

  const int client = info.node_id;
  Peer* peer = nullptr;
  bool reconnect = false;
  std::uint32_t generation = 0;
  {
    std::unique_lock<std::mutex> lock(peers_mu_);
    auto& slot = peers_[client];
    if (!slot) slot = std::make_unique<Peer>();
    peer = slot.get();
    if (peer->reader.joinable()) {
      // Replace the stale connection: wake its reader, join it outside the
      // lock (the reader's death path takes peers_mu_), then swap sockets.
      reconnect = true;
      peer->sock.shutdown_both();
      std::thread old_reader = std::move(peer->reader);
      lock.unlock();
      old_reader.join();
      lock.lock();
    }
    {
      std::lock_guard<std::mutex> send_lock(peer->send_mu);
      peer->sock = std::move(sock);
    }
    peer->generation += 1;
    generation = peer->generation;
    peer->alive = true;
    peer->last_seen = std::chrono::steady_clock::now();
    peer->reader = std::thread([this, client, generation] { reader_loop(client, generation); });
  }
  peers_cv_.notify_all();

  RegisterAck ack;
  ack.accepted = true;
  ack.server_known = true;
  ack.server_port = listener_.port();
  ack.n_clients_registered = n_alive();
  ack.epoch = epoch_.load();
  {
    std::lock_guard<std::mutex> send_lock(peer->send_mu);
    try {
      send_frame(peer->sock, control_message(MessageType::kRegisterAck, -1,
                                             encode_register_ack(ack)));
    } catch (const TransportError& e) {
      FC_LOG(Warn) << "server transport: RegisterAck to client " << client
                   << " failed — " << e.what();
    }
  }
  if (reconnect) {
    FC_METRIC(transport_reconnects().inc());
    journal_event("reconnect", "server", client, "generation", std::to_string(generation));
    FC_LOG(Info) << "client " << client << " reconnected (generation " << generation << ")";
  } else {
    journal_event("client_register", "server", client);
    FC_LOG(Info) << "client " << client << " registered";
  }
}

void SocketServerNetwork::mark_dead(int client, std::uint32_t generation,
                                    const char* reason) {
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    Peer* peer = peer_ptr(client);
    if (peer == nullptr || peer->generation != generation || !peer->alive) return;
    peer->alive = false;
    peer->sock.shutdown_both();
  }
  peers_cv_.notify_all();
  FC_METRIC(transport_dead_clients().inc());
  journal_event("client_dead", "server", client, "reason", reason);
  FC_LOG(Warn) << "client " << client << " declared dead (" << reason << ")";
}

void SocketServerNetwork::monitor_loop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.heartbeat_interval_ms));
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<int, std::uint32_t>> stale;
    {
      std::lock_guard<std::mutex> lock(peers_mu_);
      for (const auto& [id, peer] : peers_) {
        if (peer->alive &&
            now - peer->last_seen >
                std::chrono::milliseconds(config_.heartbeat_timeout_ms)) {
          stale.emplace_back(id, peer->generation);
        }
      }
    }
    for (const auto& [id, generation] : stale) mark_dead(id, generation, "heartbeat");
  }
}

void SocketServerNetwork::reader_loop(int client, std::uint32_t generation) {
  Peer* peer = nullptr;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peer = peer_ptr(client);
  }
  if (peer == nullptr) return;
  FrameDecoder decoder(config_.max_frame_bytes);
  std::uint8_t buf[65536];
  while (!stop_.load()) {
    std::size_t n = 0;
    Socket::RecvStatus status;
    try {
      status = peer->sock.recv_some(buf, sizeof(buf), config_.accept_timeout_ms, &n);
    } catch (const TransportError&) {
      mark_dead(client, generation, "eof");
      return;
    }
    if (status == Socket::RecvStatus::kTimeout) continue;
    if (status == Socket::RecvStatus::kEof) {
      mark_dead(client, generation, "eof");
      return;
    }
    try {
      decoder.feed(buf, n);
      while (auto m = decoder.next()) {
        {
          std::lock_guard<std::mutex> lock(peers_mu_);
          if (peer->generation != generation) return;  // superseded mid-drain
          peer->last_seen = std::chrono::steady_clock::now();
        }
        FC_METRIC(transport_frames_recv().inc());
        if (m->type == MessageType::kHeartbeat) {
          FC_METRIC(transport_heartbeats().inc());
          if (!m->payload.empty()) {
            try {
              const HeartbeatStatus status = decode_heartbeat_status(m->payload);
              std::lock_guard<std::mutex> lock(peers_mu_);
              if (peer->generation == generation) {
                peer->status = status;
                peer->has_status = true;
              }
            } catch (const DecodeError&) {
              // A malformed snapshot only costs the fleet view one sample.
            }
          }
          std::lock_guard<std::mutex> send_lock(peer->send_mu);
          try {
            send_frame(peer->sock, control_message(MessageType::kHeartbeatAck, -1));
          } catch (const TransportError&) {
            // The broken pipe surfaces as EOF on the next recv.
          }
          continue;
        }
        if (m->type == MessageType::kRegister) continue;  // already registered
        Network::send_to_server(client, std::move(*m));
      }
    } catch (const Error& e) {
      // Framing/decode failure means the byte stream is desynced — the
      // connection is unusable, exactly like an EOF.
      FC_LOG(Warn) << "client " << client << " stream failed — " << e.what();
      mark_dead(client, generation, "decode");
      return;
    }
  }
}

void SocketServerNetwork::send_to_client(int client, Message message) {
  Peer* peer = nullptr;
  std::uint32_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    Peer* p = peer_ptr(client);
    if (p == nullptr || !p->alive) {
      FC_LOG(Debug) << "send to dead client " << client << " dropped ("
                    << message_type_name(message.type) << ")";
      return;  // the retry/quorum layer owns recovery
    }
    peer = p;
    generation = p->generation;
  }
  const std::size_t size = message.wire_size();
  // The span the merged timeline pairs with the client's handle span: same
  // "corr" arg, and (after wall-anchor alignment) this one starts first.
  obs::Span span("wire_send", "wire");
  span.set_arg("corr", static_cast<std::int64_t>(message.correlation));
  try {
    std::lock_guard<std::mutex> send_lock(peer->send_mu);
    send_frame(peer->sock, message);
  } catch (const TransportError& e) {
    FC_LOG(Warn) << "send to client " << client << " failed — " << e.what();
    mark_dead(client, generation, "send");
    return;
  }
  FC_METRIC(transport_frames_sent().inc());
  FC_METRIC(transport_bytes_sent().add(size + kFrameLengthBytes));
}

std::string SocketServerNetwork::peers_status_json() const {
  const auto now = std::chrono::steady_clock::now();
  std::string out = "[";
  std::lock_guard<std::mutex> lock(peers_mu_);
  bool first = true;
  for (const auto& [id, peer] : peers_) {
    obs::JsonObject row;
    row.add("client", id)
        .add("alive", peer->alive)
        .add("generation", static_cast<std::uint64_t>(peer->generation))
        .add("heartbeat_age_ms",
             static_cast<std::int64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                           now - peer->last_seen)
                                           .count()));
    if (peer->has_status) {
      row.add("round", static_cast<std::uint64_t>(peer->status.round))
          .add("wire_bytes", peer->status.wire_bytes)
          .add("peak_rss", peer->status.peak_rss);
    }
    if (!first) out += ",";
    first = false;
    out += row.str();
  }
  out += "]";
  return out;
}

std::optional<Message> SocketServerNetwork::recv_from_client_for(
    int client, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (auto m = Network::try_recv_from_client(client)) return m;
    // Queue drained: a dead client can send nothing more, so give the retry
    // layer its answer now instead of sitting out the full deadline.
    if (!is_alive(client)) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    uplink(client).wait_nonempty(std::min(remaining, kRecvPollSlice));
  }
}

void SocketServerNetwork::broadcast_shutdown() {
  std::vector<int> targets;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (const auto& [id, peer] : peers_) {
      if (peer->alive) targets.push_back(id);
    }
  }
  for (int c : targets) send_to_client(c, control_message(MessageType::kShutdown, -1));
}

// --- SocketClientNetwork -----------------------------------------------------

SocketClientNetwork::SocketClientNetwork(int n_clients, int client_id,
                                         const TransportConfig& config,
                                         const std::string& scheduler_host,
                                         std::uint16_t scheduler_port)
    : Network(n_clients),
      client_id_(client_id),
      config_(config),
      scheduler_host_(scheduler_host),
      scheduler_port_(scheduler_port) {
  config_.validate();
  FC_REQUIRE(client_id >= 0 && client_id < n_clients, "client id out of range");
  io_thread_ = std::thread([this] { io_loop(); });
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

SocketClientNetwork::~SocketClientNetwork() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(link_mu_);
    sock_.shutdown_both();
  }
  link_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (io_thread_.joinable()) io_thread_.join();
}

bool SocketClientNetwork::connected() const {
  std::lock_guard<std::mutex> lock(link_mu_);
  return registered_;
}

bool SocketClientNetwork::wait_connected(int timeout_ms) {
  std::unique_lock<std::mutex> lock(link_mu_);
  return link_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return registered_ || stop_.load(); }) &&
         registered_;
}

std::optional<Socket> SocketClientNetwork::establish(std::uint32_t generation) {
  RegisterInfo info;
  info.role = NodeRole::kClient;
  info.node_id = client_id_;
  info.generation = generation;
  info.epoch = epoch_.load();
  try {
    const RegisterAck from_scheduler =
        scheduler_register_once(scheduler_host_, scheduler_port_, info, config_);
    if (!from_scheduler.accepted || !from_scheduler.server_known) {
      FC_LOG(Debug) << "client " << client_id_
                    << ": scheduler has no server yet — will retry";
      return std::nullopt;
    }
    const std::string host =
        from_scheduler.server_host.empty() ? "127.0.0.1" : from_scheduler.server_host;
    Socket sock = connect_to(host, from_scheduler.server_port, config_.connect_timeout_ms);
    send_frame(sock, control_message(MessageType::kRegister, client_id_,
                                     encode_register(info)));
    FrameDecoder decoder(config_.max_frame_bytes);
    auto reply = recv_frame(sock, decoder, config_.connect_timeout_ms);
    if (!reply || reply->type != MessageType::kRegisterAck ||
        !decode_register_ack(reply->payload).accepted) {
      FC_LOG(Warn) << "client " << client_id_ << ": server rejected registration";
      return std::nullopt;
    }
    return sock;
  } catch (const Error& e) {
    FC_LOG(Debug) << "client " << client_id_ << ": connect attempt failed — " << e.what();
    return std::nullopt;
  }
}

void SocketClientNetwork::io_loop() {
  std::uint32_t generation = 0;
  int attempt = 0;
  while (!stop_.load() && !shutdown_.load()) {
    auto sock = establish(generation);
    if (!sock) {
      // Jittered so a restarted server doesn't take the whole cohort's
      // reregistration in one synchronized stampede (every survivor saw the
      // EOF within the same poll slice). Deterministic per (seed, id).
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoff_delay_jittered_ms(config_, client_id_, attempt)));
      attempt = std::min(attempt + 1, config_.max_connect_retries);
      continue;
    }
    attempt = 0;
    {
      std::lock_guard<std::mutex> lock(link_mu_);
      sock_ = std::move(*sock);
      registered_ = true;
      generation_ = generation;
    }
    link_cv_.notify_all();
    if (generation > 0) {
      FC_METRIC(transport_reconnects().inc());
      journal_event("reconnect", "client", client_id_, "generation",
                    std::to_string(generation));
    }
    FC_LOG(Info) << "client " << client_id_ << " registered with server (generation "
                 << generation << ")";

    FrameDecoder decoder(config_.max_frame_bytes);
    std::uint8_t buf[65536];
    bool link_up = true;
    while (link_up && !stop_.load() && !shutdown_.load()) {
      std::size_t n = 0;
      try {
        const auto status = sock_.recv_some(buf, sizeof(buf), config_.accept_timeout_ms, &n);
        if (status == Socket::RecvStatus::kTimeout) continue;
        if (status == Socket::RecvStatus::kEof) break;
        decoder.feed(buf, n);
        while (auto m = decoder.next()) {
          FC_METRIC(transport_frames_recv().inc());
          switch (m->type) {
            case MessageType::kShutdown:
              shutdown_.store(true);
              link_up = false;
              break;
            case MessageType::kHeartbeatAck:
              break;
            default: {
              // Receive-side marker for the merged timeline: carries the
              // server's correlation id at this client's local clock.
              obs::Span span("wire_recv", "wire");
              span.set_arg("corr", static_cast<std::int64_t>(m->correlation));
              Network::send_to_client(client_id_, std::move(*m));
              break;
            }
          }
        }
      } catch (const Error& e) {
        FC_LOG(Warn) << "client " << client_id_ << ": server link failed — " << e.what();
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(link_mu_);
      registered_ = false;
      sock_.close();
    }
    link_cv_.notify_all();
    generation += 1;
  }
  {
    std::lock_guard<std::mutex> lock(link_mu_);
    registered_ = false;
  }
  link_cv_.notify_all();
}

void SocketClientNetwork::heartbeat_loop() {
  while (!stop_.load() && !shutdown_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.heartbeat_interval_ms));
    std::lock_guard<std::mutex> lock(link_mu_);
    if (!registered_) continue;
    try {
      send_frame(sock_, heartbeat_message(client_id_));
      FC_METRIC(transport_frames_sent().inc());
    } catch (const TransportError&) {
      // The io thread sees the same broken pipe as EOF and reconnects.
    }
  }
}

void SocketClientNetwork::send_to_server(int client, Message message) {
  FC_REQUIRE(client == client_id_, "socket client can only send as itself");
  const std::size_t size = message.wire_size();
  std::lock_guard<std::mutex> lock(link_mu_);
  if (!registered_) {
    throw TransportError("server link down (reconnect in progress)");
  }
  send_frame(sock_, message);  // TransportError propagates; io thread reconnects
  FC_METRIC(transport_frames_sent().inc());
  FC_METRIC(transport_bytes_sent().add(size + kFrameLengthBytes));
}

}  // namespace fedcleanse::comm
