#include "comm/faulty_network.h"

#include "obs/metrics.h"

namespace fedcleanse::comm {

FaultyNetwork::FaultyNetwork(int n_clients, FaultConfig config, std::uint64_t seed)
    : Network(n_clients), model_(std::move(config), n_clients, seed) {}

FaultyNetwork::LinkState& FaultyNetwork::state(int client, FaultModel::Direction dir) {
  const int key = 2 * client + static_cast<int>(dir);
  std::lock_guard<std::mutex> lock(mu_);
  return links_[key];
}

void FaultyNetwork::deliver(int client, FaultModel::Direction dir, Message message) {
  if (dir == FaultModel::Direction::kDownlink) {
    Network::send_to_client(client, std::move(message));
  } else {
    Network::send_to_server(client, std::move(message));
  }
}

void FaultyNetwork::inject(int client, FaultModel::Direction dir, Message message) {
  auto& st = state(client, dir);
  if (model_.crashed(client, message.round)) {
    ++st.stats.crashed;
    FC_METRIC(fault_crashed().inc());
    return;
  }
  const auto fate = model_.next_fate(client, dir, message.round);
  if (fate.drop) {
    ++st.stats.dropped;
    FC_METRIC(fault_dropped().inc());
    return;
  }
  if (fate.corrupt) {
    model_.corrupt(message, client, dir);
    ++st.stats.corrupted;
    FC_METRIC(fault_corrupted().inc());
  }
  if (fate.delay) {
    ++st.stats.delayed;
    FC_METRIC(fault_delayed().inc());
    st.delayed.push_back({std::move(message), phase_.load(std::memory_order_relaxed)});
    return;
  }
  if (fate.duplicate) {
    ++st.stats.duplicated;
    FC_METRIC(fault_duplicated().inc());
    deliver(client, dir, message);  // copy
  }
  deliver(client, dir, std::move(message));
}

void FaultyNetwork::send_to_client(int client, Message message) {
  inject(client, FaultModel::Direction::kDownlink, std::move(message));
}

void FaultyNetwork::send_to_server(int client, Message message) {
  inject(client, FaultModel::Direction::kUplink, std::move(message));
}

void FaultyNetwork::flush_delayed() {
  const std::uint64_t now = phase_.load(std::memory_order_relaxed);
  // Key order is (client asc, downlink before uplink) — the same order the
  // dense implementation walked.
  for (auto& [key, st] : links_) {
    const int c = key / 2;
    const auto dir = static_cast<FaultModel::Direction>(key % 2);
    while (!st.delayed.empty() && st.delayed.front().phase < now) {
      deliver(c, dir, std::move(st.delayed.front().message));
      st.delayed.pop_front();
    }
  }
  phase_.store(now + 1, std::memory_order_relaxed);
}

FaultStats FaultyNetwork::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FaultStats total;
  for (const auto& [key, link] : links_) total += link.stats;
  return total;
}

void FaultyNetwork::save_state(common::ByteWriter& w) const {
  Network::save_state(w);
  w.write_u64(phase_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  w.write_u32(static_cast<std::uint32_t>(links_.size()));
  for (const auto& [key, link] : links_) {
    w.write_i32(key);
    w.write_u64(static_cast<std::uint64_t>(link.stats.dropped));
    w.write_u64(static_cast<std::uint64_t>(link.stats.corrupted));
    w.write_u64(static_cast<std::uint64_t>(link.stats.duplicated));
    w.write_u64(static_cast<std::uint64_t>(link.stats.delayed));
    w.write_u64(static_cast<std::uint64_t>(link.stats.crashed));
    w.write_u32(static_cast<std::uint32_t>(link.delayed.size()));
    for (const auto& d : link.delayed) {
      w.write_u64(d.phase);
      write_message_verbatim(w, d.message);
    }
  }
  const auto streams = model_.stream_states();
  w.write_u32(static_cast<std::uint32_t>(streams.size()));
  for (const auto& [key, s] : streams) {
    w.write_i32(key);
    common::write_rng_state(w, s);
  }
}

void FaultyNetwork::restore_state(common::ByteReader& r) {
  Network::restore_state(r);
  phase_.store(r.read_u64(), std::memory_order_relaxed);
  const std::uint32_t n_links = r.read_u32();
  {
    std::lock_guard<std::mutex> lock(mu_);
    links_.clear();
    for (std::uint32_t i = 0; i < n_links; ++i) {
      const int key = r.read_i32();
      if (key < 0 || key >= 2 * n_clients()) {
        throw CheckpointError("fault snapshot names link " + std::to_string(key) +
                              " outside [0, " + std::to_string(2 * n_clients()) + ")");
      }
      LinkState& link = links_[key];
      link.stats.dropped = static_cast<std::size_t>(r.read_u64());
      link.stats.corrupted = static_cast<std::size_t>(r.read_u64());
      link.stats.duplicated = static_cast<std::size_t>(r.read_u64());
      link.stats.delayed = static_cast<std::size_t>(r.read_u64());
      link.stats.crashed = static_cast<std::size_t>(r.read_u64());
      const std::uint32_t n_delayed = r.read_u32();
      link.delayed.clear();
      for (std::uint32_t j = 0; j < n_delayed; ++j) {
        Delayed d;
        d.phase = r.read_u64();
        d.message = read_message_verbatim(r);
        link.delayed.push_back(std::move(d));
      }
    }
  }
  const std::uint32_t n_streams = r.read_u32();
  std::vector<std::pair<int, common::RngState>> streams;
  streams.reserve(n_streams);
  for (std::uint32_t i = 0; i < n_streams; ++i) {
    const int key = r.read_i32();
    streams.emplace_back(key, common::read_rng_state(r));
  }
  model_.restore_stream_states(streams);
}

}  // namespace fedcleanse::comm
