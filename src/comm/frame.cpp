#include "comm/frame.h"

#include <cstring>

namespace fedcleanse::comm {

std::vector<std::uint8_t> encode_frame(const Message& m) {
  const std::vector<std::uint8_t> body = encode_message(m);
  std::vector<std::uint8_t> frame(kFrameLengthBytes + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  frame[0] = static_cast<std::uint8_t>(len & 0xff);
  frame[1] = static_cast<std::uint8_t>((len >> 8) & 0xff);
  frame[2] = static_cast<std::uint8_t>((len >> 16) & 0xff);
  frame[3] = static_cast<std::uint8_t>((len >> 24) & 0xff);
  std::memcpy(frame.data() + kFrameLengthBytes, body.data(), body.size());
  return frame;
}

void send_frame(Socket& socket, const Message& m) {
  const std::vector<std::uint8_t> frame = encode_frame(m);
  socket.send_all(frame.data(), frame.size());
}

std::optional<Message> recv_frame(Socket& socket, FrameDecoder& decoder, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t buf[4096];
  for (;;) {
    if (auto m = decoder.next()) return m;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    std::size_t n = 0;
    const auto status =
        socket.recv_some(buf, sizeof(buf), static_cast<int>(remaining.count()), &n);
    if (status == Socket::RecvStatus::kEof) {
      throw TransportError("peer closed before completing a frame");
    }
    if (status == Socket::RecvStatus::kData) decoder.feed(buf, n);
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return;
  // Compact the consumed prefix before growing — keeps the buffer bounded by
  // one frame plus one read, instead of the whole connection history.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Message> FrameDecoder::next() {
  if (poisoned_) {
    throw TransportError("frame decoder poisoned by earlier framing error");
  }
  if (buffered() < kFrameLengthBytes) return std::nullopt;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len < kMessageHeaderBytes) {
    poisoned_ = true;
    throw TransportError("frame length " + std::to_string(len) +
                         " below message header size");
  }
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    throw TransportError("frame length " + std::to_string(len) + " exceeds limit " +
                         std::to_string(max_frame_bytes_));
  }
  if (buffered() < kFrameLengthBytes + len) return std::nullopt;
  std::vector<std::uint8_t> body(p + kFrameLengthBytes, p + kFrameLengthBytes + len);
  Message m;
  try {
    m = decode_message(body);  // DecodeError propagates: stream is desynced
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  pos_ += kFrameLengthBytes + len;
  return m;
}

}  // namespace fedcleanse::comm
