#include "comm/channel.h"

#include "obs/metrics.h"

namespace fedcleanse::comm {

std::size_t Channel::send(Message message) {
  const std::size_t size = message.wire_size();
  FC_METRIC(channel_msgs().inc());
  FC_METRIC(channel_bytes().add(size));
  FC_METRIC(message_bytes().observe(static_cast<double>(size)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_sent_ += size;
    queue_.push_back(std::move(message));
  }
  cv_.notify_one();
  return size;
}

std::optional<Message> Channel::try_recv() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

Message Channel::recv() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Channel::recv_for(std::chrono::milliseconds timeout) {
  // wait_until against a precomputed deadline: a spurious wakeup re-waits only
  // the remaining time, where wait_for would restart the full timeout.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_until(lock, deadline, [this] { return !queue_.empty(); })) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

bool Channel::wait_nonempty(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_until(lock, deadline, [this] { return !queue_.empty(); });
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t Channel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

std::vector<Message> Channel::snapshot_queue() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {queue_.begin(), queue_.end()};
}

void Channel::restore(std::vector<Message> queue, std::size_t bytes_sent) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.assign(std::make_move_iterator(queue.begin()),
                  std::make_move_iterator(queue.end()));
    bytes_sent_ = bytes_sent;
  }
  cv_.notify_all();
}

}  // namespace fedcleanse::comm
