// POSIX TCP primitives for the multi-process deployment (DESIGN.md §15).
//
// Everything here is deliberately thin: RAII file descriptors, deadline-
// bounded connect/accept/recv, capped exponential backoff, and one typed
// error. The framing (comm/frame.h) and node roles (comm/socket_network.h,
// comm/scheduler.h) layer on top; nothing above this header touches a raw
// syscall, so errno is captured exactly once — at the syscall site — and
// travels inside TransportError.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/error.h"

namespace fedcleanse::comm {

// Socket or framing failure. Mirrors the DecodeError pattern: everything the
// transport can throw derives from one type, so callers that only care about
// "the wire broke" catch TransportError while CommError stays the layer-wide
// base. `sys_errno` is the errno observed at the failing syscall (0 for
// protocol-level failures like an oversized frame length).
class TransportError : public CommError {
 public:
  explicit TransportError(const std::string& what, int sys_errno = 0);
  int sys_errno() const { return errno_; }

 private:
  int errno_;
};

// Deployment knobs shared by every node role. fl::ProtocolConfig embeds this
// struct, and the scheduler/server/client binaries expose each field as a
// flag — no hardcoded caps (ISSUE 7 satellite).
struct TransportConfig {
  // Deadline for one connect() / registration handshake attempt.
  int connect_timeout_ms = 5000;
  // Poll granularity of accept loops (also the stop-flag latency bound).
  int accept_timeout_ms = 200;
  // connect_with_backoff: attempts before giving up, and the capped
  // exponential delay between them: min(base << attempt, cap).
  int max_connect_retries = 10;
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2000;
  // Liveness: every node beacons at interval; a peer silent for timeout is
  // declared dead and its round contribution is dropped under quorum rules.
  int heartbeat_interval_ms = 250;
  int heartbeat_timeout_ms = 5000;
  // Upper bound a frame length prefix may claim (a Byzantine peer must not
  // be able to force a giant allocation).
  std::size_t max_frame_bytes = 64ull << 20;
  // Seed for the deterministic reconnect jitter (DESIGN.md §18). The deploy
  // binaries set it to the run seed, so the jitter schedule of every node is
  // reproducible from (run_seed, node_id) alone. 0 is a valid seed.
  std::uint64_t jitter_seed = 0;

  void validate() const;  // throws ConfigError on nonsensical knobs
};

// Delay before retry `attempt` (0-based): min(base << attempt, cap), clamped
// against shift overflow. Pure, so the backoff curve is unit-testable.
int backoff_delay_ms(const TransportConfig& config, int attempt);

// Jittered variant for reconnect/reregister storms: a restarted server would
// otherwise see every surviving client's retry timer fire in lockstep (they
// all observed the EOF within one poll slice). Returns a delay in
// [ceil(d/2), d] where d = backoff_delay_ms(config, attempt), derived purely
// from (config.jitter_seed, node_id, attempt) via splitmix64 — deterministic
// across runs, divergent across nodes. Wall-clock only; never touches the
// protocol RNG, so byte-identity is unaffected.
int backoff_delay_jittered_ms(const TransportConfig& config, int node_id, int attempt);

// Move-only RAII wrapper over a connected TCP socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  // Shut both directions down without closing the fd: a reader blocked in
  // recv/poll on another thread wakes with EOF, while the fd number stays
  // owned (no close/reuse race). Safe to call from any thread.
  void shutdown_both();

  // Write the entire buffer (retrying partial writes); throws TransportError
  // on any failure, EPIPE included (SIGPIPE is suppressed via MSG_NOSIGNAL).
  void send_all(const std::uint8_t* data, std::size_t n);

  enum class RecvStatus { kData, kEof, kTimeout };
  // Deadline-bounded read of up to `cap` bytes. kData sets *n_read > 0; kEof
  // means the peer closed cleanly; kTimeout means nothing arrived in time.
  // Throws TransportError on a socket error.
  RecvStatus recv_some(std::uint8_t* buf, std::size_t cap, int timeout_ms,
                       std::size_t* n_read);

  // Peer address as "a.b.c.d" (diagnostics / scheduler registration).
  std::string peer_ip() const;

 private:
  int fd_ = -1;
};

// Listening TCP socket bound to host:port (port 0 = ephemeral; port() reports
// the actual choice). SO_REUSEADDR is set so chaos-test restarts rebind fast.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port);
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  // Accept one connection within the deadline; nullopt on timeout. Throws
  // TransportError on listener failure. The accepted socket has TCP_NODELAY.
  std::optional<Socket> accept_for(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// One bounded connect attempt (non-blocking connect + poll); TCP_NODELAY on
// success, TransportError on refusal/timeout. Host may be an IPv4 literal or
// "localhost".
Socket connect_to(const std::string& host, std::uint16_t port, int timeout_ms);

// Retry connect_to with capped exponential backoff until it succeeds, the
// attempts are exhausted (throws the last TransportError), or `cancelled`
// returns true (throws TransportError "cancelled").
Socket connect_with_backoff(const std::string& host, std::uint16_t port,
                            const TransportConfig& config,
                            const std::function<bool()>& cancelled = {});

}  // namespace fedcleanse::comm
