#include "comm/message.h"

namespace fedcleanse::comm {

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kModelBroadcast: return "ModelBroadcast";
    case MessageType::kModelUpdate: return "ModelUpdate";
    case MessageType::kRankRequest: return "RankRequest";
    case MessageType::kRankReport: return "RankReport";
    case MessageType::kVoteRequest: return "VoteRequest";
    case MessageType::kVoteReport: return "VoteReport";
    case MessageType::kMaskBroadcast: return "MaskBroadcast";
    case MessageType::kAccuracyRequest: return "AccuracyRequest";
    case MessageType::kAccuracyReport: return "AccuracyReport";
  }
  return "?";
}

std::vector<std::uint8_t> encode_flat_params(const std::vector<float>& params) {
  common::ByteWriter w;
  w.write_f32_vector(params);
  return w.take();
}

std::vector<float> decode_flat_params(const std::vector<std::uint8_t>& payload) {
  common::ByteReader r(payload);
  return r.read_f32_vector();
}

std::vector<std::uint8_t> encode_ranks(const std::vector<std::uint32_t>& ranks) {
  common::ByteWriter w;
  w.write_u32_vector(ranks);
  return w.take();
}

std::vector<std::uint32_t> decode_ranks(const std::vector<std::uint8_t>& payload) {
  common::ByteReader r(payload);
  return r.read_u32_vector();
}

std::vector<std::uint8_t> encode_votes(const std::vector<std::uint8_t>& votes) {
  common::ByteWriter w;
  w.write_u8_vector(votes);
  return w.take();
}

std::vector<std::uint8_t> decode_votes(const std::vector<std::uint8_t>& payload) {
  common::ByteReader r(payload);
  return r.read_u8_vector();
}

std::vector<std::uint8_t> encode_vote_request(double prune_rate) {
  common::ByteWriter w;
  w.write_f64(prune_rate);
  return w.take();
}

double decode_vote_request(const std::vector<std::uint8_t>& payload) {
  common::ByteReader r(payload);
  return r.read_f64();
}

std::vector<std::uint8_t> encode_masks(const std::vector<std::vector<std::uint8_t>>& masks) {
  common::ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(masks.size()));
  for (const auto& m : masks) w.write_u8_vector(m);
  return w.take();
}

std::vector<std::vector<std::uint8_t>> decode_masks(const std::vector<std::uint8_t>& payload) {
  common::ByteReader r(payload);
  const std::uint32_t n = r.read_u32();
  std::vector<std::vector<std::uint8_t>> masks(n);
  for (auto& m : masks) m = r.read_u8_vector();
  return masks;
}

std::vector<std::uint8_t> encode_accuracy(double accuracy) {
  common::ByteWriter w;
  w.write_f64(accuracy);
  return w.take();
}

double decode_accuracy(const std::vector<std::uint8_t>& payload) {
  common::ByteReader r(payload);
  return r.read_f64();
}

}  // namespace fedcleanse::comm
