#include "comm/message.h"

#include <atomic>
#include <cmath>

#include "tensor/quant.h"

namespace fedcleanse::comm {

namespace {
// The allocator is process-global: exchanges run sequentially on the round
// protocol's driving thread, so ids are dense and ordered within one run.
std::atomic<std::uint32_t> g_next_correlation{1};
// Current-exchange id. Only the exchange driver writes it; message factories
// on the same thread read it, and client replies echo the request's id
// instead of reading this, so cross-thread visibility is not load-bearing.
std::atomic<std::uint32_t> g_current_correlation{0};
}  // namespace

std::uint32_t next_correlation_id() {
  return g_next_correlation.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t current_correlation_id() {
  return g_current_correlation.load(std::memory_order_relaxed);
}

ScopedCorrelation::ScopedCorrelation(std::uint32_t id)
    : previous_(g_current_correlation.exchange(id, std::memory_order_relaxed)) {}

ScopedCorrelation::~ScopedCorrelation() {
  g_current_correlation.store(previous_, std::memory_order_relaxed);
}

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kModelBroadcast: return "ModelBroadcast";
    case MessageType::kModelUpdate: return "ModelUpdate";
    case MessageType::kRankRequest: return "RankRequest";
    case MessageType::kRankReport: return "RankReport";
    case MessageType::kVoteRequest: return "VoteRequest";
    case MessageType::kVoteReport: return "VoteReport";
    case MessageType::kMaskBroadcast: return "MaskBroadcast";
    case MessageType::kAccuracyRequest: return "AccuracyRequest";
    case MessageType::kAccuracyReport: return "AccuracyReport";
    case MessageType::kLrScale: return "LrScale";
    case MessageType::kShutdown: return "Shutdown";
    case MessageType::kRegister: return "Register";
    case MessageType::kRegisterAck: return "RegisterAck";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kHeartbeatAck: return "HeartbeatAck";
    case MessageType::kModelUpdateQuantized: return "ModelUpdateQuantized";
    case MessageType::kRoundSync: return "RoundSync";
    case MessageType::kRoundSyncAck: return "RoundSyncAck";
  }
  return "?";
}

std::optional<MessageType> parse_message_type(std::uint8_t raw) {
  if (raw < static_cast<std::uint8_t>(MessageType::kModelBroadcast) ||
      raw > static_cast<std::uint8_t>(MessageType::kRoundSyncAck)) {
    return std::nullopt;
  }
  return static_cast<MessageType>(raw);
}

const char* update_codec_name(UpdateCodec codec) {
  switch (codec) {
    case UpdateCodec::kF32: return "f32";
    case UpdateCodec::kInt8: return "int8";
  }
  return "unknown";
}

std::optional<UpdateCodec> parse_update_codec(const std::string& name) {
  if (name == "f32") return UpdateCodec::kF32;
  if (name == "int8") return UpdateCodec::kInt8;
  return std::nullopt;
}

namespace {

// Run `fn` against a ByteReader over `payload`, converting any serialization
// failure into a DecodeError tagged with the codec name, and rejecting
// payloads with trailing bytes (an oversized payload is as malformed as a
// truncated one — it means the sender and receiver disagree on the format).
template <typename Fn>
auto decode_checked(const char* codec, const std::vector<std::uint8_t>& payload, Fn fn) {
  common::ByteReader r(payload);
  try {
    auto value = fn(r);
    if (!r.exhausted()) {
      throw DecodeError(std::string(codec) + ": " + std::to_string(r.remaining()) +
                        " trailing bytes");
    }
    return value;
  } catch (const DecodeError&) {
    throw;
  } catch (const SerializationError& e) {
    throw DecodeError(std::string(codec) + ": " + e.what());
  }
}

}  // namespace

std::uint64_t payload_checksum(const std::vector<std::uint8_t>& payload) {
  return common::fnv1a(payload);
}

std::vector<std::uint8_t> encode_message(const Message& m) {
  common::ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(m.type));
  w.write_u32(m.round);
  w.write_i32(m.sender);
  w.write_u32(m.correlation);
  // Always write the true checksum: encoded bytes are by construction
  // self-consistent, whatever m.checksum held.
  w.write_u64(payload_checksum(m.payload));
  w.write_u8_vector(m.payload);
  return w.take();
}

Message decode_message(const std::vector<std::uint8_t>& bytes) {
  return decode_checked("message", bytes, [](common::ByteReader& r) {
    Message m;
    const std::uint8_t raw_type = r.read_u8();
    auto type = parse_message_type(raw_type);
    if (!type) {
      throw DecodeError("message: unknown type byte " + std::to_string(raw_type));
    }
    m.type = *type;
    m.round = r.read_u32();
    m.sender = r.read_i32();
    m.correlation = r.read_u32();
    m.checksum = r.read_u64();
    m.payload = r.read_u8_vector();
    if (!m.checksum_ok()) {
      throw DecodeError("message: payload fails checksum");
    }
    return m;
  });
}

void write_message_verbatim(common::ByteWriter& w, const Message& m) {
  w.write_u8(static_cast<std::uint8_t>(m.type));
  w.write_u32(m.round);
  w.write_i32(m.sender);
  w.write_u32(m.correlation);
  w.write_u64(m.checksum);  // as stored, not recomputed
  w.write_u8_vector(m.payload);
}

Message read_message_verbatim(common::ByteReader& r) {
  Message m;
  const std::uint8_t raw_type = r.read_u8();
  // FaultModel::corrupt only produces valid type bytes, so every message a
  // snapshot can contain parses; an invalid byte means the snapshot itself
  // is bad (and should have failed its checksum before reaching us).
  auto type = parse_message_type(raw_type);
  if (!type) {
    throw SerializationError("snapshot message has unknown type byte " +
                             std::to_string(raw_type));
  }
  m.type = *type;
  m.round = r.read_u32();
  m.sender = r.read_i32();
  m.correlation = r.read_u32();
  m.checksum = r.read_u64();
  m.payload = r.read_u8_vector();
  return m;
}

std::vector<std::uint8_t> encode_flat_params(const std::vector<float>& params) {
  common::ByteWriter w;
  w.write_f32_vector(params);
  return w.take();
}

std::vector<float> decode_flat_params(const std::vector<std::uint8_t>& payload) {
  return decode_checked("flat_params", payload,
                        [](common::ByteReader& r) { return r.read_f32_vector(); });
}

std::vector<std::uint8_t> encode_flat_params_q8(const std::vector<float>& params) {
  const float scale = tensor::int8_scale(tensor::max_abs(params.data(), params.size()));
  std::vector<std::uint8_t> q(params.size());
  tensor::quantize_s8(params.data(), params.size(), scale,
                      reinterpret_cast<std::int8_t*>(q.data()));
  common::ByteWriter w;
  w.write_f32(scale);
  w.write_u8_vector(q);
  return w.take();
}

std::vector<float> decode_flat_params_q8(const std::vector<std::uint8_t>& payload) {
  return decode_checked("flat_params_q8", payload, [](common::ByteReader& r) {
    const float scale = r.read_f32();
    if (!std::isfinite(scale) || scale <= 0.0f) {
      throw DecodeError("flat_params_q8: bad scale " + std::to_string(scale));
    }
    const auto q = r.read_u8_vector();
    std::vector<float> params(q.size());
    tensor::dequantize_s8(reinterpret_cast<const std::int8_t*>(q.data()), q.size(), scale,
                          params.data());
    return params;
  });
}

std::vector<std::uint8_t> encode_ranks(const std::vector<std::uint32_t>& ranks) {
  common::ByteWriter w;
  w.write_u32_vector(ranks);
  return w.take();
}

std::vector<std::uint32_t> decode_ranks(const std::vector<std::uint8_t>& payload) {
  return decode_checked("ranks", payload,
                        [](common::ByteReader& r) { return r.read_u32_vector(); });
}

std::vector<std::uint8_t> encode_votes(const std::vector<std::uint8_t>& votes) {
  common::ByteWriter w;
  w.write_u8_vector(votes);
  return w.take();
}

std::vector<std::uint8_t> decode_votes(const std::vector<std::uint8_t>& payload) {
  return decode_checked("votes", payload,
                        [](common::ByteReader& r) { return r.read_u8_vector(); });
}

std::vector<std::uint8_t> encode_vote_request(double prune_rate) {
  common::ByteWriter w;
  w.write_f64(prune_rate);
  return w.take();
}

double decode_vote_request(const std::vector<std::uint8_t>& payload) {
  return decode_checked("vote_request", payload,
                        [](common::ByteReader& r) { return r.read_f64(); });
}

std::vector<std::uint8_t> encode_masks(const std::vector<std::vector<std::uint8_t>>& masks) {
  common::ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(masks.size()));
  for (const auto& m : masks) w.write_u8_vector(m);
  return w.take();
}

std::vector<std::vector<std::uint8_t>> decode_masks(const std::vector<std::uint8_t>& payload) {
  return decode_checked("masks", payload, [](common::ByteReader& r) {
    const std::uint32_t n = r.read_u32();
    // Each mask costs at least its 4-byte length prefix; a lying count must
    // not reach the vector allocation below.
    if (static_cast<std::size_t>(n) * 4 > r.remaining()) {
      throw DecodeError("masks: count " + std::to_string(n) + " exceeds payload");
    }
    std::vector<std::vector<std::uint8_t>> masks(n);
    for (auto& m : masks) m = r.read_u8_vector();
    return masks;
  });
}

std::vector<std::uint8_t> encode_accuracy(double accuracy) {
  common::ByteWriter w;
  w.write_f64(accuracy);
  return w.take();
}

double decode_accuracy(const std::vector<std::uint8_t>& payload) {
  return decode_checked("accuracy", payload,
                        [](common::ByteReader& r) { return r.read_f64(); });
}

std::vector<std::uint8_t> encode_lr_scale(double factor) {
  common::ByteWriter w;
  w.write_f64(factor);
  return w.take();
}

double decode_lr_scale(const std::vector<std::uint8_t>& payload) {
  return decode_checked("lr_scale", payload,
                        [](common::ByteReader& r) { return r.read_f64(); });
}

std::vector<std::uint8_t> encode_register(const RegisterInfo& info) {
  common::ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(info.role));
  w.write_i32(info.node_id);
  w.write_u32(info.port);
  w.write_u32(info.generation);
  w.write_u32(info.epoch);
  return w.take();
}

RegisterInfo decode_register(const std::vector<std::uint8_t>& payload) {
  return decode_checked("register", payload, [](common::ByteReader& r) {
    RegisterInfo info;
    const std::uint8_t raw_role = r.read_u8();
    if (raw_role > static_cast<std::uint8_t>(NodeRole::kClient)) {
      throw DecodeError("register: unknown role " + std::to_string(raw_role));
    }
    info.role = static_cast<NodeRole>(raw_role);
    info.node_id = r.read_i32();
    const std::uint32_t port = r.read_u32();
    if (port > 65535) throw DecodeError("register: port " + std::to_string(port));
    info.port = static_cast<std::uint16_t>(port);
    info.generation = r.read_u32();
    info.epoch = r.read_u32();
    return info;
  });
}

std::vector<std::uint8_t> encode_register_ack(const RegisterAck& ack) {
  common::ByteWriter w;
  w.write_bool(ack.accepted);
  w.write_bool(ack.server_known);
  w.write_string(ack.server_host);
  w.write_u32(ack.server_port);
  w.write_i32(ack.n_clients_registered);
  w.write_u32(ack.epoch);
  return w.take();
}

RegisterAck decode_register_ack(const std::vector<std::uint8_t>& payload) {
  return decode_checked("register_ack", payload, [](common::ByteReader& r) {
    RegisterAck ack;
    ack.accepted = r.read_bool();
    ack.server_known = r.read_bool();
    ack.server_host = r.read_string();
    const std::uint32_t port = r.read_u32();
    if (port > 65535) throw DecodeError("register_ack: port " + std::to_string(port));
    ack.server_port = static_cast<std::uint16_t>(port);
    ack.n_clients_registered = r.read_i32();
    ack.epoch = r.read_u32();
    return ack;
  });
}

std::vector<std::uint8_t> encode_heartbeat_status(const HeartbeatStatus& s) {
  common::ByteWriter w;
  w.write_u32(s.round);
  w.write_u64(s.wire_bytes);
  w.write_u64(s.peak_rss);
  return w.take();
}

HeartbeatStatus decode_heartbeat_status(const std::vector<std::uint8_t>& payload) {
  return decode_checked("heartbeat_status", payload, [](common::ByteReader& r) {
    HeartbeatStatus s;
    s.round = r.read_u32();
    s.wire_bytes = r.read_u64();
    s.peak_rss = r.read_u64();
    return s;
  });
}

std::vector<std::uint8_t> encode_round_sync(const RoundSync& sync) {
  common::ByteWriter w;
  w.write_u32(sync.epoch);
  w.write_i32(sync.next_round);
  return w.take();
}

RoundSync decode_round_sync(const std::vector<std::uint8_t>& payload) {
  return decode_checked("round_sync", payload, [](common::ByteReader& r) {
    RoundSync sync;
    sync.epoch = r.read_u32();
    sync.next_round = r.read_i32();
    if (sync.next_round < 0) {
      throw DecodeError("round_sync: negative round " + std::to_string(sync.next_round));
    }
    return sync;
  });
}

}  // namespace fedcleanse::comm
