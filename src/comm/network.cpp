#include "comm/network.h"

namespace fedcleanse::comm {

Network::Network(int n_clients) : n_clients_(n_clients) {
  FC_REQUIRE(n_clients > 0, "network needs at least one client");
}

Network::Link& Network::link(int client) {
  FC_REQUIRE(client >= 0 && client < n_clients_, "client id out of range");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = links_[client];
  if (!slot) slot = std::make_unique<Link>();
  return *slot;
}

std::size_t Network::n_active_links() const {
  std::lock_guard<std::mutex> lock(mu_);
  return links_.size();
}

void Network::send_to_client(int client, Message message) {
  link(client).to_client.send(std::move(message));
}

std::optional<Message> Network::try_recv_from_client(int client) {
  return link(client).to_server.try_recv();
}

Message Network::recv_from_client(int client) { return link(client).to_server.recv(); }

std::optional<Message> Network::recv_from_client_for(int client,
                                                    std::chrono::milliseconds timeout) {
  return link(client).to_server.recv_for(timeout);
}

void Network::send_to_server(int client, Message message) {
  link(client).to_server.send(std::move(message));
}

std::optional<Message> Network::client_try_recv(int client) {
  return link(client).to_client.try_recv();
}

Message Network::client_recv(int client) { return link(client).to_client.recv(); }

bool Network::client_wait_for_message(int client, std::chrono::milliseconds timeout) {
  return link(client).to_client.wait_nonempty(timeout);
}

Channel& Network::downlink(int client) { return link(client).to_client; }

Channel& Network::uplink(int client) { return link(client).to_server; }

std::size_t Network::downlink_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [id, l] : links_) total += l->to_client.bytes_sent();
  return total;
}

std::size_t Network::uplink_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [id, l] : links_) total += l->to_server.bytes_sent();
  return total;
}

std::size_t Network::total_bytes() const { return downlink_bytes() + uplink_bytes(); }

void Network::save_state(common::ByteWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.write_u32(static_cast<std::uint32_t>(n_clients_));
  w.write_u32(static_cast<std::uint32_t>(links_.size()));
  for (const auto& [id, l] : links_) {
    w.write_i32(id);
    for (const Channel* ch : {&l->to_client, &l->to_server}) {
      w.write_u64(static_cast<std::uint64_t>(ch->bytes_sent()));
      const auto queue = ch->snapshot_queue();
      w.write_u32(static_cast<std::uint32_t>(queue.size()));
      for (const auto& m : queue) write_message_verbatim(w, m);
    }
  }
}

void Network::restore_state(common::ByteReader& r) {
  const std::uint32_t n = r.read_u32();
  if (static_cast<int>(n) != n_clients_) {
    throw CheckpointError("network snapshot has " + std::to_string(n) +
                          " clients, expected " + std::to_string(n_clients_));
  }
  const std::uint32_t present = r.read_u32();
  {
    std::lock_guard<std::mutex> lock(mu_);
    links_.clear();
  }
  for (std::uint32_t i = 0; i < present; ++i) {
    const int id = r.read_i32();
    if (id < 0 || id >= n_clients_) {
      throw CheckpointError("network snapshot names client " + std::to_string(id) +
                            " outside [0, " + std::to_string(n_clients_) + ")");
    }
    Link& l = link(id);
    for (Channel* ch : {&l.to_client, &l.to_server}) {
      const auto bytes_sent = static_cast<std::size_t>(r.read_u64());
      const std::uint32_t count = r.read_u32();
      std::vector<Message> queue;
      queue.reserve(count);
      for (std::uint32_t j = 0; j < count; ++j) queue.push_back(read_message_verbatim(r));
      ch->restore(std::move(queue), bytes_sent);
    }
  }
}

}  // namespace fedcleanse::comm
