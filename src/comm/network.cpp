#include "comm/network.h"

namespace fedcleanse::comm {

Network::Network(int n_clients) {
  FC_REQUIRE(n_clients > 0, "network needs at least one client");
  links_.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) links_.push_back(std::make_unique<Link>());
}

Network::Link& Network::link(int client) {
  FC_REQUIRE(client >= 0 && client < n_clients(), "client id out of range");
  return *links_[static_cast<std::size_t>(client)];
}

const Network::Link& Network::link(int client) const {
  FC_REQUIRE(client >= 0 && client < n_clients(), "client id out of range");
  return *links_[static_cast<std::size_t>(client)];
}

void Network::send_to_client(int client, Message message) {
  link(client).to_client.send(std::move(message));
}

std::optional<Message> Network::try_recv_from_client(int client) {
  return link(client).to_server.try_recv();
}

Message Network::recv_from_client(int client) { return link(client).to_server.recv(); }

std::optional<Message> Network::recv_from_client_for(int client,
                                                    std::chrono::milliseconds timeout) {
  return link(client).to_server.recv_for(timeout);
}

void Network::send_to_server(int client, Message message) {
  link(client).to_server.send(std::move(message));
}

std::optional<Message> Network::client_try_recv(int client) {
  return link(client).to_client.try_recv();
}

Message Network::client_recv(int client) { return link(client).to_client.recv(); }

std::size_t Network::downlink_bytes() const {
  std::size_t total = 0;
  for (const auto& l : links_) total += l->to_client.bytes_sent();
  return total;
}

std::size_t Network::uplink_bytes() const {
  std::size_t total = 0;
  for (const auto& l : links_) total += l->to_server.bytes_sent();
  return total;
}

std::size_t Network::total_bytes() const { return downlink_bytes() + uplink_bytes(); }

}  // namespace fedcleanse::comm
