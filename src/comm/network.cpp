#include "comm/network.h"

namespace fedcleanse::comm {

Network::Network(int n_clients) {
  FC_REQUIRE(n_clients > 0, "network needs at least one client");
  links_.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) links_.push_back(std::make_unique<Link>());
}

Network::Link& Network::link(int client) {
  FC_REQUIRE(client >= 0 && client < n_clients(), "client id out of range");
  return *links_[static_cast<std::size_t>(client)];
}

const Network::Link& Network::link(int client) const {
  FC_REQUIRE(client >= 0 && client < n_clients(), "client id out of range");
  return *links_[static_cast<std::size_t>(client)];
}

void Network::send_to_client(int client, Message message) {
  link(client).to_client.send(std::move(message));
}

std::optional<Message> Network::try_recv_from_client(int client) {
  return link(client).to_server.try_recv();
}

Message Network::recv_from_client(int client) { return link(client).to_server.recv(); }

std::optional<Message> Network::recv_from_client_for(int client,
                                                    std::chrono::milliseconds timeout) {
  return link(client).to_server.recv_for(timeout);
}

void Network::send_to_server(int client, Message message) {
  link(client).to_server.send(std::move(message));
}

std::optional<Message> Network::client_try_recv(int client) {
  return link(client).to_client.try_recv();
}

Message Network::client_recv(int client) { return link(client).to_client.recv(); }

std::size_t Network::downlink_bytes() const {
  std::size_t total = 0;
  for (const auto& l : links_) total += l->to_client.bytes_sent();
  return total;
}

std::size_t Network::uplink_bytes() const {
  std::size_t total = 0;
  for (const auto& l : links_) total += l->to_server.bytes_sent();
  return total;
}

std::size_t Network::total_bytes() const { return downlink_bytes() + uplink_bytes(); }

void Network::save_state(common::ByteWriter& w) const {
  w.write_u32(static_cast<std::uint32_t>(links_.size()));
  for (const auto& l : links_) {
    for (const Channel* ch : {&l->to_client, &l->to_server}) {
      w.write_u64(static_cast<std::uint64_t>(ch->bytes_sent()));
      const auto queue = ch->snapshot_queue();
      w.write_u32(static_cast<std::uint32_t>(queue.size()));
      for (const auto& m : queue) write_message_verbatim(w, m);
    }
  }
}

void Network::restore_state(common::ByteReader& r) {
  const std::uint32_t n = r.read_u32();
  if (static_cast<int>(n) != n_clients()) {
    throw CheckpointError("network snapshot has " + std::to_string(n) +
                          " links, expected " + std::to_string(n_clients()));
  }
  for (auto& l : links_) {
    for (Channel* ch : {&l->to_client, &l->to_server}) {
      const auto bytes_sent = static_cast<std::size_t>(r.read_u64());
      const std::uint32_t count = r.read_u32();
      std::vector<Message> queue;
      queue.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) queue.push_back(read_message_verbatim(r));
      ch->restore(std::move(queue), bytes_sent);
    }
  }
}

}  // namespace fedcleanse::comm
