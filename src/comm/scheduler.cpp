#include "comm/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace fedcleanse::comm {

namespace {

Message control_message(MessageType type, std::int32_t sender,
                        std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.type = type;
  m.round = 0;
  m.sender = sender;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

void journal_event(const char* kind, const char* node, std::int32_t client,
                   const char* extra_key = nullptr, const std::string& extra = "") {
  obs::Journal* journal = obs::ambient_journal();
  if (journal == nullptr) return;
  obs::JsonObject entry;
  entry.add("kind", kind).add("node", node).add("client", client);
  if (extra_key != nullptr) entry.add(extra_key, extra);
  journal->write(entry);
}

}  // namespace

Scheduler::Scheduler(const TransportConfig& config, const std::string& host,
                     std::uint16_t port)
    : config_(config), listener_(host, port) {
  config_.validate();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Scheduler::~Scheduler() {
  stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->sock.shutdown_both();
    if (conn->th.joinable()) conn->th.join();
  }
}

bool Scheduler::server_known() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_port_ != 0;
}

int Scheduler::n_clients_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(clients_seen_.size());
}

void Scheduler::run_until_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || stop_.load(); });
}

void Scheduler::stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  cv_.notify_all();
}

void Scheduler::accept_loop() {
  while (!stop_.load()) {
    std::optional<Socket> sock;
    try {
      sock = listener_.accept_for(config_.accept_timeout_ms);
    } catch (const TransportError& e) {
      if (stop_.load()) return;
      FC_LOG(Warn) << "scheduler: accept failed — " << e.what();
      continue;
    }
    if (!sock) continue;
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*sock);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(std::move(conn));
    }
    raw->th = std::thread([this, raw] { conn_loop(raw); });
  }
}

void Scheduler::handle_register(Conn* conn, const Message& m) {
  const RegisterInfo info = decode_register(m.payload);  // DecodeError → caller
  RegisterAck ack;
  ack.accepted = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (info.role == NodeRole::kServer) {
      // The server's reachable address is the connection's source IP plus the
      // data port it registered.
      server_host_ = conn->sock.peer_ip();
      if (server_host_ == "?") server_host_ = "127.0.0.1";
      server_port_ = info.port;
    } else if (std::find(clients_seen_.begin(), clients_seen_.end(), info.node_id) ==
               clients_seen_.end()) {
      clients_seen_.push_back(info.node_id);
    }
    ack.server_known = server_port_ != 0;
    ack.server_host = server_host_;
    ack.server_port = server_port_;
    ack.n_clients_registered = static_cast<std::int32_t>(clients_seen_.size());
  }
  if (info.role == NodeRole::kServer) {
    journal_event("server_register", "scheduler", info.node_id, "port",
                  std::to_string(info.port));
  } else {
    journal_event(info.generation > 0 ? "reconnect" : "client_register", "scheduler",
                  info.node_id);
  }
  send_frame(conn->sock, control_message(MessageType::kRegisterAck, -1,
                                         encode_register_ack(ack)));
}

void Scheduler::conn_loop(Conn* conn) {
  FrameDecoder decoder(config_.max_frame_bytes);
  std::uint8_t buf[4096];
  auto last_seen = std::chrono::steady_clock::now();
  bool heartbeating = false;  // liveness is judged only for beaconing links
  std::int32_t peer_id = -2;  // last registered sender on this connection
  try {
    while (!stop_.load()) {
      std::size_t n = 0;
      const auto status =
          conn->sock.recv_some(buf, sizeof(buf), config_.accept_timeout_ms, &n);
      if (status == Socket::RecvStatus::kEof) return;
      const auto now = std::chrono::steady_clock::now();
      if (status == Socket::RecvStatus::kTimeout) {
        if (heartbeating &&
            now - last_seen > std::chrono::milliseconds(config_.heartbeat_timeout_ms)) {
          FC_METRIC(transport_dead_clients().inc());
          journal_event("client_dead", "scheduler", peer_id, "reason", "heartbeat");
          return;
        }
        continue;
      }
      last_seen = now;
      decoder.feed(buf, n);
      while (auto m = decoder.next()) {
        switch (m->type) {
          case MessageType::kRegister:
            peer_id = m->sender;
            handle_register(conn, *m);
            break;
          case MessageType::kHeartbeat:
            heartbeating = true;
            FC_METRIC(transport_heartbeats().inc());
            send_frame(conn->sock, control_message(MessageType::kHeartbeatAck, -1));
            break;
          case MessageType::kShutdown: {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
          }
            cv_.notify_all();
            return;
          default:
            FC_LOG(Warn) << "scheduler: unexpected " << message_type_name(m->type)
                         << " from node " << m->sender << " — ignored";
            break;
        }
      }
    }
  } catch (const Error& e) {
    if (!stop_.load()) {
      FC_LOG(Warn) << "scheduler: connection to node " << peer_id << " failed — "
                   << e.what();
    }
  }
}

RegisterAck scheduler_register_once(const std::string& host, std::uint16_t port,
                                    const RegisterInfo& info,
                                    const TransportConfig& config) {
  Socket sock = connect_to(host, port, config.connect_timeout_ms);
  send_frame(sock, control_message(MessageType::kRegister, info.node_id,
                                   encode_register(info)));
  FrameDecoder decoder(config.max_frame_bytes);
  auto reply = recv_frame(sock, decoder, config.connect_timeout_ms);
  if (!reply) {
    throw TransportError("scheduler sent no RegisterAck within " +
                         std::to_string(config.connect_timeout_ms) + "ms");
  }
  if (reply->type != MessageType::kRegisterAck) {
    throw TransportError(std::string("scheduler replied ") +
                         message_type_name(reply->type) + " to a Register");
  }
  return decode_register_ack(reply->payload);
}

SchedulerSession::SchedulerSession(const std::string& host, std::uint16_t port,
                                   const RegisterInfo& info, const TransportConfig& config)
    : config_(config), info_(info) {
  sock_ = connect_to(host, port, config_.connect_timeout_ms);
  send_frame(sock_, control_message(MessageType::kRegister, info_.node_id,
                                    encode_register(info_)));
  FrameDecoder decoder(config_.max_frame_bytes);
  auto reply = recv_frame(sock_, decoder, config_.connect_timeout_ms);
  if (!reply || reply->type != MessageType::kRegisterAck) {
    throw TransportError("scheduler registration handshake failed");
  }
  if (!decode_register_ack(reply->payload).accepted) {
    throw TransportError("scheduler rejected registration");
  }
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

SchedulerSession::~SchedulerSession() {
  stop_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

void SchedulerSession::notify_shutdown() {
  std::lock_guard<std::mutex> lock(send_mu_);
  try {
    send_frame(sock_, control_message(MessageType::kShutdown, info_.node_id));
  } catch (const TransportError& e) {
    FC_LOG(Warn) << "scheduler shutdown notice failed — " << e.what();
  }
}

void SchedulerSession::heartbeat_loop() {
  // The ack stream is drained lazily right here — the session never carries
  // anything but beacons, so the reader and sender can share one thread.
  FrameDecoder decoder(config_.max_frame_bytes);
  std::uint8_t buf[1024];
  while (!stop_.load()) {
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      try {
        send_frame(sock_, control_message(MessageType::kHeartbeat, info_.node_id));
      } catch (const TransportError&) {
        return;  // scheduler gone; nothing to beacon at
      }
    }
    const auto next_beat = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(config_.heartbeat_interval_ms);
    while (!stop_.load() && std::chrono::steady_clock::now() < next_beat) {
      std::size_t n = 0;
      try {
        const auto status = sock_.recv_some(buf, sizeof(buf), 20, &n);
        if (status == Socket::RecvStatus::kEof) return;
        if (status == Socket::RecvStatus::kData) {
          decoder.feed(buf, n);
          while (decoder.next()) {
          }
        }
      } catch (const Error&) {
        return;
      }
    }
  }
}

}  // namespace fedcleanse::comm
