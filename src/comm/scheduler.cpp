#include "comm/scheduler.h"

#include <algorithm>

#include "comm/socket_network.h"
#include "common/logging.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace fedcleanse::comm {

namespace {

Message control_message(MessageType type, std::int32_t sender,
                        std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.type = type;
  m.round = 0;
  m.sender = sender;
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

void journal_event(const char* kind, const char* node, std::int32_t client,
                   const char* extra_key = nullptr, const std::string& extra = "") {
  obs::Journal* journal = obs::ambient_journal();
  if (journal == nullptr) return;
  obs::JsonObject entry;
  entry.add("kind", kind).add("node", node).add("client", client);
  if (extra_key != nullptr) entry.add(extra_key, extra);
  journal->write(entry);
}

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

Scheduler::Scheduler(const TransportConfig& config, const std::string& host,
                     std::uint16_t port)
    : config_(config), listener_(host, port) {
  config_.validate();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Scheduler::~Scheduler() {
  stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->sock.shutdown_both();
    if (conn->th.joinable()) conn->th.join();
  }
}

bool Scheduler::server_known() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_port_ != 0;
}

int Scheduler::n_clients_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(clients_seen_.size());
}

void Scheduler::run_until_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || stop_.load(); });
}

void Scheduler::stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  cv_.notify_all();
}

void Scheduler::accept_loop() {
  while (!stop_.load()) {
    std::optional<Socket> sock;
    try {
      sock = listener_.accept_for(config_.accept_timeout_ms);
    } catch (const TransportError& e) {
      if (stop_.load()) return;
      FC_LOG(Warn) << "scheduler: accept failed — " << e.what();
      continue;
    }
    if (!sock) continue;
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*sock);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(std::move(conn));
    }
    raw->th = std::thread([this, raw] { conn_loop(raw); });
  }
}

void Scheduler::handle_register(Conn* conn, const Message& m) {
  const RegisterInfo info = decode_register(m.payload);  // DecodeError → caller
  RegisterAck ack;
  bool rejected_shutdown = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // The run already ended; admitting a late joiner would strand it
      // waiting for a server that is about to exit. Nack so the node fails
      // fast instead of backing off forever.
      rejected_shutdown = true;
    } else {
      ack.accepted = true;
      if (info.role == NodeRole::kServer) {
        // The server's reachable address is the connection's source IP plus
        // the data port it registered.
        server_host_ = conn->sock.peer_ip();
        if (server_host_ == "?") server_host_ = "127.0.0.1";
        server_port_ = info.port;
      } else if (std::find(clients_seen_.begin(), clients_seen_.end(), info.node_id) ==
                 clients_seen_.end()) {
        clients_seen_.push_back(info.node_id);
      }
      if (registry_.is_open()) {
        if (info.role == NodeRole::kServer) {
          registry_ << "server " << info.port << "\n";
        } else {
          registry_ << "client " << info.node_id << " " << info.generation << "\n";
        }
        registry_.flush();
      }
    }
    ack.server_known = server_port_ != 0;
    ack.server_host = server_host_;
    ack.server_port = server_port_;
    ack.n_clients_registered = static_cast<std::int32_t>(clients_seen_.size());
  }
  if (rejected_shutdown) {
    FC_LOG(Warn) << "scheduler: rejecting registration of node " << info.node_id
                 << " — run already shut down";
  } else if (info.role == NodeRole::kServer) {
    journal_event("server_register", "scheduler", info.node_id, "port",
                  std::to_string(info.port));
  } else if (info.generation > 0) {
    journal_event("reconnect", "scheduler", info.node_id, "generation",
                  std::to_string(info.generation));
  } else {
    journal_event("client_register", "scheduler", info.node_id);
  }
  send_frame(conn->sock, control_message(MessageType::kRegisterAck, -1,
                                         encode_register_ack(ack)));
}

void Scheduler::enable_registry(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.open(path, std::ios::app);
  if (!registry_.is_open()) {
    throw TransportError("scheduler cannot open registry file " + path);
  }
}

int Scheduler::load_registry(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return 0;  // first boot: nothing to restore
  std::vector<int> restored;
  std::string role;
  while (in >> role) {
    if (role == "client") {
      int id = -1, generation = 0;
      if (!(in >> id >> generation)) break;
      if (id >= 0 && std::find(restored.begin(), restored.end(), id) == restored.end()) {
        restored.push_back(id);
      }
    } else if (role == "server") {
      int port = 0;
      if (!(in >> port)) break;
      // Address intentionally dropped — see the header comment.
    } else {
      break;  // torn tail from a crash mid-write; keep what parsed
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int id : restored) {
    if (std::find(clients_seen_.begin(), clients_seen_.end(), id) == clients_seen_.end()) {
      clients_seen_.push_back(id);
    }
  }
  return static_cast<int>(restored.size());
}

void Scheduler::conn_loop(Conn* conn) {
  FrameDecoder decoder(config_.max_frame_bytes);
  std::uint8_t buf[4096];
  auto last_seen = std::chrono::steady_clock::now();
  bool heartbeating = false;  // liveness is judged only for beaconing links
  std::int32_t peer_id = -2;  // last registered sender on this connection
  NodeRole peer_role = NodeRole::kClient;
  try {
    while (!stop_.load()) {
      std::size_t n = 0;
      const auto status =
          conn->sock.recv_some(buf, sizeof(buf), config_.accept_timeout_ms, &n);
      if (status == Socket::RecvStatus::kEof) {
        if (heartbeating) mark_node_dead(peer_id);
        return;
      }
      const auto now = std::chrono::steady_clock::now();
      if (status == Socket::RecvStatus::kTimeout) {
        if (heartbeating &&
            now - last_seen > std::chrono::milliseconds(config_.heartbeat_timeout_ms)) {
          FC_METRIC(transport_dead_clients().inc());
          journal_event("client_dead", "scheduler", peer_id, "reason", "heartbeat");
          mark_node_dead(peer_id);
          return;
        }
        continue;
      }
      last_seen = now;
      decoder.feed(buf, n);
      while (auto m = decoder.next()) {
        switch (m->type) {
          case MessageType::kRegister:
            peer_id = m->sender;
            try {
              peer_role = decode_register(m->payload).role;
            } catch (const DecodeError&) {
              // handle_register rethrows on the same payload below.
            }
            handle_register(conn, *m);
            break;
          case MessageType::kHeartbeat:
            heartbeating = true;
            FC_METRIC(transport_heartbeats().inc());
            note_heartbeat(peer_id, peer_role, *m);
            send_frame(conn->sock, control_message(MessageType::kHeartbeatAck, -1));
            break;
          case MessageType::kShutdown: {
            std::lock_guard<std::mutex> lock(mu_);
            // Close out the in-flight round's fleet line before the run ends;
            // without this the last round would never be journaled.
            if (fleet_round_seen_) {
              journal_fleet_status_locked(fleet_round_, std::chrono::steady_clock::now());
              fleet_round_seen_ = false;
            }
            shutdown_ = true;
          }
            cv_.notify_all();
            return;
          default:
            FC_LOG(Warn) << "scheduler: unexpected " << message_type_name(m->type)
                         << " from node " << m->sender << " — ignored";
            break;
        }
      }
    }
  } catch (const Error& e) {
    if (heartbeating) mark_node_dead(peer_id);
    if (!stop_.load()) {
      FC_LOG(Warn) << "scheduler: connection to node " << peer_id << " failed — "
                   << e.what();
    }
  }
}

void Scheduler::note_heartbeat(std::int32_t peer_id, NodeRole role, const Message& m) {
  std::optional<HeartbeatStatus> status;
  if (!m.payload.empty()) {
    try {
      status = decode_heartbeat_status(m.payload);
    } catch (const DecodeError&) {
      // A malformed snapshot only costs the fleet view one sample.
    }
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  FleetNode& node = fleet_[peer_id];
  node.role = role;
  node.dead = false;
  node.last_seen = now;
  if (!status) return;
  const bool advanced_here =
      !node.has_status || status->round > node.status.round;
  if (!fleet_round_seen_ || status->round > fleet_round_) {
    // A node reached a round nobody had reported yet: the previous round is
    // over from the fleet's point of view — journal it — and this node opens
    // the new one with lag 0.
    if (fleet_round_seen_) journal_fleet_status_locked(fleet_round_, now);
    fleet_round_seen_ = true;
    fleet_round_ = status->round;
    fleet_round_first_ = now;
    fleet_round_latencies_ms_.assign(1, 0.0);
  } else if (status->round == fleet_round_ && advanced_here) {
    // A follower arrived at the current round: its lag behind the round
    // opener is one sample of the round-latency distribution.
    fleet_round_latencies_ms_.push_back(elapsed_ms(fleet_round_first_, now));
  }
  node.status = *status;
  node.has_status = true;
}

void Scheduler::mark_node_dead(std::int32_t peer_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fleet_.find(peer_id);
  if (it != fleet_.end()) it->second.dead = true;
}

void Scheduler::journal_fleet_status_locked(
    std::uint32_t round, std::chrono::steady_clock::time_point now) const {
  obs::Journal* journal = obs::ambient_journal();
  if (journal == nullptr) return;
  std::vector<double> lat = fleet_round_latencies_ms_;
  std::sort(lat.begin(), lat.end());
  int stragglers = 0;
  int stale = 0;
  for (const auto& [id, node] : fleet_) {
    if (node.has_status && node.status.round + 2 <= round) ++stragglers;
    if (node.dead ||
        now - node.last_seen > std::chrono::milliseconds(config_.heartbeat_timeout_ms)) {
      ++stale;
    }
  }
  obs::JsonObject entry;
  entry.add("kind", "fleet_status")
      .add("node", "scheduler")
      .add("round", static_cast<std::uint64_t>(round))
      .add("n_nodes", static_cast<std::int64_t>(fleet_.size()))
      .add("n_reported", static_cast<std::int64_t>(lat.size()))
      .add("latency_p50_ms", lat.empty() ? 0.0 : lat[lat.size() / 2])
      .add("latency_max_ms", lat.empty() ? 0.0 : lat.back())
      .add("n_stragglers", stragglers)
      .add("n_stale", stale);
  journal->write(entry);
}

std::string Scheduler::fleet_status_json() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::string nodes = "[";
  bool first = true;
  for (const auto& [id, node] : fleet_) {
    obs::JsonObject row;
    row.add("id", id)
        .add("role", node.role == NodeRole::kServer ? "server" : "client")
        .add("alive", !node.dead)
        .add("heartbeat_age_ms", elapsed_ms(node.last_seen, now))
        .add("stale", node.dead || now - node.last_seen > std::chrono::milliseconds(
                                                              config_.heartbeat_timeout_ms));
    if (node.has_status) {
      row.add("round", static_cast<std::uint64_t>(node.status.round))
          .add("wire_bytes", node.status.wire_bytes)
          .add("peak_rss", node.status.peak_rss)
          .add("straggler",
               fleet_round_seen_ && node.status.round + 2 <= fleet_round_);
    }
    if (!first) nodes += ",";
    first = false;
    nodes += row.str();
  }
  nodes += "]";
  obs::JsonObject out;
  out.add("role", "scheduler")
      .add("server_known", server_port_ != 0)
      .add("n_clients_seen", static_cast<std::int64_t>(clients_seen_.size()))
      .add("shutdown", shutdown_);
  if (fleet_round_seen_) out.add("round", static_cast<std::uint64_t>(fleet_round_));
  out.add_raw("nodes", nodes);
  return out.str();
}

RegisterAck scheduler_register_once(const std::string& host, std::uint16_t port,
                                    const RegisterInfo& info,
                                    const TransportConfig& config) {
  Socket sock = connect_to(host, port, config.connect_timeout_ms);
  send_frame(sock, control_message(MessageType::kRegister, info.node_id,
                                   encode_register(info)));
  FrameDecoder decoder(config.max_frame_bytes);
  auto reply = recv_frame(sock, decoder, config.connect_timeout_ms);
  if (!reply) {
    throw TransportError("scheduler sent no RegisterAck within " +
                         std::to_string(config.connect_timeout_ms) + "ms");
  }
  if (reply->type != MessageType::kRegisterAck) {
    throw TransportError(std::string("scheduler replied ") +
                         message_type_name(reply->type) + " to a Register");
  }
  return decode_register_ack(reply->payload);
}

SchedulerSession::SchedulerSession(const std::string& host, std::uint16_t port,
                                   const RegisterInfo& info, const TransportConfig& config)
    : config_(config), host_(host), port_(port), info_(info) {
  sock_ = connect_to(host, port, config_.connect_timeout_ms);
  send_frame(sock_, control_message(MessageType::kRegister, info_.node_id,
                                    encode_register(info_)));
  FrameDecoder decoder(config_.max_frame_bytes);
  auto reply = recv_frame(sock_, decoder, config_.connect_timeout_ms);
  if (!reply || reply->type != MessageType::kRegisterAck) {
    throw TransportError("scheduler registration handshake failed");
  }
  if (!decode_register_ack(reply->payload).accepted) {
    throw TransportError("scheduler rejected registration");
  }
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

SchedulerSession::~SchedulerSession() {
  stop_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

void SchedulerSession::notify_shutdown() {
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    try {
      send_frame(sock_, control_message(MessageType::kShutdown, info_.node_id));
      return;
    } catch (const TransportError& e) {
      FC_LOG(Warn) << "scheduler shutdown notice failed — " << e.what()
                   << "; retrying over a fresh connection";
    }
  }
  // One fresh-connection retry so a scheduler restarted mid-run still learns
  // the run ended (its restarted process holds a new socket we never saw).
  try {
    Socket fresh = connect_to(host_, port_, config_.connect_timeout_ms);
    send_frame(fresh, control_message(MessageType::kShutdown, info_.node_id));
  } catch (const TransportError& e) {
    FC_LOG(Warn) << "scheduler shutdown notice failed twice — " << e.what();
  }
}

void SchedulerSession::heartbeat_loop() {
  // The ack stream is drained lazily right here — the session never carries
  // anything but beacons, so the reader and sender can share one thread.
  std::uint8_t buf[1024];
  bool link_up = true;  // the constructor registered the first connection
  while (!stop_.load()) {
    if (!link_up) {
      // Scheduler gone — most likely a restart in progress (DESIGN.md §18).
      // Reconnect with jittered capped backoff and re-register at a bumped
      // generation so the restarted scheduler re-learns this node. Sleep in
      // short slices so destruction never waits out a full backoff.
      int attempt = 0;
      while (!stop_.load() && !link_up) {
        const int delay = backoff_delay_jittered_ms(config_, info_.node_id, attempt);
        for (int waited = 0; waited < delay && !stop_.load(); waited += 50) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::min(50, delay - waited)));
        }
        if (stop_.load()) return;
        attempt = std::min(attempt + 1, config_.max_connect_retries);
        try {
          Socket fresh = connect_to(host_, port_, config_.connect_timeout_ms);
          RegisterInfo info;
          {
            std::lock_guard<std::mutex> lock(send_mu_);
            info_.generation += 1;
            info = info_;
          }
          send_frame(fresh, control_message(MessageType::kRegister, info.node_id,
                                            encode_register(info)));
          FrameDecoder handshake(config_.max_frame_bytes);
          auto reply = recv_frame(fresh, handshake, config_.connect_timeout_ms);
          if (!reply || reply->type != MessageType::kRegisterAck ||
              !decode_register_ack(reply->payload).accepted) {
            continue;
          }
          {
            std::lock_guard<std::mutex> lock(send_mu_);
            sock_ = std::move(fresh);
          }
          link_up = true;
          FC_METRIC(transport_reconnects().inc());
          FC_LOG(Info) << "scheduler session: node " << info.node_id
                       << " re-registered (generation " << info.generation << ")";
        } catch (const Error&) {
          // Next backoff slot.
        }
      }
      continue;
    }
    FrameDecoder decoder(config_.max_frame_bytes);
    while (link_up && !stop_.load()) {
      Message beat = control_message(MessageType::kHeartbeat, info_.node_id);
      if (auto status = current_heartbeat_status()) {
        // Attach this node's progress snapshot so the scheduler's fleet view
        // has per-node rounds; telemetry off keeps the bare beacon.
        beat.payload = encode_heartbeat_status(*status);
        beat.stamp();
      }
      {
        std::lock_guard<std::mutex> lock(send_mu_);
        try {
          send_frame(sock_, beat);
        } catch (const TransportError&) {
          link_up = false;
          break;
        }
      }
      const auto next_beat = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(config_.heartbeat_interval_ms);
      while (link_up && !stop_.load() && std::chrono::steady_clock::now() < next_beat) {
        std::size_t n = 0;
        try {
          const auto status = sock_.recv_some(buf, sizeof(buf), 20, &n);
          if (status == Socket::RecvStatus::kEof) {
            link_up = false;
            break;
          }
          if (status == Socket::RecvStatus::kData) {
            decoder.feed(buf, n);
            while (decoder.next()) {
            }
          }
        } catch (const Error&) {
          link_up = false;
          break;
        }
      }
    }
  }
}

}  // namespace fedcleanse::comm
