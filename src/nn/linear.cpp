#include "nn/linear.h"

#include <algorithm>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace fedcleanse::nn {

Linear::Linear(int in_features, int out_features, common::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}),
      active_(static_cast<std::size_t>(out_features), 1) {
  FC_REQUIRE(in_features > 0 && out_features > 0, "Linear dims must be positive");
  kaiming_uniform(weight_, in_features, rng);
  bias_.fill(0.0f);
}

Tensor Linear::forward(const Tensor& x) {
  FC_REQUIRE(x.shape().rank() == 2 && x.shape()[1] == in_features_,
             "Linear forward expects [N," + std::to_string(in_features_) + "], got " +
                 x.shape().to_string());
  input_cache_ = x;
  const int n = x.shape()[0];
  if (!any_pruned_) {
    // Bias rides in the GEMM's col_bias epilogue — the same c + b[j] float
    // add the explicit loop below performs, without re-reading the output.
    Tensor y(tensor::Shape{n, out_features_});
    tensor::gemm(false, true, n, out_features_, in_features_, x.data().data(), in_features_,
                 weight_.data().data(), in_features_, y.data().data(), out_features_,
                 /*accumulate=*/false, {}, tensor::GemmEpilogue{nullptr, bias_.data().data()});
    return y;
  }
  Tensor y = tensor::matmul_t(x, false, weight_, true);  // [N, out]
  auto yv = y.data();
  const auto bv = bias_.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_features_; ++j) {
      auto& cell = yv[static_cast<std::size_t>(i) * out_features_ + j];
      cell = active_[static_cast<std::size_t>(j)] ? cell + bv[j] : 0.0f;
    }
  }
  return y;
}

Tensor Linear::forward_softmax(const Tensor& x) {
  if (any_pruned_ || out_features_ > tensor::kGemmNC) {
    return tensor::softmax_rows(forward(x));
  }
  FC_REQUIRE(x.shape().rank() == 2 && x.shape()[1] == in_features_,
             "Linear forward expects [N," + std::to_string(in_features_) + "], got " +
                 x.shape().to_string());
  input_cache_ = x;
  const int n = x.shape()[0];
  Tensor y(tensor::Shape{n, out_features_});
  tensor::gemm(false, true, n, out_features_, in_features_, x.data().data(), in_features_,
               weight_.data().data(), in_features_, y.data().data(), out_features_,
               /*accumulate=*/false, {},
               tensor::GemmEpilogue{nullptr, bias_.data().data(), false, true});
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  FC_REQUIRE(grad_out.shape().rank() == 2 && grad_out.shape()[1] == out_features_,
             "Linear backward grad shape mismatch");
  // Pruned units contribute no gradient anywhere: instead of zeroing a copy
  // of grad_out, their rows are skipped in the GEMMs and the bias sum, which
  // leaves the same exact zeros without the copy.
  const int n = grad_out.shape()[0];
  const auto gv = grad_out.data();
  // grad_weight += gradᵀ · x, accumulated in place (no temporary tensor).
  tensor::gemm(true, false, out_features_, in_features_, n, gv.data(), out_features_,
               input_cache_.data().data(), in_features_, grad_weight_.data().data(),
               in_features_, /*accumulate=*/true,
               tensor::GemmMask{active_.data(), nullptr});
  auto gb = grad_bias_.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_features_; ++j) {
      if (active_[static_cast<std::size_t>(j)]) {
        gb[j] += gv[static_cast<std::size_t>(i) * out_features_ + j];
      }
    }
  }
  // grad_input = grad · W, with pruned units dropped from the contraction.
  Tensor gx(Shape{n, in_features_});
  tensor::gemm(false, false, n, in_features_, out_features_, gv.data(), out_features_,
               weight_.data().data(), in_features_, gx.data().data(), in_features_,
               /*accumulate=*/false, tensor::GemmMask{nullptr, active_.data()});
  return gx;
}

std::vector<ParamRef> Linear::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(*this);
  return copy;
}

void Linear::set_unit_active(int unit, bool active) {
  FC_REQUIRE(unit >= 0 && unit < out_features_, "Linear unit index out of range");
  active_[static_cast<std::size_t>(unit)] = active ? 1 : 0;
  any_pruned_ = std::find(active_.begin(), active_.end(), std::uint8_t{0}) != active_.end();
  if (!active) {
    auto wv = weight_.data();
    for (int j = 0; j < in_features_; ++j) {
      wv[static_cast<std::size_t>(unit) * in_features_ + j] = 0.0f;
    }
    bias_.data()[static_cast<std::size_t>(unit)] = 0.0f;
  }
}

bool Linear::unit_active(int unit) const {
  FC_REQUIRE(unit >= 0 && unit < out_features_, "Linear unit index out of range");
  return active_[static_cast<std::size_t>(unit)] != 0;
}

}  // namespace fedcleanse::nn
