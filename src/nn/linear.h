// Fully connected layer: y = x·Wᵀ + b with per-unit prune masking.
#pragma once

#include "nn/layer.h"
#include "common/rng.h"

namespace fedcleanse::nn {

class Linear : public Layer {
 public:
  // Kaiming-uniform initialization from `rng`.
  Linear(int in_features, int out_features, common::Rng& rng);

  Tensor forward(const Tensor& x) override;
  // Forward fused with row softmax: returns softmax(x·Wᵀ + b), bit-identical
  // to forward() followed by tensor::softmax_rows. Used by the classifier
  // head so logits never round-trip through memory.
  Tensor forward_softmax(const Tensor& x);
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Linear"; }

  int prunable_units() const override { return out_features_; }
  void set_unit_active(int unit, bool active) override;
  bool unit_active(int unit) const override;
  std::vector<std::uint8_t> prune_mask() const override { return active_; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  std::vector<std::uint8_t> active_;
  // True iff any entry of active_ is 0; the fused-epilogue forward requires
  // the fully-active case (pruned units force the explicit masked bias loop).
  bool any_pruned_ = false;
  Tensor input_cache_;  // [N, in]
};

}  // namespace fedcleanse::nn
