#include "nn/layer.h"

namespace fedcleanse::nn {

void Layer::zero_grad() {
  for (auto& p : params()) p.grad->fill(0.0f);
}

void Layer::set_prune_mask(const std::vector<std::uint8_t>& mask) {
  FC_REQUIRE(static_cast<int>(mask.size()) == prunable_units(),
             "prune mask size does not match prunable units of " + name());
  for (int i = 0; i < prunable_units(); ++i) {
    set_unit_active(i, mask[static_cast<std::size_t>(i)] != 0);
  }
}

}  // namespace fedcleanse::nn
