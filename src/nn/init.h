// Weight initialization helpers.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fedcleanse::nn {

// He/Kaiming uniform: U(−√(6/fan_in), √(6/fan_in)). Suited to ReLU nets.
void kaiming_uniform(tensor::Tensor& weight, int fan_in, common::Rng& rng);

// Xavier/Glorot uniform: U(−√(6/(fan_in+fan_out)), +...).
void xavier_uniform(tensor::Tensor& weight, int fan_in, int fan_out, common::Rng& rng);

}  // namespace fedcleanse::nn
