#include "nn/sequential.h"

namespace fedcleanse::nn {

int Sequential::add(std::unique_ptr<Layer> layer) {
  FC_REQUIRE(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  return static_cast<int>(layers_.size()) - 1;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur);
  return cur;
}

Tensor Sequential::forward_with_tap(const Tensor& x, int tap_index, Tensor& tap_out) {
  FC_REQUIRE(tap_index >= 0 && tap_index < size(), "tap index out of range");
  Tensor cur = x;
  for (int i = 0; i < size(); ++i) {
    cur = layers_[static_cast<std::size_t>(i)]->forward(cur);
    if (i == tap_index) tap_out = cur;
  }
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    auto ps = layer->params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::size_t Sequential::num_params() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    auto ps = const_cast<Layer&>(*layer).params();
    for (const auto& p : ps) n += p.value->size();
  }
  return n;
}

std::vector<float> Sequential::get_flat() const {
  std::vector<float> flat;
  flat.reserve(num_params());
  for (const auto& layer : layers_) {
    for (const auto& p : const_cast<Layer&>(*layer).params()) {
      const auto v = p.value->data();
      flat.insert(flat.end(), v.begin(), v.end());
    }
  }
  return flat;
}

void Sequential::set_flat(std::span<const float> flat) {
  FC_REQUIRE(flat.size() == num_params(),
             "flat vector size " + std::to_string(flat.size()) + " != parameter count " +
                 std::to_string(num_params()));
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) {
      auto v = p.value->data();
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                flat.begin() + static_cast<std::ptrdiff_t>(offset + v.size()), v.begin());
      offset += v.size();
    }
    // Re-assert structural pruning: a pruned unit's weights stay zero even
    // if the incoming flat vector carried non-zero values for them.
    const int units = layer->prunable_units();
    for (int u = 0; u < units; ++u) {
      if (!layer->unit_active(u)) layer->set_unit_active(u, false);
    }
  }
}

std::vector<std::vector<std::uint8_t>> Sequential::prune_masks() const {
  std::vector<std::vector<std::uint8_t>> masks;
  masks.reserve(layers_.size());
  for (const auto& layer : layers_) masks.push_back(layer->prune_mask());
  return masks;
}

void Sequential::set_prune_masks(const std::vector<std::vector<std::uint8_t>>& masks) {
  FC_REQUIRE(masks.size() == layers_.size(), "mask count must match layer count");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!masks[i].empty()) layers_[i]->set_prune_mask(masks[i]);
  }
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

}  // namespace fedcleanse::nn
