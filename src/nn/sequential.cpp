#include "nn/sequential.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace fedcleanse::nn {

int Sequential::add(std::unique_ptr<Layer> layer) {
  FC_REQUIRE(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  return static_cast<int>(layers_.size()) - 1;
}

Tensor Sequential::run_forward(const Tensor& x, int tap_index, Tensor* tap_out,
                               tensor::ComputeKernel kernel, bool fuse_softmax) {
  Tensor cur = x;
  const int n = size();
  int i = 0;
  while (i < n) {
    Layer* layer = layers_[static_cast<std::size_t>(i)].get();
    if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      // Conv2d+ReLU peephole: run the ReLU as the conv GEMM's epilogue and
      // hand the ReLU its output for backward. Suppressed when the tap wants
      // this conv's pre-activation values.
      auto* relu = i + 1 < n && tap_index != i
                       ? dynamic_cast<ReLU*>(layers_[static_cast<std::size_t>(i) + 1].get())
                       : nullptr;
      cur = conv->forward_conv(cur, relu != nullptr, kernel);
      if (relu != nullptr) {
        relu->adopt_output(cur);
        if (tap_index == i + 1 && tap_out != nullptr) *tap_out = cur;
        i += 2;
        continue;
      }
    } else {
      if (fuse_softmax && i == n - 1) {
        if (auto* lin = dynamic_cast<Linear*>(layer)) return lin->forward_softmax(cur);
      }
      cur = layer->forward(cur);
    }
    if (tap_index == i && tap_out != nullptr) *tap_out = cur;
    ++i;
  }
  return fuse_softmax ? tensor::softmax_rows(cur) : cur;
}

Tensor Sequential::forward(const Tensor& x) {
  return run_forward(x, -1, nullptr, tensor::ComputeKernel::kF32, false);
}

Tensor Sequential::forward(const Tensor& x, tensor::ComputeKernel kernel) {
  return run_forward(x, -1, nullptr, kernel, false);
}

Tensor Sequential::forward_with_tap(const Tensor& x, int tap_index, Tensor& tap_out) {
  return forward_with_tap(x, tap_index, tap_out, tensor::ComputeKernel::kF32);
}

Tensor Sequential::forward_with_tap(const Tensor& x, int tap_index, Tensor& tap_out,
                                    tensor::ComputeKernel kernel) {
  FC_REQUIRE(tap_index >= 0 && tap_index < size(), "tap index out of range");
  return run_forward(x, tap_index, &tap_out, kernel, false);
}

Tensor Sequential::forward_probs(const Tensor& x) {
  return run_forward(x, -1, nullptr, tensor::ComputeKernel::kF32, true);
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    auto ps = layer->params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::size_t Sequential::num_params() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    auto ps = const_cast<Layer&>(*layer).params();
    for (const auto& p : ps) n += p.value->size();
  }
  return n;
}

std::vector<float> Sequential::get_flat() const {
  std::vector<float> flat;
  flat.reserve(num_params());
  for (const auto& layer : layers_) {
    for (const auto& p : const_cast<Layer&>(*layer).params()) {
      const auto v = p.value->data();
      flat.insert(flat.end(), v.begin(), v.end());
    }
  }
  return flat;
}

void Sequential::set_flat(std::span<const float> flat) {
  FC_REQUIRE(flat.size() == num_params(),
             "flat vector size " + std::to_string(flat.size()) + " != parameter count " +
                 std::to_string(num_params()));
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) {
      auto v = p.value->data();
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                flat.begin() + static_cast<std::ptrdiff_t>(offset + v.size()), v.begin());
      offset += v.size();
    }
    // Re-assert structural pruning: a pruned unit's weights stay zero even
    // if the incoming flat vector carried non-zero values for them.
    const int units = layer->prunable_units();
    for (int u = 0; u < units; ++u) {
      if (!layer->unit_active(u)) layer->set_unit_active(u, false);
    }
  }
}

std::vector<std::vector<std::uint8_t>> Sequential::prune_masks() const {
  std::vector<std::vector<std::uint8_t>> masks;
  masks.reserve(layers_.size());
  for (const auto& layer : layers_) masks.push_back(layer->prune_mask());
  return masks;
}

void Sequential::set_prune_masks(const std::vector<std::vector<std::uint8_t>>& masks) {
  FC_REQUIRE(masks.size() == layers_.size(), "mask count must match layer count");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!masks[i].empty()) layers_[i]->set_prune_mask(masks[i]);
  }
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

}  // namespace fedcleanse::nn
