// Model checkpointing: serialize a ModelSpec (architecture tag, flat
// parameters, prune masks) to bytes or to a file, and restore it.
//
// The architecture is stored as a tag and rebuilt through the model zoo, so
// a checkpoint is a few bytes of header plus the parameter payload — the
// same wire format the FL layer uses. The header carries an FNV-1a checksum
// over the payload (format v2): truncated or bit-flipped files throw
// CheckpointError at load time instead of failing deep inside deserialize.
#pragma once

#include <string>
#include <vector>

#include "common/serialize.h"
#include "nn/model_zoo.h"

namespace fedcleanse::nn {

// Serialize the model (architecture, parameters, prune masks).
std::vector<std::uint8_t> save_model(const ModelSpec& spec);
// Rebuild a model from bytes produced by save_model. Throws CheckpointError
// on anything malformed (bad magic/version, failed checksum, truncation).
ModelSpec load_model(const std::vector<std::uint8_t>& bytes);

// File variants. load_model_file throws CheckpointError on I/O failure or a
// malformed file; save_model_file throws fedcleanse::Error on I/O failure.
void save_model_file(const ModelSpec& spec, const std::string& path);
ModelSpec load_model_file(const std::string& path);

}  // namespace fedcleanse::nn
