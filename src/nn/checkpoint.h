// Model checkpointing: serialize a ModelSpec (architecture tag, flat
// parameters, prune masks) to bytes or to a file, and restore it.
//
// The architecture is stored as a tag and rebuilt through the model zoo, so
// a checkpoint is a few bytes of header plus the parameter payload — the
// same wire format the FL layer uses.
#pragma once

#include <string>
#include <vector>

#include "common/serialize.h"
#include "nn/model_zoo.h"

namespace fedcleanse::nn {

// Serialize the model (architecture, parameters, prune masks).
std::vector<std::uint8_t> save_model(const ModelSpec& spec);
// Rebuild a model from bytes produced by save_model.
ModelSpec load_model(const std::vector<std::uint8_t>& bytes);

// File variants. Throw fedcleanse::Error on I/O failure.
void save_model_file(const ModelSpec& spec, const std::string& path);
ModelSpec load_model_file(const std::string& path);

}  // namespace fedcleanse::nn
