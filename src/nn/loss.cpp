#include "nn/loss.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace fedcleanse::nn {

float SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                   const std::vector<int>& labels) {
  FC_REQUIRE(logits.shape().rank() == 2, "loss expects [N,K] logits");
  return forward_probs(tensor::softmax_rows(logits), labels);
}

float SoftmaxCrossEntropy::forward_probs(tensor::Tensor probs, const std::vector<int>& labels) {
  FC_REQUIRE(probs.shape().rank() == 2, "loss expects [N,K] probabilities");
  const int n = probs.shape()[0], k = probs.shape()[1];
  FC_REQUIRE(static_cast<int>(labels.size()) == n, "labels size must match batch");
  probs_ = std::move(probs);
  labels_ = labels;
  double loss = 0.0;
  const auto pv = probs_.data();
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    FC_REQUIRE(y >= 0 && y < k, "label out of range");
    const float p = pv[static_cast<std::size_t>(i) * k + y];
    loss += -std::log(std::max(p, 1e-12f));
  }
  return static_cast<float>(loss / n);
}

tensor::Tensor SoftmaxCrossEntropy::backward() const {
  FC_REQUIRE(!probs_.empty(), "backward called before forward");
  const int n = probs_.shape()[0], k = probs_.shape()[1];
  tensor::Tensor grad = probs_;
  auto gv = grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    gv[static_cast<std::size_t>(i) * k + labels_[static_cast<std::size_t>(i)]] -= 1.0f;
    for (int j = 0; j < k; ++j) gv[static_cast<std::size_t>(i) * k + j] *= inv_n;
  }
  return grad;
}

}  // namespace fedcleanse::nn
