#include "nn/pooling.h"

namespace fedcleanse::nn {

Tensor MaxPool2d::forward(const Tensor& x) {
  input_shape_ = x.shape();
  auto result = tensor::maxpool2d_forward(x, kernel_, stride_);
  argmax_ = std::move(result.argmax);
  return std::move(result.output);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  return tensor::maxpool2d_backward(input_shape_, argmax_, grad_out);
}

}  // namespace fedcleanse::nn
