#include "nn/model_zoo.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace fedcleanse::nn {

const char* arch_name(Architecture arch) {
  switch (arch) {
    case Architecture::kMnistCnn: return "mnist_cnn";
    case Architecture::kFashionCnn: return "fashion_cnn";
    case Architecture::kVggSmall: return "vgg_small";
    case Architecture::kSmallNn: return "small_nn";
    case Architecture::kLargeNn: return "large_nn";
  }
  return "?";
}

ModelSpec make_mnist_cnn(common::Rng& rng) {
  // Input 1×20×20 (SynthDigits). 2 conv + 2 FC as in the paper's MNIST net.
  ModelSpec spec;
  spec.arch = Architecture::kMnistCnn;
  spec.input_shape = Shape{1, 20, 20};
  spec.net.add(std::make_unique<Conv2d>(1, 16, 3, rng, 1, 1));  // 16×20×20
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 16×10×10
  spec.last_conv_index = spec.net.add(std::make_unique<Conv2d>(16, 32, 3, rng, 1, 1));
  spec.tap_index = spec.net.add(std::make_unique<ReLU>());      // 32×10×10
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 32×5×5
  spec.net.add(std::make_unique<Flatten>());
  spec.net.add(std::make_unique<Linear>(32 * 5 * 5, 64, rng));
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<Linear>(64, 10, rng));
  return spec;
}

ModelSpec make_fashion_cnn(common::Rng& rng) {
  // Input 1×20×20 (SynthFashion). 3 conv + 2 FC as in the paper's
  // Fashion-MNIST net.
  ModelSpec spec;
  spec.arch = Architecture::kFashionCnn;
  spec.input_shape = Shape{1, 20, 20};
  spec.net.add(std::make_unique<Conv2d>(1, 8, 3, rng, 1, 1));   // 8×20×20
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 8×10×10
  spec.net.add(std::make_unique<Conv2d>(8, 16, 3, rng, 1, 1));  // 16×10×10
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 16×5×5
  spec.last_conv_index = spec.net.add(std::make_unique<Conv2d>(16, 24, 3, rng, 1, 1));
  spec.tap_index = spec.net.add(std::make_unique<ReLU>());      // 24×5×5
  spec.net.add(std::make_unique<Flatten>());
  spec.net.add(std::make_unique<Linear>(24 * 5 * 5, 48, rng));
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<Linear>(48, 10, rng));
  return spec;
}

ModelSpec make_vgg_small(common::Rng& rng) {
  // Input 3×16×16 (SynthObjects). VGG-style conv/pool blocks standing in
  // for VGG11 at laptop scale.
  ModelSpec spec;
  spec.arch = Architecture::kVggSmall;
  spec.input_shape = Shape{3, 16, 16};
  spec.net.add(std::make_unique<Conv2d>(3, 16, 3, rng, 1, 1));  // 16×16×16
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 16×8×8
  spec.net.add(std::make_unique<Conv2d>(16, 32, 3, rng, 1, 1)); // 32×8×8
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 32×4×4
  spec.last_conv_index = spec.net.add(std::make_unique<Conv2d>(32, 32, 3, rng, 1, 1));
  spec.tap_index = spec.net.add(std::make_unique<ReLU>());      // 32×4×4
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 32×2×2
  spec.net.add(std::make_unique<Flatten>());
  spec.net.add(std::make_unique<Linear>(32 * 2 * 2, 64, rng));
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<Linear>(64, 10, rng));
  return spec;
}

ModelSpec make_small_nn(common::Rng& rng) {
  // Table VI "Small NN": two conv layers with 8 and 16 channels.
  ModelSpec spec;
  spec.arch = Architecture::kSmallNn;
  spec.input_shape = Shape{1, 20, 20};
  spec.net.add(std::make_unique<Conv2d>(1, 8, 5, rng));         // 8×16×16
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 8×8×8
  spec.last_conv_index = spec.net.add(std::make_unique<Conv2d>(8, 16, 5, rng));
  spec.tap_index = spec.net.add(std::make_unique<ReLU>());      // 16×4×4
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 16×2×2
  spec.net.add(std::make_unique<Flatten>());
  spec.net.add(std::make_unique<Linear>(16 * 2 * 2, 10, rng));
  return spec;
}

ModelSpec make_large_nn(common::Rng& rng) {
  // Table VI "Large NN": two conv layers with 20 and 50 channels.
  ModelSpec spec;
  spec.arch = Architecture::kLargeNn;
  spec.input_shape = Shape{1, 20, 20};
  spec.net.add(std::make_unique<Conv2d>(1, 20, 5, rng));        // 20×16×16
  spec.net.add(std::make_unique<ReLU>());
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 20×8×8
  spec.last_conv_index = spec.net.add(std::make_unique<Conv2d>(20, 50, 5, rng));
  spec.tap_index = spec.net.add(std::make_unique<ReLU>());      // 50×4×4
  spec.net.add(std::make_unique<MaxPool2d>(2));                 // 50×2×2
  spec.net.add(std::make_unique<Flatten>());
  spec.net.add(std::make_unique<Linear>(50 * 2 * 2, 10, rng));
  return spec;
}

ModelSpec make_model(Architecture arch, common::Rng& rng) {
  switch (arch) {
    case Architecture::kMnistCnn: return make_mnist_cnn(rng);
    case Architecture::kFashionCnn: return make_fashion_cnn(rng);
    case Architecture::kVggSmall: return make_vgg_small(rng);
    case Architecture::kSmallNn: return make_small_nn(rng);
    case Architecture::kLargeNn: return make_large_nn(rng);
  }
  throw ConfigError("unknown architecture");
}

}  // namespace fedcleanse::nn
