// Layer abstraction: forward/backward with cached context, parameter
// enumeration for the optimizer and for flat (de)serialization in FedAvg,
// and a unit-pruning interface ("neurons" in the paper = conv output
// channels / FC units).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedcleanse::nn {

using tensor::Shape;
using tensor::Tensor;

// Non-owning reference to a parameter tensor and its gradient.
struct ParamRef {
  Tensor* value;
  Tensor* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Compute the layer output and cache whatever backward will need.
  virtual Tensor forward(const Tensor& x) = 0;
  // Given dLoss/dOutput, accumulate parameter gradients and return
  // dLoss/dInput. Must be called after forward on the same input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<ParamRef> params() { return {}; }
  virtual std::unique_ptr<Layer> clone() const = 0;
  virtual std::string name() const = 0;

  void zero_grad();

  // --- pruning interface -------------------------------------------------
  // Number of prunable output units (conv channels / linear units); 0 when
  // the layer has nothing to prune.
  virtual int prunable_units() const { return 0; }
  // Deactivate/reactivate a unit. Deactivation zeroes the unit's parameters
  // and forces its output (and gradient) to zero, so a pruned neuron can
  // never be resurrected by fine-tuning.
  virtual void set_unit_active(int /*unit*/, bool /*active*/) {}
  virtual bool unit_active(int /*unit*/) const { return true; }
  // 1 = active, 0 = pruned; empty for layers without prunable units.
  virtual std::vector<std::uint8_t> prune_mask() const { return {}; }
  virtual void set_prune_mask(const std::vector<std::uint8_t>& mask);

  // Per-layer L2 penalty coefficient, applied by the optimizer. Used by the
  // paper's Discussion (Fig 10): L2 on the last convolutional layer only.
  double weight_decay = 0.0;
};

}  // namespace fedcleanse::nn
