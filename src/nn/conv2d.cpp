#include "nn/conv2d.h"

#include <algorithm>

#include "nn/init.h"

namespace fedcleanse::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, common::Rng& rng, int stride,
               int padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      spec_{stride, padding},
      weight_(Shape{out_channels, in_channels, kernel, kernel}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels, kernel, kernel}),
      grad_bias_(Shape{out_channels}),
      active_(static_cast<std::size_t>(out_channels), 1) {
  FC_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0,
             "Conv2d dims must be positive");
  kaiming_uniform(weight_, in_channels * kernel * kernel, rng);
  bias_.fill(0.0f);
}

Tensor Conv2d::forward(const Tensor& x) {
  return forward_conv(x, /*fuse_relu=*/false, tensor::ComputeKernel::kF32);
}

Tensor Conv2d::forward_conv(const Tensor& x, bool fuse_relu, tensor::ComputeKernel kernel) {
  input_cache_ = x;
  // Pruned channels are skipped inside the packed GEMM (and written as exact
  // zeros) rather than zeroed in a second pass over the output.
  return tensor::conv2d_forward_quant(x, weight_, bias_, spec_, col_cache_, kernel,
                                      fuse_relu, any_pruned_ ? active_.data() : nullptr);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  // The channel mask makes the kernel drop pruned channels from every
  // gradient product, so the incoming gradient needs no masking copy.
  auto grads = tensor::conv2d_backward_cached(input_cache_, weight_, grad_out, spec_,
                                              col_cache_,
                                              any_pruned_ ? active_.data() : nullptr);
  grad_weight_ += grads.grad_weight;
  grad_bias_ += grads.grad_bias;
  return std::move(grads.grad_input);
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Conv2d::clone() const { return std::make_unique<Conv2d>(*this); }

void Conv2d::set_unit_active(int unit, bool active) {
  FC_REQUIRE(unit >= 0 && unit < out_channels_, "Conv2d channel index out of range");
  active_[static_cast<std::size_t>(unit)] = active ? 1 : 0;
  any_pruned_ = std::find(active_.begin(), active_.end(), std::uint8_t{0}) != active_.end();
  if (!active) {
    const std::size_t per_channel =
        static_cast<std::size_t>(in_channels_) * kernel_ * kernel_;
    auto wv = weight_.data();
    std::fill(&wv[static_cast<std::size_t>(unit) * per_channel],
              &wv[static_cast<std::size_t>(unit) * per_channel] + per_channel, 0.0f);
    bias_.data()[static_cast<std::size_t>(unit)] = 0.0f;
  }
}

bool Conv2d::unit_active(int unit) const {
  FC_REQUIRE(unit >= 0 && unit < out_channels_, "Conv2d channel index out of range");
  return active_[static_cast<std::size_t>(unit)] != 0;
}

std::vector<float> Conv2d::active_weights() const {
  std::vector<float> out;
  const std::size_t per_channel = static_cast<std::size_t>(in_channels_) * kernel_ * kernel_;
  out.reserve(weight_.size());
  const auto wv = weight_.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    if (!active_[static_cast<std::size_t>(oc)]) continue;
    const float* p = &wv[static_cast<std::size_t>(oc) * per_channel];
    out.insert(out.end(), p, p + per_channel);
  }
  return out;
}

}  // namespace fedcleanse::nn
