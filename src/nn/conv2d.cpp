#include "nn/conv2d.h"

#include <algorithm>

#include "nn/init.h"

namespace fedcleanse::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, common::Rng& rng, int stride,
               int padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      spec_{stride, padding},
      weight_(Shape{out_channels, in_channels, kernel, kernel}),
      bias_(Shape{out_channels}),
      grad_weight_(Shape{out_channels, in_channels, kernel, kernel}),
      grad_bias_(Shape{out_channels}),
      active_(static_cast<std::size_t>(out_channels), 1) {
  FC_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0,
             "Conv2d dims must be positive");
  kaiming_uniform(weight_, in_channels * kernel * kernel, rng);
  bias_.fill(0.0f);
}

void Conv2d::zero_channel_in(Tensor& t, int n, int /*c*/, int h, int w, int channel) const {
  auto v = t.data();
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int b = 0; b < n; ++b) {
    float* p = &v[((static_cast<std::size_t>(b) * out_channels_) + channel) * plane];
    std::fill(p, p + plane, 0.0f);
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  input_cache_ = x;
  Tensor y = tensor::conv2d_forward_cached(x, weight_, bias_, spec_, col_cache_);
  if (any_pruned_) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      if (!active_[static_cast<std::size_t>(oc)]) {
        zero_channel_in(y, y.shape()[0], out_channels_, y.shape()[2], y.shape()[3], oc);
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  if (any_pruned_) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      if (!active_[static_cast<std::size_t>(oc)]) {
        zero_channel_in(g, g.shape()[0], out_channels_, g.shape()[2], g.shape()[3], oc);
      }
    }
  }
  auto grads = tensor::conv2d_backward_cached(input_cache_, weight_, g, spec_, col_cache_);
  grad_weight_ += grads.grad_weight;
  grad_bias_ += grads.grad_bias;
  return std::move(grads.grad_input);
}

std::vector<ParamRef> Conv2d::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

std::unique_ptr<Layer> Conv2d::clone() const { return std::make_unique<Conv2d>(*this); }

void Conv2d::set_unit_active(int unit, bool active) {
  FC_REQUIRE(unit >= 0 && unit < out_channels_, "Conv2d channel index out of range");
  active_[static_cast<std::size_t>(unit)] = active ? 1 : 0;
  any_pruned_ = std::find(active_.begin(), active_.end(), std::uint8_t{0}) != active_.end();
  if (!active) {
    const std::size_t per_channel =
        static_cast<std::size_t>(in_channels_) * kernel_ * kernel_;
    auto wv = weight_.data();
    std::fill(&wv[static_cast<std::size_t>(unit) * per_channel],
              &wv[static_cast<std::size_t>(unit) * per_channel] + per_channel, 0.0f);
    bias_.data()[static_cast<std::size_t>(unit)] = 0.0f;
  }
}

bool Conv2d::unit_active(int unit) const {
  FC_REQUIRE(unit >= 0 && unit < out_channels_, "Conv2d channel index out of range");
  return active_[static_cast<std::size_t>(unit)] != 0;
}

std::vector<float> Conv2d::active_weights() const {
  std::vector<float> out;
  const std::size_t per_channel = static_cast<std::size_t>(in_channels_) * kernel_ * kernel_;
  out.reserve(weight_.size());
  const auto wv = weight_.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    if (!active_[static_cast<std::size_t>(oc)]) continue;
    const float* p = &wv[static_cast<std::size_t>(oc) * per_channel];
    out.insert(out.end(), p, p + per_channel);
  }
  return out;
}

}  // namespace fedcleanse::nn
