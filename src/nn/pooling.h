// Max pooling layer.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace fedcleanse::nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel, int stride = 0)
      : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
    FC_REQUIRE(kernel_ > 0 && stride_ > 0, "MaxPool2d kernel/stride must be positive");
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }
  std::string name() const override { return "MaxPool2d"; }

 private:
  int kernel_;
  int stride_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;
};

}  // namespace fedcleanse::nn
