#include "nn/init.h"

#include <cmath>

#include "common/error.h"

namespace fedcleanse::nn {

void kaiming_uniform(tensor::Tensor& weight, int fan_in, common::Rng& rng) {
  FC_REQUIRE(fan_in > 0, "fan_in must be positive");
  const double bound = std::sqrt(6.0 / fan_in);
  for (auto& w : weight.storage()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void xavier_uniform(tensor::Tensor& weight, int fan_in, int fan_out, common::Rng& rng) {
  FC_REQUIRE(fan_in > 0 && fan_out > 0, "fans must be positive");
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (auto& w : weight.storage()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

}  // namespace fedcleanse::nn
