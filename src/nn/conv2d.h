// 2-D convolution layer with per-output-channel prune masking.
//
// A "neuron" in the paper's pruning discussion corresponds to an output
// channel of this layer (feature-map pruning, as in fine-pruning).
#pragma once

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/ops.h"

namespace fedcleanse::nn {

class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, common::Rng& rng, int stride = 1,
         int padding = 0);

  Tensor forward(const Tensor& x) override;
  // Forward with an optional fused ReLU epilogue (bit-identical to a
  // trailing nn::ReLU) and a per-call compute kernel for the quantized
  // scan paths. forward(x) ≡ forward_conv(x, false, kF32).
  Tensor forward_conv(const Tensor& x, bool fuse_relu, tensor::ComputeKernel kernel);
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Conv2d"; }

  int prunable_units() const override { return out_channels_; }
  void set_unit_active(int unit, bool active) override;
  bool unit_active(int unit) const override;
  std::vector<std::uint8_t> prune_mask() const override { return active_; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }
  // Weights of active (unpruned) channels, flattened — the population over
  // which AdjustExtremeWeights computes μ and σ.
  std::vector<float> active_weights() const;

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  tensor::Conv2dSpec spec_;
  Tensor weight_;  // [out, in, k, k]
  Tensor bias_;    // [out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  std::vector<std::uint8_t> active_;
  // True iff any entry of active_ is 0; lets forward/backward skip the
  // per-channel mask scan in the common fully-active case.
  bool any_pruned_ = false;
  Tensor input_cache_;
  // im2col buffer from the last forward, reused by backward.
  std::vector<float> col_cache_;
};

}  // namespace fedcleanse::nn
