// Per-channel activation statistics.
//
// Clients accumulate the mean post-ReLU activation of every channel at the
// pruning layer over their local samples; the resulting means drive the
// RAP rankings and MVP votes.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fedcleanse::nn {

class ChannelMeanAccumulator {
 public:
  // Accepts a tapped batch: [N, C, H, W] (mean over N·H·W per channel) or
  // [N, C] (mean over N per unit). All batches must agree on C.
  void add_batch(const tensor::Tensor& tapped);

  // Number of samples folded in so far.
  std::size_t count() const { return count_; }
  // Mean activation per channel. Requires at least one batch.
  std::vector<double> means() const;

 private:
  std::vector<double> sums_;
  std::size_t count_ = 0;  // sample count (batch dimension total)
};

}  // namespace fedcleanse::nn
