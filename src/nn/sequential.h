// Sequential container: the whole-model abstraction used by clients, the
// server, the defense pipeline, and Neural Cleanse.
//
// Parameters can be flattened to a single float vector (the FedAvg wire
// format) and restored; prune masks are carried separately because they are
// structural state decided by the defense, not trained state.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.h"

namespace fedcleanse::nn {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  // Returns the index of the added layer.
  int add(std::unique_ptr<Layer> layer);

  int size() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<std::size_t>(i)]; }
  const Layer& layer(int i) const { return *layers_[static_cast<std::size_t>(i)]; }

  Tensor forward(const Tensor& x);
  // Forward that additionally copies the output of layer `tap_index` into
  // `tap_out` (used to record activations at the pruning layer).
  Tensor forward_with_tap(const Tensor& x, int tap_index, Tensor& tap_out);
  // Backpropagate from dLoss/dOutput; returns dLoss/dInput.
  Tensor backward(const Tensor& grad_out);

  void zero_grad();
  std::vector<ParamRef> params();
  std::size_t num_params() const;

  // Flat parameter vector in layer order (the FedAvg wire format).
  std::vector<float> get_flat() const;
  void set_flat(std::span<const float> flat);

  // Prune masks for every layer (empty vector for non-prunable layers).
  std::vector<std::vector<std::uint8_t>> prune_masks() const;
  void set_prune_masks(const std::vector<std::vector<std::uint8_t>>& masks);

  Sequential clone() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fedcleanse::nn
