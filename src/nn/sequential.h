// Sequential container: the whole-model abstraction used by clients, the
// server, the defense pipeline, and Neural Cleanse.
//
// Parameters can be flattened to a single float vector (the FedAvg wire
// format) and restored; prune masks are carried separately because they are
// structural state decided by the defense, not trained state.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.h"
#include "tensor/quant.h"

namespace fedcleanse::nn {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  // Returns the index of the added layer.
  int add(std::unique_ptr<Layer> layer);

  int size() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<std::size_t>(i)]; }
  const Layer& layer(int i) const { return *layers_[static_cast<std::size_t>(i)]; }

  // Forward fuses Conv2d+ReLU pairs into a single GEMM-with-epilogue step
  // (bit-identical to running the layers separately). The ComputeKernel
  // overloads run convolutions under a reduced-precision kernel — opt-in,
  // used only by the defense's activation-profiling scans.
  Tensor forward(const Tensor& x);
  Tensor forward(const Tensor& x, tensor::ComputeKernel kernel);
  // Forward that additionally copies the output of layer `tap_index` into
  // `tap_out` (used to record activations at the pruning layer). A tap on a
  // Conv2d whose ReLU would be fused suppresses that fusion so the tapped
  // values stay pre-activation.
  Tensor forward_with_tap(const Tensor& x, int tap_index, Tensor& tap_out);
  Tensor forward_with_tap(const Tensor& x, int tap_index, Tensor& tap_out,
                          tensor::ComputeKernel kernel);
  // Forward with the classifier head's softmax fused into its GEMM: returns
  // row probabilities, bit-identical to softmax_rows over forward()'s
  // logits. The training loop pairs it with SoftmaxCrossEntropy::forward_probs.
  Tensor forward_probs(const Tensor& x);
  // Backpropagate from dLoss/dOutput; returns dLoss/dInput.
  Tensor backward(const Tensor& grad_out);

  void zero_grad();
  std::vector<ParamRef> params();
  std::size_t num_params() const;

  // Flat parameter vector in layer order (the FedAvg wire format).
  std::vector<float> get_flat() const;
  void set_flat(std::span<const float> flat);

  // Prune masks for every layer (empty vector for non-prunable layers).
  std::vector<std::vector<std::uint8_t>> prune_masks() const;
  void set_prune_masks(const std::vector<std::vector<std::uint8_t>>& masks);

  Sequential clone() const;

 private:
  // Shared driver behind every forward variant: optional tap, per-call conv
  // kernel, optional fused-softmax head.
  Tensor run_forward(const Tensor& x, int tap_index, Tensor* tap_out,
                     tensor::ComputeKernel kernel, bool fuse_softmax);

  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fedcleanse::nn
