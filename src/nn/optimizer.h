// SGD optimizer with optional momentum and per-layer L2 weight decay.
#pragma once

#include <vector>

#include "nn/sequential.h"

namespace fedcleanse::nn {

struct SgdConfig {
  double lr = 0.1;
  double momentum = 0.0;
};

class Sgd {
 public:
  Sgd(Sequential& model, SgdConfig config);

  // Apply one update from the accumulated gradients. Weight decay uses each
  // layer's `weight_decay` member (the Fig 10 experiment sets it only on
  // the last convolutional layer).
  void step();
  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }

 private:
  Sequential& model_;
  SgdConfig config_;
  // One velocity buffer per parameter, in model.params() order. Only
  // allocated when momentum > 0.
  std::vector<Tensor> velocity_;
};

}  // namespace fedcleanse::nn
