// Softmax cross-entropy loss (mean-reduced over the batch).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fedcleanse::nn {

class SoftmaxCrossEntropy {
 public:
  // logits [N, K], labels of length N with values in [0, K).
  // Returns the mean cross-entropy loss and caches softmax probabilities.
  float forward(const tensor::Tensor& logits, const std::vector<int>& labels);

  // Same loss when the caller already holds softmax probabilities (the
  // classifier head fused the softmax into its GEMM epilogue). Bit-identical
  // to forward() on the corresponding logits.
  float forward_probs(tensor::Tensor probs, const std::vector<int>& labels);

  // dLoss/dLogits for the cached forward: (softmax − one_hot) / N.
  tensor::Tensor backward() const;

 private:
  tensor::Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace fedcleanse::nn
