#include "nn/activations.h"

namespace fedcleanse::nn {

Tensor ReLU::forward(const Tensor& x) {
  input_cache_ = x;
  Tensor y = x;
  for (auto& v : y.storage()) {
    if (v < 0.0f) v = 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  FC_REQUIRE(grad_out.shape() == input_cache_.shape(), "ReLU backward shape mismatch");
  Tensor g = grad_out;
  const auto in = input_cache_.data();
  auto gv = g.data();
  for (std::size_t i = 0; i < gv.size(); ++i) {
    if (in[i] <= 0.0f) gv[i] = 0.0f;
  }
  return g;
}

Tensor Flatten::forward(const Tensor& x) {
  FC_REQUIRE(x.shape().rank() >= 2, "Flatten expects at least 2-D input");
  input_shape_ = x.shape();
  const int n = x.shape()[0];
  const int features = static_cast<int>(x.size() / static_cast<std::size_t>(n));
  return x.reshaped(Shape{n, features});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(input_shape_);
}

}  // namespace fedcleanse::nn
