// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace fedcleanse::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  // When the preceding layer fused this ReLU into its epilogue, the post-relu
  // output stands in for the cached input: gating grad on y = relu(x) instead
  // of x is bit-identical (x > 0 ⇔ y > 0, and both ±0 block the gradient).
  void adopt_output(const Tensor& y) { input_cache_ = y; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(*this); }
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_cache_;
};

// Reshapes [N, C, H, W] (or any rank ≥ 2) to [N, features].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Flatten>(*this); }
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace fedcleanse::nn
