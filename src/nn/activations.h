// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace fedcleanse::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(*this); }
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_cache_;
};

// Reshapes [N, C, H, W] (or any rank ≥ 2) to [N, features].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Flatten>(*this); }
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace fedcleanse::nn
