#include "nn/optimizer.h"

namespace fedcleanse::nn {

Sgd::Sgd(Sequential& model, SgdConfig config) : model_(model), config_(config) {
  if (config_.momentum > 0.0) {
    for (auto& p : model_.params()) {
      velocity_.emplace_back(p.value->shape());
    }
  }
}

void Sgd::step() {
  std::size_t param_index = 0;
  for (int li = 0; li < model_.size(); ++li) {
    Layer& layer = model_.layer(li);
    const float wd = static_cast<float>(layer.weight_decay);
    for (auto& p : layer.params()) {
      auto value = p.value->data();
      auto grad = p.grad->data();
      const float lr = static_cast<float>(config_.lr);
      if (velocity_.empty()) {
        for (std::size_t i = 0; i < value.size(); ++i) {
          const float g = grad[i] + wd * value[i];
          value[i] -= lr * g;
        }
      } else {
        auto vel = velocity_[param_index].data();
        const float mu = static_cast<float>(config_.momentum);
        for (std::size_t i = 0; i < value.size(); ++i) {
          const float g = grad[i] + wd * value[i];
          vel[i] = mu * vel[i] + g;
          value[i] -= lr * vel[i];
        }
      }
      ++param_index;
    }
    // A pruned unit must stay exactly zero; weight decay on an exact zero is
    // zero, but momentum from pre-pruning steps could move it, so re-clamp.
    const int units = layer.prunable_units();
    for (int u = 0; u < units; ++u) {
      if (!layer.unit_active(u)) layer.set_unit_active(u, false);
    }
  }
}

}  // namespace fedcleanse::nn
