#include "nn/checkpoint.h"

#include <cstdio>
#include <memory>

namespace fedcleanse::nn {

namespace {
constexpr std::uint32_t kMagic = 0x46434B50;  // "FCKP"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> save_model(const ModelSpec& spec) {
  common::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u8(static_cast<std::uint8_t>(spec.arch));
  w.write_f32_vector(spec.net.get_flat());
  const auto masks = spec.net.prune_masks();
  w.write_u32(static_cast<std::uint32_t>(masks.size()));
  for (const auto& m : masks) w.write_u8_vector(m);
  return w.take();
}

ModelSpec load_model(const std::vector<std::uint8_t>& bytes) {
  common::ByteReader r(bytes);
  FC_REQUIRE(r.read_u32() == kMagic, "not a fedcleanse checkpoint");
  FC_REQUIRE(r.read_u32() == kVersion, "unsupported checkpoint version");
  const auto arch = static_cast<Architecture>(r.read_u8());
  // Weights are overwritten immediately; the init seed is irrelevant.
  common::Rng rng(0);
  ModelSpec spec = make_model(arch, rng);
  auto flat = r.read_f32_vector();
  const std::uint32_t n_masks = r.read_u32();
  FC_REQUIRE(static_cast<int>(n_masks) == spec.net.size(),
             "checkpoint mask count does not match architecture");
  std::vector<std::vector<std::uint8_t>> masks(n_masks);
  for (auto& m : masks) m = r.read_u8_vector();
  // Masks first, then parameters: set_flat re-zeroes pruned units, so the
  // restored model is structurally identical to the saved one.
  spec.net.set_prune_masks(masks);
  spec.net.set_flat(flat);
  return spec;
}

void save_model_file(const ModelSpec& spec, const std::string& path) {
  const auto bytes = save_model(spec);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  FC_REQUIRE(file != nullptr, "cannot open checkpoint file for writing: " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file.get());
  FC_REQUIRE(written == bytes.size(), "short write to checkpoint file: " + path);
}

ModelSpec load_model_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  FC_REQUIRE(file != nullptr, "cannot open checkpoint file for reading: " + path);
  std::fseek(file.get(), 0, SEEK_END);
  const long size = std::ftell(file.get());
  FC_REQUIRE(size >= 0, "cannot stat checkpoint file: " + path);
  std::fseek(file.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), file.get());
  FC_REQUIRE(read == bytes.size(), "short read from checkpoint file: " + path);
  return load_model(bytes);
}

}  // namespace fedcleanse::nn
