#include "nn/checkpoint.h"

#include <cstdio>
#include <memory>

namespace fedcleanse::nn {

namespace {
constexpr std::uint32_t kMagic = 0x46434B50;  // "FCKP"
// v2: the header carries an FNV-1a checksum over the payload, so truncated
// or bit-flipped checkpoint files fail loudly at the header instead of
// surfacing as confusing shape errors deep inside deserialization.
constexpr std::uint32_t kVersion = 2;
// magic + version + checksum + payload length prefix.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;
}  // namespace

std::vector<std::uint8_t> save_model(const ModelSpec& spec) {
  common::ByteWriter payload;
  payload.write_u8(static_cast<std::uint8_t>(spec.arch));
  payload.write_f32_vector(spec.net.get_flat());
  const auto masks = spec.net.prune_masks();
  payload.write_u32(static_cast<std::uint32_t>(masks.size()));
  for (const auto& m : masks) payload.write_u8_vector(m);

  common::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u64(common::fnv1a(payload.bytes()));
  w.write_u8_vector(payload.take());
  return w.take();
}

ModelSpec load_model(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw CheckpointError("model checkpoint truncated: " + std::to_string(bytes.size()) +
                          " bytes, header needs " + std::to_string(kHeaderBytes));
  }
  common::ByteReader header(bytes);
  if (header.read_u32() != kMagic) throw CheckpointError("not a fedcleanse checkpoint");
  const std::uint32_t version = header.read_u32();
  if (version != kVersion) {
    throw CheckpointError("unsupported checkpoint version " + std::to_string(version) +
                          " (expected " + std::to_string(kVersion) + ")");
  }
  const std::uint64_t stored = header.read_u64();
  std::vector<std::uint8_t> payload;
  try {
    payload = header.read_u8_vector();
  } catch (const SerializationError& e) {
    throw CheckpointError(std::string("model checkpoint truncated: ") + e.what());
  }
  if (!header.exhausted()) throw CheckpointError("model checkpoint has trailing bytes");
  if (common::fnv1a(payload) != stored) {
    throw CheckpointError("model checkpoint payload fails its checksum");
  }

  try {
    common::ByteReader r(payload);
    const auto arch = static_cast<Architecture>(r.read_u8());
    // Weights are overwritten immediately; the init seed is irrelevant.
    common::Rng rng(0);
    ModelSpec spec = make_model(arch, rng);
    auto flat = r.read_f32_vector();
    const std::uint32_t n_masks = r.read_u32();
    if (static_cast<int>(n_masks) != spec.net.size()) {
      throw CheckpointError("checkpoint mask count does not match architecture");
    }
    std::vector<std::vector<std::uint8_t>> masks(n_masks);
    for (auto& m : masks) m = r.read_u8_vector();
    // Masks first, then parameters: set_flat re-zeroes pruned units, so the
    // restored model is structurally identical to the saved one.
    spec.net.set_prune_masks(masks);
    spec.net.set_flat(flat);
    return spec;
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    // A checksum-valid payload that still fails to deserialize means the
    // writer and reader disagree (e.g. an unknown architecture tag).
    throw CheckpointError(std::string("model checkpoint payload undecodable: ") + e.what());
  }
}

void save_model_file(const ModelSpec& spec, const std::string& path) {
  const auto bytes = save_model(spec);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  FC_REQUIRE(file != nullptr, "cannot open checkpoint file for writing: " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file.get());
  FC_REQUIRE(written == bytes.size(), "short write to checkpoint file: " + path);
}

ModelSpec load_model_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  if (file == nullptr) {
    throw CheckpointError("cannot open checkpoint file for reading: " + path);
  }
  std::fseek(file.get(), 0, SEEK_END);
  const long size = std::ftell(file.get());
  if (size < 0) throw CheckpointError("cannot stat checkpoint file: " + path);
  std::fseek(file.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), file.get());
  if (read != bytes.size()) throw CheckpointError("short read from checkpoint file: " + path);
  return load_model(bytes);
}

}  // namespace fedcleanse::nn
