#include "nn/activation_stats.h"

#include "common/error.h"

namespace fedcleanse::nn {

void ChannelMeanAccumulator::add_batch(const tensor::Tensor& tapped) {
  const int rank = tapped.shape().rank();
  FC_REQUIRE(rank == 2 || rank == 4, "tapped activation must be [N,C] or [N,C,H,W]");
  const int n = tapped.shape()[0];
  const int c = tapped.shape()[1];
  const std::size_t plane =
      rank == 4 ? static_cast<std::size_t>(tapped.shape()[2]) * tapped.shape()[3] : 1;
  if (sums_.empty()) sums_.assign(static_cast<std::size_t>(c), 0.0);
  FC_REQUIRE(static_cast<int>(sums_.size()) == c, "channel count changed between batches");

  const auto v = tapped.data();
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* p = &v[(static_cast<std::size_t>(b) * c + ch) * plane];
      double s = 0.0;
      for (std::size_t i = 0; i < plane; ++i) s += p[i];
      // Spatial mean of the channel for this sample.
      sums_[static_cast<std::size_t>(ch)] += s / static_cast<double>(plane);
    }
  }
  count_ += static_cast<std::size_t>(n);
}

std::vector<double> ChannelMeanAccumulator::means() const {
  FC_REQUIRE(count_ > 0, "no batches accumulated");
  std::vector<double> out(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    out[i] = sums_[i] / static_cast<double>(count_);
  }
  return out;
}

}  // namespace fedcleanse::nn
