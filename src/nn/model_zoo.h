// Model factories for the paper's experiments.
//
// Architectures mirror the paper at a single-CPU-core scale (see DESIGN.md):
//  - MnistCnn:   2 conv + 2 FC       (paper's MNIST net)
//  - FashionCnn: 3 conv + 2 FC       (paper's Fashion-MNIST net)
//  - VggSmall:   VGG-style conv stack (paper's CIFAR-10 / VGG11 stand-in)
//  - SmallNn:    8/16-channel 2-conv net   (Table VI "Small NN")
//  - LargeNn:    20/50-channel 2-conv net  (Table VI "Large NN")
#pragma once

#include <string>

#include "common/rng.h"
#include "nn/sequential.h"

namespace fedcleanse::nn {

enum class Architecture { kMnistCnn, kFashionCnn, kVggSmall, kSmallNn, kLargeNn };

const char* arch_name(Architecture arch);

// A model plus the metadata the defense needs: which layer is "layer L"
// (the last convolutional layer whose channels are pruned) and which layer's
// output is the activation record (the ReLU right after it).
struct ModelSpec {
  Sequential net;
  Architecture arch{};
  int last_conv_index = -1;
  int tap_index = -1;
  Shape input_shape;  // [C, H, W]
  int num_classes = 10;

  ModelSpec clone() const {
    ModelSpec copy;
    copy.net = net.clone();
    copy.arch = arch;
    copy.last_conv_index = last_conv_index;
    copy.tap_index = tap_index;
    copy.input_shape = input_shape;
    copy.num_classes = num_classes;
    return copy;
  }
};

ModelSpec make_model(Architecture arch, common::Rng& rng);

ModelSpec make_mnist_cnn(common::Rng& rng);
ModelSpec make_fashion_cnn(common::Rng& rng);
ModelSpec make_vgg_small(common::Rng& rng);
ModelSpec make_small_nn(common::Rng& rng);
ModelSpec make_large_nn(common::Rng& rng);

}  // namespace fedcleanse::nn
