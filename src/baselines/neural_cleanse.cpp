#include "baselines/neural_cleanse.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "fl/metrics.h"
#include "nn/activation_stats.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace fedcleanse::baselines {

namespace {

inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Blend a batch with the trigger: x' = (1−m)·x + m·p.
tensor::Tensor blend(const tensor::Tensor& images, const tensor::Tensor& mask,
                     const tensor::Tensor& pattern) {
  const int n = images.shape()[0], c = images.shape()[1], h = images.shape()[2],
            w = images.shape()[3];
  tensor::Tensor out(images.shape());
  const auto iv = images.data();
  const auto mv = mask.data();
  const auto pv = pattern.data();
  auto ov = out.data();
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
      const std::size_t pbase = static_cast<std::size_t>(ch) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float m = mv[i];
        ov[base + i] = (1.0f - m) * iv[base + i] + m * pv[pbase + i];
      }
    }
  }
  return out;
}

struct TriggerParams {
  tensor::Tensor mask_raw;     // [H*W] pre-sigmoid
  tensor::Tensor pattern_raw;  // [C,H,W] pre-sigmoid
  tensor::Tensor mask;         // [1,H,W]
  tensor::Tensor pattern;      // [C,H,W]

  void materialize() {
    for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = sigmoid(mask_raw[i]);
    for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = sigmoid(pattern_raw[i]);
  }
};

}  // namespace

std::vector<double> mad_anomaly_index(const std::vector<double>& values) {
  FC_REQUIRE(!values.empty(), "mad_anomaly_index of empty vector");
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    deviations[i] = std::abs(values[i] - median);
  }
  std::vector<double> dev_sorted = deviations;
  std::sort(dev_sorted.begin(), dev_sorted.end());
  const double mad = dev_sorted[dev_sorted.size() / 2] * 1.4826;
  std::vector<double> index(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Only abnormally SMALL triggers indicate a backdoor.
    if (values[i] < median && mad > 1e-12) index[i] = deviations[i] / mad;
  }
  return index;
}

TriggerResult reverse_trigger(nn::ModelSpec& model, const data::Dataset& clean_data,
                              int target_label, const NeuralCleanseConfig& config) {
  FC_REQUIRE(!clean_data.empty(), "neural cleanse needs clean input data");
  const int c = model.input_shape[0], h = model.input_shape[1], w = model.input_shape[2];
  const std::size_t plane = static_cast<std::size_t>(h) * w;

  TriggerResult best;
  best.label = target_label;
  best.final_loss = std::numeric_limits<double>::infinity();

  for (double lr : config.learning_rates) {
    common::Rng rng(config.seed + static_cast<std::uint64_t>(lr * 1000) +
                    static_cast<std::uint64_t>(target_label) * 101);
    TriggerParams tp{
        tensor::Tensor::randn(tensor::Shape{h * w}, rng, -3.0f, 0.3f),
        tensor::Tensor::randn(tensor::Shape{c, h, w}, rng, 0.0f, 0.3f),
        tensor::Tensor(tensor::Shape{1, h, w}),
        tensor::Tensor(tensor::Shape{c, h, w}),
    };
    nn::SoftmaxCrossEntropy loss_fn;
    double last_loss = 0.0;

    for (int step = 0; step < config.optimization_steps; ++step) {
      tp.materialize();
      // Random minibatch of clean images, all targeted at `target_label`.
      std::vector<std::size_t> indices(static_cast<std::size_t>(config.batch_size));
      for (auto& idx : indices) idx = rng.index(clean_data.size());
      auto batch = clean_data.make_batch(indices);
      auto patched = blend(batch.images, tp.mask, tp.pattern);
      std::vector<int> targets(indices.size(), target_label);

      model.net.zero_grad();
      auto logits = model.net.forward(patched);
      const float ce = loss_fn.forward(logits, targets);
      auto grad_input = model.net.backward(loss_fn.backward());  // dL/dx'

      // Mask L1 penalty (mask ∈ (0,1) so |m| = m and d|m|/dm = 1).
      double l1 = 0.0;
      for (std::size_t i = 0; i < tp.mask.size(); ++i) l1 += tp.mask[i];
      last_loss = ce + config.lambda_l1 * l1;

      // Chain rule into the raw parameters.
      const int n = grad_input.shape()[0];
      const auto gi = grad_input.data();
      const auto iv = batch.images.data();
      const auto mv = tp.mask.data();
      const auto pv = tp.pattern.data();
      std::vector<float> gmask(plane, 0.0f);
      std::vector<float> gpattern(tp.pattern.size(), 0.0f);
      for (int b = 0; b < n; ++b) {
        for (int ch = 0; ch < c; ++ch) {
          const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
          const std::size_t pbase = static_cast<std::size_t>(ch) * plane;
          for (std::size_t i = 0; i < plane; ++i) {
            const float g = gi[base + i];
            gmask[i] += g * (pv[pbase + i] - iv[base + i]);
            gpattern[pbase + i] += g * mv[i];
          }
        }
      }
      // L1 term on the mask.
      for (std::size_t i = 0; i < plane; ++i) {
        gmask[i] += static_cast<float>(config.lambda_l1);
      }
      // Sigmoid chain and SGD step.
      const float flr = static_cast<float>(lr);
      for (std::size_t i = 0; i < plane; ++i) {
        const float m = mv[i];
        tp.mask_raw[i] -= flr * gmask[i] * m * (1.0f - m);
      }
      for (std::size_t i = 0; i < gpattern.size(); ++i) {
        const float p = pv[i];
        tp.pattern_raw[i] -= flr * gpattern[i] * p * (1.0f - p);
      }
    }

    tp.materialize();
    if (last_loss < best.final_loss) {
      best.final_loss = last_loss;
      best.mask = tp.mask;
      best.pattern = tp.pattern;
      double l1 = 0.0;
      for (std::size_t i = 0; i < tp.mask.size(); ++i) l1 += tp.mask[i];
      best.mask_l1 = l1;
    }
  }

  // Flip rate of the best trigger over the clean data.
  {
    std::vector<std::size_t> all(clean_data.size());
    std::iota(all.begin(), all.end(), 0);
    std::size_t flipped = 0, total = 0;
    for (std::size_t start = 0; start < all.size(); start += 64) {
      const std::size_t end = std::min(all.size(), start + 64);
      std::vector<std::size_t> chunk(all.begin() + static_cast<std::ptrdiff_t>(start),
                                     all.begin() + static_cast<std::ptrdiff_t>(end));
      auto batch = clean_data.make_batch(chunk);
      auto patched = blend(batch.images, best.mask, best.pattern);
      auto preds = tensor::argmax_rows(model.net.forward(patched));
      for (int p : preds) {
        if (p == target_label) ++flipped;
      }
      total += preds.size();
    }
    best.flip_rate = static_cast<double>(flipped) / static_cast<double>(total);
  }
  return best;
}

NeuralCleanseReport run_neural_cleanse(nn::ModelSpec& model, const data::Dataset& clean_data,
                                       const NeuralCleanseConfig& config) {
  NeuralCleanseReport report;
  report.accuracy_before = fl::evaluate_accuracy(model.net, clean_data);

  // Stage 1: reverse-engineer one trigger per label.
  std::vector<double> l1s;
  for (int label = 0; label < model.num_classes; ++label) {
    auto trigger = reverse_trigger(model, clean_data, label, config);
    FC_LOG(Debug) << "NC label " << label << " mask L1 " << trigger.mask_l1 << " flip "
                  << trigger.flip_rate;
    l1s.push_back(trigger.mask_l1);
    report.triggers.push_back(std::move(trigger));
  }

  // Stage 2: MAD outlier detection over the mask norms.
  report.anomaly_index = mad_anomaly_index(l1s);
  for (int label = 0; label < model.num_classes; ++label) {
    if (report.anomaly_index[static_cast<std::size_t>(label)] > config.anomaly_threshold) {
      report.flagged_labels.push_back(label);
    }
  }

  // Stage 3: mitigation — prune the neurons most activated by the
  // reconstructed trigger(s), while clean accuracy holds.
  if (!report.flagged_labels.empty()) {
    auto& layer = model.net.layer(model.last_conv_index);
    const int units = layer.prunable_units();
    std::vector<double> trigger_activation(static_cast<std::size_t>(units), 0.0);

    for (int label : report.flagged_labels) {
      const auto& trig = report.triggers[static_cast<std::size_t>(label)];
      nn::ChannelMeanAccumulator acc;
      tensor::Tensor tapped;
      std::vector<std::size_t> all(clean_data.size());
      std::iota(all.begin(), all.end(), 0);
      for (std::size_t start = 0; start < all.size(); start += 64) {
        const std::size_t end = std::min(all.size(), start + 64);
        std::vector<std::size_t> chunk(all.begin() + static_cast<std::ptrdiff_t>(start),
                                       all.begin() + static_cast<std::ptrdiff_t>(end));
        auto batch = clean_data.make_batch(chunk);
        auto patched = blend(batch.images, trig.mask, trig.pattern);
        model.net.forward_with_tap(patched, model.tap_index, tapped);
        acc.add_batch(tapped);
      }
      auto means = acc.means();
      for (std::size_t i = 0; i < means.size(); ++i) trigger_activation[i] += means[i];
    }

    // Most trigger-activated first.
    std::vector<int> order(static_cast<std::size_t>(units));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return trigger_activation[static_cast<std::size_t>(a)] >
             trigger_activation[static_cast<std::size_t>(b)];
    });

    const double floor = report.accuracy_before - config.mitigation_acc_drop;
    int active = 0;
    for (int u = 0; u < units; ++u) active += layer.unit_active(u) ? 1 : 0;
    for (int neuron : order) {
      if (active <= 1) break;
      if (!layer.unit_active(neuron)) continue;
      std::vector<std::vector<float>> saved;
      for (auto& p : layer.params()) saved.emplace_back(p.value->storage());
      layer.set_unit_active(neuron, false);
      --active;
      const double acc_now = fl::evaluate_accuracy(model.net, clean_data);
      if (acc_now < floor) {
        auto params = layer.params();
        for (std::size_t i = 0; i < params.size(); ++i) {
          params[i].value->storage() = std::move(saved[i]);
        }
        layer.set_unit_active(neuron, true);
        ++active;
        break;
      }
      ++report.neurons_pruned;
    }
  }

  report.accuracy_after = fl::evaluate_accuracy(model.net, clean_data);
  return report;
}

}  // namespace fedcleanse::baselines
