// Neural Cleanse (Wang et al., S&P 2019) — the paper's baseline defense
// (Table IV).
//
// For every candidate target label, optimize a trigger (per-pixel mask m and
// pattern p, both sigmoid-parameterized) that flips clean inputs to that
// label under the blend x' = (1−m)·x + m·p, with an L1 (Lasso) penalty on
// the mask. Labels whose reversed trigger is anomalously small (MAD outlier
// on the mask L1 norm) are flagged as backdoored, and the model is mitigated
// by pruning the neurons most activated by the reconstructed trigger.
//
// Per the paper's comparison protocol the optimization runs on the *test*
// dataset (client training data is private), and the best result over a
// sweep of learning rates is kept.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/model_zoo.h"

namespace fedcleanse::baselines {

struct NeuralCleanseConfig {
  int optimization_steps = 200;
  int batch_size = 32;
  // Learning rates to sweep; the run with the lowest final loss per label
  // wins (the paper sweeps 0.1..0.5).
  std::vector<double> learning_rates = {0.1, 0.3, 0.5};
  // Lasso coefficient on the mask L1 norm.
  double lambda_l1 = 0.01;
  // MAD anomaly index above which a label is flagged (standard NC uses 2).
  double anomaly_threshold = 2.0;
  // Mitigation pruning stops when clean accuracy drops more than this below
  // the pre-mitigation level.
  double mitigation_acc_drop = 0.04;
  std::uint64_t seed = 1234;
};

struct TriggerResult {
  int label = -1;
  double mask_l1 = 0.0;
  double final_loss = 0.0;
  double flip_rate = 0.0;  // fraction of clean inputs flipped to `label`
  tensor::Tensor mask;     // [1,H,W] in (0,1)
  tensor::Tensor pattern;  // [C,H,W] in (0,1)
};

struct NeuralCleanseReport {
  std::vector<TriggerResult> triggers;       // one per label
  std::vector<double> anomaly_index;         // per label
  std::vector<int> flagged_labels;
  int neurons_pruned = 0;
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
};

// Reverse-engineer a trigger for one target label (best over the LR sweep).
TriggerResult reverse_trigger(nn::ModelSpec& model, const data::Dataset& clean_data,
                              int target_label, const NeuralCleanseConfig& config);

// Full pipeline: reverse triggers for all labels, flag outliers via MAD,
// and mitigate by pruning trigger-activated neurons. Mutates `model`.
NeuralCleanseReport run_neural_cleanse(nn::ModelSpec& model, const data::Dataset& clean_data,
                                       const NeuralCleanseConfig& config);

// Median-absolute-deviation anomaly index of each value (consistency
// constant 1.4826); only values *below* the median count as backdoor
// candidates, matching NC's "small trigger" reasoning.
std::vector<double> mad_anomaly_index(const std::vector<double>& values);

}  // namespace fedcleanse::baselines
