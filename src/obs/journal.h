// Run journal: one JSON line per round, the canonical on-disk artifact of a
// training + defense run (the per-round TA/ASR curves the paper's figures
// plot, plus fault/retry bookkeeping, defense phase seconds, and deltas of
// every registry counter since the previous line).
//
// Writers build a line with JsonObject (insertion-ordered, properly escaped)
// and hand it to Journal::write, which appends the registry's counter deltas
// under "metrics" (when the metrics runtime switch is on) and emits the line
// under a mutex — lines from concurrent writers never interleave.
//
// Wiring mirrors the ambient thread pool: an example opens a Journal for
// --journal-out and installs it with set_ambient_journal; Simulation::run,
// federated_finetune, and run_defense write through ambient_journal() when
// one is present and skip all work (not even a string is built) when not.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

namespace fedcleanse::obs {

// Minimal insertion-ordered JSON object builder. Values are rendered on add;
// keys are trusted literals, string values are escaped.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& v);
  JsonObject& add(const std::string& key, const char* v);
  JsonObject& add(const std::string& key, double v);
  JsonObject& add(const std::string& key, std::int64_t v);
  JsonObject& add(const std::string& key, std::uint64_t v);
  JsonObject& add(const std::string& key, int v) { return add(key, static_cast<std::int64_t>(v)); }
  JsonObject& add(const std::string& key, bool v);
  // Embed a pre-rendered JSON value (e.g. a nested JsonObject's str()).
  JsonObject& add_raw(const std::string& key, const std::string& json);

  std::string str() const;  // "{...}"
  bool empty() const { return body_.empty(); }

 private:
  void key(const std::string& k);
  std::string body_;
};

std::string json_escape(const std::string& s);

// Process identity stamped into every journal's first line as a
// {"kind":"open"} record: pid, role ("server", "client-3", ...), an FNV-1a
// hash of argv (two journals from "the same" run with different flags stop
// looking identical), the int8 kernel dispatch tier runtime CPU detection
// picked, and the trace wall-clock anchor (so a journal can be aligned with
// its process's trace even when the trace file is lost). Deployment binaries
// call set_run_identity at startup; a Journal constructed with no identity
// set writes no open line, so library-level journal users (tests, the
// simulator harness) keep their exact line sequence.
void set_run_identity(std::string role, std::uint64_t argv_hash, std::string cpu_dispatch);
bool run_identity_set();

// FNV-1a over argv joined with '\0' separators — the hash set_run_identity
// callers record.
std::uint64_t hash_argv(int argc, const char* const* argv);

class Journal {
 public:
  // Opens `path`: truncated by default, appended to when `append` is true
  // (a resumed run continues its journal; a {"kind":"resume"} line marks the
  // boundary). Check ok() — a bad path disables the journal rather than
  // throwing (telemetry must never kill a run).
  explicit Journal(const std::string& path, bool append = false);

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }
  std::size_t lines_written() const;

  // Append one JSONL line: `entry`'s fields plus "metrics" (registry counter
  // deltas since this journal's previous line; only counters that moved).
  void write(const JsonObject& entry);

 private:
  std::string path_;
  bool ok_ = false;
  mutable std::mutex mu_;
  std::ofstream out_;
  std::size_t lines_ = 0;
  std::map<std::string, std::uint64_t> last_counters_;
};

// Process-wide ambient journal; nullptr (the default) = no journal. The
// installer owns the Journal and must clear the pointer before destroying it.
Journal* ambient_journal();
void set_ambient_journal(Journal* journal);

}  // namespace fedcleanse::obs
