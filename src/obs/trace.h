// Trace spans: RAII wall-clock intervals buffered per thread and exportable
// as Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// A Span always measures (one steady_clock read at construction when a
// seconds sink is attached or tracing is on; zero clock reads otherwise), but
// only *records* an event when tracing was enabled at construction. Events
// carry the span name, a category, the owning thread's compact index (the
// same one log lines print), and start/duration in nanoseconds; nesting needs
// no bookkeeping because RAII guarantees child intervals close before their
// parent on the same thread, which is exactly the contract Chrome "X"
// (complete) events encode.
//
// Buffering: each thread appends to its own mutex-guarded buffer, registered
// once with the process-wide collector and never freed (a thread may die with
// its events still pending export). The per-buffer mutex is uncontended on
// the hot path — only export takes it from another thread — so a recorded
// span costs one clock read plus one vector push under an owned lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fedcleanse::obs {

// Tracing is off until enabled here or via init_from_env (FEDCLEANSE_TRACE).
bool tracing_enabled();
void set_tracing_enabled(bool on);

// Where flush_trace() writes. Setting a non-empty path also enables tracing.
void set_trace_path(std::string path);
std::string trace_path();

// FEDCLEANSE_TRACE=<path> → set_trace_path; FEDCLEANSE_METRICS=1 → enable
// the metrics registry. Examples and the bench harness call this at startup.
void init_from_env();

// Cross-process alignment (DESIGN.md §17). Span timestamps are steady-clock
// offsets from a per-process trace epoch, which makes traces from different
// processes unalignable on their own. The anchor pins that epoch to the wall
// clock: both clocks are read back to back the first time either is needed,
// and write_chrome_trace embeds the pair (plus pid and process name) in the
// trace file's metadata so scripts/trace_merge.py — or a human with a
// calculator — can place every process on one absolute timeline.
std::int64_t trace_wall_anchor_unix_ns();

// Process name shown as the track title in merged traces ("server",
// "client-3", ...). Also emitted as a Chrome process_name metadata event.
void set_trace_process_name(std::string name);
std::string trace_process_name();

struct TraceEvent {
  const char* name = "";  // string literals only — never freed, never copied
  const char* cat = "";
  std::int64_t start_ns = 0;  // steady_clock, relative to process trace epoch
  std::int64_t dur_ns = 0;
  int tid = 0;
  const char* arg_key = nullptr;  // optional single integer argument
  std::int64_t arg_value = 0;
};

class Span {
 public:
  // Name and category must be string literals (or otherwise outlive the
  // process's trace buffers).
  explicit Span(const char* name, const char* cat = "misc")
      : Span(name, cat, nullptr) {}
  // `seconds_sink`, when non-null, accumulates the span's elapsed seconds on
  // destruction — the DefenseReport::phase_seconds path, which must keep
  // working with tracing off.
  Span(const char* name, const char* cat, double* seconds_sink);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach one integer argument (round number, client id, ...) shown in the
  // trace viewer's args pane. `key` must be a string literal.
  void set_arg(const char* key, std::int64_t value) {
    arg_key_ = key;
    arg_value_ = value;
  }

  double elapsed_seconds() const;

 private:
  const char* name_;
  const char* cat_;
  double* sink_;
  std::int64_t start_ns_ = 0;
  bool recording_;  // tracing was on when this span opened
  const char* arg_key_ = nullptr;
  std::int64_t arg_value_ = 0;
};

// Copy of every buffered event (all threads). Ordered by thread then append
// order; callers sort by start_ns if they need a global timeline.
std::vector<TraceEvent> trace_events_snapshot();

// Drop all buffered events (test isolation between trace test cases).
void clear_trace_events();

// Write the buffered events as Chrome trace JSON. Returns false (and logs
// nothing) when the file cannot be opened. Thread-safe against concurrent
// span recording; call it at a quiet point for a complete picture.
bool write_chrome_trace(const std::string& path);

// write_chrome_trace(trace_path()) if tracing was enabled and a path is set;
// returns true when a file was written. Examples call this before exiting.
bool flush_trace();

}  // namespace fedcleanse::obs
