#include "obs/metrics.h"

namespace fedcleanse::obs::metrics {

namespace {
Counter& counter(const char* name) { return Registry::global().counter(name); }
}  // namespace

Counter& gemm_calls() {
  static Counter& c = counter("tensor.gemm.calls");
  return c;
}
Counter& gemm_flops() {
  static Counter& c = counter("tensor.gemm.flops");
  return c;
}
Counter& workspace_chunk_allocs() {
  static Counter& c = counter("tensor.workspace.chunk_allocs");
  return c;
}
Counter& workspace_chunk_bytes() {
  static Counter& c = counter("tensor.workspace.chunk_bytes");
  return c;
}

Counter& pool_tasks() {
  static Counter& c = counter("pool.tasks");
  return c;
}
Counter& pool_parallel_for_calls() {
  static Counter& c = counter("pool.parallel_for.calls");
  return c;
}
Counter& pool_inline_for_calls() {
  static Counter& c = counter("pool.parallel_for.inline");
  return c;
}
Counter& pool_idle_ns() {
  static Counter& c = counter("pool.idle_ns");
  return c;
}

Counter& channel_msgs() {
  static Counter& c = counter("comm.channel.msgs");
  return c;
}
Counter& channel_bytes() {
  static Counter& c = counter("comm.channel.bytes");
  return c;
}
Histogram& message_bytes() {
  // Wire sizes range from ~21-byte headers to multi-MiB model broadcasts.
  static Histogram& h = Registry::global().histogram(
      "comm.message_bytes",
      {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0});
  return h;
}
Counter& fault_dropped() {
  static Counter& c = counter("comm.fault.dropped");
  return c;
}
Counter& fault_corrupted() {
  static Counter& c = counter("comm.fault.corrupted");
  return c;
}
Counter& fault_duplicated() {
  static Counter& c = counter("comm.fault.duplicated");
  return c;
}
Counter& fault_delayed() {
  static Counter& c = counter("comm.fault.delayed");
  return c;
}
Counter& fault_crashed() {
  static Counter& c = counter("comm.fault.crashed");
  return c;
}

Counter& exchange_rounds() {
  static Counter& c = counter("fl.exchange.rounds");
  return c;
}
Counter& exchange_retries() {
  static Counter& c = counter("fl.exchange.retries");
  return c;
}
Counter& exchange_drops() {
  static Counter& c = counter("fl.exchange.drops");
  return c;
}
Counter& exchange_corrupted() {
  static Counter& c = counter("fl.exchange.corrupted");
  return c;
}

Counter& transport_frames_sent() {
  static Counter& c = counter("comm.transport.frames_sent");
  return c;
}
Counter& transport_frames_recv() {
  static Counter& c = counter("comm.transport.frames_recv");
  return c;
}
Counter& transport_bytes_sent() {
  static Counter& c = counter("comm.transport.bytes_sent");
  return c;
}
Counter& transport_bytes_recv() {
  static Counter& c = counter("comm.transport.bytes_recv");
  return c;
}
Counter& transport_heartbeats() {
  static Counter& c = counter("comm.transport.heartbeats");
  return c;
}
Counter& transport_reconnects() {
  static Counter& c = counter("comm.transport.reconnects");
  return c;
}
Counter& transport_dead_clients() {
  static Counter& c = counter("comm.transport.dead_clients");
  return c;
}

Counter& server_resumes() {
  static Counter& c = counter("fl.failover.server_resumes");
  return c;
}
Counter& round_syncs() {
  static Counter& c = counter("fl.failover.round_syncs");
  return c;
}

Gauge& peak_rss_bytes() {
  static Gauge& g = Registry::global().gauge("process.peak_rss_bytes");
  return g;
}
Gauge& current_round() {
  static Gauge& g = Registry::global().gauge("fl.round");
  return g;
}

}  // namespace fedcleanse::obs::metrics
