#include "obs/registry.h"

#include <algorithm>

#include "common/error.h"

namespace fedcleanse::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FC_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  FC_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bounds must be ascending");
  counts_ = std::vector<detail::Slot>(kShards * (bounds_.size() + 1));
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  // Bounds are few and fixed; a linear scan beats binary search at this size.
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  const std::size_t shard = detail::shard_index();
  counts_[shard * (bounds_.size() + 1) + b].v.fetch_add(1, std::memory_order_relaxed);
  sums_[shard].fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  const std::size_t n = bounds_.size() + 1;
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < n; ++b) {
      out[b] += counts_[s * n + b].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts()) total += c;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : sums_) total += s.load(std::memory_order_relaxed);
  return total;
}

Registry& Registry::global() {
  // Leaked on purpose: metric references handed out to function-local statics
  // must outlive every other static destructor.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.counts = h->counts();
    for (auto c : s.counts) s.total_count += c;
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

}  // namespace fedcleanse::obs
