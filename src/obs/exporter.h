// Embedded scrape endpoint (DESIGN.md §17): a minimal HTTP/1.1 listener the
// deployment binaries start when --metrics-port is given, serving
//
//   GET /metricsz — every registry counter/gauge/histogram in Prometheus text
//                   exposition format (scrape-safe: counters are monotone, a
//                   scrape concurrent with writers reads a valid snapshot)
//   GET /statusz  — one JSON object describing this process (role, round,
//                   fleet table, ... — whatever the installed provider says)
//
// The exporter is observability-plane only: it reads the registry and the
// status provider, never the model or the wire, so serving a scrape cannot
// perturb a run. It deliberately does not use comm::* (obs must not depend on
// the transport layer) — a hand-rolled request-line parser over a blocking
// socket is all two fixed GET routes need. One connection is served at a
// time; Prometheus scrapes and curl pokes are rare and tiny.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace fedcleanse::obs {

// Registry snapshot → Prometheus text exposition format. Metric names are
// sanitized (dots → underscores); histograms emit cumulative _bucket{le=...}
// series plus _sum/_count per the convention. Exposed for tests, which parse
// the text back rather than curl a live port.
std::string prometheus_text(const Snapshot& snap);

class MetricsExporter {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral, read the chosen one via port())
  // and starts the serve thread. Bind failure leaves ok() false and the
  // exporter inert — telemetry must never kill a run.
  explicit MetricsExporter(std::uint16_t port);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  bool ok() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  // /statusz body builder. The provider runs on the serve thread — it must be
  // thread-safe and return a complete JSON value. Without one, /statusz
  // serves a stub ({"pid":...}).
  void set_status_provider(std::function<std::string()> provider);

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;
  std::function<std::string()> status_provider_;
};

}  // namespace fedcleanse::obs
