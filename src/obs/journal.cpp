#include "obs/journal.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/serialize.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace fedcleanse::obs {

namespace {
std::atomic<Journal*> g_journal{nullptr};

// Leaked, mutex-guarded for the same reason as the trace path state: set
// before threads exist in practice, but nothing enforces that.
struct IdentityState {
  std::mutex mu;
  bool set = false;
  std::string role;
  std::uint64_t argv_hash = 0;
  std::string cpu_dispatch;
};
IdentityState& identity_state() {
  static IdentityState* s = new IdentityState();
  return *s;
}

std::string format_double(double v) {
  // Shortest round-trip-safe form; JSON has no inf/nan, clamp to null.
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::key(const std::string& k) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + json_escape(k) + "\":";
}

JsonObject& JsonObject::add(const std::string& k, const std::string& v) {
  key(k);
  body_ += "\"" + json_escape(v) + "\"";
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, const char* v) {
  return add(k, std::string(v));
}

JsonObject& JsonObject::add(const std::string& k, double v) {
  key(k);
  body_ += format_double(v);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::add_raw(const std::string& k, const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

void set_run_identity(std::string role, std::uint64_t argv_hash, std::string cpu_dispatch) {
  IdentityState& st = identity_state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.set = true;
  st.role = std::move(role);
  st.argv_hash = argv_hash;
  st.cpu_dispatch = std::move(cpu_dispatch);
}

bool run_identity_set() {
  IdentityState& st = identity_state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.set;
}

std::uint64_t hash_argv(int argc, const char* const* argv) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < argc; ++i) {
    for (const char* p = argv[i]; *p != '\0'; ++p) {
      bytes.push_back(static_cast<std::uint8_t>(*p));
    }
    bytes.push_back(0);  // separator so {"-a","b"} and {"-ab"} hash apart
  }
  return common::fnv1a(bytes);
}

Journal::Journal(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? std::ios::out | std::ios::app : std::ios::out) {
  ok_ = static_cast<bool>(out_);
  if (!ok_) return;
  IdentityState& st = identity_state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.set) return;
  JsonObject open;
  open.add("kind", "open")
      .add("pid", static_cast<std::int64_t>(::getpid()))
      .add("role", st.role)
      .add("argv_hash", st.argv_hash)
      .add("cpu", st.cpu_dispatch)
      .add("trace_anchor_unix_ns", trace_wall_anchor_unix_ns());
  // Bypass write(): the open line is identity metadata, not a round — it must
  // not consume the counter-delta baseline the first real line establishes.
  out_ << open.str() << "\n";
  out_.flush();
  ++lines_;
}

std::size_t Journal::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void Journal::write(const JsonObject& entry) {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::string line = entry.str();
  if (metrics_enabled()) {
    auto now = Registry::global().counter_values();
    JsonObject deltas;
    for (const auto& [name, value] : now) {
      auto it = last_counters_.find(name);
      const std::uint64_t prev = it == last_counters_.end() ? 0 : it->second;
      if (value != prev) deltas.add(name, value - prev);
    }
    last_counters_ = std::move(now);
    if (!deltas.empty()) {
      // Splice "metrics" into the entry: drop the closing brace, append.
      line.pop_back();
      line += line.size() > 1 ? ",\"metrics\":" : "\"metrics\":";
      line += deltas.str() + "}";
    }
  }
  out_ << line << "\n";
  out_.flush();  // a crashed run keeps every completed round
  ++lines_;
}

Journal* ambient_journal() { return g_journal.load(std::memory_order_acquire); }

void set_ambient_journal(Journal* journal) {
  g_journal.store(journal, std::memory_order_release);
}

}  // namespace fedcleanse::obs
