// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Hot-path cost model. Every metric is sharded into kShards cache-line-sized
// slots; a thread writes the slot picked by its thread_index(), so with up to
// kShards live threads each thread owns a slot outright and an increment is
// one relaxed fetch_add on an uncontended line (beyond that threads share
// slots — still exact, just occasionally contended). When telemetry is
// disabled at runtime (the default) an increment is a single relaxed load and
// a predictable branch; when compiled out (FEDCLEANSE_NO_TELEMETRY, see
// metrics.h) the call sites vanish entirely.
//
// Scrape model. Values are aggregated only on read: value() sums the shards
// with relaxed loads. Counters are monotone, so a scrape concurrent with
// writers is a valid (slightly stale) snapshot; exact totals need only
// quiescence, which the journal writer has at round boundaries.
//
// Metric objects are created on first lookup and never destroyed or moved;
// references returned by Registry are stable for the life of the process,
// which is what lets call sites cache them in function-local statics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_id.h"

namespace fedcleanse::obs {

// Runtime switch for the counter/gauge/histogram hot paths. Off by default:
// examples turn it on when --journal-out/--trace-out is given, tests and
// benches via set_metrics_enabled / FEDCLEANSE_METRICS=1.
bool metrics_enabled();
void set_metrics_enabled(bool on);

inline constexpr std::size_t kShards = 16;

namespace detail {
struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};
inline std::size_t shard_index() {
  return static_cast<std::size_t>(common::thread_index()) % kShards;
}
}  // namespace detail

// Monotone event count (calls, bytes, FLOPs, drops, ...).
class Counter {
 public:
  void add(std::uint64_t n) {
    if (!metrics_enabled()) return;
    slots_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  detail::Slot slots_[kShards];
};

// Last-written value (pool size, capacity bytes, ...). Not sharded: gauges
// are set from configuration points, not hot loops.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram with upper-inclusive bounds (Prometheus "le"
// convention): observe(v) lands in the first bucket whose bound >= v, or the
// overflow bucket past the last bound. Bounds are fixed at registration; a
// later lookup of the same name returns the existing histogram and ignores
// the bounds argument.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  // counts() has bounds().size() + 1 entries; the last is the overflow.
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total_count() const;
  double sum() const;

 private:
  std::vector<double> bounds_;
  // Shard-major: shard s owns counts_[s * n_buckets .. +n_buckets).
  std::vector<detail::Slot> counts_;
  std::atomic<double> sums_[kShards] = {};
};

// Point-in-time aggregate of every registered metric.
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
  std::uint64_t total_count = 0;
  double sum = 0.0;
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<HistogramSample> histograms;
};

class Registry {
 public:
  static Registry& global();

  // Find-or-create by name. References stay valid forever (metrics are
  // never deleted), so call sites may cache them in statics.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  Snapshot scrape() const;
  // Just the counters (what the run journal embeds as per-round deltas).
  std::map<std::string, std::uint64_t> counter_values() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fedcleanse::obs
