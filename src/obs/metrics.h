// Well-known metric handles + the FC_METRIC call-site macro.
//
// Instrumented code writes
//
//   FC_METRIC(gemm_calls().inc());
//   FC_METRIC(gemm_flops().add(2ull * m * n * k));
//
// Each accessor resolves its registry entry once (function-local static) and
// returns a stable reference, so steady-state cost is the metric's own
// relaxed-atomic path. Building with -DFEDCLEANSE_NO_TELEMETRY (CMake
// -DFEDCLEANSE_TELEMETRY=OFF) compiles every FC_METRIC call site away
// entirely; the obs library itself still builds so tooling links either way.
#pragma once

#include "obs/registry.h"

#if defined(FEDCLEANSE_NO_TELEMETRY)
#define FC_METRIC(expr) \
  do {                  \
  } while (0)
#else
#define FC_METRIC(expr)                     \
  do {                                      \
    ::fedcleanse::obs::metrics::expr;       \
  } while (0)
#endif

namespace fedcleanse::obs::metrics {

// --- tensor kernels ----------------------------------------------------------
Counter& gemm_calls();
Counter& gemm_flops();  // 2·m·n·k per call, post-mask
Counter& workspace_chunk_allocs();
Counter& workspace_chunk_bytes();

// --- thread pool -------------------------------------------------------------
Counter& pool_tasks();               // tasks submitted
Counter& pool_parallel_for_calls();  // dispatched across workers
Counter& pool_inline_for_calls();    // degenerate/nested calls run inline
Counter& pool_idle_ns();             // worker time spent parked on the queue

// --- wire --------------------------------------------------------------------
Counter& channel_msgs();
Counter& channel_bytes();
Histogram& message_bytes();  // wire-size distribution
Counter& fault_dropped();
Counter& fault_corrupted();
Counter& fault_duplicated();
Counter& fault_delayed();
Counter& fault_crashed();

// --- round protocol ----------------------------------------------------------
Counter& exchange_rounds();     // exchange_with_retries invocations
Counter& exchange_retries();    // request retransmissions issued
Counter& exchange_drops();      // clients with no valid report after retries
Counter& exchange_corrupted();  // malformed/stale replies skipped

// --- socket transport --------------------------------------------------------
Counter& transport_frames_sent();
Counter& transport_frames_recv();
Counter& transport_bytes_sent();
Counter& transport_bytes_recv();
Counter& transport_heartbeats();    // beacons observed (server + scheduler)
Counter& transport_reconnects();    // successful reregistrations
Counter& transport_dead_clients();  // peers declared dead (EOF or heartbeat)

// --- failover (DESIGN.md §18) ------------------------------------------------
Counter& server_resumes();  // server-scope snapshot restores
Counter& round_syncs();     // kRoundSync handshakes completed (both roles)

// --- process -----------------------------------------------------------------
Gauge& peak_rss_bytes();  // VmHWM high-water mark (common::peak_rss_bytes)
Gauge& current_round();   // last FL round this process started or handled

}  // namespace fedcleanse::obs::metrics
