#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/thread_id.h"
#include "obs/journal.h"
#include "obs/registry.h"

namespace fedcleanse::obs {

namespace {

std::atomic<bool> g_tracing{false};

// Construct-on-first-use (and leaked): set_trace_path may be called from
// another translation unit's static initializer, before this file's globals
// would have been constructed.
struct PathState {
  std::mutex mu;
  std::string path;
};
PathState& path_state() {
  static PathState* s = new PathState();
  return *s;
}

// One buffer per thread, owned by the collector for the life of the process
// (threads die; their events must survive until export).
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

Collector& collector() {
  // Leaked: thread-local buffer pointers must stay valid in late TLS dtors.
  static Collector* c = new Collector();
  return *c;
}

TraceBuffer& local_buffer() {
  thread_local TraceBuffer* buf = [] {
    auto owned = std::make_unique<TraceBuffer>();
    TraceBuffer* raw = owned.get();
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    c.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

// The steady-clock trace epoch and its wall-clock anchor, captured as one
// pair: the two reads are back to back, so wall_anchor + start_ns places any
// span on the absolute timeline with sub-scheduling-quantum error.
struct TraceEpoch {
  std::chrono::steady_clock::time_point steady;
  std::int64_t wall_unix_ns;
};

const TraceEpoch& trace_epoch() {
  static const TraceEpoch epoch = [] {
    TraceEpoch e;
    e.steady = std::chrono::steady_clock::now();
    e.wall_unix_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    return e;
  }();
  return epoch;
}

std::int64_t now_ns() {
  // A fixed process epoch keeps ts values small and all threads comparable.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch().steady)
      .count();
}

struct ProcessNameState {
  std::mutex mu;
  std::string name;
};
ProcessNameState& process_name_state() {
  static ProcessNameState* s = new ProcessNameState();
  return *s;
}

}  // namespace

std::int64_t trace_wall_anchor_unix_ns() { return trace_epoch().wall_unix_ns; }

void set_trace_process_name(std::string name) {
  ProcessNameState& st = process_name_state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.name = std::move(name);
}

std::string trace_process_name() {
  ProcessNameState& st = process_name_state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.name;
}

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) { g_tracing.store(on, std::memory_order_relaxed); }

void set_trace_path(std::string path) {
  PathState& st = path_state();
  bool enable;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.path = std::move(path);
    enable = !st.path.empty();
  }
  if (enable) set_tracing_enabled(true);
}

std::string trace_path() {
  PathState& st = path_state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.path;
}

void init_from_env() {
  if (const char* env = std::getenv("FEDCLEANSE_TRACE"); env != nullptr && env[0] != '\0') {
    set_trace_path(env);
    set_metrics_enabled(true);  // a requested trace implies telemetry on
  }
  if (const char* env = std::getenv("FEDCLEANSE_METRICS"); env != nullptr) {
    set_metrics_enabled(env[0] != '0' && env[0] != '\0');
  }
}

Span::Span(const char* name, const char* cat, double* seconds_sink)
    : name_(name), cat_(cat), sink_(seconds_sink), recording_(tracing_enabled()) {
  if (recording_ || sink_ != nullptr) start_ns_ = now_ns();
}

double Span::elapsed_seconds() const {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

Span::~Span() {
  if (!recording_ && sink_ == nullptr) return;
  const std::int64_t end = now_ns();
  if (sink_ != nullptr) *sink_ += static_cast<double>(end - start_ns_) * 1e-9;
  if (!recording_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.start_ns = start_ns_;
  ev.dur_ns = end - start_ns_;
  ev.tid = common::thread_index();
  ev.arg_key = arg_key_;
  ev.arg_value = arg_value_;
  TraceBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(ev);
}

std::vector<TraceEvent> trace_events_snapshot() {
  std::vector<TraceEvent> out;
  Collector& c = collector();
  std::lock_guard<std::mutex> clock(c.mu);
  for (auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace_events() {
  Collector& c = collector();
  std::lock_guard<std::mutex> clock(c.mu);
  for (auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    buf->events.clear();
  }
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto events = trace_events_snapshot();
  const long pid = static_cast<long>(::getpid());
  const std::string name = trace_process_name();
  // Fixed 3-decimal µs keeps full ns resolution at any run length (default
  // stream precision would truncate ts on runs past a few seconds).
  out.setf(std::ios::fixed);
  out.precision(3);
  // The top-level "metadata" object carries the wall-clock anchor even when
  // no merge tool ever reads this file: a per-process trace must be
  // alignable on its own (ISSUE 9 satellite).
  out << "{\"displayTimeUnit\":\"ms\",\"metadata\":{"
      << "\"trace_wall_anchor_unix_ns\":" << trace_wall_anchor_unix_ns()
      << ",\"pid\":" << pid << ",\"process_name\":\"" << json_escape(name)
      << "\"},\"traceEvents\":[";
  bool first = true;
  if (!name.empty()) {
    // Chrome metadata event so the single-file view is labeled too.
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    first = false;
  }
  for (const auto& ev : events) {
    if (!first) out << ",";
    first = false;
    // Chrome's ts/dur are microseconds; fractional µs keeps ns resolution.
    out << "\n{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.cat
        << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << ev.tid
        << ",\"ts\":" << static_cast<double>(ev.start_ns) / 1000.0
        << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1000.0;
    if (ev.arg_key != nullptr) {
      out << ",\"args\":{\"" << ev.arg_key << "\":" << ev.arg_value << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.good();
}

bool flush_trace() {
  if (!tracing_enabled()) return false;
  const std::string path = trace_path();
  if (path.empty()) return false;
  return write_chrome_trace(path);
}

}  // namespace fedcleanse::obs
