#include "obs/exporter.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/journal.h"

namespace fedcleanse::obs {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry uses dotted
// names ("comm.transport.frames_sent"), so map everything else to '_'.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prom_double(double v) {
  if (!(v == v)) return "NaN";
  if (v > 1.7e308) return "+Inf";
  if (v < -1.7e308) return "-Inf";
  // Shortest representation that round-trips: bucket labels must read
  // le="0.1", not le="0.10000000000000001" (labels are identity — a scraper
  // joins series on them), while lossy truncation would corrupt sums.
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// Read until the blank line ending the request headers (all we parse is the
// request line), a small cap, or EOF. SO_RCVTIMEO bounds a stalled sender.
std::string read_request_head(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  return head;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::string prometheus_text(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + prom_double(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string p = prom_name(h.name);
    out += "# TYPE " + p + " histogram\n";
    // Buckets are cumulative in the exposition format; the registry stores
    // per-bucket counts, so accumulate while emitting.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += p + "_bucket{le=\"" + prom_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.total_count) + "\n";
    out += p + "_sum " + prom_double(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.total_count) + "\n";
  }
  return out;
}

MetricsExporter::MetricsExporter(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    FC_LOG(Warn) << "metrics exporter: socket() failed, endpoint disabled";
    return;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // scrape plane is local-only
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    FC_LOG(Warn) << "metrics exporter: cannot listen on 127.0.0.1:" << port
                 << ", endpoint disabled";
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsExporter::~MetricsExporter() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) ::close(fd_);
}

void MetricsExporter::set_status_provider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  status_provider_ = std::move(provider);
}

void MetricsExporter::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // wake every 100ms to check stop_
    if (ready <= 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval tv{2, 0};  // a stalled scraper must not wedge the serve thread
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    handle_connection(client);
    ::close(client);
  }
}

void MetricsExporter::handle_connection(int client_fd) {
  const std::string head = read_request_head(client_fd);
  // Request line: METHOD SP PATH SP VERSION. Anything unparseable is a 400.
  const std::size_t sp1 = head.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? sp1 : head.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    write_all(client_fd, http_response("400 Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string method = head.substr(0, sp1);
  std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = path.find('?'); q != std::string::npos) path.resize(q);
  if (method != "GET") {
    write_all(client_fd,
              http_response("405 Method Not Allowed", "text/plain", "GET only\n"));
    return;
  }
  if (path == "/metricsz") {
    const std::string body = prometheus_text(Registry::global().scrape());
    write_all(client_fd,
              http_response("200 OK", "text/plain; version=0.0.4", body));
    return;
  }
  if (path == "/statusz") {
    std::function<std::string()> provider;
    {
      std::lock_guard<std::mutex> lock(mu_);
      provider = status_provider_;
    }
    std::string body;
    if (provider) {
      body = provider();
    } else {
      JsonObject stub;
      stub.add("pid", static_cast<std::int64_t>(::getpid()));
      body = stub.str();
    }
    body += "\n";
    write_all(client_fd, http_response("200 OK", "application/json", body));
    return;
  }
  write_all(client_fd, http_response("404 Not Found", "text/plain", "not found\n"));
}

}  // namespace fedcleanse::obs
