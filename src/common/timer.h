// Wall-clock stopwatch for the benches. Phase-level timing in library code
// uses obs::Span (src/obs/trace.h) instead, which both accumulates seconds
// and, when tracing is on, records a trace event.
#pragma once

#include <chrono>

namespace fedcleanse::common {

// Simple stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fedcleanse::common
