// Wall-clock timing utilities used by the defense pipeline (Fig 9, the
// per-phase energy/time breakdown) and by benches.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace fedcleanse::common {

// Simple stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named phase durations; used to report time per defense stage.
class PhaseTimer {
 public:
  // Scoped measurement: adds elapsed time to `name` on destruction.
  class Scope {
   public:
    Scope(PhaseTimer& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {}
    ~Scope() { owner_.add(name_, timer_.elapsed_seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer& owner_;
    std::string name_;
    Timer timer_;
  };

  void add(const std::string& name, double seconds) { totals_[name] += seconds; }
  double total(const std::string& name) const {
    auto it = totals_.find(name);
    return it == totals_.end() ? 0.0 : it->second;
  }
  const std::map<std::string, double>& totals() const { return totals_; }
  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

 private:
  std::map<std::string, double> totals_;
};

}  // namespace fedcleanse::common
