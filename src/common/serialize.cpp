#include "common/serialize.h"

namespace fedcleanse::common {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void ByteWriter::append(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::write_u8(std::uint8_t v) { append(&v, 1); }

void ByteWriter::write_u32(std::uint32_t v) {
  std::uint8_t b[4] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  append(b, 4);
}

void ByteWriter::write_u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(b, 8);
}

void ByteWriter::write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }

void ByteWriter::write_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u32(bits);
}

void ByteWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void ByteWriter::write_bool(bool v) { write_u8(v ? 1 : 0); }

void ByteWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
}

void ByteWriter::write_f32_vector(const std::vector<float>& v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (float x : v) write_f32(x);
}

void ByteWriter::write_u32_vector(const std::vector<std::uint32_t>& v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) write_u32(x);
}

void ByteWriter::write_i32_vector(const std::vector<std::int32_t>& v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) write_i32(x);
}

void ByteWriter::write_u8_vector(const std::vector<std::uint8_t>& v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  append(v.data(), v.size());
}

void ByteReader::take(void* out, std::size_t n) {
  if (pos_ + n > size_) throw SerializationError("buffer underrun");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::uint8_t ByteReader::read_u8() {
  std::uint8_t v;
  take(&v, 1);
  return v;
}

std::uint32_t ByteReader::read_u32() {
  std::uint8_t b[4];
  take(b, 4);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t ByteReader::read_u64() {
  std::uint8_t b[8];
  take(b, 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::int32_t ByteReader::read_i32() { return static_cast<std::int32_t>(read_u32()); }

float ByteReader::read_f32() {
  std::uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::read_f64() {
  std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool ByteReader::read_bool() { return read_u8() != 0; }

std::string ByteReader::read_string() {
  std::uint32_t n = read_u32();
  if (pos_ + n > size_) throw SerializationError("string length exceeds buffer");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> ByteReader::read_f32_vector() {
  std::uint32_t n = read_u32();
  if (pos_ + static_cast<std::size_t>(n) * 4 > size_)
    throw SerializationError("f32 vector length exceeds buffer");
  std::vector<float> v(n);
  for (auto& x : v) x = read_f32();
  return v;
}

std::vector<std::uint32_t> ByteReader::read_u32_vector() {
  std::uint32_t n = read_u32();
  if (pos_ + static_cast<std::size_t>(n) * 4 > size_)
    throw SerializationError("u32 vector length exceeds buffer");
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = read_u32();
  return v;
}

std::vector<std::int32_t> ByteReader::read_i32_vector() {
  std::uint32_t n = read_u32();
  if (pos_ + static_cast<std::size_t>(n) * 4 > size_)
    throw SerializationError("i32 vector length exceeds buffer");
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = read_i32();
  return v;
}

std::vector<std::uint8_t> ByteReader::read_u8_vector() {
  std::uint32_t n = read_u32();
  if (pos_ + n > size_) throw SerializationError("u8 vector length exceeds buffer");
  std::vector<std::uint8_t> v(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return v;
}

}  // namespace fedcleanse::common
