// Deterministic random number generation.
//
// All stochastic behaviour in fedcleanse (weight init, data synthesis,
// non-IID partitioning, client selection, attack noise) flows through
// common::Rng so experiments are exactly reproducible from a single seed.
// The generator is xoshiro256**, seeded via splitmix64; `split()` derives
// statistically independent child streams, which lets every client own its
// own generator without coordination.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/serialize.h"

namespace fedcleanse::common {

// splitmix64 step — used for seeding and stream splitting.
std::uint64_t splitmix64(std::uint64_t& state);

// Complete serializable generator state: the xoshiro256** words plus the
// Box-Muller cache (normal() produces values in pairs; dropping the cached
// second value would shift every draw after a restore). Copying this out and
// back reproduces the draw sequence exactly — the foundation of the
// bit-identical crash-resume guarantee (DESIGN.md §13).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  bool operator==(const RngState&) const = default;
};

// RngState ↔ bytes, for the run-snapshot format.
void write_rng_state(ByteWriter& w, const RngState& state);
RngState read_rng_state(ByteReader& r);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box-Muller (cached second value).
  double normal();
  // Normal with given mean and stddev.
  double normal(double mean, double stddev);
  // Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  // Uniform integer in [lo, hi] inclusive.
  int int_range(int lo, int hi);
  // Bernoulli trial.
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  // Derive an independent child generator (for per-client streams).
  Rng split();

  // Snapshot / restore the full generator state (checkpoint support). A
  // restored generator replays exactly the draws the snapshotted one would
  // have produced, across every draw kind.
  RngState state() const;
  void restore(const RngState& state);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedcleanse::common
