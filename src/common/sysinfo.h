// Process-level system introspection.
#pragma once

#include <cstddef>

namespace fedcleanse::common {

// Peak resident set size (high-water mark) of this process in bytes, read
// from /proc/self/status (VmHWM). Monotone non-decreasing over the process
// lifetime by definition. Returns 0 where procfs is unavailable.
std::size_t peak_rss_bytes();

// Current resident set size in bytes (VmRSS); 0 where unavailable.
std::size_t current_rss_bytes();

}  // namespace fedcleanse::common
