#include "common/sysinfo.h"

#include <cstdio>
#include <cstring>

namespace fedcleanse::common {

namespace {

// Reads a "Vm...:  <kB> kB" line from /proc/self/status; 0 if absent.
std::size_t status_field_bytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::size_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + field_len, ": %llu", &kb) == 1) {
      bytes = static_cast<std::size_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

std::size_t peak_rss_bytes() { return status_field_bytes("VmHWM"); }

std::size_t current_rss_bytes() { return status_field_bytes("VmRSS"); }

}  // namespace fedcleanse::common
