// Fixed-size thread pool used to run client-local work (training epochs,
// activation scans) concurrently when more than one hardware thread is
// available. Falls back gracefully to effectively serial execution on a
// single-core host.
//
// The pool doubles as the process's *ambient execution context*: a
// Simulation installs its pool via set_ambient_pool(), and the tensor
// kernels pick it up through ambient_parallel_for() to spread batch work
// across cores. parallel_for() called from inside one of the pool's own
// workers runs inline (serially) instead of re-submitting — client tasks
// already saturate the pool, and nested blocking waits would deadlock it.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedcleanse::common {

class ThreadPool {
 public:
  // n_threads == 0 → use hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  // Enqueue a task; the returned future rethrows any exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  // Indices are dispatched as contiguous chunks; every chunk runs to the end
  // even when one throws, and the first exception is rethrown once all work
  // has drained (so `fn` is never referenced after parallel_for returns).
  // Runs inline when the pool has a single worker or when called from one of
  // this pool's own worker threads.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Resolve a configured thread count: FEDCLEANSE_THREADS overrides when set,
// then 0 means hardware_concurrency; the result is always ≥ 1.
std::size_t resolve_n_threads(std::size_t configured);

// Process-wide ambient pool, consumed by the tensor kernels. nullptr (the
// default) means serial execution. The installer owns the pool and must
// clear the pointer before destroying it.
ThreadPool* ambient_pool();
void set_ambient_pool(ThreadPool* pool);

// Run fn(i) for i in [0, n): on the ambient pool when one is installed and
// usable (more than one worker, not already inside a worker), serially
// otherwise. Bodies must write disjoint state per index; results must not
// depend on the execution order, which keeps every code path bit-identical
// to the serial run.
void ambient_parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace fedcleanse::common
