// Fixed-size thread pool used to run client-local work (training epochs,
// activation scans) concurrently when more than one hardware thread is
// available. Falls back gracefully to effectively serial execution on a
// single-core host.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedcleanse::common {

class ThreadPool {
 public:
  // n_threads == 0 → use hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; the returned future rethrows any exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fedcleanse::common
