// Error types and contract-check helpers shared across fedcleanse.
//
// Philosophy (CppCoreGuidelines E.*): programming errors (violated
// preconditions) abort via FC_REQUIRE with a readable message; recoverable
// runtime conditions throw typed exceptions derived from fedcleanse::Error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fedcleanse {

// Base class for all recoverable fedcleanse errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Shape or dimensionality mismatch in tensor/NN code.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape error: " + what) {}
};

// Malformed or truncated serialized payload.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what)
      : Error("serialization error: " + what) {}
};

// Misuse of the comm layer (closed channel, unknown peer, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error("comm error: " + what) {}
};

// Invalid experiment / algorithm configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

// Too few clients replied validly for a protocol phase to proceed (degraded
// federated round below its min_collect_fraction gate, after retries).
class QuorumError : public Error {
 public:
  explicit QuorumError(const std::string& what) : Error("quorum error: " + what) {}
};

// Unusable on-disk checkpoint: truncated, bit-flipped, wrong magic/version,
// failed payload checksum, or inconsistent with the configured experiment.
// Loaders throw this (never FC_REQUIRE) so callers can fall back to an older
// snapshot generation instead of dying.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error("checkpoint error: " + what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "FC_REQUIRE failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

// Precondition check. Throws fedcleanse::Error with location info on failure.
// Used at public API boundaries; hot inner loops rely on the callers having
// validated shapes once.
#define FC_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) ::fedcleanse::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

}  // namespace fedcleanse
