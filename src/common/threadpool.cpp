#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"

namespace fedcleanse::common {

namespace {

// Set for the lifetime of each worker thread so parallel_for can detect
// re-entrant calls from its own pool and run them inline.
thread_local const ThreadPool* tl_worker_pool = nullptr;

std::atomic<ThreadPool*> g_ambient_pool{nullptr};

}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return tl_worker_pool == this; }

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      // Time spent parked here is the pool's idle-time observable. The clock
      // reads happen only while telemetry is on, and only around the wait —
      // never between dequeue and task execution.
      const bool timed = obs::metrics_enabled();
      [[maybe_unused]] const auto park = timed ? std::chrono::steady_clock::now()
                                               : std::chrono::steady_clock::time_point{};
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (timed) {
        FC_METRIC(pool_idle_ns().add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - park)
                .count())));
      }
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    FC_METRIC(pool_tasks().inc());
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Inline when parallelism cannot help — or would deadlock: a worker
  // blocking on futures served by the same (possibly fully blocked) pool.
  if (n == 1 || workers_.size() <= 1 || on_worker_thread()) {
    FC_METRIC(pool_inline_for_calls().inc());
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  FC_METRIC(pool_parallel_for_calls().inc());

  // Contiguous chunks, a few per worker so uneven bodies still balance.
  const std::size_t n_chunks = std::min(n, workers_.size() * 4);
  const std::size_t base = n / n_chunks;
  const std::size_t rem = n % n_chunks;

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(n_chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    futures.push_back(submit([&fn, &err_mu, &first_error, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }));
    begin = end;
  }
  // Drain everything before rethrowing: `fn` is borrowed from the caller and
  // must not be touched by stragglers after this frame unwinds.
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t resolve_n_threads(std::size_t configured) {
  if (const char* env = std::getenv("FEDCLEANSE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) configured = static_cast<std::size_t>(v);
  }
  if (configured == 0) {
    configured = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return configured;
}

ThreadPool* ambient_pool() { return g_ambient_pool.load(std::memory_order_acquire); }

void set_ambient_pool(ThreadPool* pool) {
  g_ambient_pool.store(pool, std::memory_order_release);
}

void ambient_parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool* pool = ambient_pool();
  if (pool != nullptr && pool->size() > 1 && n > 1 && !pool->on_worker_thread()) {
    pool->parallel_for(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

}  // namespace fedcleanse::common
