#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace fedcleanse::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::size_t Rng::index(std::size_t n) {
  FC_REQUIRE(n > 0, "Rng::index requires n > 0");
  // Rejection sampling for an unbiased bounded integer.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return static_cast<std::size_t>(r % bound);
}

int Rng::int_range(int lo, int hi) {
  FC_REQUIRE(lo <= hi, "Rng::int_range requires lo <= hi");
  return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo) + 1));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  FC_REQUIRE(k <= n, "cannot sample more elements than the population");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: first k entries become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

RngState Rng::state() const {
  RngState st;
  st.s = s_;
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::restore(const RngState& state) {
  s_ = state.s;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

void write_rng_state(ByteWriter& w, const RngState& state) {
  for (std::uint64_t word : state.s) w.write_u64(word);
  w.write_bool(state.has_cached_normal);
  w.write_f64(state.cached_normal);
}

RngState read_rng_state(ByteReader& r) {
  RngState state;
  for (auto& word : state.s) word = r.read_u64();
  state.has_cached_normal = r.read_bool();
  state.cached_normal = r.read_f64();
  return state;
}

Rng Rng::split() {
  // Derive a child seed from two draws; xoshiro streams seeded through
  // splitmix64 from independent 64-bit values do not overlap in practice.
  std::uint64_t seed = next_u64() ^ rotl(next_u64(), 31);
  return Rng(seed);
}

}  // namespace fedcleanse::common
