// Minimal leveled logger for experiment binaries.
//
// Defaults to Info. Benches set the level from FEDCLEANSE_LOG
// (debug|info|warn|error|off). Not a general-purpose logging framework —
// just enough structure that library code never writes raw to stdout.
//
// Each line is emitted as one locked write of
//   <ISO-8601 UTC ms> [LEVEL] [t<thread-index>] <message>
// so lines from pool workers never interleave, and the t<N> index matches
// the tid in obs trace exports.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fedcleanse::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel global_log_level();
void set_global_log_level(LogLevel level);
// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive); unknown → Info.
LogLevel parse_log_level(const std::string& s);
// Read FEDCLEANSE_LOG from the environment and apply it.
void init_log_level_from_env();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

// Stream-style log statement: FC_LOG(Info) << "round " << r;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= global_log_level()) detail::emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace fedcleanse::common

#define FC_LOG(level) \
  ::fedcleanse::common::LogLine(::fedcleanse::common::LogLevel::k##level)
