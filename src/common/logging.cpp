#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "common/thread_id.h"

namespace fedcleanse::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel global_log_level() { return g_level.load(std::memory_order_relaxed); }

void set_global_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void init_log_level_from_env() {
  if (const char* env = std::getenv("FEDCLEANSE_LOG")) {
    set_global_log_level(parse_log_level(env));
  }
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // ISO-8601 UTC with millisecond precision, e.g. 2026-08-05T14:03:07.214Z.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char stamp[40];
  const std::size_t n = std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(stamp + n, sizeof(stamp) - n, ".%03dZ", static_cast<int>(ms));

  // Compose the full line first, then write it under one lock: lines from
  // concurrent threads (pool workers log too) never interleave mid-line.
  std::string line;
  line.reserve(message.size() + 48);
  line += stamp;
  line += " [";
  line += level_name(level);
  line += "] [t";
  line += std::to_string(thread_index());
  line += "] ";
  line += message;
  line += "\n";

  static std::mutex mu;
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  std::lock_guard<std::mutex> lock(mu);
  out << line;
}
}  // namespace detail

}  // namespace fedcleanse::common
