#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>

namespace fedcleanse::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel global_log_level() { return g_level.load(std::memory_order_relaxed); }

void set_global_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void init_log_level_from_env() {
  if (const char* env = std::getenv("FEDCLEANSE_LOG")) {
    set_global_log_level(parse_log_level(env));
  }
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[" << level_name(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace fedcleanse::common
