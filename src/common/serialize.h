// Binary serialization for the comm layer and model snapshots.
//
// Little-endian, length-prefixed, no alignment requirements. ByteReader
// validates every read against the remaining buffer and throws
// SerializationError on truncation, so malformed client payloads cannot
// crash the server.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace fedcleanse::common {

// FNV-1a 64 over a byte range — the integrity check shared by the comm
// layer's message stamps and the checkpoint formats (model + run snapshots).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n);
inline std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  return fnv1a(bytes.data(), bytes.size());
}

class ByteWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_bool(bool v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_u32_vector(const std::vector<std::uint32_t>& v);
  void write_i32_vector(const std::vector<std::int32_t>& v);
  void write_u8_vector(const std::vector<std::uint8_t>& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* data, std::size_t n);
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  double read_f64();
  bool read_bool();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::uint32_t> read_u32_vector();
  std::vector<std::int32_t> read_i32_vector();
  std::vector<std::uint8_t> read_u8_vector();

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  void take(void* out, std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fedcleanse::common
