// Small, stable per-thread index: the first thread to call thread_index()
// gets 0, the next 1, and so on for the life of the process. Used wherever a
// compact thread identity beats std::thread::id — log line prefixes, trace
// event tids, and the metric registry's shard selection — so all three agree
// on which thread is which.
#pragma once

#include <atomic>

namespace fedcleanse::common {

inline int thread_index() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace fedcleanse::common
