#include "analysis/backdoor_analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fl/metrics.h"
#include "nn/activation_stats.h"
#include "nn/conv2d.h"

namespace fedcleanse::analysis {

std::vector<double> channel_means(nn::ModelSpec& model, const data::Dataset& dataset,
                                  int batch_size) {
  FC_REQUIRE(!dataset.empty(), "channel_means needs data");
  nn::ChannelMeanAccumulator acc;
  tensor::Tensor tapped;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < dataset.size();
       start += static_cast<std::size_t>(batch_size)) {
    idx.clear();
    for (std::size_t i = start;
         i < std::min(dataset.size(), start + static_cast<std::size_t>(batch_size)); ++i) {
      idx.push_back(i);
    }
    auto batch = dataset.make_batch(idx);
    model.net.forward_with_tap(batch.images, model.tap_index, tapped);
    acc.add_batch(tapped);
  }
  return acc.means();
}

namespace {

// Run fn with the given channel pruned, restoring the layer exactly.
template <typename Fn>
void with_channel_pruned(nn::Layer& layer, int channel, Fn&& fn) {
  std::vector<std::vector<float>> saved;
  for (auto& p : layer.params()) saved.emplace_back(p.value->storage());
  layer.set_unit_active(channel, false);
  fn();
  auto params = layer.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value->storage() = std::move(saved[i]);
  }
  layer.set_unit_active(channel, true);
}

}  // namespace

std::vector<ChannelProfile> profile_channels(nn::ModelSpec& model,
                                             const data::Dataset& clean_test,
                                             const data::Dataset& backdoor_test) {
  auto clean = channel_means(model, clean_test);
  auto backdoored = channel_means(model, backdoor_test);
  auto* conv = dynamic_cast<nn::Conv2d*>(&model.net.layer(model.last_conv_index));
  FC_REQUIRE(conv != nullptr, "pruning layer must be a Conv2d");
  const int units = conv->prunable_units();
  const std::size_t per_channel =
      conv->weight().size() / static_cast<std::size_t>(units);

  std::vector<ChannelProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(units));
  for (int ch = 0; ch < units; ++ch) {
    ChannelProfile p;
    p.channel = ch;
    p.clean_activation = clean[static_cast<std::size_t>(ch)];
    p.backdoor_activation = backdoored[static_cast<std::size_t>(ch)];
    p.trigger_gap = p.backdoor_activation - p.clean_activation;
    for (std::size_t i = 0; i < per_channel; ++i) {
      p.max_abs_weight = std::max(
          p.max_abs_weight,
          std::abs(conv->weight()[static_cast<std::size_t>(ch) * per_channel + i]));
    }
    with_channel_pruned(*conv, ch, [&] {
      p.test_acc_without = fl::evaluate_accuracy(model.net, clean_test);
      p.attack_acc_without = fl::attack_success_rate(model.net, backdoor_test);
    });
    profiles.push_back(p);
  }
  return profiles;
}

std::vector<OracleStep> oracle_prune_curve(nn::ModelSpec& model,
                                           const data::Dataset& clean_test,
                                           const data::Dataset& backdoor_test,
                                           int max_steps) {
  auto clean = channel_means(model, clean_test);
  auto backdoored = channel_means(model, backdoor_test);
  auto& layer = model.net.layer(model.last_conv_index);
  const int units = layer.prunable_units();

  std::vector<int> order(static_cast<std::size_t>(units));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return backdoored[static_cast<std::size_t>(a)] - clean[static_cast<std::size_t>(a)] >
           backdoored[static_cast<std::size_t>(b)] - clean[static_cast<std::size_t>(b)];
  });

  // Snapshot the whole layer once; prune cumulatively; restore at the end.
  std::vector<std::vector<float>> saved;
  for (auto& p : layer.params()) saved.emplace_back(p.value->storage());
  const auto mask_before = layer.prune_mask();

  std::vector<OracleStep> curve;
  const int steps = std::min(max_steps, units - 1);
  for (int k = 0; k < steps; ++k) {
    layer.set_unit_active(order[static_cast<std::size_t>(k)], false);
    OracleStep step;
    step.channel = order[static_cast<std::size_t>(k)];
    step.test_acc = fl::evaluate_accuracy(model.net, clean_test);
    step.attack_acc = fl::attack_success_rate(model.net, backdoor_test);
    curve.push_back(step);
  }

  auto params = layer.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value->storage() = std::move(saved[i]);
  }
  layer.set_prune_mask(mask_before);
  return curve;
}

}  // namespace fedcleanse::analysis
