// Backdoor anatomy analysis: the measurements a defender-researcher uses to
// verify the paper's two core assumptions on a trained model —
//   (a) backdoors recruit channels that are dormant on clean data, and
//   (b) backdoors concentrate in extreme weights.
//
// All functions are read-only on the model (per-channel ablation snapshots
// and restores parameters around each measurement).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/model_zoo.h"

namespace fedcleanse::analysis {

// Mean post-activation per channel of the model's tap layer over a dataset.
std::vector<double> channel_means(nn::ModelSpec& model, const data::Dataset& dataset,
                                  int batch_size = 64);

struct ChannelProfile {
  int channel = -1;
  double clean_activation = 0.0;     // mean activation on clean data
  double backdoor_activation = 0.0;  // mean activation on triggered data
  double trigger_gap = 0.0;          // backdoor − clean
  float max_abs_weight = 0.0f;       // largest |w| in the channel's kernel
  // Metrics with ONLY this channel pruned (ablation).
  double test_acc_without = 0.0;
  double attack_acc_without = 0.0;
};

// Per-channel profile of the pruning layer: activations on clean vs
// backdoored data, weight extremity, and single-channel ablation impact.
std::vector<ChannelProfile> profile_channels(nn::ModelSpec& model,
                                             const data::Dataset& clean_test,
                                             const data::Dataset& backdoor_test);

struct OracleStep {
  int channel = -1;
  double test_acc = 0.0;
  double attack_acc = 0.0;
};

// Cumulatively prune channels in descending trigger-gap order — the oracle
// upper bound on what activation-gap-based pruning could achieve. The model
// is restored afterwards.
std::vector<OracleStep> oracle_prune_curve(nn::ModelSpec& model,
                                           const data::Dataset& clean_test,
                                           const data::Dataset& backdoor_test,
                                           int max_steps = 10);

}  // namespace fedcleanse::analysis
