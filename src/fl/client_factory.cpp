#include "fl/client_factory.h"

#include <algorithm>

#include "common/error.h"
#include "fl/simulation.h"

namespace fedcleanse::fl {

namespace {
// k-th derived seed of a root: one splitmix64 step at offset k·γ along the
// root's walk. O(1), collision-free across k, independent of every other k.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t k) {
  std::uint64_t state = root + k * 0x9E3779B97F4A7C15ULL;
  return common::splitmix64(state);
}
}  // namespace

ClientFactory::ClientFactory(const SimulationConfig& config, data::Dataset full_train,
                             nn::ModelSpec template_model, std::uint64_t partition_seed,
                             std::uint64_t label_root, std::uint64_t data_root,
                             std::uint64_t seed_root)
    : config_(config),
      full_train_(std::move(full_train)),
      template_model_(std::move(template_model)),
      label_root_(label_root),
      data_root_(data_root),
      seed_root_(seed_root) {
  FC_REQUIRE(!full_train_.empty(), "client factory needs training data");
  if (config_.dba && config_.n_attackers > 1) {
    dba_patterns_ = data::split_dba(config_.attack.pattern, config_.n_attackers);
  }
  // Per-label sample pools, shuffled once so a client's with-replacement
  // draws inside a pool are decorrelated from synthesis order.
  common::Rng prng(partition_seed);
  label_pools_.resize(static_cast<std::size_t>(full_train_.num_classes()));
  for (int label = 0; label < full_train_.num_classes(); ++label) {
    auto& pool = label_pools_[static_cast<std::size_t>(label)];
    pool = full_train_.indices_of_label(label);
    prng.shuffle(pool);
  }
  samples_per_client_ =
      config_.samples_per_client > 0
          ? config_.samples_per_client
          : std::max(1, static_cast<int>(full_train_.size() /
                                         static_cast<std::size_t>(config_.n_clients)));
}

std::vector<int> ClientFactory::client_labels(int id) const {
  const int num_classes = full_train_.num_classes();
  const int k = std::min(config_.labels_per_client, num_classes);
  std::vector<int> labels;
  labels.reserve(static_cast<std::size_t>(k));
  // Attackers must hold victim-label data to poison it (mirrors the forced
  // assignment of the eager planner).
  if (id < config_.n_attackers) labels.push_back(config_.attack.victim_label);
  common::Rng rng(derive_seed(label_root_, static_cast<std::uint64_t>(id)));
  while (static_cast<int>(labels.size()) < k) {
    const int label = static_cast<int>(rng.index(static_cast<std::size_t>(num_classes)));
    if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
      labels.push_back(label);
    }
  }
  std::sort(labels.begin(), labels.end());
  // The round-robin data draw fills labels front to back; rotate the victim
  // label to the front so an attacker holds victim data even when the local
  // set is smaller than its label set.
  if (id < config_.n_attackers) {
    auto it = std::find(labels.begin(), labels.end(), config_.attack.victim_label);
    std::rotate(labels.begin(), it, it + 1);
  }
  return labels;
}

Client ClientFactory::make_client(int id) const {
  FC_REQUIRE(id >= 0 && id < config_.n_clients, "client id out of range");
  const auto labels = client_labels(id);

  // Round-robin over the client's label set, sampling each label's pool with
  // replacement — clients share the pool, so no O(N) cursor state exists.
  common::Rng rng(derive_seed(data_root_, static_cast<std::uint64_t>(id)));
  data::Dataset local(full_train_.num_classes());
  for (int s = 0; s < samples_per_client_; ++s) {
    const int label = labels[static_cast<std::size_t>(s) % labels.size()];
    const auto& pool = label_pools_[static_cast<std::size_t>(label)];
    if (pool.empty()) continue;
    const std::size_t idx = pool[rng.index(pool.size())];
    local.add(full_train_.image(idx), full_train_.label(idx));
  }
  FC_REQUIRE(!local.empty(), "virtual client got no data — raise samples_per_class_train");

  auto spec = template_model_.clone();
  Client client(id, std::move(spec), std::move(local), config_.train,
                derive_seed(seed_root_, static_cast<std::uint64_t>(id)));
  if (id < config_.n_attackers) {
    AttackSpec attack = config_.attack;
    if (!dba_patterns_.empty()) {
      attack.pattern = dba_patterns_[static_cast<std::size_t>(id)];
    }
    client.make_malicious(std::move(attack));
  }
  return client;
}

}  // namespace fedcleanse::fl
