// Cosine-similarity credibility scoring with a reputation scheme — a
// training-time defense from the paper's related work (Awan et al.,
// CONTRA), implemented as a comparison substrate.
//
// Each round, every update is scored by its mean pairwise cosine similarity
// to the other updates; clients whose updates look like outliers lose
// reputation, and the aggregate is the reputation-weighted mean. A
// model-replacement attacker with a large amplification factor produces
// low-similarity updates and is progressively muted.
#pragma once

#include <span>
#include <vector>

namespace fedcleanse::fl {

double cosine_similarity(std::span<const float> a, std::span<const float> b);

class ReputationAggregator {
 public:
  // `decay` smooths reputation over rounds; `penalty_threshold` is the mean
  // cosine similarity below which a client is penalized this round.
  explicit ReputationAggregator(int n_clients, double decay = 0.8,
                                double penalty_threshold = 0.0);

  // Aggregate one round of updates from the given client ids. Updates and
  // ids must align. Returns the reputation-weighted mean update.
  std::vector<float> aggregate(const std::vector<int>& client_ids,
                               const std::vector<std::vector<float>>& updates);

  double reputation(int client) const;
  const std::vector<double>& reputations() const { return reputation_; }

  // Checkpoint support: overwrite all scores (crash-resume restores the
  // smoothed history). Throws CheckpointError on a size mismatch.
  void restore_scores(const std::vector<double>& scores);

 private:
  std::vector<double> reputation_;
  double decay_;
  double penalty_threshold_;
};

}  // namespace fedcleanse::fl
