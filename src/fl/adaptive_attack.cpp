#include "fl/adaptive_attack.h"

#include <algorithm>
#include <numeric>

namespace fedcleanse::fl {

std::vector<std::vector<std::uint8_t>> anticipate_prune_masks(Simulation& sim,
                                                              double prune_rate) {
  FC_REQUIRE(prune_rate > 0.0 && prune_rate < 1.0, "prune_rate must be in (0,1)");
  auto params = sim.server().params();
  auto& model = sim.server().model();
  const int layer_index = model.last_conv_index;
  const int units = model.net.layer(layer_index).prunable_units();

  // Average the activation means over every client (attacker's best estimate
  // of the global dormancy ordering).
  std::vector<double> totals(static_cast<std::size_t>(units), 0.0);
  for (int c : sim.protocol_client_ids()) {
    auto means = sim.client(c).activation_means(params);
    FC_REQUIRE(static_cast<int>(means.size()) == units, "activation width mismatch");
    for (std::size_t i = 0; i < totals.size(); ++i) totals[i] += means[i];
  }

  std::vector<std::size_t> order(totals.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return totals[a] < totals[b]; });

  const auto n_prune = static_cast<std::size_t>(prune_rate * static_cast<double>(units));
  auto masks = model.net.prune_masks();
  auto& mask = masks[static_cast<std::size_t>(layer_index)];
  FC_REQUIRE(mask.size() == totals.size(), "mask width mismatch");
  for (std::size_t i = 0; i < n_prune; ++i) mask[order[i]] = 0;
  return masks;
}

void arm_prune_aware_attackers(Simulation& sim, double prune_rate) {
  auto masks = anticipate_prune_masks(sim, prune_rate);
  for (int a : sim.attacker_ids()) {
    sim.client(a).set_anticipated_masks(masks);
  }
}

}  // namespace fedcleanse::fl
