// Durable run checkpoints with bit-identical crash resume (DESIGN.md §13).
//
// A RunSnapshot captures an entire run at a round boundary: which stage was
// executing ("train" or "finetune"), the full Simulation state (round
// position, RNG streams, server model + reputation, every client, the wire
// including fault state), and an opaque stage-progress payload owned by the
// defense layer. CheckpointManager writes snapshots atomically (tmp + fsync
// + rename) with N-generation rotation, and falls back a generation when the
// newest file is truncated or bit-flipped. A run killed at any point and
// resumed from its latest snapshot produces a final model byte-identical to
// the uninterrupted run, at any thread count, with fault injection on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "fl/simulation.h"

namespace fedcleanse::fl {

// Stage tags stored in RunSnapshot::stage.
namespace run_stage {
inline constexpr const char* kTrain = "train";
inline constexpr const char* kFinetune = "finetune";
// Distributed-failover scopes (DESIGN.md §18): a server-only snapshot taken
// by the remote-mode server at round boundaries, and one client's own state.
// Distinct tags so a full-run snapshot can never cross-resume into a
// node-scope one (or vice versa) — the stage check throws CheckpointError.
inline constexpr const char* kServerTrain = "server_train";
inline constexpr const char* kClientTrain = "client_train";
}  // namespace run_stage

struct RunSnapshot {
  std::string stage = run_stage::kTrain;
  // Next round index *within the stage* (training round for kTrain,
  // fine-tuning round for kFinetune).
  std::int32_t next_round = 0;
  // Simulation::save_state bytes.
  std::vector<std::uint8_t> sim_state;
  // Stage-specific progress, opaque to this layer. Empty for kTrain; the
  // defense layer stores its fine-tune keep-best loop and pipeline progress
  // here (defense/pipeline.h) so fl/ never depends on defense/. The
  // node-scope failover stages store their (run_seed[, client_id]) key here.
  std::vector<std::uint8_t> stage_state;
  // Snapshot epoch (DESIGN.md §18): 0 for a run never resumed; each resume
  // restores epoch E and continues at E+1, stamping the new epoch into the
  // round-sync handshake so stale pre-crash traffic is rejected with typed
  // errors instead of silently mixing generations.
  std::uint32_t epoch = 0;
};

// RunSnapshot ↔ bytes. The on-disk format is magic "FCRS" + version +
// FNV-1a checksum over the payload; decode_run_snapshot throws
// CheckpointError on anything malformed (bad magic/version, failed checksum,
// truncation, trailing bytes).
std::vector<std::uint8_t> encode_run_snapshot(const RunSnapshot& snap);
RunSnapshot decode_run_snapshot(const std::vector<std::uint8_t>& bytes);

// Read and decode one snapshot file. Throws CheckpointError on I/O failure
// or a malformed file.
RunSnapshot load_snapshot_file(const std::string& path);

// Capture the current run into a snapshot (wire must be quiescent: call only
// from the coordinating thread at a round boundary).
RunSnapshot make_run_snapshot(const Simulation& sim, std::string stage,
                              int next_round);

// Restore `sim` from a snapshot and append a {"kind":"resume"} line to the
// ambient journal (if one is installed) so downstream tooling can tell
// replayed rounds from live ones. The simulation must have been built from
// the same SimulationConfig that produced the snapshot.
void resume_simulation(Simulation& sim, const RunSnapshot& snap);

// --- distributed failover snapshots (DESIGN.md §18) -------------------------

// Server-scope snapshot for the remote deployment: captures only the state
// that evolves on the server node (round cursor, protocol RNG, server model +
// reputation, per-round history/exchange stats) — the frozen client replicas
// are rebuilt from the config at restart and the live clients re-synchronized
// via kRoundSync. stage_state carries the run seed so a snapshot can never
// resume under a different seed.
RunSnapshot make_server_snapshot(const Simulation& sim, int next_round,
                                 std::uint32_t epoch);

// Restore a remote-mode server from a server-scope snapshot and continue at
// `new_epoch` (the caller passes snap.epoch + 1). Journals
// {"kind":"server_resume"}. Throws CheckpointError on a stage or run-seed
// mismatch.
void resume_server_simulation(Simulation& sim, const RunSnapshot& snap,
                              std::uint32_t new_epoch);

// One client process's own evolving state (model, RNG stream, learning rate,
// anticipated masks), keyed by (run_seed, client_id): restoring under a
// different seed or id throws CheckpointError instead of silently producing
// a divergent replica.
RunSnapshot make_client_snapshot(const Client& client, std::uint64_t run_seed,
                                 int client_id, int next_round, std::uint32_t epoch);
void restore_client_snapshot(Client& client, const RunSnapshot& snap,
                             std::uint64_t run_seed, int client_id);

// Writes rotated snapshot generations into a directory and loads the newest
// decodable one back.
//
//   snapshot-000000.fcrs, snapshot-000001.fcrs, ...
//
// save() is atomic: the snapshot is written to a ".tmp" sibling, flushed and
// fsync'd, then renamed into place — a crash mid-save can never destroy an
// older generation. The `keep` newest generations are retained; older ones
// are pruned after each successful save.
class CheckpointManager {
 public:
  // `every` <= 0 disables checkpointing (enabled() false, due() never).
  // The directory is created if missing (only when enabled).
  CheckpointManager(std::string dir, int every, int keep = 3);

  bool enabled() const { return every_ > 0; }
  // True when a snapshot should be written after `completed` of `total`
  // stage rounds: every `every` rounds, and always at the stage's end (so a
  // resumed defense never has to replay training).
  bool due(int completed, int total) const;

  // Write one snapshot generation; returns the path written.
  std::string save(const RunSnapshot& snap);

  // Load the newest decodable snapshot. A truncated or corrupt generation is
  // logged as a warning and skipped in favour of the next-older one.
  // Returns nullopt when the directory holds no snapshot files at all;
  // throws CheckpointError when snapshots exist but every one is unusable.
  std::optional<RunSnapshot> load_latest() const;

  const std::string& dir() const { return dir_; }
  int keep() const { return keep_; }

 private:
  std::string snapshot_path(std::uint64_t generation) const;
  void prune_old_generations() const;

  std::string dir_;
  int every_;
  int keep_;
  std::uint64_t next_generation_ = 0;
};

}  // namespace fedcleanse::fl
