#include "fl/run_state.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "common/logging.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace fedcleanse::fl {

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x46435253;  // "FCRS"
constexpr std::uint32_t kVersion = 5;  // v5: snapshot epoch for distributed failover
// magic + version + checksum + payload length prefix.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;

constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".fcrs";

// snapshot-NNNNNN.fcrs → NNNNNN, or nullopt for any other filename (including
// the .tmp siblings a crash mid-save can leave behind).
std::optional<std::uint64_t> parse_generation(const std::string& name) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

// All snapshot generations in `dir`, newest first. Missing directory → empty.
std::vector<std::pair<std::uint64_t, std::string>> list_generations(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return found;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (auto gen = parse_generation(entry.path().filename().string())) {
      found.emplace_back(*gen, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "rb"),
                                                       &std::fclose);
  if (file == nullptr) {
    throw CheckpointError("cannot open run snapshot for reading: " + path);
  }
  std::fseek(file.get(), 0, SEEK_END);
  const long size = std::ftell(file.get());
  if (size < 0) throw CheckpointError("cannot stat run snapshot: " + path);
  std::fseek(file.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), file.get());
  if (read != bytes.size()) throw CheckpointError("short read from run snapshot: " + path);
  return bytes;
}

// Write + flush + fsync. A snapshot that rename() publishes must already be
// on stable storage, or a power loss could leave a truncated "newest"
// generation that shadows an intact older one until fallback kicks in.
void write_file_durable(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  if (file == nullptr) {
    throw CheckpointError("cannot open run snapshot for writing: " + path);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file.get());
  if (written != bytes.size() || std::fflush(file.get()) != 0) {
    throw CheckpointError("short write to run snapshot: " + path);
  }
  if (::fsync(::fileno(file.get())) != 0) {
    throw CheckpointError("fsync failed for run snapshot: " + path);
  }
}

// fsync the directory so the rename itself is durable. Best-effort: some
// filesystems refuse O_DIRECTORY fsync, and the file contents are already
// safe by this point.
void sync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::vector<std::uint8_t> encode_run_snapshot(const RunSnapshot& snap) {
  common::ByteWriter payload;
  payload.write_string(snap.stage);
  payload.write_i32(snap.next_round);
  payload.write_u32(snap.epoch);
  payload.write_u8_vector(snap.sim_state);
  payload.write_u8_vector(snap.stage_state);

  common::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u64(common::fnv1a(payload.bytes()));
  w.write_u8_vector(payload.take());
  return w.take();
}

RunSnapshot decode_run_snapshot(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw CheckpointError("run snapshot truncated: " + std::to_string(bytes.size()) +
                          " bytes, header needs " + std::to_string(kHeaderBytes));
  }
  common::ByteReader header(bytes);
  if (header.read_u32() != kMagic) throw CheckpointError("not a fedcleanse run snapshot");
  const std::uint32_t version = header.read_u32();
  if (version != kVersion) {
    throw CheckpointError("unsupported run snapshot version " + std::to_string(version) +
                          " (expected " + std::to_string(kVersion) + ")");
  }
  const std::uint64_t stored = header.read_u64();
  std::vector<std::uint8_t> payload;
  try {
    payload = header.read_u8_vector();
  } catch (const SerializationError& e) {
    throw CheckpointError(std::string("run snapshot truncated: ") + e.what());
  }
  if (!header.exhausted()) throw CheckpointError("run snapshot has trailing bytes");
  if (common::fnv1a(payload) != stored) {
    throw CheckpointError("run snapshot payload fails its checksum");
  }

  try {
    common::ByteReader r(payload);
    RunSnapshot snap;
    snap.stage = r.read_string();
    snap.next_round = r.read_i32();
    snap.epoch = r.read_u32();
    snap.sim_state = r.read_u8_vector();
    snap.stage_state = r.read_u8_vector();
    if (!r.exhausted()) throw CheckpointError("run snapshot payload has trailing bytes");
    return snap;
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    throw CheckpointError(std::string("run snapshot payload undecodable: ") + e.what());
  }
}

RunSnapshot load_snapshot_file(const std::string& path) {
  return decode_run_snapshot(read_file_bytes(path));
}

RunSnapshot make_run_snapshot(const Simulation& sim, std::string stage, int next_round) {
  RunSnapshot snap;
  snap.stage = std::move(stage);
  snap.next_round = next_round;
  common::ByteWriter w;
  sim.save_state(w);
  snap.sim_state = w.take();
  return snap;
}

void resume_simulation(Simulation& sim, const RunSnapshot& snap) {
  common::ByteReader r(snap.sim_state);
  try {
    sim.restore_state(r);
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    throw CheckpointError(std::string("run snapshot sim state undecodable: ") + e.what());
  }
  if (!r.exhausted()) {
    throw CheckpointError("run snapshot sim state has trailing bytes");
  }
  if (obs::Journal* journal = obs::ambient_journal()) {
    obs::JsonObject entry;
    entry.add("kind", "resume").add("stage", snap.stage).add("round", snap.next_round);
    journal->write(entry);
  }
  FC_LOG(Info) << "resumed run from snapshot: stage=" << snap.stage << " round="
               << snap.next_round;
}

RunSnapshot make_server_snapshot(const Simulation& sim, int next_round,
                                 std::uint32_t epoch) {
  RunSnapshot snap;
  snap.stage = run_stage::kServerTrain;
  snap.next_round = next_round;
  snap.epoch = epoch;
  common::ByteWriter state;
  sim.save_server_state(state);
  snap.sim_state = state.take();
  common::ByteWriter key;
  key.write_u64(sim.config().seed);
  snap.stage_state = key.take();
  return snap;
}

void resume_server_simulation(Simulation& sim, const RunSnapshot& snap,
                              std::uint32_t new_epoch) {
  if (snap.stage != run_stage::kServerTrain) {
    throw CheckpointError("snapshot stage '" + snap.stage +
                          "' is not a server-scope snapshot");
  }
  common::ByteReader key(snap.stage_state);
  const std::uint64_t snap_seed = key.read_u64();
  if (!key.exhausted()) {
    throw CheckpointError("server snapshot key has trailing bytes");
  }
  if (snap_seed != sim.config().seed) {
    throw CheckpointError("server snapshot keyed to seed " + std::to_string(snap_seed) +
                          ", this run uses seed " + std::to_string(sim.config().seed));
  }
  common::ByteReader r(snap.sim_state);
  try {
    sim.restore_server_state(r);
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    throw CheckpointError(std::string("server snapshot state undecodable: ") + e.what());
  }
  if (!r.exhausted()) {
    throw CheckpointError("server snapshot state has trailing bytes");
  }
  sim.set_run_epoch(new_epoch);
  FC_METRIC(server_resumes().inc());
  if (obs::Journal* journal = obs::ambient_journal()) {
    obs::JsonObject entry;
    entry.add("kind", "server_resume")
        .add("stage", run_stage::kTrain)
        .add("round", snap.next_round)
        .add("epoch", static_cast<std::int64_t>(new_epoch));
    journal->write(entry);
  }
  FC_LOG(Info) << "server resumed from snapshot: round=" << snap.next_round
               << " epoch=" << new_epoch;
}

RunSnapshot make_client_snapshot(const Client& client, std::uint64_t run_seed,
                                 int client_id, int next_round, std::uint32_t epoch) {
  RunSnapshot snap;
  snap.stage = run_stage::kClientTrain;
  snap.next_round = next_round;
  snap.epoch = epoch;
  common::ByteWriter state;
  client.save_state(state);
  snap.sim_state = state.take();
  common::ByteWriter key;
  key.write_u64(run_seed);
  key.write_i32(client_id);
  snap.stage_state = key.take();
  return snap;
}

void restore_client_snapshot(Client& client, const RunSnapshot& snap,
                             std::uint64_t run_seed, int client_id) {
  if (snap.stage != run_stage::kClientTrain) {
    throw CheckpointError("snapshot stage '" + snap.stage +
                          "' is not a client-scope snapshot");
  }
  common::ByteReader key(snap.stage_state);
  const std::uint64_t snap_seed = key.read_u64();
  const std::int32_t snap_id = key.read_i32();
  if (!key.exhausted()) {
    throw CheckpointError("client snapshot key has trailing bytes");
  }
  if (snap_seed != run_seed || snap_id != client_id) {
    throw CheckpointError("client snapshot keyed to (seed " + std::to_string(snap_seed) +
                          ", client " + std::to_string(snap_id) + "), this process is (seed " +
                          std::to_string(run_seed) + ", client " + std::to_string(client_id) +
                          ")");
  }
  common::ByteReader r(snap.sim_state);
  try {
    client.restore_state(r);
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    throw CheckpointError(std::string("client snapshot state undecodable: ") + e.what());
  }
  if (!r.exhausted()) {
    throw CheckpointError("client snapshot state has trailing bytes");
  }
}

CheckpointManager::CheckpointManager(std::string dir, int every, int keep)
    : dir_(std::move(dir)), every_(every), keep_(keep) {
  FC_REQUIRE(keep_ >= 1, "checkpoint manager must keep at least one generation");
  if (!enabled()) return;
  FC_REQUIRE(!dir_.empty(), "checkpoint manager needs a directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw CheckpointError("cannot create checkpoint directory " + dir_ + ": " +
                          ec.message());
  }
  // Continue numbering after whatever a previous (crashed) run left behind,
  // so its generations stay available for fallback until rotation prunes
  // them.
  const auto existing = list_generations(dir_);
  if (!existing.empty()) next_generation_ = existing.front().first + 1;
}

bool CheckpointManager::due(int completed, int total) const {
  if (!enabled() || completed <= 0) return false;
  return completed % every_ == 0 || completed == total;
}

std::string CheckpointManager::snapshot_path(std::uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return (fs::path(dir_) / name).string();
}

std::string CheckpointManager::save(const RunSnapshot& snap) {
  FC_REQUIRE(enabled(), "checkpoint manager is disabled");
  const std::string path = snapshot_path(next_generation_);
  const std::string tmp = path + ".tmp";
  write_file_durable(tmp, encode_run_snapshot(snap));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw CheckpointError("cannot publish run snapshot " + path + ": " + ec.message());
  }
  sync_directory(dir_);
  ++next_generation_;
  prune_old_generations();
  FC_LOG(Debug) << "wrote run snapshot " << path << " (stage=" << snap.stage
                << " round=" << snap.next_round << ")";
  return path;
}

void CheckpointManager::prune_old_generations() const {
  const auto generations = list_generations(dir_);
  std::error_code ec;
  for (std::size_t i = static_cast<std::size_t>(keep_); i < generations.size(); ++i) {
    fs::remove(generations[i].second, ec);
  }
}

std::optional<RunSnapshot> CheckpointManager::load_latest() const {
  const auto generations = list_generations(dir_);
  if (generations.empty()) return std::nullopt;
  for (const auto& [gen, path] : generations) {
    try {
      return load_snapshot_file(path);
    } catch (const CheckpointError& e) {
      // The headline fallback: a snapshot torn by a crash mid-save (or rotted
      // on disk) must cost at most `every` rounds of recompute, never the run.
      FC_LOG(Warn) << "run snapshot " << path << " unusable (" << e.what()
                   << "); falling back a generation";
    }
  }
  throw CheckpointError("all " + std::to_string(generations.size()) +
                        " run snapshot(s) in " + dir_ + " are unusable");
}

}  // namespace fedcleanse::fl
