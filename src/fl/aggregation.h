// Aggregation rules over flat parameter updates.
//
// FedAvg (the paper's simplified equal-weight rule) is the default; the
// Byzantine-robust rules the paper's related work discusses — coordinate
// median, trimmed mean, Krum, Bulyan — are implemented as the comparison
// substrate. All operate on same-length flat update vectors.
#pragma once

#include <string>
#include <vector>

namespace fedcleanse::fl {

enum class AggregatorKind { kFedAvg, kMedian, kTrimmedMean, kKrum, kMultiKrum, kBulyan };

const char* aggregator_name(AggregatorKind kind);

// Plain coordinate-wise mean (simplified FedAvg: equal client weights).
std::vector<float> mean_update(const std::vector<std::vector<float>>& updates);

// Coordinate-wise median.
std::vector<float> coordinate_median(const std::vector<std::vector<float>>& updates);

// Coordinate-wise trimmed mean: drop the `trim` largest and `trim` smallest
// values per coordinate, average the rest. Requires 2·trim < n.
std::vector<float> trimmed_mean(const std::vector<std::vector<float>>& updates, int trim);

// Krum (Blanchard et al.): select the single update whose summed squared
// distance to its n−f−2 nearest neighbours is minimal. Returns that update.
std::vector<float> krum(const std::vector<std::vector<float>>& updates, int n_byzantine);
// Index selected by Krum (for tests / Multi-Krum composition).
std::size_t krum_index(const std::vector<std::vector<float>>& updates, int n_byzantine);

// Multi-Krum: average the m best-scoring updates.
std::vector<float> multi_krum(const std::vector<std::vector<float>>& updates,
                              int n_byzantine, int m);

// Bulyan (Mhamdi et al.): iteratively select n−2f updates via Krum, then
// per-coordinate trimmed mean over the selection.
std::vector<float> bulyan(const std::vector<std::vector<float>>& updates, int n_byzantine);

// Dispatch by kind; `n_byzantine` is the robustness parameter (ignored by
// FedAvg).
std::vector<float> aggregate(AggregatorKind kind,
                             const std::vector<std::vector<float>>& updates,
                             int n_byzantine);

}  // namespace fedcleanse::fl
