// Attack specifications: BadNets-style poisoning with model replacement
// (Bagdasaryan et al.), the DBA decomposition, and the adaptive attacks the
// paper studies in its Discussion (§VI-B).
#pragma once

#include <span>
#include <vector>

#include "data/backdoor.h"

namespace fedcleanse::fl {

enum class AdaptiveMode {
  kNone,
  // Attack 1: report backdoor neurons as highly active so they are pruned
  // last (manipulates RAP rankings / MVP votes).
  kRankManipulation,
  // Attack 2 ("pruning-aware"): train against the anticipated pruning mask
  // so the backdoor lives in essential neurons.
  kPruneAware,
  // Anti-AW attacker: self-clips extreme weights of its local model before
  // submitting the update, so AW has nothing left to cull.
  kSelfAdjust,
};

const char* adaptive_mode_name(AdaptiveMode mode);

struct AttackSpec {
  // Trigger the attacker stamps during local training (a DBA attacker gets
  // only its slice of the global trigger).
  data::BackdoorPattern pattern;
  int victim_label = 9;
  int attack_label = 0;
  // Model-replacement amplification coefficient γ ∈ [1, N].
  double gamma = 10.0;
  // Backdoored copies added per victim-label image in the local set.
  int poison_copies = 1;
  AdaptiveMode adaptive = AdaptiveMode::kNone;
  // Δ used by the kSelfAdjust attacker when clipping its own weights.
  double self_adjust_delta = 3.0;
};

// Model replacement: the attacker submits γ·(x_atk − ω_t) so that after
// FedAvg the global model moves (approximately, exactly when γ = N and other
// deviations cancel) to x_atk.
std::vector<float> model_replacement_update(std::span<const float> local_model,
                                            std::span<const float> global_model,
                                            double gamma);

}  // namespace fedcleanse::fl
