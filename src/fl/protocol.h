// Degraded-mode exchange driver: request → dispatch → collect, with capped
// retransmission and a quorum gate (FaultConfig::min_collect_fraction).
//
// One template serves every phase of the round protocol — training updates,
// RAP ranks, MVP votes, accuracy reports. On a perfect wire it performs
// exactly one attempt with every client replying, so the fault-free path is
// byte-identical to the pre-fault-layer protocol.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "comm/message.h"
#include "common/logging.h"
#include "fl/simulation.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedcleanse::fl {

// Smallest number of valid reports that lets a collect phase proceed.
inline std::size_t quorum_count(std::size_t n_clients, double min_fraction) {
  const double need = std::ceil(min_fraction * static_cast<double>(n_clients));
  return std::max<std::size_t>(
      1, std::min(n_clients, static_cast<std::size_t>(std::max(0.0, need))));
}

// Round-sync handshake after a server resume (DESIGN.md §18): broadcast the
// resumed (epoch, committed-round) position, collect acks, journal the
// outcome. Runs BEFORE Simulation::run() replays — its traffic predates the
// first round's uplink-byte sample, so journaled wire_bytes stay identical
// to an uninterrupted run. Clients that died with the old server simply
// never ack (their channel short-circuits); they rejoin mid-replay via the
// normal reconnect path only if restarted. Returns the number of clients
// that acked the resumed position.
inline int synchronize_round(Simulation& sim, const std::vector<int>& clients) {
  const std::uint32_t epoch = sim.run_epoch();
  const std::int32_t next_round = sim.completed_rounds();
  sim.server().broadcast_round_sync(clients, epoch, next_round);
  CollectStats stats;
  sim.server().collect_round_sync_acks(clients, epoch, next_round, &stats);
  FC_METRIC(round_syncs().inc());
  if (obs::Journal* journal = obs::ambient_journal()) {
    obs::JsonObject entry;
    entry.add("kind", "round_sync")
        .add("node", "server")
        .add("round", next_round)
        .add("epoch", static_cast<std::int64_t>(epoch))
        .add("n_acked", stats.n_valid);
    journal->write(entry);
  }
  FC_LOG(Info) << "round sync: epoch=" << epoch << " round=" << next_round << " acked="
               << stats.n_valid << "/" << clients.size() << " (timed out "
               << stats.n_timed_out << ", malformed " << stats.n_malformed << ")";
  return stats.n_valid;
}

// ExchangeStats itself lives in fl/simulation.h (RoundRecord embeds its
// fields and Simulation caches the last round's copy).
template <typename T>
struct Exchange {
  std::vector<int> clients;  // clients with a valid report, in id order
  std::vector<T> values;     // aligned with `clients`
  ExchangeStats stats;
};

// Streaming exchange: identical retry/backoff/quorum mechanics, but every
// valid reply is handed to `sink(position, T&&)` the moment it clears the
// collect phase instead of being buffered — the returned Exchange carries
// the reporting clients and stats only, `values` stays empty. `position` is
// the reply's index into `clients`; a position is sunk at most once. Used by
// the O(model) aggregation paths (fl::StreamingAggregator, the defense's
// streaming rank/vote histograms).
//
// `request(ids)` re-sends the phase's request to the given clients;
// `collect(ids, &stats)` returns one std::optional<T> per id. The recv
// deadline doubles per retry attempt, capped at
// 2^ProtocolConfig::max_backoff_shift × (capped backoff), and is restored
// afterwards. Does NOT throw below quorum — the caller decides
// whether a thin round is skippable (training) or fatal (defense).
template <typename T, typename RequestFn, typename CollectFn, typename SinkFn>
Exchange<T> exchange_streaming(Simulation& sim, const std::vector<int>& clients,
                               RequestFn request, CollectFn collect, SinkFn sink,
                               const char* what) {
  const comm::FaultConfig& fc = sim.config().fault;
  // One correlation id covers the whole exchange, retries included: a late
  // reply from an earlier attempt still belongs to this exchange, and stamping
  // per attempt would make it look foreign in the merged trace. Requests read
  // the ambient id via server_message(); replies echo it back.
  const std::uint32_t correlation = comm::next_correlation_id();
  comm::ScopedCorrelation scoped_correlation(correlation);
  // `what` is a string literal at every call site, so it can name the span.
  obs::Span exchange_span(what, "protocol");
  exchange_span.set_arg("corr", correlation);
  FC_METRIC(exchange_rounds().inc());
  Exchange<T> result;
  result.stats.n_participants = static_cast<int>(clients.size());

  std::vector<char> have(clients.size(), 0);
  std::vector<std::size_t> pending(clients.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  const int base_timeout = sim.server().recv_timeout_ms();
  const int attempts = 1 + std::max(0, fc.max_request_retries);
  for (int attempt = 0; attempt < attempts && !pending.empty(); ++attempt) {
    std::vector<int> ids;
    ids.reserve(pending.size());
    for (std::size_t i : pending) ids.push_back(clients[i]);
    if (attempt > 0) {
      result.stats.n_retried += static_cast<int>(ids.size());
      FC_METRIC(exchange_retries().add(ids.size()));
      sim.server().set_recv_timeout_ms(
          base_timeout << std::min(attempt, sim.config().protocol.max_backoff_shift));
      FC_LOG(Info) << what << ": retry " << attempt << " for " << ids.size()
                   << " client(s)";
    }
    request(ids);
    sim.dispatch_clients(ids);
    CollectStats cs;
    decltype(collect(ids, &cs)) replies;
    {
      // The collect phase is where the server sits in recv_for deadlines —
      // the wait the trace must show to explain a slow lossy round.
      obs::Span collect_span("collect", "protocol");
      collect_span.set_arg("attempt", attempt);
      replies = collect(ids, &cs);
    }
    result.stats.n_corrupted += cs.n_malformed;
    FC_METRIC(exchange_corrupted().add(static_cast<std::uint64_t>(cs.n_malformed)));

    std::vector<std::size_t> still_pending;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      if (replies[k].has_value()) {
        have[pending[k]] = 1;
        sink(pending[k], std::move(*replies[k]));
      } else {
        still_pending.push_back(pending[k]);
      }
    }
    pending = std::move(still_pending);
  }
  sim.server().set_recv_timeout_ms(base_timeout);

  int n_valid = 0;
  for (std::size_t i = 0; i < have.size(); ++i) {
    if (have[i]) {
      result.clients.push_back(clients[i]);
      ++n_valid;
    }
  }
  result.stats.n_valid = n_valid;
  result.stats.n_dropped = static_cast<int>(pending.size());
  FC_METRIC(exchange_drops().add(pending.size()));
  result.stats.quorum_met = static_cast<std::size_t>(n_valid) >=
                            quorum_count(clients.size(), fc.min_collect_fraction);
  if (!result.stats.quorum_met) {
    FC_LOG(Warn) << what << ": quorum not met — " << result.stats.n_valid << "/"
                 << clients.size() << " valid reports (need "
                 << quorum_count(clients.size(), fc.min_collect_fraction) << ")";
  }
  return result;
}

// Buffered exchange: the classic materialize-everything variant, expressed
// over the streaming core with a buffering sink. `values` comes back aligned
// with `clients` (position order), exactly as before the streaming refactor.
template <typename T, typename RequestFn, typename CollectFn>
Exchange<T> exchange_with_retries(Simulation& sim, const std::vector<int>& clients,
                                  RequestFn request, CollectFn collect,
                                  const char* what) {
  std::vector<std::optional<T>> got(clients.size());
  Exchange<T> result = exchange_streaming<T>(
      sim, clients, request, collect,
      [&got](std::size_t position, T&& value) { got[position] = std::move(value); },
      what);
  result.values.reserve(result.clients.size());
  for (auto& slot : got) {
    if (slot.has_value()) result.values.push_back(std::move(*slot));
  }
  return result;
}

}  // namespace fedcleanse::fl
