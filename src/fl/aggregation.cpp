#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace fedcleanse::fl {

namespace {

void check_updates(const std::vector<std::vector<float>>& updates) {
  FC_REQUIRE(!updates.empty(), "no updates to aggregate");
  const std::size_t dim = updates.front().size();
  for (const auto& u : updates) {
    FC_REQUIRE(u.size() == dim, "updates must share a dimension");
  }
}

double squared_distance(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

// Krum score of every update: sum of squared distances to its n−f−2 nearest
// neighbours.
std::vector<double> krum_scores(const std::vector<std::vector<float>>& updates,
                                int n_byzantine) {
  const int n = static_cast<int>(updates.size());
  const int neighbours = n - n_byzantine - 2;
  FC_REQUIRE(neighbours >= 1,
             "krum requires n - f - 2 >= 1 (n=" + std::to_string(n) +
                 ", f=" + std::to_string(n_byzantine) + ")");
  // Pairwise distances.
  std::vector<std::vector<double>> dist(static_cast<std::size_t>(n),
                                        std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = squared_distance(updates[static_cast<std::size_t>(i)],
                                        updates[static_cast<std::size_t>(j)]);
      dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = d;
      dist[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = d;
    }
  }
  std::vector<double> scores(static_cast<std::size_t>(n), 0.0);
  std::vector<double> row;
  for (int i = 0; i < n; ++i) {
    row.clear();
    for (int j = 0; j < n; ++j) {
      if (j != i) row.push_back(dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    std::sort(row.begin(), row.end());
    scores[static_cast<std::size_t>(i)] =
        std::accumulate(row.begin(), row.begin() + neighbours, 0.0);
  }
  return scores;
}

}  // namespace

const char* aggregator_name(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kFedAvg: return "fedavg";
    case AggregatorKind::kMedian: return "median";
    case AggregatorKind::kTrimmedMean: return "trimmed-mean";
    case AggregatorKind::kKrum: return "krum";
    case AggregatorKind::kMultiKrum: return "multi-krum";
    case AggregatorKind::kBulyan: return "bulyan";
  }
  return "?";
}

std::vector<float> mean_update(const std::vector<std::vector<float>>& updates) {
  check_updates(updates);
  std::vector<float> out(updates.front().size(), 0.0f);
  const float inv_n = 1.0f / static_cast<float>(updates.size());
  for (const auto& u : updates) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += u[i];
  }
  for (auto& v : out) v *= inv_n;
  return out;
}

std::vector<float> coordinate_median(const std::vector<std::vector<float>>& updates) {
  check_updates(updates);
  const std::size_t dim = updates.front().size();
  const std::size_t n = updates.size();
  std::vector<float> out(dim);
  std::vector<float> column(n);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t c = 0; c < n; ++c) column[c] = updates[c][i];
    const std::size_t mid = n / 2;
    std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                     column.end());
    if (n % 2 == 1) {
      out[i] = column[mid];
    } else {
      const float hi = column[mid];
      const float lo =
          *std::max_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid));
      out[i] = 0.5f * (lo + hi);
    }
  }
  return out;
}

std::vector<float> trimmed_mean(const std::vector<std::vector<float>>& updates, int trim) {
  check_updates(updates);
  const std::size_t n = updates.size();
  FC_REQUIRE(trim >= 0 && 2 * static_cast<std::size_t>(trim) < n,
             "trimmed_mean requires 2*trim < n");
  const std::size_t dim = updates.front().size();
  std::vector<float> out(dim);
  std::vector<float> column(n);
  const std::size_t keep = n - 2 * static_cast<std::size_t>(trim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t c = 0; c < n; ++c) column[c] = updates[c][i];
    std::sort(column.begin(), column.end());
    double s = 0.0;
    for (std::size_t c = static_cast<std::size_t>(trim); c < n - static_cast<std::size_t>(trim);
         ++c) {
      s += column[c];
    }
    out[i] = static_cast<float>(s / static_cast<double>(keep));
  }
  return out;
}

std::size_t krum_index(const std::vector<std::vector<float>>& updates, int n_byzantine) {
  check_updates(updates);
  auto scores = krum_scores(updates, n_byzantine);
  return static_cast<std::size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<float> krum(const std::vector<std::vector<float>>& updates, int n_byzantine) {
  return updates[krum_index(updates, n_byzantine)];
}

std::vector<float> multi_krum(const std::vector<std::vector<float>>& updates,
                              int n_byzantine, int m) {
  check_updates(updates);
  FC_REQUIRE(m >= 1 && m <= static_cast<int>(updates.size()), "multi_krum m out of range");
  auto scores = krum_scores(updates, n_byzantine);
  std::vector<std::size_t> order(updates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  std::vector<std::vector<float>> selected;
  selected.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) selected.push_back(updates[order[static_cast<std::size_t>(i)]]);
  return mean_update(selected);
}

std::vector<float> bulyan(const std::vector<std::vector<float>>& updates, int n_byzantine) {
  check_updates(updates);
  const int n = static_cast<int>(updates.size());
  const int theta = n - 2 * n_byzantine;  // selection size
  FC_REQUIRE(theta >= 1, "bulyan requires n > 2f");
  // Stage 1: iterative Krum selection of theta updates.
  std::vector<std::vector<float>> pool = updates;
  std::vector<std::vector<float>> selected;
  selected.reserve(static_cast<std::size_t>(theta));
  int f = n_byzantine;
  for (int t = 0; t < theta; ++t) {
    // Keep Krum's n−f−2 ≥ 1 valid as the pool shrinks.
    while (static_cast<int>(pool.size()) - f - 2 < 1 && f > 0) --f;
    if (static_cast<int>(pool.size()) - f - 2 < 1) break;
    const std::size_t idx = krum_index(pool, f);
    selected.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    if (pool.empty()) break;
  }
  FC_REQUIRE(!selected.empty(), "bulyan selected no updates");
  // Stage 2: per-coordinate trimmed mean over the selection (trim f each
  // side when possible).
  const int trim = std::min<int>(n_byzantine, (static_cast<int>(selected.size()) - 1) / 2);
  return trimmed_mean(selected, trim);
}

std::vector<float> aggregate(AggregatorKind kind,
                             const std::vector<std::vector<float>>& updates,
                             int n_byzantine) {
  switch (kind) {
    case AggregatorKind::kFedAvg: return mean_update(updates);
    case AggregatorKind::kMedian: return coordinate_median(updates);
    case AggregatorKind::kTrimmedMean: {
      const int trim = std::min<int>(n_byzantine, (static_cast<int>(updates.size()) - 1) / 2);
      return trimmed_mean(updates, trim);
    }
    case AggregatorKind::kKrum: return krum(updates, n_byzantine);
    case AggregatorKind::kMultiKrum:
      return multi_krum(updates, n_byzantine,
                        std::max(1, static_cast<int>(updates.size()) - n_byzantine));
    case AggregatorKind::kBulyan: return bulyan(updates, n_byzantine);
  }
  throw ConfigError("unknown aggregator kind");
}

}  // namespace fedcleanse::fl
