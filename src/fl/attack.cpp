#include "fl/attack.h"

#include "common/error.h"

namespace fedcleanse::fl {

const char* adaptive_mode_name(AdaptiveMode mode) {
  switch (mode) {
    case AdaptiveMode::kNone: return "none";
    case AdaptiveMode::kRankManipulation: return "rank-manipulation";
    case AdaptiveMode::kPruneAware: return "pruning-aware";
    case AdaptiveMode::kSelfAdjust: return "self-adjust";
  }
  return "?";
}

std::vector<float> model_replacement_update(std::span<const float> local_model,
                                            std::span<const float> global_model,
                                            double gamma) {
  FC_REQUIRE(local_model.size() == global_model.size(),
             "model replacement requires matching parameter counts");
  FC_REQUIRE(gamma >= 1.0, "amplification coefficient must be >= 1");
  std::vector<float> update(local_model.size());
  const float g = static_cast<float>(gamma);
  for (std::size_t i = 0; i < update.size(); ++i) {
    update[i] = g * (local_model[i] - global_model[i]);
  }
  return update;
}

}  // namespace fedcleanse::fl
