#include "fl/client.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "fl/metrics.h"
#include "nn/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "nn/activation_stats.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace fedcleanse::fl {

namespace {

// Ranks (1 = most active) from activation means, ties broken by index.
std::vector<std::uint32_t> ranks_from_activation(const std::vector<double>& means) {
  std::vector<std::size_t> order(means.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (means[a] != means[b]) return means[a] > means[b];
    return a < b;
  });
  std::vector<std::uint32_t> ranks(means.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    ranks[order[pos]] = static_cast<std::uint32_t>(pos + 1);
  }
  return ranks;
}

}  // namespace

Client::Client(int id, nn::ModelSpec model, data::Dataset local_data, TrainConfig config,
               std::uint64_t seed)
    : id_(id),
      model_(std::move(model)),
      data_(std::move(local_data)),
      train_data_(data_),
      config_(config),
      rng_(seed) {
  FC_REQUIRE(!data_.empty(), "client needs local data");
  FC_REQUIRE(config_.local_epochs > 0 && config_.batch_size > 0, "bad train config");
}

void Client::make_malicious(AttackSpec spec) {
  FC_REQUIRE(!spec.pattern.empty(), "attacker needs a trigger pattern");
  train_data_ = data::poison_training_set(data_, spec.pattern, spec.victim_label,
                                          spec.attack_label, spec.poison_copies);
  attack_ = std::move(spec);
}

void Client::set_anticipated_masks(std::vector<std::vector<std::uint8_t>> masks) {
  anticipated_masks_ = std::move(masks);
}

void Client::save_state(common::ByteWriter& w) const {
  w.write_u8_vector(nn::save_model(model_));
  common::write_rng_state(w, rng_.state());
  w.write_f64(config_.lr);
  w.write_u32(static_cast<std::uint32_t>(anticipated_masks_.size()));
  for (const auto& m : anticipated_masks_) w.write_u8_vector(m);
}

void Client::restore_state(common::ByteReader& r) {
  auto loaded = nn::load_model(r.read_u8_vector());
  if (loaded.arch != model_.arch) {
    throw CheckpointError("client " + std::to_string(id_) +
                          " snapshot holds a different architecture");
  }
  model_ = std::move(loaded);
  rng_.restore(common::read_rng_state(r));
  config_.lr = r.read_f64();
  const std::uint32_t n_masks = r.read_u32();
  anticipated_masks_.assign(n_masks, {});
  for (auto& m : anticipated_masks_) m = r.read_u8_vector();
}

void Client::train_locally() {
  if (config_.weight_decay > 0.0) {
    for (int li = 0; li < model_.net.size(); ++li) {
      auto& layer = model_.net.layer(li);
      layer.weight_decay = std::max(layer.weight_decay, config_.weight_decay);
    }
  }
  nn::Sgd sgd(model_.net, {config_.lr, config_.momentum});
  nn::SoftmaxCrossEntropy loss;
  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    for (const auto& batch_indices : train_data_.shuffled_batches(config_.batch_size, rng_)) {
      auto batch = train_data_.make_batch(batch_indices);
      model_.net.zero_grad();
      // Fused forward: conv+ReLU pairs collapse into GEMM epilogues and the
      // classifier head emits softmax probabilities directly — bit-identical
      // to the layer-by-layer forward + softmax_rows pipeline.
      loss.forward_probs(model_.net.forward_probs(batch.images), batch.labels);
      model_.net.backward(loss.backward());
      sgd.step();
    }
  }
}

std::vector<float> Client::compute_update(std::span<const float> global_params) {
  model_.net.set_flat(global_params);
  const bool prune_aware =
      attack_ && attack_->adaptive == AdaptiveMode::kPruneAware && !anticipated_masks_.empty();
  if (prune_aware) model_.net.set_prune_masks(anticipated_masks_);

  train_locally();

  if (attack_ && attack_->adaptive == AdaptiveMode::kSelfAdjust) self_adjust_weights();

  const auto local = model_.net.get_flat();
  if (!attack_) {
    std::vector<float> delta(local.size());
    for (std::size_t i = 0; i < delta.size(); ++i) delta[i] = local[i] - global_params[i];
    return delta;
  }
  return model_replacement_update(local, global_params, attack_->gamma);
}

void Client::apply_prune_masks(const std::vector<std::vector<std::uint8_t>>& masks) {
  model_.net.set_prune_masks(masks);
}

std::vector<double> Client::activation_means(std::span<const float> global_params) {
  model_.net.set_flat(global_params);
  nn::ChannelMeanAccumulator acc;
  tensor::Tensor tapped;
  for (const auto& batch_indices : data_.shuffled_batches(config_.batch_size, rng_)) {
    auto batch = data_.make_batch(batch_indices);
    model_.net.forward_with_tap(batch.images, model_.tap_index, tapped, config_.scan_kernel);
    acc.add_batch(tapped);
  }
  return acc.means();
}

std::vector<double> Client::backdoor_neuron_scores() {
  FC_REQUIRE(attack_.has_value(), "backdoor scores only exist for attackers");
  // Mean activation on backdoored victim-label images minus mean activation
  // on the same clean images: neurons that light up only under the trigger.
  auto victim_indices = data_.indices_of_label(attack_->victim_label);
  if (victim_indices.empty()) {
    return std::vector<double>(
        static_cast<std::size_t>(model_.net.layer(model_.last_conv_index).prunable_units()),
        0.0);
  }
  auto clean = data_.subset(victim_indices);
  data::Dataset poisoned(clean.num_classes());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    poisoned.add(attack_->pattern.applied(clean.image(i)), attack_->attack_label);
  }
  auto channel_means = [&](const data::Dataset& ds) {
    nn::ChannelMeanAccumulator acc;
    tensor::Tensor tapped;
    for (const auto& batch_indices : ds.shuffled_batches(config_.batch_size, rng_)) {
      auto batch = ds.make_batch(batch_indices);
      model_.net.forward_with_tap(batch.images, model_.tap_index, tapped, config_.scan_kernel);
      acc.add_batch(tapped);
    }
    return acc.means();
  };
  auto on_poisoned = channel_means(poisoned);
  auto on_clean = channel_means(clean);
  std::vector<double> scores(on_poisoned.size());
  for (std::size_t i = 0; i < scores.size(); ++i) scores[i] = on_poisoned[i] - on_clean[i];
  return scores;
}

std::vector<std::uint32_t> Client::rank_report(std::span<const float> global_params) {
  auto means = activation_means(global_params);
  if (attack_ && attack_->adaptive == AdaptiveMode::kRankManipulation) {
    // Attack 1: pretend the backdoor-carrying neurons are the most active so
    // the aggregated ranking protects them from pruning.
    auto scores = backdoor_neuron_scores();
    const double max_mean = *std::max_element(means.begin(), means.end());
    const double threshold =
        *std::max_element(scores.begin(), scores.end()) * 0.5;  // top-scoring half
    for (std::size_t i = 0; i < means.size(); ++i) {
      if (scores[i] > 0.0 && scores[i] >= threshold) {
        means[i] = max_mean + 1.0 + scores[i];
      }
    }
  }
  return ranks_from_activation(means);
}

std::vector<std::uint8_t> Client::vote_report(std::span<const float> global_params,
                                              double prune_rate) {
  FC_REQUIRE(prune_rate > 0.0 && prune_rate < 1.0, "prune rate must be in (0,1)");
  auto means = activation_means(global_params);
  const std::size_t p_l = means.size();
  const std::size_t n_votes = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(p_l) - 1.0,
                       std::max(1.0, std::round(prune_rate * static_cast<double>(p_l)))));

  std::vector<double> vote_key = means;  // smaller key → vote to prune first
  if (attack_ && attack_->adaptive == AdaptiveMode::kRankManipulation) {
    // Never vote to prune the backdoor neurons.
    auto scores = backdoor_neuron_scores();
    const double max_mean = *std::max_element(means.begin(), means.end());
    for (std::size_t i = 0; i < vote_key.size(); ++i) {
      if (scores[i] > 0.0) vote_key[i] = max_mean + 1.0 + scores[i];
    }
  }

  std::vector<std::size_t> order(p_l);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return vote_key[a] < vote_key[b]; });
  std::vector<std::uint8_t> votes(p_l, 0);
  for (std::size_t i = 0; i < n_votes; ++i) votes[order[i]] = 1;
  return votes;
}

double Client::report_accuracy(std::span<const float> global_params) {
  model_.net.set_flat(global_params);
  const double acc = evaluate_accuracy(model_.net, data_, config_.batch_size);
  if (attack_) {
    // An attacker reports an inflated accuracy so the server keeps pruning
    // past the point where the benign task degrades (or stops early) — it
    // always claims the model is fine.
    return std::min(1.0, acc + 0.05);
  }
  return acc;
}

void Client::self_adjust_weights() {
  // Clip this client's own extreme weights in the last conv layer so the
  // server's AW step finds nothing unusual (Discussion §VI-B).
  auto* conv = dynamic_cast<nn::Conv2d*>(&model_.net.layer(model_.last_conv_index));
  if (conv == nullptr) return;
  const auto active = conv->active_weights();
  if (active.empty()) return;
  const auto [mu, sigma] = tensor::mean_stddev(active);
  const double delta = attack_ ? attack_->self_adjust_delta : 3.0;
  const float lo = static_cast<float>(mu - delta * sigma);
  const float hi = static_cast<float>(mu + delta * sigma);
  for (auto& w : conv->weight().storage()) {
    if (w < lo) w = lo;
    if (w > hi) w = hi;
  }
}

void Client::handle_pending(comm::Network& net) {
  while (auto msg = net.client_try_recv(id_)) {
    handle_one(net, *msg);
  }
}

void Client::handle_one(comm::Network& net, const comm::Message& msg) {
  try {
    handle_message(net, msg);
  } catch (const Error& e) {
    // A corrupted wire must not kill the client: log what arrived (with
    // this client's id, the message type, and the round) and wait for the
    // server's retransmission.
    FC_LOG(Warn) << "client " << id_ << ": dropping "
                 << comm::message_type_name(msg.type) << " for round " << msg.round
                 << " — " << e.what();
  }
}

void Client::handle_message(comm::Network& net, const comm::Message& msg) {
  if (!msg.checksum_ok()) {
    throw comm::DecodeError("payload fails checksum");
  }
  // Outer span carries the correlation id; the per-type spans below keep the
  // client id. In a merged trace, the server's exchange span and this one
  // share the "corr" arg — that pairing is what trace_merge.py --verify
  // checks (server send must precede matching client handle).
  obs::Span handle_span("client.handle", "client");
  handle_span.set_arg("corr", static_cast<std::int64_t>(msg.correlation));
  comm::Message reply;
  reply.round = msg.round;
  reply.sender = id_;
  // Echo the exchange's correlation id so the merged trace can pair this
  // client's work with the server dispatch that caused it (DESIGN.md §17).
  reply.correlation = msg.correlation;
  FC_METRIC(current_round().set(msg.round));
  switch (msg.type) {
    case comm::MessageType::kModelBroadcast: {
      obs::Span span("client.train", "client");
      span.set_arg("client", id_);
      auto global = comm::decode_flat_params(msg.payload);
      auto update = compute_update(global);
      if (config_.update_codec == comm::UpdateCodec::kInt8) {
        reply.type = comm::MessageType::kModelUpdateQuantized;
        reply.payload = comm::encode_flat_params_q8(update);
      } else {
        reply.type = comm::MessageType::kModelUpdate;
        reply.payload = comm::encode_flat_params(update);
      }
      reply.stamp();
      net.send_to_server(id_, std::move(reply));
      break;
    }
    case comm::MessageType::kRankRequest: {
      obs::Span span("client.rank_scan", "client");
      span.set_arg("client", id_);
      auto global = comm::decode_flat_params(msg.payload);
      reply.type = comm::MessageType::kRankReport;
      reply.payload = comm::encode_ranks(rank_report(global));
      reply.stamp();
      net.send_to_server(id_, std::move(reply));
      break;
    }
    case comm::MessageType::kVoteRequest: {
      obs::Span span("client.vote_scan", "client");
      span.set_arg("client", id_);
      common::ByteReader r(msg.payload);
      const double p = r.read_f64();
      auto global = r.read_f32_vector();
      reply.type = comm::MessageType::kVoteReport;
      reply.payload = comm::encode_votes(vote_report(global, p));
      reply.stamp();
      net.send_to_server(id_, std::move(reply));
      break;
    }
    case comm::MessageType::kMaskBroadcast: {
      apply_prune_masks(comm::decode_masks(msg.payload));
      break;  // no reply
    }
    case comm::MessageType::kLrScale: {
      set_lr(lr() * comm::decode_lr_scale(msg.payload));
      break;  // no reply
    }
    case comm::MessageType::kAccuracyRequest: {
      obs::Span span("client.eval", "client");
      span.set_arg("client", id_);
      auto global = comm::decode_flat_params(msg.payload);
      reply.type = comm::MessageType::kAccuracyReport;
      reply.payload = comm::encode_accuracy(report_accuracy(global));
      reply.stamp();
      net.send_to_server(id_, std::move(reply));
      break;
    }
    default:
      // Mistyped (possibly corrupted) request: ignore it rather than die.
      FC_LOG(Warn) << "client " << id_ << ": unexpected "
                   << comm::message_type_name(msg.type) << " for round " << msg.round
                   << " — ignored";
      break;
  }
}

}  // namespace fedcleanse::fl
