// Model evaluation metrics: test accuracy (TA) and attack success rate (AA).
#pragma once

#include "data/dataset.h"
#include "nn/sequential.h"

namespace fedcleanse::fl {

// Fraction of examples whose argmax prediction matches the label.
double evaluate_accuracy(nn::Sequential& model, const data::Dataset& dataset,
                         int batch_size = 64);

// Attack success rate: accuracy on a backdoor test set (victim-label images
// stamped with the full trigger, labeled with the attack label — see
// data::make_backdoor_testset).
double attack_success_rate(nn::Sequential& model, const data::Dataset& backdoor_testset,
                           int batch_size = 64);

}  // namespace fedcleanse::fl
